#!/usr/bin/env python
"""Quickstart: align two sequences with the six-stage pipeline.

Generates a pair of homologous synthetic sequences (descendants of a
common ancestor), runs CUDAlign 2.0 end to end, and prints the alignment
summary — the 60-second tour of the public API.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import PAPER_SCHEME
from repro.core import CUDAlign, small_config
from repro.sequences import MutationProfile, homologous_pair


def main() -> None:
    # 1. Two ~4 KBP descendants of one ancestor (about 3% divergence).
    rng = np.random.default_rng(2011)
    s0, s1 = homologous_pair(
        4096, rng,
        profile=MutationProfile(substitution=0.02, insertion=0.004,
                                deletion=0.004, indel_mean_len=3.0),
        names=("synthetic-chrA", "synthetic-chrB"))
    print(f"aligning {s0.name} ({len(s0):,} bp) x {s1.name} ({len(s1):,} bp)")

    # 2. Configure the pipeline for this scale: special rows every 128
    #    matrix rows, an SRA that holds 8 of them, partitions refined to
    #    at most 32 x 32 before the exact base case.
    config = small_config(block_rows=128, n=len(s1), sra_rows=8,
                          max_partition_size=32, scheme=PAPER_SCHEME)
    result = CUDAlign(config).run(s0, s1)

    # 3. The optimal local alignment, in full.
    print(f"\nbest score       : {result.best_score}")
    print(f"start / end      : {result.alignment.start} / {result.alignment.end}")
    print(f"alignment length : {result.alignment_length:,} columns")
    comp = result.composition
    total = comp.length
    print(f"matches          : {comp.matches:,} ({100 * comp.matches / total:.1f}%)")
    print(f"mismatches       : {comp.mismatches:,}")
    print(f"gap openings     : {comp.gap_opens:,}")
    print(f"gap extensions   : {comp.gap_extensions:,}")

    # 4. How the stages divided the work (crosspoints per stage, like
    #    Table VIII's |L_k| rows).
    print(f"\ncrosspoints      : {result.crosspoint_counts}")
    print("stage walls (s)  : " + "  ".join(
        f"{k}:{v:.3f}" for k, v in result.stage_wall_seconds().items()))

    # 5. Stage 6: a slice of the textual rendering.
    text = result.stage6.text.splitlines()
    print("\nfirst alignment block:")
    print("\n".join(text[3:7]))

    # 6. The compact binary representation (Section IV-F).
    print(f"\nbinary form      : {result.binary.nbytes:,} bytes "
          f"(text form: {result.stage6.text_bytes:,} bytes, "
          f"{result.stage6.compression_ratio:.0f}x larger)")


if __name__ == "__main__":
    main()
