#!/usr/bin/env python
"""Stage 6 tour: binary alignments, reconstruction, and rendering.

Aligns a pair with a conserved core, saves the Stage-5 binary
representation to disk, reloads it, reconstructs the path (Section IV-G),
and renders both the textual alignment and the dotplots — without ever
re-running the DP.

Run:  python examples/visualize_alignment.py
"""

from __future__ import annotations

import os
import tempfile

import numpy as np

from repro.core import CUDAlign, small_config
from repro.sequences import embedded_core_pair
from repro.storage import BinaryAlignment
from repro.viz import ascii_dotplot, render_alignment_text, svg_dotplot


def main() -> None:
    rng = np.random.default_rng(99)
    s0, s1 = embedded_core_pair(1600, 1400, 500, rng,
                                names=("plasmid-A", "plasmid-B"))
    config = small_config(block_rows=64, n=len(s1), sra_rows=4)
    result = CUDAlign(config).run(s0, s1, visualize=False)
    print(f"aligned {s0.name} x {s1.name}: score {result.best_score}, "
          f"span {result.alignment.start} -> {result.alignment.end}")

    # Persist the binary representation — start/end/score + gap lists only,
    # no sequence characters (Section IV-F).
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "alignment.bin")
        with open(path, "wb") as handle:
            handle.write(result.binary.encode())
        size = os.path.getsize(path)
        print(f"binary file: {size:,} bytes "
              f"({len(result.binary.gap1)} + {len(result.binary.gap2)} gap runs)")

        # Reload and reconstruct without the DP matrices.
        with open(path, "rb") as handle:
            binary = BinaryAlignment.decode(handle.read())
    rebuilt = binary.reconstruct()
    assert np.array_equal(rebuilt.ops, result.alignment.ops)
    print("reconstruction: identical to the Stage-5 path\n")

    text = render_alignment_text(rebuilt, s0, s1, width=72)
    head = "\n".join(text.splitlines()[:11])
    print(head)
    print(f"[... {len(text.splitlines()) - 11} more lines; "
          f"{len(text.encode()):,} bytes of text vs {size:,} binary]\n")

    print("dotplot (the conserved core is the diagonal segment):")
    print(ascii_dotplot(rebuilt, len(s0), len(s1), size=56))

    svg = svg_dotplot(rebuilt, len(s0), len(s1))
    with open("core_alignment.svg", "w") as handle:
        handle.write(svg)
    print("\nSVG dotplot written to core_alignment.svg")


if __name__ == "__main__":
    main()
