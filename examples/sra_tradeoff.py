#!/usr/bin/env python
"""The SRA size trade-off (the paper's Table VII experiment, scaled).

Sweeps the Special Rows Area budget for one comparison and shows the
mechanism behind the paper's findings:

* Stage 1 slows down slightly as more rows are flushed (~1% overhead);
* Stage 2 speeds up: its processed area shrinks with the flush interval;
* Stage 4's work collapses once Stages 2-3 bound the partitions tightly;
* Stages 5-6 are constant — they only depend on max_partition_size.

Run:  python examples/sra_tradeoff.py
"""

from __future__ import annotations

import numpy as np

from repro.core import CUDAlign, small_config, sra_bytes_for_rows
from repro.sequences import MutationProfile, homologous_pair


def main() -> None:
    rng = np.random.default_rng(7)
    s0, s1 = homologous_pair(
        6000, rng,
        profile=MutationProfile(substitution=0.03, insertion=0.005,
                                deletion=0.005))
    print(f"comparison: {len(s0):,} x {len(s1):,} "
          f"({len(s0) * len(s1):.2e} cells)\n")
    print(f"{'SRA rows':>9} {'flush MB':>9} {'cells_2':>12} {'cells_3':>12} "
          f"{'cells_4':>12} {'|L2|':>6} {'|L3|':>6} {'s4 iters':>9}")
    for sra_rows in (0, 2, 4, 8, 16, 32):
        config = small_config(block_rows=64, n=len(s1), sra_rows=sra_rows,
                              max_partition_size=16)
        result = CUDAlign(config).run(s0, s1, visualize=False)
        s2 = result.stage2
        s3 = result.stage3
        s4 = result.stage4
        print(f"{sra_rows:>9} {result.stage1.flushed_bytes / 1e6:>9.3f} "
              f"{s2.cells:>12,} {(s3.cells if s3 else 0):>12,} "
              f"{(s4.cells if s4 else 0):>12,} "
              f"{len(s2.crosspoints):>6} "
              f"{(len(s3.crosspoints) if s3 else 0):>6} "
              f"{(len(s4.iterations) if s4 else 0):>9}")
        assert result.best_score == result.alignment.score(s0, s1, config.scheme)
    print("\nReading the table: more special rows => Stage 2 processes a"
          "\nnarrower band per crosspoint (cells_2 falls) and Stages 3-4"
          "\ninherit smaller partitions (cells_4 collapses) — the paper's"
          "\nTable VII, at 1/1000 scale.")


if __name__ == "__main__":
    main()
