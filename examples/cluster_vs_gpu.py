#!/usr/bin/env python
"""CUDAlign vs the Z-align cluster baseline (the paper's Table VI).

Runs the *real* strip-parallel Z-align computation at small scale (score
equality is asserted against the pipeline) and then evaluates the
calibrated models at the paper's sizes, reproducing the speedup table's
shape: ~650-700x over one CPU core, ~17-20x over a 64-core cluster.

Run:  python examples/cluster_vs_gpu.py
"""

from __future__ import annotations

import numpy as np

from repro.baselines import ZAlignCluster
from repro.core import CUDAlign, small_config
from repro.gpusim import GTX_285, KernelGrid, sweep_cost
from repro.sequences import homologous_pair


def main() -> None:
    # ------------------------------------------------------------------
    # Part 1 — real execution at small scale: exactness cross-check.
    # ------------------------------------------------------------------
    rng = np.random.default_rng(3)
    s0, s1 = homologous_pair(2500, rng)
    config = small_config(block_rows=64, n=len(s1), sra_rows=6)
    pipeline = CUDAlign(config).run(s0, s1, visualize=False)
    cluster = ZAlignCluster(cores=8, band_rows=256)
    z_score, z_stats = cluster.align_score(s0, s1, config.scheme)
    print(f"small-scale cross-check ({len(s0):,} x {len(s1):,}):")
    print(f"  pipeline best score : {pipeline.best_score}")
    print(f"  z-align best score  : {z_score}  "
          f"({'EQUAL' if z_score == pipeline.best_score else 'MISMATCH'})")
    print(f"  z-align wavefront   : {z_stats.tiles} tiles, "
          f"{z_stats.wavefront_steps} steps, "
          f"{(z_stats.horizontal_bus_bytes + z_stats.vertical_bus_bytes) / 1e3:.0f} KB exchanged")

    # ------------------------------------------------------------------
    # Part 2 — Table VI at paper scale via the calibrated models.
    # ------------------------------------------------------------------
    grid = KernelGrid(240, 64, 4)  # the paper's Stage-1 launch on GTX 285
    sizes = [
        ("150K", 162_114, 171_823),
        ("500K", 542_868, 536_165),
        ("1M", 1_044_459, 1_072_950),
        ("3M", 3_147_090, 3_282_708),
        ("5M", 5_227_293, 5_228_663),
        ("23M", 23_011_544, 24_543_557),
    ]
    one = ZAlignCluster(cores=1)
    many = ZAlignCluster(cores=64)
    print("\nTable VI analogue (modeled, paper scale):")
    print(f"{'size':>6} {'Z 1-core':>12} {'Z 64-core':>12} "
          f"{'CUDAlign':>10} {'vs 1':>8} {'vs 64':>7}")
    for label, m, n in sizes:
        t1 = one.modeled_seconds(m, n)
        t64 = many.modeled_seconds(m, n)
        tg = sweep_cost(m, n, grid, GTX_285).seconds
        print(f"{label:>6} {t1:>12,.0f} {t64:>12,.0f} {tg:>10,.0f} "
              f"{t1 / tg:>8.0f} {t64 / tg:>7.1f}")
    print("\n(paper: speedups 521-702 over 1 core, 12.6-19.5 over 64 cores)")


if __name__ == "__main__":
    main()
