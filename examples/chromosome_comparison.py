#!/usr/bin/env python
"""Chromosome-style comparison: the paper's flagship experiment, scaled.

Reproduces the human chr21 x chimpanzee chr22 workflow (Tables III, VIII
and X) on the synthetic catalog entry ``32799Kx46944K`` — the same shape
(an unrelated prefix followed by a diverged homolog, ~94% identity) at
1/2048 of the paper's size.  Prints the per-stage execution trace, the
crosspoint statistics, the alignment composition census, and writes the
Figure-12-style dotplot as SVG.

Run:  python examples/chromosome_comparison.py [scale]
"""

from __future__ import annotations

import sys
import time

from repro.core import CUDAlign, small_config
from repro.sequences import get_entry
from repro.viz import svg_dotplot


def main(scale: int = 2048) -> None:
    entry = get_entry("32799Kx46944K")
    print(f"paper comparison : {entry.name0} x {entry.name1}")
    print(f"paper sizes      : {entry.paper_size0:,} x {entry.paper_size1:,} BP")
    print(f"paper best score : {entry.paper_score:,} "
          f"(alignment length {entry.paper_length:,})")
    s0, s1 = entry.build(scale=scale, seed=0)
    print(f"\nscaled (1/{scale}): {len(s0):,} x {len(s1):,} BP")

    config = small_config(block_rows=128, n=len(s1), sra_rows=12,
                          max_partition_size=32)
    tick = time.perf_counter()
    result = CUDAlign(config).run(s0, s1)
    wall = time.perf_counter() - tick

    print(f"\nbest score  : {result.best_score:,}")
    print(f"end position: {result.alignment.end}  (paper: end at "
          f"({entry.paper_size0 - 80_879}, {entry.paper_size1 - 25_243}))")
    print(f"start       : {result.alignment.start} — note the unrelated "
          f"prefix of S1 is skipped, like the paper's start (0, 13,841,680)")
    print(f"length      : {result.alignment_length:,}")

    comp = result.composition
    total = comp.length
    print("\nTable X analogue (composition census):")
    print(f"{'':>16} {'occurrences':>12} {'%':>7} {'score':>10}")
    rows = [("Matches", comp.matches, comp.matches * config.scheme.match),
            ("Mismatches", comp.mismatches, comp.mismatches * config.scheme.mismatch),
            ("Gap openings", comp.gap_opens, -comp.gap_opens * config.scheme.gap_first),
            ("Gap extensions", comp.gap_extensions,
             -comp.gap_extensions * config.scheme.gap_ext)]
    for name, count, score in rows:
        print(f"{name:>16} {count:>12,} {100 * count / total:>6.1f}% {score:>10,}")
    print(f"{'Total':>16} {total:>12,} {'100.0%':>7} {comp.score:>10,}")

    print("\nTable VIII analogue (execution statistics):")
    print(f"  |L_1| = 1   |L_2| = {len(result.stage2.crosspoints)}   "
          f"|L_3| = {len(result.stage3.crosspoints) if result.stage3 else '-'}"
          f"   after stage 4: {result.crosspoint_counts.get('L4', '-')}")
    print(f"  Cells_1 = {result.stage1.cells:.3e}   "
          f"Cells_2 = {result.stage2.cells:.3e}   "
          f"Cells_3 = {result.stage3.cells if result.stage3 else 0:.3e}")
    print(f"  VRAM_1 = {result.stage1.vram_bytes / 1e3:.0f} KB (simulated)")

    if result.stage4 is not None:
        print("\nTable IX analogue (stage 4 iterations):")
        print(f"  {'it':>3} {'H_max':>7} {'W_max':>7} {'crosspoints':>12} "
              f"{'cells':>10}")
        for it in result.stage4.iterations:
            print(f"  {it.index:>3} {it.h_max:>7} {it.w_max:>7} "
                  f"{it.crosspoints:>12,} {it.cells:>10,}")

    out = "chromosome_alignment.svg"
    with open(out, "w") as handle:
        handle.write(svg_dotplot(result.alignment, len(s0), len(s1)))
    print(f"\nwall time: {wall:.2f} s  —  dotplot written to {out}")
    print("\nASCII dotplot (Figure 12 analogue):")
    print(result.stage6.dotplot)


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2048)
