#!/usr/bin/env python
"""Tour of the alignment toolbox beneath the pipeline.

The six-stage pipeline is built from reusable pieces that are useful on
their own.  This example exercises each public engine on the same pair of
sequences and compares what they compute:

* local alignment (Smith-Waterman/Gotoh) — the pipeline's objective;
* global alignment in linear space (Myers-Miller), with work statistics
  showing the divide-and-conquer recursion;
* semi-global (overlap) alignment — anchoring a contig inside a
  chromosome;
* the memory math that rules out the quadratic-space approach.

Run:  python examples/linear_space_toolbox.py
"""

from __future__ import annotations

import numpy as np

from repro.align import (
    MMConfig,
    MMStats,
    PAPER_SCHEME,
    local_align,
    mm_align,
    semiglobal_align,
)
from repro.baselines import quadratic_memory_bytes
from repro.sequences import MutationProfile, homologous_pair, mutate, random_dna


def main() -> None:
    rng = np.random.default_rng(1)
    s0, s1 = homologous_pair(
        3000, rng, profile=MutationProfile(substitution=0.04, insertion=0.01,
                                           deletion=0.01))
    print(f"pair: {len(s0):,} x {len(s1):,} bp, ~92% identity\n")

    # --- local (the pipeline's objective) ------------------------------
    path, score = local_align(s0, s1, PAPER_SCHEME)
    print(f"local  (SW/Gotoh)    : score {score:>6}  span {path.start} -> "
          f"{path.end}")

    # --- global in linear space (Myers-Miller) -------------------------
    stats = MMStats()
    gpath, gscore = mm_align(s0.codes, s1.codes, PAPER_SCHEME,
                             config=MMConfig(base_max_cells=4096),
                             stats=stats)
    ratio = stats.cells / (len(s0) * len(s1))
    print(f"global (Myers-Miller): score {gscore:>6}  "
          f"{stats.splits} splits, {stats.base_cases} base cases, "
          f"{stats.cells:,} cells = {ratio:.1f}x one full-matrix pass "
          f"(the classic linear-space time trade)")
    assert gscore <= score  # global can never beat local

    # --- semi-global: anchor a read inside a chromosome ----------------
    read = mutate(s0[1200:1500],
                  MutationProfile(substitution=0.03, insertion=0.005,
                                  deletion=0.005), rng, name="read")
    anchored = semiglobal_align(read, s0, PAPER_SCHEME)
    print(f"semi-global anchor   : read of {len(read)} bp placed at "
          f"S0[{anchored.start[1]}:{anchored.end[1]}] "
          f"(true origin 1200:1500), score {anchored.score}")

    # --- why linear space matters --------------------------------------
    print("\nquadratic-space memory demand (H, E, F resident):")
    for mbp in (1, 5, 33):
        m = mbp * 10**6
        need = quadratic_memory_bytes(m, m)
        print(f"  {mbp:>3} MBP x {mbp:>3} MBP : {need / 1e12:>12,.1f} TB")
    print("the pipeline's working set for the same comparisons is O(m+n): "
          "a few hundred MB.")


if __name__ == "__main__":
    main()
