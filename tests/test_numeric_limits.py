"""Numeric robustness: int32 headroom, NEG_INF arithmetic, long gap runs,
N bases, and extreme scoring parameters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.constants import NEG_INF, SCORE_DTYPE
from repro.align import reference
from repro.align.full_matrix import local_align
from repro.align.rowscan import RowSweeper
from repro.align.scoring import PAPER_SCHEME, ScoringScheme
from repro.core import CUDAlign, small_config
from repro.sequences.sequence import Sequence

from tests.conftest import make_pair


class TestInt32Headroom:
    def test_neg_inf_never_wraps(self, rng):
        # Long global sweep: NEG_INF cells drift by at most n * gap_ext,
        # which must stay far from the int32 minimum.
        s0, s1 = make_pair(rng, 4, 20_000, related=False)
        sweep = RowSweeper(s0.codes, s1.codes, PAPER_SCHEME).run()
        assert int(sweep.F.min()) > np.iinfo(np.int32).min // 2
        assert int(sweep.H[-1]) > NEG_INF  # the corner is reachable

    def test_long_identical_sequences_large_scores(self):
        # 200k identical bases: score 200k, well inside int32 but big
        # enough to catch byte-width mistakes.
        s = Sequence(np.zeros(200_000, dtype=np.uint8))
        sweep = RowSweeper(s.codes[:400], s.codes, PAPER_SCHEME, local=True,
                           track_best=True).run()
        assert sweep.best == 400

    def test_score_dtype_is_int32(self, rng):
        s0, s1 = make_pair(rng, 10, 10)
        sweep = RowSweeper(s0.codes, s1.codes, PAPER_SCHEME, local=True).run()
        assert sweep.H.dtype == SCORE_DTYPE == np.int32

    def test_match_full_uses_int64_sums(self, rng):
        # The midpoint matching adds two int32 vectors; values near
        # NEG_INF would wrap in int32 — the implementation must widen.
        from repro.align.myers_miller import _match_full
        cc = np.full(5, NEG_INF, dtype=np.int64)
        dd = np.full(5, NEG_INF, dtype=np.int64)
        cc[2] = 10
        rr = np.full(5, NEG_INF, dtype=np.int64)
        ss = np.full(5, NEG_INF, dtype=np.int64)
        rr[2] = 5
        j, join, top = _match_full(cc, dd, rr, ss, gopen=3)
        assert (j, join, top) == (2, 0, 10)


class TestExtremeSchemes:
    def test_zero_mismatch_penalty(self, rng):
        scheme = ScoringScheme(match=1, mismatch=0, gap_first=2, gap_ext=1)
        s0, s1 = make_pair(rng, 40, 40, related=False)
        sweep = RowSweeper(s0.codes, s1.codes, scheme, local=True,
                           track_best=True).run()
        assert sweep.best == reference.sw_score(s0, s1, scheme)

    def test_equal_gap_penalties_linear_model(self, rng):
        # gap_first == gap_ext degenerates to the linear gap model; the
        # scan trick's boundary case.
        scheme = ScoringScheme(match=2, mismatch=-1, gap_first=3, gap_ext=3)
        s0, s1 = make_pair(rng, 50, 50)
        config = small_config(block_rows=16, n=len(s1), sra_rows=2,
                              scheme=scheme, max_partition_size=8)
        result = CUDAlign(config).run(s0, s1, visualize=False)
        _, want = local_align(s0, s1, scheme)
        assert result.best_score == want

    def test_huge_gap_penalties(self, rng):
        scheme = ScoringScheme(match=1, mismatch=-1, gap_first=10_000,
                               gap_ext=9_999)
        s0, s1 = make_pair(rng, 30, 30)
        sweep = RowSweeper(s0.codes, s1.codes, scheme, local=True,
                           track_best=True).run()
        assert sweep.best == reference.sw_score(s0, s1, scheme)


class TestNBases:
    def test_n_runs_through_pipeline(self, rng):
        # Sequences with masked stretches: N never matches, even itself.
        s0, s1 = make_pair(rng, 200, 200)
        codes0 = s0.codes.copy()
        codes0[50:80] = 4  # N run
        s0n = Sequence(codes0)
        config = small_config(block_rows=16, n=len(s1), sra_rows=3)
        result = CUDAlign(config).run(s0n, s1, visualize=False)
        _, want = local_align(s0n, s1, config.scheme)
        assert result.best_score == want

    def test_all_n_scores_zero(self):
        s = Sequence.from_text("N" * 100)
        config = small_config(block_rows=16, n=100, sra_rows=2)
        result = CUDAlign(config).run(s, s, visualize=False)
        assert result.best_score == 0
        assert result.alignment is None


class TestDegenerateInputs:
    def test_single_base_sequences(self):
        a = Sequence.from_text("A")
        config = small_config(block_rows=16, n=1, sra_rows=1)
        result = CUDAlign(config).run(a, a, visualize=False)
        assert result.best_score == 1
        assert result.alignment.end == (1, 1)

    def test_one_by_many(self, rng):
        a = Sequence.from_text("G")
        s1 = make_pair(rng, 1, 500, related=False)[1]
        config = small_config(block_rows=16, n=len(s1), sra_rows=1)
        result = CUDAlign(config).run(a, s1, visualize=False)
        _, want = local_align(a, s1, config.scheme)
        assert result.best_score == want

    def test_many_by_one(self, rng):
        s0 = make_pair(rng, 500, 1, related=False)[0]
        b = Sequence.from_text("G")
        config = small_config(block_rows=16, n=1, sra_rows=1)
        result = CUDAlign(config).run(s0, b, visualize=False)
        _, want = local_align(s0, b, config.scheme)
        assert result.best_score == want
