"""Unit tests for the sequence substrate."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.errors import SequenceError
from repro.sequences import (
    CATALOG,
    MutationProfile,
    Sequence,
    decode,
    embedded_core_pair,
    encode,
    get_entry,
    homologous_pair,
    iter_fasta,
    mutate,
    random_dna,
    read_fasta,
    write_fasta,
)


class TestEncoding:
    def test_round_trip(self):
        text = "ACGTNACGT"
        assert decode(encode(text)) == text

    def test_lower_case_normalized(self):
        assert decode(encode("acgtn")) == "ACGTN"

    def test_invalid_character_rejected(self):
        with pytest.raises(SequenceError, match="invalid DNA character"):
            encode("ACGU")

    def test_decode_rejects_out_of_range(self):
        with pytest.raises(SequenceError):
            decode(np.array([9], dtype=np.uint8))


class TestSequence:
    def test_from_text_and_len(self):
        seq = Sequence.from_text("ACGTACGT", name="x")
        assert len(seq) == 8
        assert str(seq) == "ACGTACGT"

    def test_empty_rejected(self):
        with pytest.raises(SequenceError):
            Sequence.from_text("")

    def test_slice_is_view(self):
        seq = Sequence.from_text("ACGTACGT")
        sub = seq[2:6]
        assert str(sub) == "GTAC"
        assert sub.codes.base is not None  # a view, not a copy

    def test_slice_empty_rejected(self):
        seq = Sequence.from_text("ACGT")
        with pytest.raises(SequenceError):
            seq[2:2]

    def test_scalar_indexing_rejected(self):
        seq = Sequence.from_text("ACGT")
        with pytest.raises(TypeError):
            seq[0]

    def test_codes_immutable(self):
        seq = Sequence.from_text("ACGT")
        with pytest.raises(ValueError):
            seq.codes[0] = 1

    def test_reversed(self):
        seq = Sequence.from_text("ACGGT")
        assert str(seq.reversed()) == "TGGCA"


class TestFasta:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "x.fasta"
        a = Sequence.from_text("ACGT" * 40, name="chrA test")
        b = Sequence.from_text("TTTTGGGG", name="chrB")
        write_fasta(path, a, b, width=13)
        records = list(iter_fasta(path))
        assert [str(r) for r in records] == [str(a), str(b)]
        assert records[0].accession == "chrA"

    def test_read_first_record(self, tmp_path):
        path = tmp_path / "x.fasta"
        write_fasta(path, Sequence.from_text("ACGT", name="only"))
        assert str(read_fasta(path)) == "ACGT"

    def test_blank_lines_and_comments(self):
        handle = io.StringIO(">h1\n; comment\nAC\n\nGT\n")
        (rec,) = list(iter_fasta(handle))
        assert str(rec) == "ACGT"

    def test_data_before_header_rejected(self):
        with pytest.raises(SequenceError, match="before the first"):
            list(iter_fasta(io.StringIO("ACGT\n")))

    def test_empty_record_rejected(self):
        with pytest.raises(SequenceError, match="no sequence data"):
            list(iter_fasta(io.StringIO(">h\n>g\nAC\n")))

    def test_missing_file_errors(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_fasta(tmp_path / "nope.fasta")


class TestSynth:
    def test_random_dna_deterministic(self):
        a = random_dna(100, np.random.default_rng(7))
        b = random_dna(100, np.random.default_rng(7))
        assert np.array_equal(a.codes, b.codes)

    def test_mutate_substitutions_change_bases(self):
        rng = np.random.default_rng(3)
        seq = random_dna(2000, rng)
        mut = mutate(seq, MutationProfile(substitution=0.5, insertion=0,
                                          deletion=0), rng)
        assert len(mut) == len(seq)
        diff = np.count_nonzero(mut.codes != seq.codes)
        assert 700 < diff < 1300  # ~50%

    def test_mutate_zero_profile_is_identity(self):
        rng = np.random.default_rng(3)
        seq = random_dna(500, rng)
        mut = mutate(seq, MutationProfile(substitution=0, insertion=0,
                                          deletion=0), rng)
        assert np.array_equal(mut.codes, seq.codes)

    def test_indels_change_length(self):
        rng = np.random.default_rng(3)
        seq = random_dna(5000, rng)
        ins = mutate(seq, MutationProfile(substitution=0, insertion=0.05,
                                          deletion=0), rng)
        assert len(ins) > len(seq)
        rng = np.random.default_rng(3)
        dele = mutate(seq, MutationProfile(substitution=0, insertion=0,
                                           deletion=0.05), rng)
        assert len(dele) < len(seq)

    def test_profile_validation(self):
        with pytest.raises(SequenceError):
            MutationProfile(substitution=1.5)
        with pytest.raises(SequenceError):
            MutationProfile(indel_mean_len=0.5)

    def test_homologous_pair_is_similar(self):
        # Substitution-only profile keeps the pair positionally comparable
        # (indels would shift frames and hide the homology from this test).
        profile = MutationProfile(substitution=0.05, insertion=0, deletion=0)
        s0, s1 = homologous_pair(1000, np.random.default_rng(5), profile=profile)
        ident = np.count_nonzero(s0.codes == s1.codes) / 1000
        assert ident > 0.85  # far above the 0.25 random baseline

    def test_embedded_core_pair_sizes(self):
        s0, s1 = embedded_core_pair(800, 600, 100, np.random.default_rng(5))
        assert abs(len(s0) - 800) < 50 and abs(len(s1) - 600) < 50

    def test_embedded_core_validation(self):
        with pytest.raises(SequenceError):
            embedded_core_pair(100, 100, 200, np.random.default_rng(0))


class TestCatalog:
    def test_catalog_matches_paper_table2(self):
        assert len(CATALOG) == 8
        entry = get_entry("32799Kx46944K")
        assert entry.paper_size0 == 32_799_110
        assert entry.paper_score == 27_206_434

    def test_unknown_key(self):
        with pytest.raises(SequenceError):
            get_entry("nope")

    def test_build_deterministic(self):
        entry = get_entry("162Kx172K")
        a0, a1 = entry.build(scale=1024, seed=1)
        b0, b1 = entry.build(scale=1024, seed=1)
        assert np.array_equal(a0.codes, b0.codes)
        assert np.array_equal(a1.codes, b1.codes)

    def test_scaled_sizes_floor(self):
        entry = get_entry("162Kx172K")
        m, n = entry.scaled_sizes(10**9)
        assert m == n == 384

    @pytest.mark.parametrize("entry", CATALOG, ids=lambda e: e.key)
    def test_every_entry_builds(self, entry):
        s0, s1 = entry.build(scale=4096, seed=0)
        assert len(s0) >= 384 and len(s1) >= 384
