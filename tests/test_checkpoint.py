"""Stage-1 checkpointing: crash, resume, identical results."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError, StorageError
from repro.align.rowscan import RowSweeper
from repro.core import run_stage1, small_config
from repro.core.checkpoint import (
    clear_checkpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.core.stage1 import ROWS_NS
from repro.storage.sra import SpecialLineStore

from tests.conftest import make_pair


class TestSweeperState:
    def test_state_round_trip(self, rng, scheme):
        s0, s1 = make_pair(rng, 60, 70)
        a = RowSweeper(s0.codes, s1.codes, scheme, local=True,
                       track_best=True)
        a.advance(25)
        state = a.state_dict()
        b = RowSweeper(s0.codes, s1.codes, scheme, local=True,
                       track_best=True)
        b.load_state(state)
        a.run()
        b.run()
        np.testing.assert_array_equal(a.H, b.H)
        assert a.best == b.best and a.cells == b.cells

    def test_bad_state_rejected(self, rng, scheme):
        s0, s1 = make_pair(rng, 10, 10)
        sweep = RowSweeper(s0.codes, s1.codes, scheme, local=True)
        with pytest.raises(ConfigError):
            sweep.load_state({"i": 99, "cells": 0, "H": sweep.H,
                              "E": sweep.E, "F": sweep.F, "best": 0,
                              "best_i": 0, "best_j": 0})
        with pytest.raises(ConfigError):
            sweep.load_state({"i": 1, "cells": 0,
                              "H": np.zeros(3, np.int32),
                              "E": np.zeros(3, np.int32),
                              "F": np.zeros(3, np.int32),
                              "best": 0, "best_i": 0, "best_j": 0})


class TestCheckpointFiles:
    def test_file_round_trip(self, tmp_path, rng, scheme):
        s0, s1 = make_pair(rng, 50, 60)
        sweep = RowSweeper(s0.codes, s1.codes, scheme, local=True,
                           track_best=True)
        sweep.advance(20)
        path = tmp_path / "s1.ckpt"
        save_checkpoint(path, sweep, 50, 60)
        state = load_checkpoint(path, 50, 60)
        assert int(state["i"]) == 20

    def test_missing_returns_none(self, tmp_path):
        assert load_checkpoint(tmp_path / "nope.ckpt", 5, 5) is None

    def test_wrong_comparison_rejected(self, tmp_path, rng, scheme):
        s0, s1 = make_pair(rng, 50, 60)
        sweep = RowSweeper(s0.codes, s1.codes, scheme, local=True)
        path = tmp_path / "s1.ckpt"
        save_checkpoint(path, sweep, 50, 60)
        with pytest.raises(StorageError, match="belongs to"):
            load_checkpoint(path, 99, 60)

    def test_clear(self, tmp_path, rng, scheme):
        s0, s1 = make_pair(rng, 20, 20)
        sweep = RowSweeper(s0.codes, s1.codes, scheme, local=True)
        path = tmp_path / "s1.ckpt"
        save_checkpoint(path, sweep, 20, 20)
        clear_checkpoint(path)
        assert load_checkpoint(path, 20, 20) is None
        clear_checkpoint(path)  # idempotent


class TestStage1Resume:
    def crash_then_resume(self, rng, tmp_path, crash_after_rows):
        s0, s1 = make_pair(rng, 320, 300)
        config = small_config(block_rows=32, n=len(s1), sra_rows=5)
        ckpt = str(tmp_path / "stage1.ckpt")

        # Reference: uninterrupted run.
        clean_sra = SpecialLineStore(config.sra_bytes)
        clean = run_stage1(s0, s1, config, clean_sra)

        # "Crashing" run: sweep partially, checkpointing as Stage 1 would,
        # flushing the special rows seen so far.
        sra = SpecialLineStore(config.sra_bytes)
        from repro.storage.sra import SavedLine, special_row_positions
        rows = special_row_positions(len(s0), len(s1),
                                     config.grid1.block_rows,
                                     config.sra_bytes)
        sweep = RowSweeper(s0.codes, s1.codes, config.scheme, local=True,
                           track_best=True, save_rows=rows)
        sweep.advance(crash_after_rows)
        for r in sorted(sweep.saved):
            h, f = sweep.saved.pop(r)
            sra.save(ROWS_NS, SavedLine(axis="row", position=r, lo=0,
                                        H=h, G=f))
        save_checkpoint(ckpt, sweep, len(s0), len(s1))

        # Resume through the real Stage 1 entry point.
        resumed = run_stage1(s0, s1, config, sra, checkpoint_path=ckpt,
                             checkpoint_every_rows=64)
        return clean, resumed, clean_sra, sra

    def test_resume_identical_result(self, rng, tmp_path):
        clean, resumed, clean_sra, sra = self.crash_then_resume(
            rng, tmp_path, crash_after_rows=150)
        assert resumed.resumed_from_row == 150
        assert resumed.best_score == clean.best_score
        assert resumed.end_point == clean.end_point
        assert resumed.special_rows == clean.special_rows
        for r in clean.special_rows:
            a = clean_sra.load(ROWS_NS, r)
            b = sra.load(ROWS_NS, r)
            np.testing.assert_array_equal(a.H, b.H)
            np.testing.assert_array_equal(a.G, b.G)

    def test_resume_at_block_boundary(self, rng, tmp_path):
        clean, resumed, *_ = self.crash_then_resume(
            rng, tmp_path, crash_after_rows=160)  # exactly 5 block rows
        assert resumed.best_score == clean.best_score

    def test_checkpoint_cleared_after_completion(self, rng, tmp_path):
        self.crash_then_resume(rng, tmp_path, crash_after_rows=100)
        assert load_checkpoint(tmp_path / "stage1.ckpt", 320, 300) is None

    def test_pipeline_level_checkpointing(self, rng, tmp_path):
        from repro.core import CUDAlign
        s0, s1 = make_pair(rng, 300, 300)
        config = small_config(block_rows=32, n=len(s1), sra_rows=4,
                              checkpoint_every_rows=64)
        result = CUDAlign(config, workdir=tmp_path).run(s0, s1,
                                                        visualize=False)
        plain = CUDAlign(small_config(block_rows=32, n=len(s1),
                                      sra_rows=4)).run(s0, s1,
                                                       visualize=False)
        assert result.best_score == plain.best_score
