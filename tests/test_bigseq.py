"""Memory-mapped packed sequences."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SequenceError
from repro.align.rowscan import RowSweeper
from repro.align.scoring import PAPER_SCHEME
from repro.sequences import (
    Sequence,
    homologous_pair,
    open_packed,
    pack_fasta,
    write_fasta,
)


@pytest.fixture
def packed(tmp_path, rng):
    s0, _ = homologous_pair(2000, rng)
    fasta = tmp_path / "x.fasta"
    write_fasta(fasta, s0)
    out = tmp_path / "x.seq"
    length = pack_fasta(fasta, out)
    return s0, out, length


class TestPackOpen:
    def test_round_trip(self, packed):
        s0, out, length = packed
        assert length == len(s0)
        mm = open_packed(out)
        assert len(mm) == len(s0)
        np.testing.assert_array_equal(np.asarray(mm.codes), s0.codes)

    def test_memmap_backed(self, packed):
        _, out, _ = packed
        mm = open_packed(out)
        assert isinstance(mm.codes.base, np.memmap) or isinstance(
            mm.codes, np.memmap)

    def test_second_record(self, tmp_path, rng):
        a, b = homologous_pair(500, rng)
        fasta = tmp_path / "two.fasta"
        write_fasta(fasta, a, b)
        out = tmp_path / "b.seq"
        pack_fasta(fasta, out, record=1)
        np.testing.assert_array_equal(np.asarray(open_packed(out).codes),
                                      b.codes)

    def test_missing_record(self, tmp_path, rng):
        a, _ = homologous_pair(100, rng)
        fasta = tmp_path / "one.fasta"
        write_fasta(fasta, a)
        with pytest.raises(SequenceError, match="record 3"):
            pack_fasta(fasta, tmp_path / "x.seq", record=3)

    def test_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.seq"
        bad.write_bytes(b"nope")
        with pytest.raises(SequenceError):
            open_packed(bad)
        bad.write_bytes(b"XXXX" + bytes(12))
        with pytest.raises(SequenceError, match="bad magic"):
            open_packed(bad)

    def test_rejects_truncation(self, packed, tmp_path):
        _, out, _ = packed
        blob = out.read_bytes()
        cut = tmp_path / "cut.seq"
        cut.write_bytes(blob[:-10])
        with pytest.raises(SequenceError, match="truncated"):
            open_packed(cut)


class TestAlignmentOverMemmap:
    def test_sweep_works_on_memmap(self, packed, tmp_path, rng):
        s0, out, _ = packed
        mm = open_packed(out, name="mapped")
        other = Sequence.from_text("ACGT" * 200)
        direct = RowSweeper(s0.codes, other.codes, PAPER_SCHEME, local=True,
                            track_best=True).run()
        mapped = RowSweeper(mm.codes, other.codes, PAPER_SCHEME, local=True,
                            track_best=True).run()
        assert direct.best == mapped.best

    def test_full_pipeline_on_memmap(self, tmp_path, rng):
        from repro.core import CUDAlign, small_config
        s0, s1 = homologous_pair(600, rng)
        for name, seq in (("a", s0), ("b", s1)):
            write_fasta(tmp_path / f"{name}.fasta", seq)
            pack_fasta(tmp_path / f"{name}.fasta", tmp_path / f"{name}.seq")
        m0 = open_packed(tmp_path / "a.seq")
        m1 = open_packed(tmp_path / "b.seq")
        config = small_config(block_rows=32, n=len(m1), sra_rows=4)
        result = CUDAlign(config).run(m0, m1, visualize=False)
        plain = CUDAlign(config).run(s0, s1, visualize=False)
        assert result.best_score == plain.best_score
