"""Telemetry subsystem coverage: spans, metrics, sinks, observers,
pipeline-level tracing and the run manifest."""

from __future__ import annotations

import io
import json
import os
import time
import warnings

import pytest

from repro.core import CUDAlign, small_config
from repro.errors import ConfigError
from repro.telemetry import (
    CallbackObserver,
    InMemorySink,
    JsonLinesSink,
    MetricsRegistry,
    NULL_TELEMETRY,
    PipelineObserver,
    ProgressRenderer,
    Telemetry,
    Tracer,
    as_observer,
    read_manifest,
)

from tests.conftest import make_pair


class TestSpans:
    def test_nesting_and_ids(self):
        sink = InMemorySink()
        tracer = Tracer((sink,))
        with tracer.span("outer", label="a") as outer:
            assert tracer.current() is outer
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.depth == outer.depth + 1
        assert tracer.current() is None
        # Children complete (and are recorded) before their parents.
        assert [s.name for s in sink.spans] == ["inner", "outer"]
        assert sink.roots() == [outer]
        assert sink.children_of(outer) == [inner]
        assert outer.attributes == {"label": "a"}

    def test_timing_is_monotone_and_contained(self):
        sink = InMemorySink()
        tracer = Tracer((sink,))
        with tracer.span("outer"):
            time.sleep(0.002)
            with tracer.span("inner"):
                time.sleep(0.002)
        inner, outer = sink.spans
        assert outer.start <= inner.start <= inner.end <= outer.end
        assert outer.duration >= inner.duration > 0
        assert outer.end is not None

    def test_set_attributes_and_record(self):
        tracer = Tracer()
        with tracer.span("work", m=3) as span:
            span.set(cells=12, m=4)
        record = span.to_record()
        assert record["name"] == "work"
        assert record["attributes"] == {"m": 4, "cells": 12}
        assert record["duration"] == record["end"] - record["start"]

    def test_attach_adopts_parent(self):
        sink = InMemorySink()
        tracer = Tracer((sink,))
        with tracer.span("stage") as stage:
            pass
        with tracer.attach(stage):
            with tracer.span("child"):
                pass
        child = sink.find("child")[0]
        assert child.parent_id == stage.span_id
        assert child.depth == stage.depth + 1


class TestMetrics:
    def test_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        registry.counter("cells").add(10)
        registry.counter("cells").add(5)
        registry.gauge("mcups").set(3.5)
        for value in (1.0, 2.0, 3.0):
            registry.histogram("lat").observe(value)
        snap = registry.snapshot()
        assert snap["cells"] == 15
        assert snap["mcups"] == 3.5
        assert snap["lat"]["count"] == 3
        assert snap["lat"]["min"] == 1.0
        assert snap["lat"]["max"] == 3.0
        assert snap["lat"]["mean"] == pytest.approx(2.0)
        assert len(registry) == 3

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("n").add(-1)

    def test_kind_conflict(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_same_instrument_returned(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")


class TestJsonLinesSink:
    def test_round_trip(self):
        stream = io.StringIO()
        sink = JsonLinesSink(stream)
        tel = Telemetry(sinks=(sink,))
        with tel.span("outer", m=5):
            tel.metrics.counter("cells").add(7)
        records = [json.loads(line) for line in
                   stream.getvalue().splitlines()]
        assert records[0]["type"] == "trace_start"
        kinds = [r["type"] for r in records[1:]]
        assert kinds == ["metric", "span"]
        metric = records[1]
        assert (metric["name"], metric["kind"], metric["value"]) == \
            ("cells", "counter", 7)
        span = records[2]
        assert span["name"] == "outer"
        assert span["attributes"] == {"m": 5}

    def test_file_sink_closes(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonLinesSink(path) as sink:
            tracer = Tracer((sink,))
            with tracer.span("a"):
                pass
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        for line in lines:
            json.loads(line)


class TestObservers:
    def test_callable_shim_warns_and_forwards(self):
        events = []
        with pytest.warns(DeprecationWarning):
            observer = as_observer(lambda s, f: events.append((s, f)))
        assert isinstance(observer, CallbackObserver)
        observer.on_stage_progress("stage1", 0.5)
        observer.on_stage_end("stage1", None)
        assert events == [("stage1", 0.5), ("stage1", 1.0)]

    def test_observer_passes_through_without_warning(self):
        observer = PipelineObserver()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert as_observer(observer) is observer

    def test_non_callable_rejected(self):
        with pytest.raises(TypeError):
            as_observer(42)

    def test_telemetry_dispatch(self):
        class Recorder(PipelineObserver):
            def __init__(self):
                self.calls = []

            def on_stage_start(self, stage):
                self.calls.append(("start", stage))

            def on_stage_end(self, stage, result):
                self.calls.append(("end", stage, result))

            def on_metric(self, name, value):
                self.calls.append(("metric", name, value))

        recorder = Recorder()
        tel = Telemetry(observers=(recorder,))
        tel.stage_start("stage1")
        tel.metrics.counter("cells").add(3)
        tel.stage_end("stage1", "result")
        assert recorder.calls == [("start", "stage1"),
                                  ("metric", "cells", 3),
                                  ("end", "stage1", "result")]

    def test_progress_renderer_output(self):
        stream = io.StringIO()
        renderer = ProgressRenderer(stream)
        renderer.on_stage_start("stage1")
        renderer.on_stage_progress("stage1", 0.55)
        renderer.on_stage_end("stage1", None)
        out = stream.getvalue()
        assert "[stage1] started" in out
        assert "55.0%" in out
        assert "done in" in out


class TestNullTelemetry:
    def test_null_is_free_and_complete(self):
        with NULL_TELEMETRY.span("anything", m=1) as span:
            span.set(cells=2)
        with NULL_TELEMETRY.attach(span):
            pass
        NULL_TELEMETRY.metrics.counter("x").add(5)
        NULL_TELEMETRY.metrics.gauge("y").set(1)
        assert NULL_TELEMETRY.metrics.snapshot() == {}
        assert NULL_TELEMETRY.tracer is None
        NULL_TELEMETRY.stage_start("stage1")
        NULL_TELEMETRY.stage_end("stage1", None)


class TestPipelineTelemetry:
    def test_one_top_level_span_per_stage(self, rng):
        s0, s1 = make_pair(rng, 300, 300)
        config = small_config(block_rows=32, n=len(s1), sra_rows=4)
        result = CUDAlign(config).run(s0, s1)
        spans = result.spans
        roots = [s for s in spans if s["parent_id"] is None]
        assert [r["name"] for r in roots] == ["pipeline"]
        root = roots[0]
        top = [s for s in spans if s["parent_id"] == root["span_id"]]
        names = [s["name"] for s in top]
        executed = {"stage" + key for key in result.stages()}
        assert sorted(names) == sorted(executed)
        assert len(names) == len(set(names))  # exactly one each
        # Stage spans are ordered and contained in the pipeline span.
        ordered = sorted(top, key=lambda s: s["start"])
        for before, after in zip(ordered, ordered[1:]):
            assert before["end"] <= after["start"]
        for span in top:
            assert root["start"] <= span["start"] <= span["end"] <= root["end"]

    def test_kernel_child_spans_present(self, rng):
        s0, s1 = make_pair(rng, 300, 300)
        config = small_config(block_rows=32, n=len(s1), sra_rows=4)
        result = CUDAlign(config).run(s0, s1)
        names = {s["name"] for s in result.spans}
        assert "sweep.advance" in names
        assert "sra.flush" in names

    def test_metrics_on_result(self, rng):
        s0, s1 = make_pair(rng, 300, 300)
        config = small_config(block_rows=32, n=len(s1), sra_rows=4)
        result = CUDAlign(config).run(s0, s1, visualize=False)
        assert result.metrics["cells.swept"] > 0
        assert result.metrics["crosspoints.L2"] == \
            len(result.stage2.crosspoints)
        assert result.metrics["sra.bytes_flushed"] > 0

    def test_stage_results_share_contract(self, rng):
        s0, s1 = make_pair(rng, 200, 200)
        config = small_config(block_rows=32, n=len(s1), sra_rows=2)
        result = CUDAlign(config).run(s0, s1)
        for key, stage in result.stages().items():
            stats = stage.stats()
            assert stats["stage"] == key
            assert stats["wall_seconds"] >= 0
            assert stats["cells"] >= 0
            json.dumps(stats)  # JSON-safe by contract
        assert result.stage6.modeled_seconds == result.stage6.wall_seconds
        assert result.stage6.cells == 0

    def test_external_sink_receives_run(self, rng):
        s0, s1 = make_pair(rng, 200, 200)
        stream = io.StringIO()
        sink = JsonLinesSink(stream)
        config = small_config(block_rows=32, n=len(s1), sra_rows=2)
        CUDAlign(config, sinks=(sink,)).run(s0, s1, visualize=False)
        records = [json.loads(line) for line in
                   stream.getvalue().splitlines()]
        names = {r["name"] for r in records if r["type"] == "span"}
        assert {"pipeline", "stage1", "stage2"} <= names


class TestManifest:
    def test_manifest_round_trip(self, rng, tmp_path):
        s0, s1 = make_pair(rng, 300, 300)
        config = small_config(block_rows=32, n=len(s1), sra_rows=4)
        result = CUDAlign(config, workdir=tmp_path).run(s0, s1)
        manifest = read_manifest(tmp_path / "manifest.json")
        assert manifest["version"] == 1
        assert manifest["result"]["best_score"] == result.best_score
        assert manifest["stage_wall_seconds"] == result.stage_wall_seconds()
        assert sorted(manifest["stages"]) == sorted(result.stages())
        assert manifest["sequences"]["s0"]["length"] == len(s0)
        assert len(manifest["sequences"]["s0"]["sha256"]) == 64
        assert manifest["metrics"] == result.metrics
        # Plain JSON round-trip: re-serialize losslessly.
        assert json.loads(json.dumps(manifest)) == manifest

    def test_no_workdir_no_manifest(self, rng):
        s0, s1 = make_pair(rng, 100, 100)
        config = small_config(block_rows=32, n=len(s1), sra_rows=2)
        result = CUDAlign(config).run(s0, s1, visualize=False)
        assert result.metrics is not None  # telemetry still collected
        assert result.spans


class TestWorkdirValidation:
    def test_file_as_workdir_raises_config_error(self, rng, tmp_path):
        target = tmp_path / "occupied"
        target.write_text("not a directory")
        s0, s1 = make_pair(rng, 100, 100)
        config = small_config(block_rows=32, n=len(s1), sra_rows=2)
        with pytest.raises(ConfigError, match="not writable"):
            CUDAlign(config, workdir=target).run(s0, s1)

    def test_workdir_created_if_missing(self, rng, tmp_path):
        workdir = tmp_path / "a" / "b"
        s0, s1 = make_pair(rng, 100, 100)
        config = small_config(block_rows=32, n=len(s1), sra_rows=2)
        CUDAlign(config, workdir=workdir).run(s0, s1, visualize=False)
        assert os.path.exists(workdir / "manifest.json")
