"""Special line store, flush-interval law, binary alignment codec."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import SPECIAL_CELL_BYTES, TYPE_GAP_S0, TYPE_GAP_S1
from repro.errors import StorageError
from repro.align.alignment import Alignment
from repro.storage import (
    BinaryAlignment,
    SavedLine,
    SpecialLineStore,
    flush_interval_blocks,
    special_row_positions,
)


def line(pos=8, size=10, axis="row", lo=0):
    h = np.arange(size, dtype=np.int32)
    return SavedLine(axis=axis, position=pos, lo=lo, H=h, G=h * 2)


class TestFlushIntervalLaw:
    def test_paper_formula(self):
        # interval >= ceil(8mn / (alpha*T*|SRA|)); block_rows = alpha*T.
        m, n, block_rows = 4096, 4096, 256
        sra = 2 * SPECIAL_CELL_BYTES * (n + 1)  # room for two rows
        interval = flush_interval_blocks(m, n, block_rows, sra)
        import math
        assert interval == max(1, math.ceil(8 * m * n / (block_rows * sra)))

    def test_zero_capacity_disables_flush(self):
        assert flush_interval_blocks(100, 100, 10, 0) == 0
        assert special_row_positions(100, 100, 10, 0) == []

    def test_capacity_below_one_row_disables(self):
        n = 100
        assert flush_interval_blocks(100, n, 10, SPECIAL_CELL_BYTES * n - 1) == 0

    def test_positions_are_block_multiples(self):
        rows = special_row_positions(1000, 100, 32, 10**9)
        assert rows and all(r % 32 == 0 for r in rows)
        assert rows == sorted(set(rows))

    def test_positions_respect_budget(self):
        n = 127
        row_bytes = SPECIAL_CELL_BYTES * (n + 1)
        rows = special_row_positions(10_000, n, 8, 3 * row_bytes)
        assert len(rows) <= 3

    def test_invalid_args(self):
        with pytest.raises(StorageError):
            flush_interval_blocks(0, 10, 5, 100)


class TestSpecialLineStore:
    def test_save_load_memory(self):
        store = SpecialLineStore(10**6)
        store.save("s1", line(pos=8))
        loaded = store.load("s1", 8)
        np.testing.assert_array_equal(loaded.H, np.arange(10))
        assert loaded.value_at(3) == (3, 6)

    def test_save_load_disk_round_trip(self, tmp_path):
        store = SpecialLineStore(10**6, directory=tmp_path / "sra")
        saved = line(pos=16, size=33)
        store.save("rows", saved)
        loaded = store.load("rows", 16)
        np.testing.assert_array_equal(loaded.H, saved.H)
        np.testing.assert_array_equal(loaded.G, saved.G)
        assert loaded.axis == "row" and loaded.lo == 0

    def test_budget_enforced(self):
        store = SpecialLineStore(line().nbytes)
        store.save("a", line(pos=1))
        with pytest.raises(StorageError, match="budget exceeded"):
            store.save("a", line(pos=2))

    def test_release_frees_budget(self, tmp_path):
        store = SpecialLineStore(line().nbytes, directory=tmp_path)
        store.save("a", line(pos=1))
        freed = store.release("a")
        assert freed == line().nbytes
        assert store.bytes_used == 0
        store.save("a", line(pos=2))  # fits again
        # lifetime traffic keeps counting
        assert store.bytes_written == 2 * line().nbytes

    def test_duplicate_rejected(self):
        store = SpecialLineStore(10**6)
        store.save("a", line(pos=1))
        with pytest.raises(StorageError, match="already saved"):
            store.save("a", line(pos=1))

    def test_missing_line(self):
        with pytest.raises(StorageError, match="no special line"):
            SpecialLineStore(10).load("a", 1)

    def test_positions_sorted_per_namespace(self):
        store = SpecialLineStore(10**6)
        for p in (32, 8, 16):
            store.save("a", line(pos=p))
        store.save("b", line(pos=4))
        assert store.positions("a") == [8, 16, 32]
        assert store.positions("b") == [4]

    def test_value_at_out_of_range(self):
        with pytest.raises(StorageError):
            line(lo=5).value_at(3)

    def test_invalid_axis(self):
        with pytest.raises(StorageError):
            SavedLine(axis="diag", position=0, lo=0,
                      H=np.zeros(2, np.int32), G=np.zeros(2, np.int32))


class TestBinaryAlignment:
    def make(self, ops, i0=3, j0=5, score=42):
        a = Alignment(i0, j0, np.asarray(ops, np.uint8))
        return a, BinaryAlignment.from_alignment(a, score)

    def test_round_trip_encode_decode(self):
        _, ba = self.make([0, 1, 1, 0, 2, 0])
        again = BinaryAlignment.decode(ba.encode())
        assert again == ba

    def test_reconstruct_exact_path(self):
        a, ba = self.make([0, 0, 1, 1, 0, 2, 2, 0, 0])
        rebuilt = ba.reconstruct()
        assert rebuilt.start == a.start and rebuilt.end == a.end
        np.testing.assert_array_equal(rebuilt.ops, a.ops)

    def test_reconstruct_pure_diagonal(self):
        a, ba = self.make([0, 0, 0, 0])
        np.testing.assert_array_equal(ba.reconstruct().ops, a.ops)

    def test_reconstruct_empty(self):
        a, ba = self.make([])
        assert len(ba.reconstruct()) == 0

    @settings(max_examples=60, deadline=None)
    @given(ops=st.lists(st.integers(0, 2), max_size=80),
           i0=st.integers(0, 50), j0=st.integers(0, 50))
    def test_property_round_trip(self, ops, i0, j0):
        a = Alignment(i0, j0, np.asarray(ops, np.uint8))
        ba = BinaryAlignment.from_alignment(a, 7)
        rebuilt = BinaryAlignment.decode(ba.encode()).reconstruct()
        np.testing.assert_array_equal(rebuilt.ops, a.ops)
        assert rebuilt.start == a.start

    def test_compactness_vs_text(self):
        # Mostly-diagonal alignments compress massively (the paper: 279x).
        ops = [0] * 10_000 + [1, 1] + [0] * 10_000
        a, ba = self.make(ops)
        assert ba.nbytes < len(ops) / 100

    def test_decode_rejects_garbage(self):
        with pytest.raises(StorageError):
            BinaryAlignment.decode(b"nope")
        with pytest.raises(StorageError, match="bad magic"):
            BinaryAlignment.decode(b"XXXX" + bytes(60))

    def test_decode_rejects_truncation(self):
        _, ba = self.make([0, 1, 0])
        blob = ba.encode()
        with pytest.raises(StorageError, match="expected"):
            BinaryAlignment.decode(blob[:-1])

    def test_reconstruct_rejects_inconsistent_gaps(self):
        from repro.align.alignment import GapRun
        bad = BinaryAlignment(0, 0, 5, 5, 0,
                              (GapRun(3, 1, 2, TYPE_GAP_S0),), ())
        with pytest.raises(StorageError, match="unreachable"):
            bad.reconstruct()
