"""Failure injection: corrupted storage and inconsistent inputs must be
caught — by the artifact checksums when the damage is on disk, and by
the pipeline's invariant checks when it is past them — and must degrade
to recomputation, never crash or silently mis-align."""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import signal
import time

import numpy as np
import pytest

from repro.constants import TYPE_MATCH
from repro.errors import (IntegrityError, MatchingError, PartitionError,
                          StorageError)
from repro.core import (
    Crosspoint,
    CrosspointChain,
    run_stage1,
    run_stage2,
    run_stage3,
    run_stage5,
    small_config,
)
from repro.core.checkpoint import load_checkpoint, save_checkpoint
from repro.core.stage1 import ROWS_NS
from repro.integrity import corrupt_file, tamper_special_line
from repro.service import (JobQueue, JobSpec, ResultCache, JournalReplay,
                           replay_journal)
from repro.storage.sra import SavedLine, SpecialLineStore

from tests.conftest import make_pair


@pytest.fixture
def setup(rng):
    s0, s1 = make_pair(rng, 300, 280)
    config = small_config(block_rows=32, n=len(s1), sra_rows=5)
    sra = SpecialLineStore(config.sra_bytes)
    sca = SpecialLineStore(config.sca_bytes)
    stage1 = run_stage1(s0, s1, config, sra)
    return s0, s1, config, sra, sca, stage1


class TestCorruptedSRA:
    """Damage *past* the storage checksums (device memory, the bus): the
    codec cannot see it, so the goal-match invariants must."""

    def test_corrupted_special_row_never_mis_scores(self, setup):
        # A corrupted row either trips the matching invariant or — when an
        # equally-scoring alignment start exists inside the band — Stage 2
        # legitimately short-circuits; it must never emit a chain that
        # fails to bracket the true best score.
        s0, s1, config, sra, sca, stage1 = setup
        rows = sra.positions(ROWS_NS)
        assert rows
        tamper_special_line(sra, ROWS_NS, rows[len(rows) // 2])
        try:
            stage2 = run_stage2(s0, s1, config, sra, sca, stage1)
        except MatchingError:
            return
        chain = CrosspointChain(stage2.crosspoints)
        assert chain.end.score == stage1.best_score
        assert chain.start.score == 0

    def test_corrupted_special_column_detected(self, setup):
        s0, s1, config, sra, sca, stage1 = setup
        stage2 = run_stage2(s0, s1, config, sra, sca, stage1)
        bands = [b for b in stage2.bands if b.column_positions]
        if not bands:
            pytest.skip("no special columns saved for this input")
        band = bands[0]
        tamper_special_line(sca, band.namespace, band.column_positions[0])
        with pytest.raises(MatchingError):
            run_stage3(s0, s1, config, sca, stage2)


class TestInconsistentChains:
    def test_wrong_best_score_detected(self, setup):
        s0, s1, config, sra, sca, stage1 = setup
        bogus = dataclasses.replace(
            stage1, best_score=stage1.best_score + 1,
            end_point=Crosspoint(stage1.end_point.i, stage1.end_point.j,
                                 stage1.best_score + 1, TYPE_MATCH))
        with pytest.raises(MatchingError):
            run_stage2(s0, s1, config, sra, sca, bogus)

    def test_stage5_rejects_fabricated_partition_scores(self, setup):
        s0, s1, config, *_ = setup
        chain = CrosspointChain([
            Crosspoint(0, 0, 0),
            Crosspoint(10, 10, 99),   # fabricated score
            Crosspoint(20, 20, 120),
        ])
        small = dataclasses.replace(config, max_partition_size=32)
        with pytest.raises(PartitionError):
            run_stage5(s0, s1, small, chain)


def _saved_line() -> SavedLine:
    return SavedLine(axis="row", position=8, lo=0,
                     H=np.arange(6, dtype=np.int32),
                     G=np.zeros(6, dtype=np.int32))


class TestStorageFaults:
    def test_disk_file_deletion_detected(self, tmp_path, rng):
        store = SpecialLineStore(10**6, directory=tmp_path)
        store.save("x", _saved_line())
        (tmp_path / "x" / "8.bin").unlink()
        with pytest.raises(IntegrityError) as excinfo:
            store.load("x", 8)
        assert excinfo.value.kind == "special-line"

    def test_budget_never_exceeded_under_pressure(self, rng):
        s0, s1 = make_pair(rng, 400, 400)
        # A budget holding exactly one row: the flush law must adapt.
        config = small_config(block_rows=32, n=len(s1), sra_rows=1)
        sra = SpecialLineStore(config.sra_bytes)
        run_stage1(s0, s1, config, sra)
        assert sra.bytes_used <= config.sra_bytes
        assert len(sra.positions(ROWS_NS)) <= 1


def _stage1_wavefront(s0, s1, config, sra_dir, ckpt) -> None:
    """Child-process body: a pooled wavefront Stage 1 with checkpointing."""
    from repro.parallel import WavefrontExecutor

    # Own process group so the parent's SIGKILL takes the executor's
    # worker processes down too (they would otherwise linger on their
    # task pipes, holding inherited descriptors open).
    os.setpgrp()
    sra = SpecialLineStore(config.sra_bytes, directory=sra_dir)
    executor = WavefrontExecutor(2)
    try:
        run_stage1(s0, s1, config, sra, checkpoint_path=ckpt,
                   checkpoint_every_rows=16, executor=executor)
    finally:
        executor.close()


class TestParallelStage1Kill:
    """SIGKILL in the middle of a *parallel* Stage 1: the checkpoint and
    the durable SRA must bring a resumed sweep to the exact same result
    as an uninterrupted serial run — worker processes, shared-memory
    segments and all die with the victim, none of it is durable state."""

    def test_sigkill_mid_sweep_resumes_bit_identical(self, tmp_path, rng):
        from repro.parallel import WavefrontExecutor

        s0, s1 = make_pair(rng, 300, 280)
        config = small_config(block_rows=32, n=len(s1), sra_rows=5)

        reference = run_stage1(s0, s1, config, SpecialLineStore(config.sra_bytes))

        sra_dir = str(tmp_path / "sra")
        ckpt = str(tmp_path / "stage1.ckpt")
        shm_dir = "/dev/shm"
        shm_before = (set(os.listdir(shm_dir))
                      if os.path.isdir(shm_dir) else None)
        ctx = multiprocessing.get_context("fork")
        victim = ctx.Process(target=_stage1_wavefront,
                             args=(s0, s1, config, sra_dir, ckpt))
        victim.start()
        deadline = time.monotonic() + 60
        while victim.is_alive() and not os.path.exists(ckpt):
            if time.monotonic() > deadline:  # pragma: no cover
                os.killpg(victim.pid, signal.SIGKILL)
                victim.join()
                pytest.fail("no checkpoint appeared within 60s")
            time.sleep(0.002)
        killed = victim.is_alive()
        if killed:
            try:
                os.killpg(victim.pid, signal.SIGKILL)
            except ProcessLookupError:  # finished in the window
                killed = False
        victim.join()

        sra = SpecialLineStore(config.sra_bytes, directory=sra_dir,
                               recover=True)
        executor = WavefrontExecutor(2)
        try:
            resumed = run_stage1(s0, s1, config, sra, checkpoint_path=ckpt,
                                 checkpoint_every_rows=16, executor=executor)
        finally:
            executor.close()
        if killed:
            assert resumed.resumed_from_row > 0
        assert resumed.best_score == reference.best_score
        assert resumed.end_point == reference.end_point
        assert resumed.special_rows == reference.special_rows

        # SIGKILL takes the victim's resource tracker down with it, so
        # its shared-memory segments cannot be unlinked by anyone —
        # sweep them here (the resumed executor already unlinked its own).
        if shm_before is not None:
            for name in set(os.listdir(shm_dir)) - shm_before:
                try:
                    os.unlink(os.path.join(shm_dir, name))
                except OSError:  # pragma: no cover
                    pass


def _strike(path, fault: str) -> None:
    """One cell of the chaos matrix: damage an on-disk artifact."""
    corrupt_file(path, "delete" if fault == "missing" else fault, seed=3)


class _SweeperStub:
    """The minimal state_dict surface save_checkpoint needs."""

    i = 7

    def state_dict(self) -> dict:
        zeros = np.zeros(5, dtype=np.int64)
        return {"i": 7, "cells": 280, "H": zeros, "E": zeros, "F": zeros,
                "best": 12, "best_i": 3, "best_j": 4}


@pytest.mark.parametrize("fault", ["bitflip", "truncate", "missing"])
class TestChaosMatrix:
    """fault x artifact class: every cell detects the damage through the
    integrity codec and degrades to a recomputable state."""

    def test_sra_line(self, tmp_path, fault):
        store = SpecialLineStore(10**6, directory=tmp_path)
        store.save("x", _saved_line())
        _strike(tmp_path / "x" / "8.bin", fault)
        with pytest.raises(IntegrityError):
            store.load("x", 8)
        # Degrade: quarantine deregisters the line and frees its budget;
        # consumers recompute across the gap.
        store.quarantine("x", 8)
        assert store.positions("x") == []
        assert store.corrupt_lines == 1
        assert store.bytes_used == 0

    def test_checkpoint(self, tmp_path, fault):
        path = tmp_path / "stage1.ckpt"
        save_checkpoint(path, _SweeperStub(), 300, 280)
        _strike(path, fault)
        if fault == "missing":
            # No checkpoint at all: Stage 1 starts a fresh sweep.
            assert load_checkpoint(path, 300, 280) is None
        else:
            with pytest.raises(IntegrityError) as excinfo:
                load_checkpoint(path, 300, 280)
            assert excinfo.value.kind == "checkpoint"

    def test_cache_entry(self, tmp_path, fault):
        cache = ResultCache(tmp_path)
        key = "k" * 16
        cache.put(key, {"best_score": 17})
        _strike(tmp_path / f"{key}.json", fault)
        assert cache.get(key) is None          # a miss, never a crash
        assert cache.misses == 1
        if fault != "missing":
            assert cache.corrupt == 1
            assert list((tmp_path / "quarantine").iterdir())
        # The recompute's rewrite repairs the cache in place.
        cache.put(key, {"best_score": 17})
        assert cache.get(key) == {"best_score": 17}

    def test_journal(self, tmp_path, fault):
        journal = tmp_path / "journal.jsonl"
        queue = JobQueue(journal)
        for _ in range(3):
            queue.submit(JobSpec(catalog="162Kx172K"))
        _strike(journal, fault)
        replay = replay_journal(journal)
        if fault == "missing":
            assert replay == JournalReplay([], [], 0)   # fresh queue
        else:
            assert replay.corrupt >= 1
            assert len(replay.records) < 3
        # Recovery still stands up a working queue; surviving jobs replay
        # as pending and the lost ones are simply resubmitted.
        recovered = JobQueue.recover(journal)
        assert recovered.corrupt_records == replay.corrupt
        assert all(r.state == "pending" for r in recovered.records())


# ---------------------------------------------------------------- gateway
def _serve_proc(root, port_file, *, resume=False):
    """Start `repro serve` in its own session; returns the Popen."""
    import subprocess
    import sys

    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    argv = [sys.executable, "-m", "repro.cli", "serve", "--root", str(root),
            "--port", "0", "--port-file", str(port_file), "--workers", "1"]
    if resume:
        argv.append("--resume")
    return subprocess.Popen(argv, env=env, start_new_session=True,
                            stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)


def _wait_port(port_file, proc, timeout=60.0) -> int:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if proc.poll() is not None:  # pragma: no cover
            pytest.fail(f"serve process died (rc={proc.returncode})")
        if os.path.exists(port_file):
            text = open(port_file, encoding="utf-8").read().strip()
            if text:
                return int(text)
        time.sleep(0.02)
    pytest.fail("gateway never wrote its port file")  # pragma: no cover


def _http(port, method, path, payload=None, tenant=None):
    import http.client
    import json

    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    headers = {"Content-Type": "application/json"}
    if tenant:
        headers["X-Repro-Tenant"] = tenant
    body = json.dumps(payload).encode() if payload is not None else None
    conn.request(method, path, body=body, headers=headers)
    response = conn.getresponse()
    data = response.read()
    conn.close()
    return response.status, (json.loads(data) if data else None)


class TestGatewayKill:
    """SIGKILL the serving process mid-run: every job the gateway
    accepted (201 = journaled) must survive a `serve --resume` restart
    and run to completion — the HTTP front door adds no new loss mode
    on top of the journal's crash consistency."""

    def test_sigkill_serve_loses_no_accepted_job(self, tmp_path):
        root = tmp_path / "gw"
        port_file = tmp_path / "port"
        victim = _serve_proc(root, port_file)
        accepted = []
        try:
            port = _wait_port(port_file, victim)
            # One long job to pin the worker busy, then quick ones that
            # queue behind it — killed while running + killed while
            # pending are both exercised.
            status, _ = _http(port, "POST", "/v1/jobs",
                              {"job_id": "long", "catalog": "543Kx536K",
                               "scale": 65536, "block_rows": 32},
                              tenant="alice")
            assert status == 201
            accepted.append("long")
            for seed in range(3):
                status, _ = _http(port, "POST", "/v1/jobs",
                                  {"job_id": f"quick-{seed}",
                                   "catalog": "162Kx172K", "scale": 8192,
                                   "seed": seed, "block_rows": 32},
                                  tenant="bob")
                assert status == 201
                accepted.append(f"quick-{seed}")
            # Wait for the long job to actually be dispatched so the kill
            # lands mid-attempt (exercising RUNNING -> recovered).
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                status, snapshot = _http(port, "GET", "/v1/jobs/long")
                if snapshot["state"] == "running":
                    break
                time.sleep(0.02)
            assert snapshot["state"] == "running"
        finally:
            os.killpg(victim.pid, signal.SIGKILL)
            victim.wait()

        # Restart over the same root: the journal replays, interrupted
        # work is re-queued, and everything accepted runs to completion.
        port_file2 = tmp_path / "port2"
        healer = _serve_proc(root, port_file2, resume=True)
        try:
            port = _wait_port(port_file2, healer)
            deadline = time.monotonic() + 300
            states = {}
            while time.monotonic() < deadline:
                _, listing = _http(port, "GET", "/v1/jobs")
                states = {j["job_id"]: j["state"] for j in listing["jobs"]}
                if all(states.get(job_id) in ("succeeded", "cached")
                       for job_id in accepted):
                    break
                time.sleep(0.1)
            for job_id in accepted:
                assert states.get(job_id) in ("succeeded", "cached"), states
                status, body = _http(port, "GET",
                                     f"/v1/jobs/{job_id}/result")
                assert status == 200
                assert body["result"]["best_score"] > 0
        finally:
            os.killpg(healer.pid, signal.SIGTERM)
            assert healer.wait(timeout=30) == 0    # clean shutdown

        # The journal records the demotion of the interrupted attempt.
        _, events, _ = replay_journal(root / "journal.jsonl")
        assert any(e["event"] == "recovered" for e in events)
