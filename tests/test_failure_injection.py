"""Failure injection: corrupted storage and inconsistent inputs must be
caught by the pipeline's invariant checks, never silently mis-align."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.constants import TYPE_MATCH
from repro.errors import MatchingError, PartitionError, StorageError
from repro.core import (
    Crosspoint,
    CrosspointChain,
    run_stage1,
    run_stage2,
    run_stage3,
    run_stage5,
    small_config,
)
from repro.core.stage1 import ROWS_NS
from repro.storage.sra import SavedLine, SpecialLineStore

from tests.conftest import make_pair


@pytest.fixture
def setup(rng):
    s0, s1 = make_pair(rng, 300, 280)
    config = small_config(block_rows=32, n=len(s1), sra_rows=5)
    sra = SpecialLineStore(config.sra_bytes)
    sca = SpecialLineStore(config.sca_bytes)
    stage1 = run_stage1(s0, s1, config, sra)
    return s0, s1, config, sra, sca, stage1


def corrupt_line(store: SpecialLineStore, namespace: str, position: int,
                 delta: int = -10_007) -> None:
    """Shift every stored value so no goal equality can ever hold."""
    line = store.load(namespace, position)
    # Replace in place through the private map (test-only surgery).
    store._lines[(namespace, position)] = SavedLine(
        axis=line.axis, position=line.position, lo=line.lo,
        H=line.H + np.int32(delta), G=line.G + np.int32(delta))


class TestCorruptedSRA:
    def test_corrupted_special_row_never_mis_scores(self, setup):
        # A corrupted row either trips the matching invariant or — when an
        # equally-scoring alignment start exists inside the band — Stage 2
        # legitimately short-circuits; it must never emit a chain that
        # fails to bracket the true best score.
        s0, s1, config, sra, sca, stage1 = setup
        rows = sra.positions(ROWS_NS)
        assert rows
        corrupt_line(sra, ROWS_NS, rows[len(rows) // 2])
        try:
            stage2 = run_stage2(s0, s1, config, sra, sca, stage1)
        except MatchingError:
            return
        chain = CrosspointChain(stage2.crosspoints)
        assert chain.end.score == stage1.best_score
        assert chain.start.score == 0

    def test_corrupted_special_column_detected(self, setup):
        s0, s1, config, sra, sca, stage1 = setup
        stage2 = run_stage2(s0, s1, config, sra, sca, stage1)
        bands = [b for b in stage2.bands if b.column_positions]
        if not bands:
            pytest.skip("no special columns saved for this input")
        band = bands[0]
        corrupt_line(sca, band.namespace, band.column_positions[0])
        with pytest.raises(MatchingError):
            run_stage3(s0, s1, config, sca, stage2)


class TestInconsistentChains:
    def test_wrong_best_score_detected(self, setup):
        s0, s1, config, sra, sca, stage1 = setup
        bogus = dataclasses.replace(
            stage1, best_score=stage1.best_score + 1,
            end_point=Crosspoint(stage1.end_point.i, stage1.end_point.j,
                                 stage1.best_score + 1, TYPE_MATCH))
        with pytest.raises(MatchingError):
            run_stage2(s0, s1, config, sra, sca, bogus)

    def test_stage5_rejects_fabricated_partition_scores(self, setup):
        s0, s1, config, *_ = setup
        chain = CrosspointChain([
            Crosspoint(0, 0, 0),
            Crosspoint(10, 10, 99),   # fabricated score
            Crosspoint(20, 20, 120),
        ])
        small = dataclasses.replace(config, max_partition_size=32)
        with pytest.raises(PartitionError):
            run_stage5(s0, s1, small, chain)


class TestStorageFaults:
    def test_disk_file_deletion_detected(self, tmp_path, rng):
        store = SpecialLineStore(10**6, directory=tmp_path)
        line = SavedLine(axis="row", position=8, lo=0,
                         H=np.arange(5, dtype=np.int32),
                         G=np.zeros(5, dtype=np.int32))
        store.save("x", line)
        (tmp_path / "x" / "8.bin").unlink()
        with pytest.raises(FileNotFoundError):
            store.load("x", 8)

    def test_budget_never_exceeded_under_pressure(self, rng):
        s0, s1 = make_pair(rng, 400, 400)
        # A budget holding exactly one row: the flush law must adapt.
        config = small_config(block_rows=32, n=len(s1), sra_rows=1)
        sra = SpecialLineStore(config.sra_bytes)
        run_stage1(s0, s1, config, sra)
        assert sra.bytes_used <= config.sra_bytes
        assert len(sra.positions(ROWS_NS)) <= 1
