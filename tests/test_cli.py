"""CLI end-to-end tests (the `cudalign` entry point)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.sequences import homologous_pair, write_fasta
from repro.storage import BinaryAlignment


@pytest.fixture
def fasta_pair(tmp_path):
    rng = np.random.default_rng(11)
    s0, s1 = homologous_pair(700, rng, names=("chrA", "chrB"))
    p0 = tmp_path / "a.fasta"
    p1 = tmp_path / "b.fasta"
    write_fasta(p0, s0)
    write_fasta(p1, s1)
    return str(p0), str(p1), s0, s1


class TestAlign:
    def test_align_reports_score(self, fasta_pair, capsys):
        p0, p1, _, _ = fasta_pair
        rc = main(["align", p0, p1, "--block-rows", "32", "--sra-rows", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "best score:" in out
        assert "crosspoints:" in out

    def test_align_writes_artifacts(self, fasta_pair, tmp_path, capsys):
        p0, p1, s0, s1 = fasta_pair
        bin_path = tmp_path / "aln.bin"
        svg_path = tmp_path / "aln.svg"
        rc = main(["align", p0, p1, "--block-rows", "32",
                   "--binary-out", str(bin_path), "--svg-out", str(svg_path)])
        assert rc == 0
        blob = bin_path.read_bytes()
        binary = BinaryAlignment.decode(blob)
        rebuilt = binary.reconstruct()
        assert rebuilt.end[0] <= len(s0)
        assert svg_path.read_text().startswith("<svg")

    def test_align_custom_scoring(self, fasta_pair, capsys):
        p0, p1, _, _ = fasta_pair
        rc = main(["align", p0, p1, "--block-rows", "32",
                   "--match", "2", "--mismatch", "-1",
                   "--gap-first", "3", "--gap-ext", "1"])
        assert rc == 0
        assert "best score:" in capsys.readouterr().out

    def test_align_paper_grids(self, fasta_pair, capsys):
        p0, p1, _, _ = fasta_pair
        rc = main(["align", p0, p1, "--paper-grids"])
        assert rc == 0

    def test_align_no_hit(self, tmp_path, capsys):
        a = tmp_path / "a.fasta"
        b = tmp_path / "b.fasta"
        a.write_text(">a\n" + "A" * 300 + "\n")
        b.write_text(">b\n" + "T" * 300 + "\n")
        rc = main(["align", str(a), str(b), "--block-rows", "32"])
        assert rc == 0
        assert "no positive-score alignment" in capsys.readouterr().out


class TestViewAndTools:
    def test_view_round_trip(self, fasta_pair, tmp_path, capsys):
        p0, p1, _, _ = fasta_pair
        bin_path = tmp_path / "aln.bin"
        main(["align", p0, p1, "--block-rows", "32",
              "--binary-out", str(bin_path)])
        capsys.readouterr()
        rc = main(["view", str(bin_path), p0, p1, "--width", "40"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Alignment of" in out
        assert "chrA" in out

    def test_catalog_lists_entries(self, capsys):
        rc = main(["catalog", "--scale", "4096"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "32799Kx46944K" in out and "near-identical" in out

    def test_synth_writes_fasta(self, tmp_path, capsys):
        o0 = tmp_path / "s0.fa"
        o1 = tmp_path / "s1.fa"
        rc = main(["synth", "162Kx172K", str(o0), str(o1),
                   "--scale", "8192", "--seed", "3"])
        assert rc == 0
        assert o0.read_text().startswith(">")
        assert "wrote" in capsys.readouterr().out

    def test_synth_unknown_key(self, tmp_path):
        from repro.errors import SequenceError
        with pytest.raises(SequenceError):
            main(["synth", "bogus", str(tmp_path / "a"), str(tmp_path / "b")])

    def test_missing_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_scan(self, tmp_path, capsys):
        rng = np.random.default_rng(4)
        from repro.sequences import mutate, random_dna, MutationProfile
        query = random_dna(80, rng, "query")
        subjects = [random_dna(90, rng, f"s{k}") for k in range(6)]
        subjects[3] = mutate(query, MutationProfile(substitution=0.05,
                                                    insertion=0, deletion=0),
                             rng, "hit")
        write_fasta(tmp_path / "q.fa", query)
        write_fasta(tmp_path / "db.fa", *subjects)
        rc = main(["scan", str(tmp_path / "q.fa"), str(tmp_path / "db.fa"),
                   "--top", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.splitlines()[1].split()[-1] == "hit"

    def test_pack(self, fasta_pair, tmp_path, capsys):
        p0, _, s0, _ = fasta_pair
        out = tmp_path / "a.seq"
        rc = main(["pack", p0, str(out)])
        assert rc == 0
        from repro.sequences import open_packed
        assert len(open_packed(out)) == len(s0)
