"""CLI end-to-end tests (the `cudalign` entry point)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main
from repro.sequences import homologous_pair, write_fasta
from repro.storage import read_binary_alignment


@pytest.fixture
def fasta_pair(tmp_path):
    rng = np.random.default_rng(11)
    s0, s1 = homologous_pair(700, rng, names=("chrA", "chrB"))
    p0 = tmp_path / "a.fasta"
    p1 = tmp_path / "b.fasta"
    write_fasta(p0, s0)
    write_fasta(p1, s1)
    return str(p0), str(p1), s0, s1


class TestAlign:
    def test_align_reports_score(self, fasta_pair, capsys):
        p0, p1, _, _ = fasta_pair
        rc = main(["align", p0, p1, "--block-rows", "32", "--sra-rows", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "best score:" in out
        assert "crosspoints:" in out

    def test_align_writes_artifacts(self, fasta_pair, tmp_path, capsys):
        p0, p1, s0, s1 = fasta_pair
        bin_path = tmp_path / "aln.bin"
        svg_path = tmp_path / "aln.svg"
        rc = main(["align", p0, p1, "--block-rows", "32",
                   "--binary-out", str(bin_path), "--svg-out", str(svg_path)])
        assert rc == 0
        binary = read_binary_alignment(bin_path)
        rebuilt = binary.reconstruct()
        assert rebuilt.end[0] <= len(s0)
        assert svg_path.read_text().startswith("<svg")

    def test_align_custom_scoring(self, fasta_pair, capsys):
        p0, p1, _, _ = fasta_pair
        rc = main(["align", p0, p1, "--block-rows", "32",
                   "--match", "2", "--mismatch", "-1",
                   "--gap-first", "3", "--gap-ext", "1"])
        assert rc == 0
        assert "best score:" in capsys.readouterr().out

    def test_align_paper_grids(self, fasta_pair, capsys):
        p0, p1, _, _ = fasta_pair
        rc = main(["align", p0, p1, "--paper-grids"])
        assert rc == 0

    def test_align_trace_metrics_progress_together(self, fasta_pair,
                                                   tmp_path, capsys):
        p0, p1, _, _ = fasta_pair
        # Trace path in a not-yet-existing directory: JsonLinesSink must
        # create the parents itself.
        trace = tmp_path / "deep" / "nested" / "trace.jsonl"
        rc = main(["align", p0, p1, "--block-rows", "32",
                   "--trace", str(trace), "--metrics", "--progress"])
        assert rc == 0
        captured = capsys.readouterr()
        assert "best score:" in captured.out
        assert "stage1" in captured.err        # progress lines
        assert "metrics:" in captured.out or "stage1" in captured.out
        lines = [json.loads(line)
                 for line in trace.read_text().splitlines()]
        assert any(rec.get("name") == "pipeline" for rec in lines)

    def test_align_checkpoint_every_nested_workdir(self, fasta_pair,
                                                   tmp_path, capsys):
        """--checkpoint-every on a tiny input, with a workdir whose
        parents do not exist yet (regression: nested workdir creation)."""
        p0, p1, _, _ = fasta_pair
        workdir = tmp_path / "runs" / "2026" / "aug" / "job"
        rc = main(["align", p0, p1, "--block-rows", "32",
                   "--checkpoint-every", "64", "--workdir", str(workdir)])
        assert rc == 0
        assert "best score:" in capsys.readouterr().out
        assert (workdir / "manifest.json").exists()

    def test_align_workers_zero_clean_error(self, fasta_pair, capsys):
        p0, p1, _, _ = fasta_pair
        rc = main(["align", p0, p1, "--workers", "0"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "error:" in err and "workers must be positive" in err

    def test_batch_workers_zero_clean_error(self, tmp_path, capsys):
        spec_file = tmp_path / "specs.json"
        spec_file.write_text('[{"catalog": "162Kx172K"}]')
        rc = main(["batch", str(spec_file), "--root", str(tmp_path / "svc"),
                   "--workers", "0"])
        assert rc == 2
        assert "workers must be positive" in capsys.readouterr().err

    def test_batch_without_specs_or_resume(self, tmp_path, capsys):
        rc = main(["batch", "--root", str(tmp_path / "svc")])
        assert rc == 2
        assert "spec file" in capsys.readouterr().err

    def test_jobs_without_journal(self, tmp_path, capsys):
        rc = main(["jobs", "--root", str(tmp_path / "empty")])
        assert rc == 1
        assert "no journal" in capsys.readouterr().err

    def test_align_no_hit(self, tmp_path, capsys):
        a = tmp_path / "a.fasta"
        b = tmp_path / "b.fasta"
        a.write_text(">a\n" + "A" * 300 + "\n")
        b.write_text(">b\n" + "T" * 300 + "\n")
        rc = main(["align", str(a), str(b), "--block-rows", "32"])
        assert rc == 0
        assert "no positive-score alignment" in capsys.readouterr().out


class TestViewAndTools:
    def test_view_round_trip(self, fasta_pair, tmp_path, capsys):
        p0, p1, _, _ = fasta_pair
        bin_path = tmp_path / "aln.bin"
        main(["align", p0, p1, "--block-rows", "32",
              "--binary-out", str(bin_path)])
        capsys.readouterr()
        rc = main(["view", str(bin_path), p0, p1, "--width", "40"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Alignment of" in out
        assert "chrA" in out

    def test_catalog_lists_entries(self, capsys):
        rc = main(["catalog", "--scale", "4096"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "32799Kx46944K" in out and "near-identical" in out

    def test_synth_writes_fasta(self, tmp_path, capsys):
        o0 = tmp_path / "s0.fa"
        o1 = tmp_path / "s1.fa"
        rc = main(["synth", "162Kx172K", str(o0), str(o1),
                   "--scale", "8192", "--seed", "3"])
        assert rc == 0
        assert o0.read_text().startswith(">")
        assert "wrote" in capsys.readouterr().out

    def test_synth_unknown_key(self, tmp_path):
        from repro.errors import SequenceError
        with pytest.raises(SequenceError):
            main(["synth", "bogus", str(tmp_path / "a"), str(tmp_path / "b")])

    def test_missing_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_scan(self, tmp_path, capsys):
        rng = np.random.default_rng(4)
        from repro.sequences import mutate, random_dna, MutationProfile
        query = random_dna(80, rng, "query")
        subjects = [random_dna(90, rng, f"s{k}") for k in range(6)]
        subjects[3] = mutate(query, MutationProfile(substitution=0.05,
                                                    insertion=0, deletion=0),
                             rng, "hit")
        write_fasta(tmp_path / "q.fa", query)
        write_fasta(tmp_path / "db.fa", *subjects)
        rc = main(["scan", str(tmp_path / "q.fa"), str(tmp_path / "db.fa"),
                   "--top", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.splitlines()[1].split()[-1] == "hit"

    def test_pack(self, fasta_pair, tmp_path, capsys):
        p0, _, s0, _ = fasta_pair
        out = tmp_path / "a.seq"
        rc = main(["pack", p0, str(out)])
        assert rc == 0
        from repro.sequences import open_packed
        assert len(open_packed(out)) == len(s0)

    def test_view_corrupt_binary_clean_error(self, fasta_pair, tmp_path,
                                             capsys):
        from repro.integrity import corrupt_file

        p0, p1, _, _ = fasta_pair
        bin_path = tmp_path / "aln.bin"
        main(["align", p0, p1, "--block-rows", "32",
              "--binary-out", str(bin_path)])
        capsys.readouterr()
        corrupt_file(bin_path, "bitflip", seed=5)
        rc = main(["view", str(bin_path), p0, p1])
        assert rc == 1
        assert "error:" in capsys.readouterr().err


class TestFsck:
    @pytest.fixture
    def workdir(self, fasta_pair, tmp_path, capsys):
        p0, p1, _, _ = fasta_pair
        wd = tmp_path / "wd"
        rc = main(["align", p0, p1, "--block-rows", "32", "--sra-rows", "4",
                   "--checkpoint-every", "64", "--workdir", str(wd)])
        assert rc == 0
        capsys.readouterr()
        return wd

    def test_fsck_clean_tree_exits_zero(self, workdir, capsys):
        rc = main(["fsck", str(workdir)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "0 problem(s)" in out

    def test_fsck_detects_then_repairs(self, workdir, capsys):
        from repro.integrity import corrupt_file

        lines = sorted((workdir / "sra" / "stage1_rows").glob("*.bin"))
        assert lines
        corrupt_file(lines[0], "bitflip", seed=1)
        rc = main(["fsck", str(workdir)])
        assert rc == 1
        assert "bad-frame" in capsys.readouterr().out

        rc = main(["fsck", str(workdir), "--repair"])
        assert rc == 0
        assert "repaired" in capsys.readouterr().out
        # The damaged line was preserved, not destroyed.
        assert list((workdir / "sra" / "stage1_rows" /
                     "quarantine").iterdir())

        rc = main(["fsck", str(workdir), "--json"])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["clean"] is True and report["findings"] == []
