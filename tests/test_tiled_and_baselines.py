"""Tiled wavefront engine and the baselines built on it."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.align import reference
from repro.align.rowscan import RowSweeper
from repro.align.scoring import PAPER_SCHEME
from repro.align.tiled import TileEdges, tile_sweep, tiled_local_sweep, zero_edges
from repro.baselines import (
    TABLE_I,
    ZAlignCluster,
    format_table_i,
    full_matrix_align,
    quadratic_memory_bytes,
)
from repro.sequences.sequence import Sequence

from tests.conftest import SCHEMES, make_pair


class TestTileSweep:
    def test_single_tile_equals_monolithic(self, rng, scheme):
        s0, s1 = make_pair(rng, 40, 50)
        tile = tile_sweep(s0.codes, s1.codes, scheme,
                          zero_edges(40, 50), track_best=True)
        mono = RowSweeper(s0.codes, s1.codes, scheme, local=True,
                          track_best=True).run()
        np.testing.assert_array_equal(tile.bottom_H, mono.H)
        np.testing.assert_array_equal(tile.bottom_F, mono.F)
        assert tile.best == mono.best

    def test_right_edge_matches_reference_columns(self, rng, scheme):
        s0, s1 = make_pair(rng, 30, 20)
        mats = reference.sw_matrices(s0, s1, scheme)
        tile = tile_sweep(s0.codes, s1.codes, scheme, zero_edges(30, 20))
        np.testing.assert_array_equal(tile.right_H, mats.H[1:, 20])
        np.testing.assert_array_equal(tile.right_E, mats.E[1:, 20])

    def test_edge_size_validation(self, rng, scheme):
        s0, s1 = make_pair(rng, 10, 10)
        with pytest.raises(ConfigError):
            tile_sweep(s0.codes, s1.codes, scheme, zero_edges(9, 10))

    def test_empty_tile_rejected(self, scheme):
        with pytest.raises(ConfigError):
            tile_sweep(np.empty(0, np.uint8), np.zeros(3, np.uint8), scheme,
                       zero_edges(1, 3))


class TestTileBoundaryAlgebra:
    """tile_sweep with *arbitrary* boundary values must reproduce the
    plain per-cell recurrences seeded with the same boundary — the
    independent check of the boundary-folded E scan (the virtual
    ``E_in + G_open`` source)."""

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000), h=st.integers(1, 12),
           w=st.integers(1, 12))
    def test_random_boundaries_match_per_cell(self, seed, h, w):
        rng = np.random.default_rng(seed)
        scheme = PAPER_SCHEME
        codes0 = rng.integers(0, 4, h, dtype=np.uint8)
        codes1 = rng.integers(0, 4, w, dtype=np.uint8)
        edges = TileEdges(
            top_H=rng.integers(-20, 40, w + 1).astype(np.int32),
            top_E=rng.integers(-40, 10, w + 1).astype(np.int32),
            top_F=rng.integers(-40, 10, w + 1).astype(np.int32),
            left_H=rng.integers(-20, 40, h).astype(np.int32),
            left_E=rng.integers(-40, 10, h).astype(np.int32),
        )
        tile = tile_sweep(codes0, codes1, scheme, edges, local=True)

        # Per-cell oracle with the same seeded boundary.
        H = np.zeros((h + 1, w + 1), dtype=np.int64)
        E = np.zeros((h + 1, w + 1), dtype=np.int64)
        F = np.zeros((h + 1, w + 1), dtype=np.int64)
        H[0], E[0], F[0] = edges.top_H, edges.top_E, edges.top_F
        for i in range(1, h + 1):
            H[i, 0] = edges.left_H[i - 1]
            E[i, 0] = edges.left_E[i - 1]
            F[i, 0] = -10**9
            for j in range(1, w + 1):
                E[i, j] = max(E[i, j - 1] - scheme.gap_ext,
                              H[i, j - 1] - scheme.gap_first)
                F[i, j] = max(F[i - 1, j] - scheme.gap_ext,
                              H[i - 1, j] - scheme.gap_first)
                sub = scheme.match if codes0[i - 1] == codes1[j - 1] \
                    else scheme.mismatch
                H[i, j] = max(0, E[i, j], F[i, j], H[i - 1, j - 1] + sub)
        np.testing.assert_array_equal(tile.bottom_H[1:], H[h, 1:])
        np.testing.assert_array_equal(tile.right_H, H[1:, w])
        np.testing.assert_array_equal(tile.right_E, E[1:, w])


class TestTiledDecomposition:
    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("band,strip", [(7, 11), (16, 16), (100, 3), (1, 1)])
    def test_decomposition_is_exact(self, rng, scheme, band, strip):
        s0, s1 = make_pair(rng, 53, 47)
        mono = RowSweeper(s0.codes, s1.codes, scheme, local=True,
                          track_best=True).run()
        tiled = tiled_local_sweep(s0.codes, s1.codes, scheme,
                                  band_rows=band, strip_cols=strip)
        assert tiled.best == mono.best
        assert tiled.cells == 53 * 47

    def test_best_position_scores_best(self, rng, scheme):
        s0, s1 = make_pair(rng, 60, 60)
        mats = reference.sw_matrices(s0, s1, scheme)
        tiled = tiled_local_sweep(s0.codes, s1.codes, scheme,
                                  band_rows=13, strip_cols=17)
        i, j = tiled.best_pos
        assert mats.H[i, j] == tiled.best

    @settings(max_examples=30, deadline=None)
    @given(t0=st.text(alphabet="ACGT", min_size=1, max_size=40),
           t1=st.text(alphabet="ACGT", min_size=1, max_size=40),
           band=st.integers(1, 12), strip=st.integers(1, 12))
    def test_property_any_tiling_is_exact(self, t0, t1, band, strip):
        s0 = Sequence.from_text(t0)
        s1 = Sequence.from_text(t1)
        mono = RowSweeper(s0.codes, s1.codes, PAPER_SCHEME, local=True,
                          track_best=True).run()
        tiled = tiled_local_sweep(s0.codes, s1.codes, PAPER_SCHEME,
                                  band_rows=band, strip_cols=strip)
        assert tiled.best == mono.best

    def test_bus_accounting(self, rng, scheme):
        s0, s1 = make_pair(rng, 64, 64)
        tiled = tiled_local_sweep(s0.codes, s1.codes, scheme,
                                  band_rows=16, strip_cols=16)
        assert tiled.tiles == 16
        assert tiled.wavefront_steps == 4 + 4 - 1
        assert tiled.horizontal_bus_bytes == 16 * 8 * 17
        assert tiled.vertical_bus_bytes == 16 * 8 * 16

    def test_invalid_tiling(self, rng, scheme):
        s0, s1 = make_pair(rng, 10, 10)
        with pytest.raises(ConfigError):
            tiled_local_sweep(s0.codes, s1.codes, scheme,
                              band_rows=0, strip_cols=4)


class TestZAlign:
    def test_score_matches_reference(self, rng, scheme):
        s0, s1 = make_pair(rng, 90, 110)
        cluster = ZAlignCluster(cores=8, band_rows=16)
        score, stats = cluster.align_score(s0, s1, scheme)
        assert score == reference.sw_score(s0, s1, scheme)
        assert stats.tiles >= 8

    def test_model_reproduces_table6_one_core(self):
        # Z-align, 1 core: 3M in 294,000 s; 1M in 32,094 s (Table VI).
        one = ZAlignCluster(cores=1)
        got_3m = one.modeled_seconds(3_147_090, 3_282_708)
        assert got_3m == pytest.approx(294_000, rel=0.10)
        got_1m = one.modeled_seconds(1_044_459, 1_072_950)
        assert got_1m == pytest.approx(32_094, rel=0.15)

    def test_model_reproduces_table6_64_cores(self):
        cluster = ZAlignCluster(cores=64)
        got_3m = cluster.modeled_seconds(3_147_090, 3_282_708)
        assert got_3m == pytest.approx(8_765, rel=0.20)
        got_23m = cluster.modeled_seconds(23_011_544, 24_543_557)
        assert got_23m == pytest.approx(400_863, rel=0.20)

    def test_speedup_shape_vs_cudalign(self):
        # CUDAlign's modeled GPU beats 64 Z-align cores by ~15-20x on
        # megabase inputs (Table VI's right column).
        from repro.gpusim import GTX_285, KernelGrid, sweep_cost
        cluster = ZAlignCluster(cores=64)
        m, n = 23_011_544, 24_543_557
        z = cluster.modeled_seconds(m, n)
        c = sweep_cost(m, n, KernelGrid(240, 64, 4), GTX_285).seconds
        assert 10 < z / c < 25

    def test_validation(self):
        with pytest.raises(ConfigError):
            ZAlignCluster(cores=0)
        with pytest.raises(ConfigError):
            ZAlignCluster(parallel_efficiency=0)
        with pytest.raises(ConfigError):
            ZAlignCluster().modeled_seconds(0, 5)


class TestFullMatrixBaseline:
    def test_align_small(self, rng, scheme):
        s0, s1 = make_pair(rng, 50, 60)
        result = full_matrix_align(s0, s1, scheme)
        assert result.score == reference.sw_score(s0, s1, scheme)
        assert result.memory_bytes == quadratic_memory_bytes(50, 60)

    def test_memory_wall(self):
        # The paper's motivating number: ~30 MBP x 30 MBP needs petabytes.
        need = quadratic_memory_bytes(30_000_000, 30_000_000)
        assert need > 10**16  # > 10 PB with H/E/F resident

    def test_refuses_oversized(self, rng, scheme):
        s0, s1 = make_pair(rng, 100, 100)
        with pytest.raises(MemoryError, match="linear-space"):
            full_matrix_align(s0, s1, scheme, memory_limit_bytes=10)


class TestRelatedWork:
    def test_table_has_eight_rows(self):
        assert len(TABLE_I) == 8
        only_align = [r.name for r in TABLE_I if r.provides_alignment]
        assert only_align == ["DASW", "CUDA-SSCA#1"]

    def test_cudalign1_row(self):
        row = next(r for r in TABLE_I if r.name == "CUDAlign 1.0")
        assert row.max_query == 32_799_110 and row.gcups == 20.3

    def test_format(self):
        text = format_table_i()
        assert "CUDASW++ 2.0" in text and "GTX 295" in text
