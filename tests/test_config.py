"""PipelineConfig validation and helpers."""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import ConfigError, ScoringError
from repro.align.scoring import PAPER_SCHEME, ScoringScheme
from repro.core.config import (
    PipelineConfig,
    small_config,
    sra_bytes_for_rows,
)
from repro.gpusim import GTX_285, KernelGrid


class TestPipelineConfig:
    def test_paper_defaults(self):
        config = PipelineConfig()
        assert config.scheme == PAPER_SCHEME
        assert config.grid1.blocks == 240 and config.grid1.threads == 64
        assert config.grid2.blocks == 60 and config.grid2.threads == 128
        assert config.grid1.block_rows == 256  # alpha * T = 4 * 64
        assert config.sra_bytes == 50 * 10**9
        assert config.max_partition_size == 16
        assert config.device is GTX_285

    def test_validation(self):
        with pytest.raises(ConfigError):
            PipelineConfig(sra_bytes=-1)
        with pytest.raises(ConfigError):
            PipelineConfig(max_partition_size=0)
        with pytest.raises(ConfigError):
            PipelineConfig(workers=0)
        with pytest.raises(ConfigError):
            PipelineConfig(stage2_strip=0)

    def test_with_sra(self):
        config = PipelineConfig().with_sra(10**9)
        assert config.sra_bytes == 10**9
        assert config.grid1 == PipelineConfig().grid1

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            PipelineConfig().sra_bytes = 1


class TestSmallConfig:
    def test_block_rows_respected(self):
        config = small_config(block_rows=64, n=1000, sra_rows=3)
        assert config.grid1.block_rows == 64
        assert config.sra_bytes == 3 * 8 * 1001

    def test_invalid_block_rows(self):
        with pytest.raises(ConfigError):
            small_config(block_rows=3)
        with pytest.raises(ConfigError):
            small_config(block_rows=30)

    def test_overrides_pass_through(self):
        config = small_config(block_rows=32, workers=5,
                              scheme=ScoringScheme(2, -1, 4, 2))
        assert config.workers == 5
        assert config.scheme.match == 2


class TestSraBytesForRows:
    def test_exact_capacity(self):
        assert sra_bytes_for_rows(100, 4) == 4 * 8 * 101

    def test_validation(self):
        with pytest.raises(ConfigError):
            sra_bytes_for_rows(0, 1)
        with pytest.raises(ConfigError):
            sra_bytes_for_rows(10, -1)


class TestScoringValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ScoringError):
            ScoringScheme(match=0)
        with pytest.raises(ScoringError):
            ScoringScheme(mismatch=1)
        with pytest.raises(ScoringError):
            ScoringScheme(gap_ext=0)
        with pytest.raises(ScoringError):
            ScoringScheme(gap_first=1, gap_ext=2)

    def test_gap_cost(self):
        assert PAPER_SCHEME.gap_cost(1) == 5
        assert PAPER_SCHEME.gap_cost(4) == 5 + 3 * 2
        with pytest.raises(ScoringError):
            PAPER_SCHEME.gap_cost(0)

    def test_gap_open(self):
        assert PAPER_SCHEME.gap_open == 3


class TestKernelGridHelpers:
    def test_shrink_to_keeps_threads(self):
        grid = KernelGrid(60, 128, 4)
        small = grid.shrink_to(1000, GTX_285)
        assert small.threads == 128 and small.alpha == 4
        assert small.blocks < 60
        assert small.minimum_width <= 1024  # closest satisfiable
