"""RowSweeper vs the per-cell reference implementation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import TYPE_GAP_S0, TYPE_GAP_S1, TYPE_MATCH
from repro.errors import ConfigError
from repro.align import reference
from repro.align.rowscan import RowSweeper
from repro.align.scoring import PAPER_SCHEME, ScoringScheme

from tests.conftest import SCHEMES, make_pair

dna = st.text(alphabet="ACGT", min_size=1, max_size=48)


def run_sweep(s0, s1, scheme, **kw):
    sw = RowSweeper(s0.codes, s1.codes, scheme, **kw)
    sw.run()
    return sw


class TestAgainstReference:
    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("local", [True, False])
    def test_final_rows_match(self, rng, scheme, local):
        s0, s1 = make_pair(rng, 37, 53)
        ref = (reference.sw_matrices if local else reference.global_matrices)(
            s0, s1, scheme)
        sw = run_sweep(s0, s1, scheme, local=local)
        np.testing.assert_array_equal(sw.H, ref.H[-1])
        np.testing.assert_array_equal(sw.E, ref.E[-1])
        np.testing.assert_array_equal(sw.F, ref.F[-1])

    @pytest.mark.parametrize("start_gap", [TYPE_GAP_S0, TYPE_GAP_S1])
    def test_start_gap_boundaries(self, rng, scheme, start_gap):
        s0, s1 = make_pair(rng, 20, 31)
        ref = reference.global_matrices(s0, s1, scheme, start_gap=start_gap)
        sw = run_sweep(s0, s1, scheme, start_gap=start_gap)
        np.testing.assert_array_equal(sw.H, ref.H[-1])
        np.testing.assert_array_equal(sw.E, ref.E[-1])
        np.testing.assert_array_equal(sw.F, ref.F[-1])

    def test_best_tracking_matches_reference(self, rng, scheme):
        s0, s1 = make_pair(rng, 40, 40)
        ref = reference.sw_matrices(s0, s1, scheme)
        best, pos = reference.best_cell(ref.H)
        sw = run_sweep(s0, s1, scheme, local=True, track_best=True)
        assert sw.best == best
        # Positions may differ among ties; the score at the position must match.
        i, j = sw.best_pos
        assert ref.H[i, j] == best

    @settings(max_examples=60, deadline=None)
    @given(t0=dna, t1=dna, local=st.booleans())
    def test_property_rows_match(self, t0, t1, local):
        from repro.sequences.sequence import Sequence
        s0 = Sequence.from_text(t0)
        s1 = Sequence.from_text(t1)
        ref = (reference.sw_matrices if local else reference.global_matrices)(
            s0, s1, PAPER_SCHEME)
        sw = run_sweep(s0, s1, PAPER_SCHEME, local=local)
        np.testing.assert_array_equal(sw.H, ref.H[-1])

    @settings(max_examples=25, deadline=None)
    @given(t0=dna, t1=dna,
           params=st.tuples(st.integers(1, 4), st.integers(-4, 0),
                            st.integers(1, 8), st.integers(1, 8)))
    def test_property_arbitrary_schemes(self, t0, t1, params):
        from repro.sequences.sequence import Sequence
        match, mismatch, a, b = params
        scheme = ScoringScheme(match=match, mismatch=mismatch,
                               gap_first=max(a, b), gap_ext=min(a, b))
        s0 = Sequence.from_text(t0)
        s1 = Sequence.from_text(t1)
        ref = reference.sw_matrices(s0, s1, scheme)
        sw = run_sweep(s0, s1, scheme, local=True, track_best=True)
        assert sw.best == reference.best_cell(ref.H)[0]


class TestIncrementalFeatures:
    def test_advance_in_strips_equals_one_shot(self, rng, scheme):
        s0, s1 = make_pair(rng, 50, 41)
        one = run_sweep(s0, s1, scheme, local=True)
        strip = RowSweeper(s0.codes, s1.codes, scheme, local=True)
        while not strip.done:
            strip.advance(7)
        np.testing.assert_array_equal(one.H, strip.H)
        assert strip.cells == 50 * 41

    def test_advance_past_end_is_noop(self, rng, scheme):
        s0, s1 = make_pair(rng, 5, 5)
        sw = run_sweep(s0, s1, scheme, local=True)
        assert sw.advance(10) == 0

    def test_saved_rows_match_reference(self, rng, scheme):
        s0, s1 = make_pair(rng, 33, 29)
        ref = reference.sw_matrices(s0, s1, scheme)
        sw = run_sweep(s0, s1, scheme, local=True, save_rows=[8, 16, 33])
        assert set(sw.saved) == {8, 16, 33}
        for r, (h, f) in sw.saved.items():
            np.testing.assert_array_equal(h, ref.H[r])
            np.testing.assert_array_equal(f, ref.F[r])

    def test_taps_record_columns(self, rng, scheme):
        s0, s1 = make_pair(rng, 21, 27)
        ref = reference.global_matrices(s0, s1, scheme)
        taps = np.array([0, 5, 27])
        sw = run_sweep(s0, s1, scheme, tap_columns=taps)
        for k, j in enumerate(taps):
            np.testing.assert_array_equal(sw.tap_H[:, k], ref.H[:, j])
            np.testing.assert_array_equal(sw.tap_E[:, k], ref.E[:, j])

    def test_watch_value_finds_cell(self, rng, scheme):
        s0, s1 = make_pair(rng, 30, 30)
        ref = reference.sw_matrices(s0, s1, scheme)
        best, (bi, bj) = reference.best_cell(ref.H)
        sw = run_sweep(s0, s1, scheme, local=True, watch_value=best)
        assert sw.watch_hit is not None
        i, j = sw.watch_hit
        assert ref.H[i, j] == best

    def test_validation_errors(self, rng, scheme):
        s0, s1 = make_pair(rng, 10, 10)
        with pytest.raises(ConfigError):
            RowSweeper(s0.codes, s1.codes, scheme, local=True,
                       start_gap=TYPE_GAP_S0)
        with pytest.raises(ConfigError):
            RowSweeper(s0.codes, s1.codes, scheme, save_rows=[0])
        with pytest.raises(ConfigError):
            RowSweeper(s0.codes, s1.codes, scheme, tap_columns=[99])
        with pytest.raises(ConfigError):
            RowSweeper(s0.codes, s1.codes, scheme, start_gap=7)

    def test_n_code_never_matches(self, scheme):
        from repro.sequences.sequence import Sequence
        s0 = Sequence.from_text("NNNN")
        s1 = Sequence.from_text("NNNN")
        sw = run_sweep(s0, s1, scheme, local=True, track_best=True)
        assert sw.best == 0
