"""Direct tests of the Myers-Miller midpoint finder (the Stage-4 core)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import TYPE_GAP_S0, TYPE_GAP_S1, TYPE_MATCH
from repro.errors import MatchingError
from repro.align import reference
from repro.align.myers_miller import MMConfig, MMStats, find_midpoint
from repro.align.scoring import PAPER_SCHEME
from repro.sequences.sequence import Sequence

from tests.conftest import SCHEMES, make_pair

dna = st.text(alphabet="ACGT", min_size=2, max_size=48)
gap_states = st.sampled_from([TYPE_MATCH, TYPE_GAP_S0, TYPE_GAP_S1])


def ref_goal(s0, s1, scheme, start, end):
    return reference.global_score(s0, s1, scheme, start_gap=start,
                                  end_gap=end)


def check_split(s0, s1, scheme, start, end, r, j, join, top_value):
    """The split must decompose the optimum additively.

    Empty-sided sub-rectangles (j == 0 or j == n) are pure gap runs whose
    value the reference cannot express; the other half then pins the total.
    """
    whole = ref_goal(s0, s1, scheme, start, end)
    if j > 0:
        assert top_value == ref_goal(s0[:r], s1[:j], scheme, start, join)
    if j < len(s1):
        assert whole - top_value == ref_goal(s0[r:], s1[j:], scheme,
                                             join, end)


class TestFindMidpoint:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_split_decomposes_optimum(self, rng, scheme):
        s0, s1 = make_pair(rng, 24, 30)
        goal = ref_goal(s0, s1, scheme, TYPE_MATCH, TYPE_MATCH)
        r, j, join, top_value = find_midpoint(
            s0.codes, s1.codes, scheme, goal=goal,
            config=MMConfig(orthogonal=False))
        assert r == 12
        check_split(s0, s1, scheme, TYPE_MATCH, TYPE_MATCH,
                    r, j, join, top_value)

    def test_orthogonal_equals_full_value(self, rng, scheme):
        s0, s1 = make_pair(rng, 30, 40)
        goal = ref_goal(s0, s1, scheme, TYPE_MATCH, TYPE_MATCH)
        r1, j1, join1, v1 = find_midpoint(
            s0.codes, s1.codes, scheme, goal=goal,
            config=MMConfig(orthogonal=False))
        r2, j2, join2, v2 = find_midpoint(
            s0.codes, s1.codes, scheme, goal=goal,
            config=MMConfig(orthogonal=True, strip=4))
        # Both must decompose the same optimum (possibly at different
        # tie-equivalent columns).
        check_split(s0, s1, scheme, TYPE_MATCH, TYPE_MATCH, r1, j1, join1, v1)
        check_split(s0, s1, scheme, TYPE_MATCH, TYPE_MATCH, r2, j2, join2, v2)

    @settings(max_examples=30, deadline=None)
    @given(t0=dna, t1=dna, start=gap_states, end=gap_states)
    def test_property_boundary_states(self, t0, t1, start, end):
        s0, s1 = Sequence.from_text(t0), Sequence.from_text(t1)
        goal = ref_goal(s0, s1, PAPER_SCHEME, start, end)
        r, j, join, top_value = find_midpoint(
            s0.codes, s1.codes, PAPER_SCHEME, start_gap=start, end_gap=end,
            goal=goal, config=MMConfig(orthogonal=True, strip=3))
        assert 0 <= j <= len(s1)
        assert join in (TYPE_MATCH, TYPE_GAP_S1)
        check_split(s0, s1, PAPER_SCHEME, start, end, r, j, join, top_value)

    def test_wrong_goal_raises(self, rng, scheme):
        s0, s1 = make_pair(rng, 20, 20)
        goal = ref_goal(s0, s1, scheme, TYPE_MATCH, TYPE_MATCH)
        with pytest.raises(MatchingError):
            find_midpoint(s0.codes, s1.codes, scheme, goal=goal + 3,
                          config=MMConfig(orthogonal=False))
        with pytest.raises(MatchingError):
            find_midpoint(s0.codes, s1.codes, scheme, goal=goal + 3,
                          config=MMConfig(orthogonal=True))

    def test_requires_two_rows(self, scheme):
        with pytest.raises(MatchingError):
            find_midpoint(np.zeros(1, np.uint8), np.zeros(5, np.uint8),
                          scheme)

    def test_stats_accumulate(self, rng, scheme):
        s0, s1 = make_pair(rng, 40, 40)
        stats = MMStats()
        goal = ref_goal(s0, s1, scheme, TYPE_MATCH, TYPE_MATCH)
        find_midpoint(s0.codes, s1.codes, scheme, goal=goal, stats=stats,
                      config=MMConfig(orthogonal=True, strip=8))
        assert stats.cells_forward == 20 * 40
        assert 0 < stats.cells_reverse <= 20 * 40
