"""Tests for the batched kernel (repro.align.batched) and the service
micro-batcher that feeds it.

The registry-wide conformance suite (tests/test_kernel_backends.py)
already holds the ``batched`` backend's K=1 facade to the bit-identity
contract; this module covers what only multi-lane execution can —
ragged buckets, frozen all-padding tails, mixed boundary regimes in one
batch, bucket planning — plus the rowscan allocation diet and the
service-level coalescing semantics.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.align.batched import (BatchedRowSweeper, plan_buckets,
                                 sweep_batched, sweep_lanes)
from repro.align.rowscan import RowSweeper
from repro.align.scoring import PAPER_SCHEME
from repro.constants import TYPE_GAP_S0, TYPE_GAP_S1
from repro.errors import ConfigError
from repro.sequences.synth import random_dna
from repro.service import AlignmentService, BatchConfig, JobSpec, JobState
from repro.telemetry.metrics import MetricsRegistry

from tests.conftest import SCHEMES, assert_sweeps_identical


def _codes(rng, m, n):
    return (random_dna(m, rng, f"r{m}").codes,
            random_dna(n, rng, f"c{n}").codes)


def _twin(codes0, codes1, scheme, **kwargs):
    """One (reference, lane) pair over identical inputs: the reference
    runs the serial kernel, the lane goes through the fused batch."""
    return (RowSweeper(codes0, codes1, scheme, **kwargs),
            BatchedRowSweeper(codes0, codes1, scheme, **kwargs))


# ------------------------------------------------------------ sweep_lanes
class TestSweepLanes:
    def test_ragged_bucket_bit_identical(self, rng, scheme):
        """Lanes of wildly different shapes — with best/watch/saves/taps
        options differing per lane — fuse into one batch and land on the
        serial kernel's exact observables."""
        shapes = [(37, 53), (64, 64), (5, 90), (81, 7), (1, 1)]
        refs, lanes = [], []
        for idx, (m, n) in enumerate(shapes):
            kwargs = {"local": True, "track_best": True}
            if idx % 2 == 0:
                kwargs["watch_value"] = scheme.match
            if idx in (1, 2):
                kwargs["save_rows"] = [1, m // 2 or 1, m]
            if idx == 3:
                kwargs["tap_columns"] = np.array([0, n // 2, n])
            ref, lane = _twin(*_codes(rng, m, n), scheme, **kwargs)
            refs.append(ref)
            lanes.append(lane)
        done = sweep_lanes(lanes)
        assert done == sum(m for m, _ in shapes)
        for ref, lane in zip(refs, lanes):
            ref.run()
            assert_sweeps_identical(ref, lane)

    def test_all_padding_tail_rows(self, rng, scheme):
        """A shallow lane finishes early and must freeze at its own
        final row while the deep lane keeps sweeping; chunked advances
        cross the freeze boundary mid-batch."""
        specs = [(4, 60), (64, 8), (17, 17)]
        refs, lanes = [], []
        for m, n in specs:
            ref, lane = _twin(*_codes(rng, m, n), scheme,
                              local=True, track_best=True)
            refs.append(ref)
            lanes.append(lane)
        while any(lane.i < lane.m for lane in lanes):
            sweep_lanes(lanes, 7)
        for ref, lane in zip(refs, lanes):
            ref.run()
            assert_sweeps_identical(ref, lane)

    def test_k1_degenerate(self, rng):
        for scheme in SCHEMES:
            ref, lane = _twin(*_codes(rng, 23, 31), scheme,
                              local=True, track_best=True)
            assert sweep_lanes([lane]) == 23
            ref.run()
            assert_sweeps_identical(ref, lane)

    def test_mixed_boundary_regimes(self, rng, scheme):
        """One batch may mix local and every global boundary variant —
        the regimes live entirely in each lane's packed state."""
        variants = [
            {"local": True, "track_best": True},
            {},
            {"start_gap": TYPE_GAP_S0},
            {"start_gap": TYPE_GAP_S1},
            {"start_gap": TYPE_GAP_S0, "forced": True},
            {"start_gap": TYPE_GAP_S1, "forced": True},
        ]
        refs, lanes = [], []
        for idx, kwargs in enumerate(variants):
            ref, lane = _twin(*_codes(rng, 20 + idx, 30 - idx), scheme,
                              **kwargs)
            refs.append(ref)
            lanes.append(lane)
        sweep_lanes(lanes)
        for ref, lane in zip(refs, lanes):
            ref.run()
            assert_sweeps_identical(ref, lane)

    def test_mixed_schemes_rejected(self, rng):
        lanes = [BatchedRowSweeper(*_codes(rng, 8, 8), SCHEMES[0], local=True),
                 BatchedRowSweeper(*_codes(rng, 8, 8), SCHEMES[1], local=True)]
        with pytest.raises(ConfigError, match="share one scoring scheme"):
            sweep_lanes(lanes)

    def test_degenerate_inputs(self, rng, scheme):
        assert sweep_lanes([]) == 0
        _, lane = _twin(*_codes(rng, 6, 6), scheme, local=True)
        lane.run()
        assert sweep_lanes([lane]) == 0          # nothing left to do
        with pytest.raises(ConfigError, match="non-negative"):
            sweep_lanes([lane], -1)

    def test_plain_rowsweeper_lanes_accepted(self, rng, scheme):
        """sweep_lanes advances any RowSweeper-state lane, not only the
        registered facade class."""
        codes0, codes1 = _codes(rng, 12, 18)
        ref = RowSweeper(codes0, codes1, scheme, local=True, track_best=True)
        lane = RowSweeper(codes0, codes1, scheme, local=True, track_best=True)
        sweep_lanes([lane])
        ref.run()
        assert_sweeps_identical(ref, lane)


# ----------------------------------------------------------- plan_buckets
class TestPlanBuckets:
    def test_schemes_never_share_a_bucket(self, rng):
        lanes = [BatchedRowSweeper(*_codes(rng, 16, 16), SCHEMES[i % 2],
                                   local=True) for i in range(6)]
        for bucket in plan_buckets(lanes):
            schemes = {lanes[k].scheme for k in bucket}
            assert len(schemes) == 1

    def test_max_lanes_cap(self, rng, scheme):
        lanes = [BatchedRowSweeper(*_codes(rng, 8, 8), scheme, local=True)
                 for _ in range(10)]
        buckets = plan_buckets(lanes, max_lanes=4)
        assert all(len(b) <= 4 for b in buckets)
        assert sorted(k for b in buckets for k in b) == list(range(10))

    def test_waste_bound_holds_per_bucket(self, rng, scheme):
        shapes = [(512, 512), (8, 8), (8, 8), (8, 8)]
        lanes = [BatchedRowSweeper(*_codes(rng, m, n), scheme, local=True)
                 for m, n in shapes]
        max_waste = 0.25
        buckets = plan_buckets(lanes, max_waste=max_waste)
        assert len(buckets) >= 2     # the huge lane cannot absorb the tiny
        for bucket in buckets:
            group = [lanes[k] for k in bucket]
            depth = max(lane.m for lane in group)
            width = max(lane.n for lane in group)
            cells = sum(lane.m * lane.n for lane in group)
            assert 1.0 - cells / (len(group) * depth * width) <= max_waste

    def test_finished_lanes_skipped(self, rng, scheme):
        lanes = [BatchedRowSweeper(*_codes(rng, 8, 8), scheme, local=True)
                 for _ in range(3)]
        lanes[1].run()
        buckets = plan_buckets(lanes)
        assert sorted(k for b in buckets for k in b) == [0, 2]

    def test_invalid_parameters(self, rng, scheme):
        lane = BatchedRowSweeper(*_codes(rng, 4, 4), scheme, local=True)
        with pytest.raises(ConfigError, match="max_lanes"):
            plan_buckets([lane], max_lanes=0)
        with pytest.raises(ConfigError, match="max_waste"):
            plan_buckets([lane], max_waste=1.0)

    def test_sweep_batched_stats_and_metrics(self, rng, scheme):
        metrics = MetricsRegistry()
        lanes = [BatchedRowSweeper(*_codes(rng, 16 + i, 24 - i), scheme,
                                   local=True, track_best=True)
                 for i in range(5)]
        stats = sweep_batched(lanes, metrics=metrics)
        assert stats["lanes"] == 5
        assert stats["buckets"] >= 1
        assert stats["cells"] == sum(lane.m * lane.n for lane in lanes)
        assert stats["padded_cells"] >= stats["cells"]
        assert 0.0 <= stats["padding_waste"] < 1.0
        assert all(lane.i == lane.m for lane in lanes)
        snapshot = metrics.snapshot()
        assert snapshot["kernel.batch.dispatches"] == stats["buckets"]
        assert snapshot["kernel.batch.lanes"] == 5


# -------------------------------------------------- rowscan allocation diet
class TestAllocationDiet:
    def test_shared_query_profile(self, rng, scheme):
        """Lanes over the same columns share one cached LUT object —
        the per-(scheme, query) profile is built once, not per sweeper."""
        codes0a, codes1 = _codes(rng, 16, 64)
        codes0b = random_dna(16, rng, "other").codes
        a = RowSweeper(codes0a, codes1, scheme, local=True)
        b = RowSweeper(codes0b, codes1, scheme, local=True)
        assert a._sub_lut is b._sub_lut

    def test_advance_allocates_no_row_temporaries(self, rng):
        """Regression guard for the `_advance` allocation diet: at
        n=65536 one H row is 256 KiB, so any reintroduced per-row
        temporary allocates at least that much per advance.  The dieted
        loop (preallocated scratch, ``out=`` everywhere) stays under a
        few KiB; 32 KiB is the tripwire."""
        n = 65536
        codes0 = random_dna(32, rng, "A").codes
        codes1 = random_dna(n, rng, "B").codes
        sweep = RowSweeper(codes0, codes1, PAPER_SCHEME,
                           local=True, track_best=True)
        sweep.advance(4)                      # warm the lazy paths
        tracemalloc.start()
        base = tracemalloc.get_traced_memory()[0]
        sweep.advance(8)
        peak = tracemalloc.get_traced_memory()[1]
        tracemalloc.stop()
        assert peak - base < 32 * 1024, (
            f"RowSweeper._advance allocated {peak - base} bytes for 8 rows "
            f"at n={n}; a per-row temporary would cost >= {4 * (n + 1)}")


# ------------------------------------------------------- service batching
class TestServiceBatching:
    @staticmethod
    def _small_specs(count):
        # 162Kx172K at scale=512 is ~316x336 (~106k cells), under the
        # default 2^18 qualification ceiling.
        return [JobSpec(job_id=f"j{i}", catalog="162Kx172K", scale=512,
                        seed=i, block_rows=64) for i in range(count)]

    def test_grouped_results_match_solo(self, tmp_path):
        solo = AlignmentService(tmp_path / "solo",
                                batching=BatchConfig(enabled=False))
        try:
            solo.submit_many(self._small_specs(3))
            solo.run()
        finally:
            solo.close()
        grouped = AlignmentService(tmp_path / "grouped")
        try:
            grouped.submit_many(self._small_specs(3))
            grouped.run()
            metrics = dict(grouped.telemetry.metrics.snapshot())
        finally:
            grouped.close()
        assert metrics["kernel.batch.dispatches"] == 1
        assert metrics["kernel.batch.jobs"] == 3
        assert metrics["kernel.batch.fused_lanes"] == 3
        assert "kernel.batch.dispatches" not in dict(
            solo.telemetry.metrics.snapshot())
        for i in range(3):
            a = solo.queue.get(f"j{i}")
            b = grouped.queue.get(f"j{i}")
            assert a.state == b.state == JobState.SUCCEEDED
            assert a.result["best_score"] == b.result["best_score"]
            assert a.result["alignment_length"] == \
                   b.result["alignment_length"]

    def test_large_jobs_fall_back(self, tmp_path):
        service = AlignmentService(
            tmp_path / "svc", batching=BatchConfig(max_cells=100))
        try:
            service.submit_many(self._small_specs(2))
            service.run()
            metrics = dict(service.telemetry.metrics.snapshot())
        finally:
            service.close()
        assert metrics["kernel.batch.fallback.large"] == 2
        assert "kernel.batch.dispatches" not in metrics

    def test_lone_small_job_falls_back(self, tmp_path):
        service = AlignmentService(tmp_path / "svc")
        try:
            service.submit_many(self._small_specs(1))
            service.run()
            metrics = dict(service.telemetry.metrics.snapshot())
        finally:
            service.close()
        assert metrics["kernel.batch.fallback.alone"] == 1
        assert service.queue.get("j0").state == JobState.SUCCEEDED

    def test_cancel_displaces_group_siblings(self, tmp_path):
        """Cancelling one member of a running group kills the shared
        process; siblings are requeued without a ledger charge and
        finish on their own (solo, since a resumed attempt no longer
        qualifies for grouping)."""
        service = AlignmentService(tmp_path / "svc")
        try:
            service.submit_many(self._small_specs(2))
            service.step()                      # dispatches the group
            assert service.queue.get("j0").state == JobState.RUNNING
            assert service.queue.get("j1").state == JobState.RUNNING
            assert service.cancel("j0") is True
            service.run()
            metrics = dict(service.telemetry.metrics.snapshot())
        finally:
            service.close()
        assert service.queue.get("j0").state == JobState.CANCELLED
        assert service.queue.get("j1").state == JobState.SUCCEEDED
        assert metrics["kernel.batch.displaced"] == 1
