"""Block-scheduled GPU simulation vs the monolithic kernel."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.align import reference
from repro.align.rowscan import RowSweeper
from repro.core.config import sra_bytes_for_rows
from repro.gpusim import GTX_285, KernelGrid, SweepGeometry
from repro.gpusim.blocksim import simulate_stage1

from tests.conftest import SCHEMES, make_pair

GRID = KernelGrid(blocks=4, threads=8, alpha=2)  # block rows of 16


class TestNumericalEquivalence:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_best_matches_monolithic(self, rng, scheme):
        s0, s1 = make_pair(rng, 100, 120)
        sim = simulate_stage1(s0, s1, scheme, GRID, GTX_285)
        mono = RowSweeper(s0.codes, s1.codes, scheme, local=True,
                          track_best=True).run()
        assert sim.best == mono.best
        assert sim.cells == 100 * 120

    def test_best_position_scores_best(self, rng, scheme):
        s0, s1 = make_pair(rng, 90, 100)
        sim = simulate_stage1(s0, s1, scheme, GRID, GTX_285)
        mats = reference.sw_matrices(s0, s1, scheme)
        i, j = sim.best_pos
        assert mats.H[i, j] == sim.best

    def test_special_rows_bit_identical(self, rng, scheme):
        s0, s1 = make_pair(rng, 128, 128)
        sra = sra_bytes_for_rows(len(s1), 4)
        sim = simulate_stage1(s0, s1, scheme, GRID, GTX_285, sra_bytes=sra)
        mono = RowSweeper(s0.codes, s1.codes, scheme, local=True,
                          save_rows=sorted(sim.special_rows)).run()
        assert sim.special_rows
        for r, (h, f) in sim.special_rows.items():
            np.testing.assert_array_equal(h, mono.saved[r][0])
            np.testing.assert_array_equal(f, mono.saved[r][1])

    def test_uneven_tail_blocks(self, rng, scheme):
        # m and n not multiples of the block dimensions.
        s0, s1 = make_pair(rng, 77, 103)
        sim = simulate_stage1(s0, s1, scheme, GRID, GTX_285)
        mono = RowSweeper(s0.codes, s1.codes, scheme, local=True,
                          track_best=True).run()
        assert sim.best == mono.best
        assert sim.cells == 77 * 103


class TestSchedule:
    def test_external_diagonal_count_matches_geometry(self, rng, scheme):
        s0, s1 = make_pair(rng, 100, 120)
        sim = simulate_stage1(s0, s1, scheme, GRID, GTX_285)
        geo = SweepGeometry(100, 120, GRID.shrink_to(120, GTX_285))
        assert sim.external_diagonals == geo.external_diagonals
        assert len(sim.occupancy) == sim.external_diagonals

    def test_cells_delegation_keeps_wavefront_full(self, rng, scheme):
        # Steady state: all B blocks busy; only fill/drain are partial.
        s0, s1 = make_pair(rng, 160, 128)
        sim = simulate_stage1(s0, s1, scheme, GRID, GTX_285)
        B = sim.grid_cols
        full = [o for o in sim.occupancy if o == B]
        assert len(full) == sim.external_diagonals - 2 * (B - 1)
        # Fill ramps 1, 2, ..., B-1 and drain mirrors it.
        assert sim.occupancy[:B - 1] == list(range(1, B))
        assert sim.occupancy[-(B - 1):] == list(range(B - 1, 0, -1))

    def test_phase_split(self, rng, scheme):
        s0, s1 = make_pair(rng, 64, 128)
        sim = simulate_stage1(s0, s1, scheme, GRID, GTX_285)
        assert sim.short_phase_cells + sim.long_phase_cells == sim.cells
        # Short phase = T cells per thread stripe: with 32-wide segments
        # and T=8, a quarter of each tile.
        assert sim.short_phase_cells == pytest.approx(sim.cells / 4, rel=0.1)

    def test_bus_traffic_positive_and_bounded(self, rng, scheme):
        s0, s1 = make_pair(rng, 100, 120)
        sim = simulate_stage1(s0, s1, scheme, GRID, GTX_285)
        # Horizontal bus: one (w+1) segment of 8 bytes per tile.
        assert sim.horizontal_bus_bytes >= 8 * 120
        assert sim.vertical_bus_bytes >= 8 * 100

    def test_minimum_size_requirement_enforced(self, scheme, rng):
        s0, s1 = make_pair(rng, 50, 4)
        big = KernelGrid(blocks=64, threads=64, alpha=2)
        with pytest.raises(ConfigError):
            simulate_stage1(s0, s1, scheme, big, GTX_285)


class TestBlockPruning:
    """Block pruning (CUDAlign 3.0's stage-1 optimization) must skip real
    work on similar sequences without ever changing the best score."""

    def near_identical(self, rng, size=512):
        from repro.sequences.synth import MutationProfile, homologous_pair
        return homologous_pair(
            size, rng, profile=MutationProfile(substitution=0.01,
                                               insertion=0.002,
                                               deletion=0.002))

    def test_score_unchanged_with_pruning(self, rng, scheme):
        s0, s1 = self.near_identical(rng)
        plain = simulate_stage1(s0, s1, scheme, GRID, GTX_285)
        pruned = simulate_stage1(s0, s1, scheme, GRID, GTX_285, prune=True)
        assert pruned.best == plain.best

    def test_similar_pair_prunes_substantially(self, rng):
        from repro.align.scoring import PAPER_SCHEME
        s0, s1 = self.near_identical(rng)
        sim = simulate_stage1(s0, s1, PAPER_SCHEME, GRID, GTX_285,
                              prune=True)
        # CUDAlign 3.0 reports ~50% pruned on chromosome-scale similar
        # pairs; the small-scale analogue must already skip a clear chunk.
        assert sim.pruned_fraction > 0.25
        assert sim.cells < 512 * 480 * 0.9

    def test_unrelated_pair_prunes_little(self, rng, scheme):
        s0, s1 = make_pair(rng, 256, 256, related=False)
        sim = simulate_stage1(s0, s1, scheme, GRID, GTX_285, prune=True)
        assert sim.best == simulate_stage1(s0, s1, scheme, GRID,
                                           GTX_285).best
        assert sim.pruned_fraction < 0.3

    def test_pruning_rejects_flushing(self, rng, scheme):
        s0, s1 = make_pair(rng, 64, 64)
        with pytest.raises(ConfigError, match="pruning"):
            simulate_stage1(s0, s1, scheme, GRID, GTX_285,
                            sra_bytes=10**6, prune=True)

    def test_disabled_by_default(self, rng, scheme):
        s0, s1 = make_pair(rng, 64, 64)
        sim = simulate_stage1(s0, s1, scheme, GRID, GTX_285)
        assert sim.pruned_tiles == 0
        assert sim.pruned_fraction == 0.0
