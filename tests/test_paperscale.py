"""Paper-scale analytic estimates vs the paper's own Tables VII/VIII."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.gpusim import GTX_285, PENTIUM_DUALCORE, KernelGrid
from repro.gpusim.paperscale import (
    CHROMOSOME_GEOMETRY,
    AlignmentGeometry,
    estimate,
)

GRID = KernelGrid(60, 128, 4)

#: SRA GB -> (stage2 s, stage3 s, stage4 s, Cells_2, |L_3|, W_max, B3)
PAPER = {
    10: (1721, 126, 8211, 3.83e13, 603, 56320, 60),
    20: (1015, 111, 2098, 1.95e13, 2338, 14336, 30),
    30: (851, 144, 974, 1.31e13, 5014, 6656, 26),
    40: (818, 187, 525, 1.00e13, 9283, 3684, 14),
    50: (805, 236, 376, 8.10e12, 12986, 2624, 10),
}


def run(gb):
    return estimate(CHROMOSOME_GEOMETRY, gb * 10**9, grid2=GRID, grid3=GRID,
                    device=GTX_285, host=PENTIUM_DUALCORE)


class TestAgainstPaper:
    @pytest.mark.parametrize("gb", sorted(PAPER))
    def test_stage2_seconds_within_5_percent(self, gb):
        want = PAPER[gb][0]
        assert run(gb).seconds2 == pytest.approx(want, rel=0.05)

    @pytest.mark.parametrize("gb", sorted(PAPER))
    def test_cells2_within_6_percent(self, gb):
        assert run(gb).cells2 == pytest.approx(PAPER[gb][3], rel=0.06)

    @pytest.mark.parametrize("gb", sorted(PAPER))
    def test_column_interval_tracks_wmax(self, gb):
        assert run(gb).column_interval == pytest.approx(PAPER[gb][5],
                                                        rel=0.20)

    def test_stage3_nonmonotone_reproduced(self):
        # Table VII's signature: Stage 3's runtime dips then *rises* as
        # the SRA grows (B3 collapse under the minimum size requirement).
        times = [run(gb).seconds3 for gb in sorted(PAPER)]
        assert min(times) == times[1]  # dip at 20 GB, like the paper
        assert times[-1] > times[1]
        assert times[-1] == pytest.approx(PAPER[50][1], rel=0.10)

    def test_stage4_decreasing_and_ordered(self):
        times = [run(gb).seconds4 for gb in sorted(PAPER)]
        assert all(b < a for a, b in zip(times, times[1:]))
        # Magnitudes within ~60% (the k4 factor is a one-point fit).
        for got, gb in zip(times, sorted(PAPER)):
            assert got == pytest.approx(PAPER[gb][2], rel=0.60)

    def test_b3_collapse(self):
        assert run(50).effective_b3 == 10
        assert run(10).effective_b3 == 60

    def test_crosspoint_counts_scale(self):
        # |L_3| grows ~5x per SRA doubling band (Table VIII: 603 -> 12986).
        low, high = run(10).crosspoints3, run(50).crosspoints3
        assert high > 10 * low
        assert high == pytest.approx(PAPER[50][4], rel=0.40)


class TestValidation:
    def test_geometry_validation(self):
        with pytest.raises(ConfigError):
            AlignmentGeometry(m=0, n=5, row_span=1, col_span=1)
        with pytest.raises(ConfigError):
            AlignmentGeometry(m=10, n=10, row_span=20, col_span=5)

    def test_positive_budget_required(self):
        with pytest.raises(ConfigError):
            estimate(CHROMOSOME_GEOMETRY, 0, grid2=GRID, grid3=GRID,
                     device=GTX_285, host=PENTIUM_DUALCORE)
