"""The wavefront executor's contract is bit-identity, not approximation.

Every test here compares the tile-grid sweep (``repro.parallel``) against
the monolithic serial kernel on the same inputs and asserts *exact*
equality of every observable — H/E/F rows, best cell, watch hit, saved
rows, final-column taps, checkpoints, and the full six-stage pipeline's
binary alignment.  Geometries are adversarial on purpose: one-column
strips, strips wider than the matrix, widths that don't divide n, and
forced/start-gap boundary sweeps whose column-0 algebra is the subtlest
part of the tiling.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time

import numpy as np
import pytest

from repro.constants import NEG_INF, TYPE_GAP_S0, TYPE_GAP_S1, TYPE_MATCH
from repro.errors import ConfigError
from repro.align.rowscan import RowSweeper
from repro.align.scoring import PAPER_SCHEME, ScoringScheme
from repro.core import CUDAlign, run_stage1, small_config
from repro.parallel import (MIN_PARALLEL_CELLS, ParallelRowSweeper,
                            WavefrontExecutor, boundary_column, make_sweeper,
                            plan_strip_cols)
from repro.service import AlignmentService, JobSpec, JobState
from repro.service.worker import core_budget
from repro.storage.sra import SpecialLineStore

from tests.conftest import SCHEMES, assert_sweeps_identical, make_pair

#: (local, start_gap, forced) — every boundary regime the stages use:
#: Stage 1 (local), Stage 2/3 goal sweeps (global, forced/unforced, both
#: incoming gap types).
REGIMES = [
    ("local", dict(local=True, start_gap=TYPE_MATCH, forced=False)),
    ("global", dict(local=False, start_gap=TYPE_MATCH, forced=False)),
    ("gap-s0", dict(local=False, start_gap=TYPE_GAP_S0, forced=False)),
    ("gap-s1", dict(local=False, start_gap=TYPE_GAP_S1, forced=False)),
    ("forced-s0", dict(local=False, start_gap=TYPE_GAP_S0, forced=True)),
    ("forced-s1", dict(local=False, start_gap=TYPE_GAP_S1, forced=True)),
]

#: (strip_cols, band_rows) — adversarial tile geometries: single-column
#: strips, a strip wider than the whole matrix, a width that does not
#: divide n, and the planner's own choice.
GEOMETRIES = [(1, 7), (500, 1), (13, 50), (None, None)]


def _serial(s0, s1, scheme, regime, **kw):
    return RowSweeper(s0.codes, s1.codes, scheme, **regime, **kw)


def _tiled(s0, s1, scheme, regime, geometry, executor=None, **kw):
    strip, band = geometry
    return ParallelRowSweeper(s0.codes, s1.codes, scheme, **regime,
                              executor=executor, strip_cols=strip,
                              band_rows=band, **kw)


# The shared conformance assertion (tests/conftest.py) — kept under its
# historical local name so the matrix of callers below stays readable.
_assert_identical = assert_sweeps_identical


class TestTileGridEquivalence:
    """Inline (no pool) tile grid vs the serial kernel, cell for cell."""

    @pytest.mark.parametrize("geometry", GEOMETRIES,
                             ids=["strip1", "strip>n", "ragged", "auto"])
    @pytest.mark.parametrize("regime", [r[1] for r in REGIMES],
                             ids=[r[0] for r in REGIMES])
    def test_bit_identity(self, rng, regime, geometry):
        s0, s1 = make_pair(rng, 90, 77)
        scheme = SCHEMES[len(str(geometry)) % len(SCHEMES)]
        serial = _serial(s0, s1, scheme, regime, track_best=True,
                         save_rows=np.array([16, 32, 77]),
                         tap_columns=np.array([len(s1)]))
        serial.run()
        watch = serial.best if regime["local"] else None
        kw = dict(track_best=True, save_rows=np.array([16, 32, 77]),
                  tap_columns=np.array([len(s1)]))
        serial = _serial(s0, s1, scheme, regime, watch_value=watch, **kw).run()
        tiled = _tiled(s0, s1, scheme, regime, geometry,
                       watch_value=watch, **kw).run()
        _assert_identical(serial, tiled)

    @pytest.mark.parametrize("scheme", SCHEMES,
                             ids=["paper", "affine", "flat-gap", "zero-mm"])
    def test_every_scheme(self, rng, scheme):
        s0, s1 = make_pair(rng, 64, 51)
        regime = dict(local=False, start_gap=TYPE_GAP_S0, forced=True)
        serial = _serial(s0, s1, scheme, regime).run()
        tiled = _tiled(s0, s1, scheme, regime, (9, 5)).run()
        _assert_identical(serial, tiled)

    def test_windowed_advance_matches(self, rng):
        # Stage 1 drives the sweep in block_rows windows; the tile grid
        # must agree at every window boundary, not just at the end.
        s0, s1 = make_pair(rng, 96, 80)
        regime = dict(local=True, start_gap=TYPE_MATCH, forced=False)
        serial = _serial(s0, s1, PAPER_SCHEME, regime, track_best=True)
        tiled = _tiled(s0, s1, PAPER_SCHEME, regime, (11, 6), track_best=True)
        while not serial.done:
            assert serial.advance(17) == tiled.advance(17)
            np.testing.assert_array_equal(serial.H, tiled.H)
            assert serial.best == tiled.best
        assert tiled.done

    def test_checkpoint_round_trip_across_kernels(self, rng):
        # A state_dict taken mid-sweep by the tile grid resumes the
        # *serial* kernel (and vice versa) to the same final state.
        s0, s1 = make_pair(rng, 90, 70)
        regime = dict(local=True, start_gap=TYPE_MATCH, forced=False)
        tiled = _tiled(s0, s1, PAPER_SCHEME, regime, (13, 8), track_best=True)
        tiled.advance(41)
        resumed = _serial(s0, s1, PAPER_SCHEME, regime, track_best=True)
        resumed.load_state(tiled.state_dict())
        reference = _serial(s0, s1, PAPER_SCHEME, regime,
                            track_best=True).run()
        _assert_identical(reference, resumed.run())
        _assert_identical(reference, tiled.run())


class TestPooledExecution:
    """The same grid scheduled across real worker processes."""

    def test_pooled_sweep_bit_identical(self, rng):
        s0, s1 = make_pair(rng, 200, 180)
        serial = _serial(s0, s1, PAPER_SCHEME,
                         dict(local=True, start_gap=TYPE_MATCH, forced=False),
                         track_best=True, save_rows=np.array([64, 128]),
                         tap_columns=np.array([len(s1)])).run()
        with WavefrontExecutor(2) as executor:
            pooled = make_sweeper(
                s0.codes, s1.codes, PAPER_SCHEME, executor=executor,
                local=True, track_best=True, save_rows=np.array([64, 128]),
                tap_columns=np.array([len(s1)]))
            assert isinstance(pooled, ParallelRowSweeper)
            pooled.run()
            _assert_identical(serial, pooled)

    def test_full_pipeline_bit_identical(self, rng, tmp_path):
        s0, s1 = make_pair(rng, 300, 280)
        serial_cfg = small_config(block_rows=32, n=len(s1), sra_rows=5)
        wave_cfg = small_config(block_rows=32, n=len(s1), sra_rows=5,
                                executor="wavefront", workers=2)
        ref = CUDAlign(serial_cfg, workdir=str(tmp_path / "serial")).run(s0, s1)
        out = CUDAlign(wave_cfg, workdir=str(tmp_path / "wave")).run(s0, s1)
        assert out.best_score == ref.best_score
        assert out.stage1.end_point == ref.stage1.end_point
        assert out.stage1.special_rows == ref.stage1.special_rows
        assert out.stage2.crosspoints == ref.stage2.crosspoints
        assert out.stage3.crosspoints == ref.stage3.crosspoints
        assert out.stage4.crosspoints == ref.stage4.crosspoints
        assert out.binary.encode() == ref.binary.encode()
        assert out.metrics["wavefront.tiles"] > 0
        assert ref.metrics.get("wavefront.tiles") is None


class TestBoundaryColumn:
    """The closed-form column 0 vs the serial recurrence, all regimes."""

    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("start_gap", [TYPE_MATCH, TYPE_GAP_S0,
                                           TYPE_GAP_S1])
    @pytest.mark.parametrize("forced", [False, True])
    def test_matches_recurrence(self, scheme, start_gap, forced):
        m = 40
        h = int(NEG_INF) if forced else 0
        f = 0 if start_gap == TYPE_GAP_S1 else int(NEG_INF)
        want_H, want_X = [], []
        for _ in range(m):
            f = max(f - scheme.gap_ext, h - scheme.gap_first)
            h = max(f, int(NEG_INF))
            want_X.append(f)
            want_H.append(h)
        left_H, left_E, left_X = boundary_column(
            m, scheme, local=False, start_gap=start_gap, forced=forced)
        np.testing.assert_array_equal(left_H, want_H)
        np.testing.assert_array_equal(left_X, want_X)
        np.testing.assert_array_equal(left_E, np.asarray(want_X) -
                                      scheme.gap_open)

    def test_local_is_flat_zero(self):
        left_H, left_E, left_X = boundary_column(8, PAPER_SCHEME, local=True)
        np.testing.assert_array_equal(left_H, np.zeros(8))
        np.testing.assert_array_equal(left_X, np.zeros(8))
        np.testing.assert_array_equal(left_E, np.full(8, NEG_INF))

    def test_forced_column_floors_instead_of_sinking(self):
        # Once H clamps at NEG_INF, reopening a gap beats extending the
        # sunk run: X must floor at NEG_INF - gap_first, not fall forever.
        _, _, left_X = boundary_column(5000, PAPER_SCHEME, local=False,
                                       start_gap=TYPE_GAP_S0, forced=True)
        assert left_X.min() == int(NEG_INF) - PAPER_SCHEME.gap_first


class TestSweeperSelection:
    def test_small_matrix_falls_back_to_serial(self, rng):
        s0, s1 = make_pair(rng, 40, 40)
        assert 40 * 40 < MIN_PARALLEL_CELLS
        with WavefrontExecutor(1) as executor:
            sweep = make_sweeper(s0.codes, s1.codes, PAPER_SCHEME,
                                 executor=executor)
            assert type(sweep) is RowSweeper

    def test_no_executor_falls_back_to_serial(self, rng):
        s0, s1 = make_pair(rng, 200, 200)
        sweep = make_sweeper(s0.codes, s1.codes, PAPER_SCHEME, executor=None)
        assert type(sweep) is RowSweeper

    def test_interior_taps_fall_back_to_serial(self, rng):
        s0, s1 = make_pair(rng, 200, 200)
        with WavefrontExecutor(1) as executor:
            sweep = make_sweeper(s0.codes, s1.codes, PAPER_SCHEME,
                                 executor=executor,
                                 tap_columns=np.array([3, 200]))
            assert type(sweep) is RowSweeper

    def test_parallel_sweeper_rejects_interior_taps(self, rng):
        s0, s1 = make_pair(rng, 64, 64)
        with pytest.raises(ConfigError):
            ParallelRowSweeper(s0.codes, s1.codes, PAPER_SCHEME,
                               tap_columns=np.array([3]))

    def test_strip_planner_covers_the_matrix(self):
        for n in (1, 7, 64, 1000):
            for workers in (1, 2, 8):
                strip = plan_strip_cols(n, workers)
                assert 1 <= strip <= n


class TestCoreBudget:
    def test_even_split(self):
        assert core_budget(8, 2) == 4
        assert core_budget(8, 1) == 8
        assert core_budget(4, 3) == 1

    def test_never_below_one(self):
        assert core_budget(1, 4) == 1
        assert core_budget(0, 1) == 1

    def test_service_clamps_and_counts(self, tmp_path, rng):
        from repro.sequences import homologous_pair, write_fasta
        s0, s1 = homologous_pair(400, rng, names=("a", "b"))
        p0, p1 = tmp_path / "a.fa", tmp_path / "b.fa"
        write_fasta(p0, s0)
        write_fasta(p1, s1)
        # 2 job slots on a (simulated) 2-core host: a job asking for 4
        # pipeline workers must be clamped to its 1-core share.
        service = AlignmentService(tmp_path / "root", workers=2, cpu_count=2)
        try:
            service.submit(JobSpec(seq0=str(p0), seq1=str(p1), workers=4,
                                   block_rows=32, sra_rows=4))
            summary = service.run()
        finally:
            service.close()
        assert summary["succeeded"] == 1
        snapshot = service.telemetry.metrics.snapshot()
        assert snapshot["service.cores_clamped"] == 1

    def test_inline_execute_job_is_uncapped(self, tmp_path, rng):
        from repro.sequences import homologous_pair, write_fasta
        from repro.service import execute_job
        s0, s1 = homologous_pair(300, rng, names=("a", "b"))
        p0, p1 = tmp_path / "a.fa", tmp_path / "b.fa"
        write_fasta(p0, s0)
        write_fasta(p1, s1)
        spec = JobSpec(seq0=str(p0), seq1=str(p1), workers=2,
                       block_rows=32, sra_rows=4)
        summary = execute_job(spec, str(tmp_path / "job"), 1)
        assert summary["best_score"] > 0
