"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# Property tests exercise real DP kernels whose per-example time varies
# wildly with the drawn sizes; wall-clock deadlines only add flakiness.
settings.register_profile(
    "repro", deadline=None,
    suppress_health_check=[HealthCheck.too_slow])
settings.load_profile("repro")

from repro.align.scoring import PAPER_SCHEME, ScoringScheme
from repro.sequences.sequence import Sequence
from repro.sequences.synth import MutationProfile, homologous_pair, random_dna


@pytest.fixture
def scheme() -> ScoringScheme:
    """The paper's experimental scoring parameters."""
    return PAPER_SCHEME


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


def make_pair(rng: np.random.Generator, m: int, n: int,
              related: bool = True) -> tuple[Sequence, Sequence]:
    """A deterministic test pair; related pairs share a mutated ancestor."""
    if related:
        # Generate with headroom: indels can shorten the descendants below
        # the ancestor length, and the test contract is exact sizes.
        s0, s1 = homologous_pair(
            2 * max(m, n) + 64, rng,
            profile=MutationProfile(substitution=0.08, insertion=0.02,
                                    deletion=0.02, indel_mean_len=2.5))
        return s0[:m], s1[:n]
    return random_dna(m, rng, "A"), random_dna(n, rng, "B")


#: A compact set of scoring schemes covering the parameter space that the
#: kernels' algebra depends on (gap_first == gap_ext is the scan trick's
#: boundary case).
SCHEMES = [
    PAPER_SCHEME,
    ScoringScheme(match=2, mismatch=-1, gap_first=3, gap_ext=1),
    ScoringScheme(match=1, mismatch=-2, gap_first=2, gap_ext=2),
    ScoringScheme(match=5, mismatch=0, gap_first=8, gap_ext=1),
]


def assert_sweeps_identical(reference, other) -> None:
    """Assert two finished sweeps agree on *every* observable.

    This is the kernel-backend conformance contract (docs/API.md "Kernel
    backends"): H/E/F rows, best cell, watch hit, cell count, saved
    rows, taps, and the checkpoint ``state_dict`` must be bit-identical
    — not merely score-equal — across backends.
    """
    np.testing.assert_array_equal(reference.H, other.H)
    np.testing.assert_array_equal(reference.E, other.E)
    np.testing.assert_array_equal(reference.F, other.F)
    assert reference.best == other.best
    assert reference.best_pos == other.best_pos
    assert reference.watch_hit == other.watch_hit
    assert reference.cells == other.cells
    assert sorted(reference.saved) == sorted(other.saved)
    for row in reference.saved:
        np.testing.assert_array_equal(reference.saved[row][0],
                                      other.saved[row][0])
        np.testing.assert_array_equal(reference.saved[row][1],
                                      other.saved[row][1])
    taps_a = getattr(reference, "tap_H", None)
    taps_b = getattr(other, "tap_H", None)
    assert (taps_a is None) == (taps_b is None)
    if taps_a is not None:
        np.testing.assert_array_equal(taps_a, taps_b)
        np.testing.assert_array_equal(reference.tap_E, other.tap_E)
    state_a, state_b = reference.state_dict(), other.state_dict()
    assert set(state_a) == set(state_b)
    for key in state_a:
        np.testing.assert_array_equal(state_a[key], state_b[key])
