"""The integrity layer: artifact codec, deterministic fault injection,
degrade-don't-die recovery, and the fsck scan/repair cycle."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import CUDAlign, small_config
from repro.core.checkpoint import load_checkpoint, save_checkpoint
from repro.errors import ConfigError, IntegrityError, StorageError
from repro.integrity import (
    FaultPlan,
    FaultSpec,
    InjectedFault,
    codec,
    corrupt_file,
    fsck_tree,
    inject,
)
from repro.service import JobQueue, JobSpec, ResultCache, replay_journal
from repro.storage.sra import SavedLine, SpecialLineStore

from tests.conftest import make_pair

ALL_KINDS = (codec.KIND_SPECIAL_LINE, codec.KIND_SRA_INDEX,
             codec.KIND_CHECKPOINT, codec.KIND_CACHE_ENTRY,
             codec.KIND_JOURNAL_RECORD, codec.KIND_BINARY_ALIGNMENT)


class TestBinaryFrame:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_round_trip_every_kind(self, kind):
        payload = bytes(range(256)) * 3
        kind_back, payload_back = codec.unframe(codec.frame(payload, kind),
                                                expect_kind=kind)
        assert kind_back == kind and payload_back == payload

    def test_empty_payload_round_trips(self):
        assert codec.unframe(codec.frame(b"", "checkpoint"))[1] == b""

    def test_truncated_header(self):
        with pytest.raises(IntegrityError, match="truncated"):
            codec.unframe(b"RPIA\x01")

    def test_truncated_payload(self):
        blob = codec.frame(b"x" * 100, "checkpoint")
        with pytest.raises(IntegrityError, match="truncated or padded"):
            codec.unframe(blob[:-10])

    def test_bad_magic(self):
        blob = b"NOPE" + codec.frame(b"x", "checkpoint")[4:]
        with pytest.raises(IntegrityError, match="bad magic"):
            codec.unframe(blob)

    def test_unsupported_version(self):
        blob = bytearray(codec.frame(b"x", "checkpoint"))
        blob[4:6] = (99).to_bytes(2, "little")
        with pytest.raises(IntegrityError, match="version"):
            codec.unframe(bytes(blob))

    def test_kind_mismatch(self):
        blob = codec.frame(b"x", "checkpoint")
        with pytest.raises(IntegrityError, match="kind mismatch"):
            codec.unframe(blob, expect_kind="special-line")

    def test_flipped_payload_bit_caught_with_details(self):
        blob = bytearray(codec.frame(b"payload bytes", "checkpoint"))
        blob[-1] ^= 0x10
        with pytest.raises(IntegrityError) as excinfo:
            codec.unframe(bytes(blob), path="/some/file.bin")
        err = excinfo.value
        assert isinstance(err, StorageError)       # one catchable family
        assert err.path == "/some/file.bin"
        assert err.expected and err.actual and err.expected != err.actual

    def test_flipped_kind_byte_caught(self):
        # Regression: the digests must cover the kind bytes too — a flip
        # there used to verify clean (kind is only compared on demand).
        blob = bytearray(codec.frame(b"payload", "checkpoint"))
        blob[codec._HEADER.size] ^= 0x04        # first byte of the kind
        with pytest.raises(IntegrityError):
            codec.unframe(bytes(blob))

    def test_file_round_trip_leaves_no_tmp(self, tmp_path):
        path = tmp_path / "artifact.bin"
        codec.write_artifact(path, b"\x00\x01\x02", codec.KIND_SPECIAL_LINE)
        assert codec.read_artifact(path, codec.KIND_SPECIAL_LINE) == \
            b"\x00\x01\x02"
        assert not list(tmp_path.glob("*.tmp"))


class TestSealedRecords:
    def test_round_trip(self):
        sealed = codec.seal_record({"event": "submitted", "job_id": "j1"})
        raw = json.dumps(sealed, sort_keys=True)
        assert codec.verify_record(raw) == {"event": "submitted",
                                            "job_id": "j1"}

    def test_tampered_value_caught(self):
        sealed = codec.seal_record({"event": "succeeded", "score": 10})
        sealed["score"] = 11
        with pytest.raises(IntegrityError, match="CRC mismatch"):
            codec.verify_record(json.dumps(sealed))

    def test_unsealed_line_rejected(self):
        with pytest.raises(IntegrityError, match="no checksum"):
            codec.verify_record('{"event": "submitted"}')

    def test_non_json_line_rejected(self):
        with pytest.raises(IntegrityError, match="not JSON"):
            codec.verify_record('{"event": "subm')

    def test_append_heals_torn_final_line(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        journal.write_bytes(b'{"event": "torn prefix with no newline')
        codec.append_journal_record(journal, {"event": "next"})
        lines = journal.read_text().splitlines()
        assert len(lines) == 2
        assert codec.verify_record(lines[1])["event"] == "next"
        with pytest.raises(IntegrityError):
            codec.verify_record(lines[0])


class TestJsonEnvelope:
    def test_round_trip(self):
        text = codec.seal_json({"best_score": 42}, codec.KIND_CACHE_ENTRY)
        assert codec.open_json(
            text, expect_kind=codec.KIND_CACHE_ENTRY) == {"best_score": 42}

    def test_tampered_payload_caught(self):
        text = codec.seal_json({"best_score": 42}, codec.KIND_CACHE_ENTRY)
        with pytest.raises(IntegrityError, match="SHA-256 mismatch"):
            codec.open_json(text.replace("42", "43"))

    def test_plain_json_rejected(self):
        with pytest.raises(IntegrityError, match="no integrity envelope"):
            codec.open_json('{"best_score": 42}')

    def test_kind_mismatch(self):
        text = codec.seal_json({}, codec.KIND_CACHE_ENTRY)
        with pytest.raises(IntegrityError, match="kind mismatch"):
            codec.open_json(text, expect_kind=codec.KIND_CHECKPOINT)


class TestQuarantine:
    def test_preserves_and_serializes_collisions(self, tmp_path):
        for expect in ("8.bin", "8.bin.1", "8.bin.2"):
            path = tmp_path / "8.bin"
            path.write_bytes(b"damaged")
            dest = codec.quarantine_file(path)
            assert dest.endswith(expect)
            assert not path.exists()
        assert len(list((tmp_path / "quarantine").iterdir())) == 3

    def test_missing_file_is_none(self, tmp_path):
        assert codec.quarantine_file(tmp_path / "gone.bin") is None


class TestFaultPlan:
    def test_same_seed_same_damage(self, tmp_path):
        path = tmp_path / "a.bin"
        original = bytes(range(256)) * 4
        path.write_bytes(original)
        reads = []
        for _ in range(2):
            plan = FaultPlan(FaultSpec("*.bin", "bitflip"), seed=42)
            with inject(plan):
                reads.append(codec.read_bytes(path))
            assert [i.fault for i in plan.injections] == ["bitflip"]
        assert reads[0] == reads[1] != original

    def test_skip_and_times_window(self, tmp_path):
        path = tmp_path / "a.bin"
        path.write_bytes(b"clean data")
        plan = FaultPlan(FaultSpec("*.bin", "truncate", skip=1, times=1))
        with inject(plan):
            first = codec.read_bytes(path)
            second = codec.read_bytes(path)
            third = codec.read_bytes(path)
        assert first == third == b"clean data"
        assert second == b"clean"
        assert len(plan.injections) == 1

    def test_enospc_on_write(self, tmp_path):
        plan = FaultPlan(FaultSpec("*.bin", "enospc", op="write"))
        with inject(plan):
            with pytest.raises(OSError, match="no space"):
                codec.write_artifact(tmp_path / "a.bin", b"x",
                                     codec.KIND_SPECIAL_LINE)

    def test_invalid_spec_rejected(self):
        with pytest.raises(ConfigError):
            FaultSpec("*.bin", "torn", op="read")   # torn is write-only
        with pytest.raises(ConfigError):
            FaultSpec("*.bin", "bitflip", op="move")

    def test_plans_do_not_leak(self, tmp_path):
        path = tmp_path / "a.bin"
        path.write_bytes(b"clean")
        with inject(FaultPlan(FaultSpec("*.bin", "bitflip"))):
            pass
        assert codec.read_bytes(path) == b"clean"


class TestJournalRecovery:
    def _submit_two(self, journal):
        queue = JobQueue(journal)
        first = queue.submit(JobSpec(catalog="162Kx172K"))
        second = queue.submit(JobSpec(catalog="162Kx172K"))
        for record in (first, second):
            queue.mark_running(record)
            queue.mark_succeeded(record, {"best_score": 9})
        return first, second

    def test_mid_journal_corruption_requeues_only_that_job(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        first, second = self._submit_two(journal)
        lines = journal.read_text().splitlines()
        # Flip a byte inside the *middle* of the journal: the line that
        # recorded the first job's completion.
        target = next(i for i, line in enumerate(lines)
                      if '"succeeded"' in line and first.job_id in line)
        lines[target] = lines[target].replace('"succeeded"', '"succeedeX"')
        journal.write_text("\n".join(lines) + "\n")

        replay = replay_journal(journal)
        assert replay.corrupt == 1
        queue = JobQueue.recover(journal)
        assert queue.corrupt_records == 1
        # The job whose completion record was damaged replays as pending
        # (it simply runs again); the other stays finished.
        assert queue.get(first.job_id).state == "pending"
        assert queue.get(second.job_id).state == "succeeded"

    def test_kill_mid_append_recovers(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        queue = JobQueue(journal)
        record = queue.submit(JobSpec(catalog="162Kx172K"))
        plan = FaultPlan(
            FaultSpec("*journal.jsonl", "torn", op="append"), seed=7)
        with inject(plan):
            with pytest.raises(InjectedFault):
                queue.mark_running(record)
        recovered = JobQueue.recover(journal)
        assert recovered.corrupt_records == 1
        assert recovered.get(record.job_id).state == "pending"
        # The post-recovery append healed the torn tail: the journal
        # grows cleanly and replays with the same single damaged line.
        assert replay_journal(journal).corrupt == 1


def _reference_run(s0, s1, config, tmp_path, name):
    result = CUDAlign(config, workdir=tmp_path / name).run(s0, s1)
    assert result.alignment is not None
    return result


class TestDegradeDontDie:
    """The acceptance bar: injected corruption during a full run changes
    telemetry, never the alignment."""

    @pytest.fixture
    def pair(self, rng):
        s0, s1 = make_pair(rng, 300, 280)
        config = small_config(block_rows=32, n=len(s1), sra_rows=5,
                              checkpoint_every_rows=64)
        return s0, s1, config

    def test_bitflipped_special_line_same_alignment(self, pair, tmp_path):
        s0, s1, config = pair
        clean = _reference_run(s0, s1, config, tmp_path, "clean")
        assert clean.metrics.get("integrity.corruption_detected", 0) == 0

        plan = FaultPlan(
            FaultSpec("*/sra/stage1_rows/*.bin", "bitflip", op="read"),
            seed=11)
        with inject(plan):
            damaged = CUDAlign(config, workdir=tmp_path / "hurt").run(s0, s1)
        assert [i.fault for i in plan.injections] == ["bitflip"]
        assert damaged.metrics["integrity.corruption_detected"] >= 1
        assert damaged.metrics["integrity.recovered"] >= 1
        # Identical answer: the lost row only widened a partition.
        assert damaged.best_score == clean.best_score
        assert damaged.alignment.start == clean.alignment.start
        assert damaged.alignment.end == clean.alignment.end
        # The damaged line was preserved for post-mortem.
        quarantine = tmp_path / "hurt" / "sra" / "quarantine"
        assert list(quarantine.iterdir())

    def test_corrupt_checkpoint_falls_back_to_fresh_sweep(self, pair,
                                                          tmp_path):
        s0, s1, config = pair
        clean = _reference_run(s0, s1, config, tmp_path, "clean")

        workdir = tmp_path / "hurt"
        workdir.mkdir()
        ckpt = workdir / "stage1.ckpt"
        codec.write_artifact(ckpt, b"stale checkpoint bytes",
                             codec.KIND_CHECKPOINT)
        corrupt_file(ckpt, "bitflip", seed=2)
        with pytest.raises(IntegrityError):
            load_checkpoint(ckpt, len(s0), len(s1))

        damaged = CUDAlign(config, workdir=workdir).run(s0, s1)
        assert damaged.metrics["integrity.corruption_detected"] >= 1
        assert damaged.best_score == clean.best_score
        assert not ckpt.exists()                   # quarantined, not reused
        assert list((workdir / "quarantine").iterdir())


class _SweeperStub:
    i = 5

    def state_dict(self) -> dict:
        zeros = np.zeros(4, dtype=np.int64)
        return {"i": 5, "cells": 100, "H": zeros, "E": zeros, "F": zeros,
                "best": 7, "best_i": 1, "best_j": 2}


def _build_root(root):
    """A service-style tree containing every artifact class."""
    store = SpecialLineStore(10**6, directory=root / "sra")
    for position in (8, 16, 24):
        store.save("stage1/rows", SavedLine(
            axis="row", position=position, lo=0,
            H=np.arange(6, dtype=np.int32),
            G=np.zeros(6, dtype=np.int32)))
    save_checkpoint(root / "stage1.ckpt", _SweeperStub(), 30, 40)
    cache = ResultCache(root / "cache")
    cache.put("a" * 16, {"best_score": 1})
    cache.put("b" * 16, {"best_score": 2})
    queue = JobQueue(root / "journal.jsonl")
    record = queue.submit(JobSpec(catalog="162Kx172K"))
    queue.mark_running(record)
    queue.mark_succeeded(record, {"best_score": 3})
    return root


class TestFsck:
    def test_clean_tree_verifies_everything(self, tmp_path):
        report = fsck_tree(_build_root(tmp_path))
        assert report.clean
        # 3 line files + index + checkpoint + 2 cache entries + journal.
        assert report.scanned == 8
        assert report.verified == 8

    def test_detects_every_corruption_class(self, tmp_path):
        root = _build_root(tmp_path)
        corrupt_file(root / "sra" / "stage1_rows" / "8.bin", "bitflip")
        corrupt_file(root / "stage1.ckpt", "truncate")
        corrupt_file(root / "cache" / ("a" * 16 + ".json"), "truncate")
        corrupt_file(root / "sra" / "stage1_rows" / "16.bin", "delete")
        journal = root / "journal.jsonl"
        journal.write_text(
            journal.read_text().replace('"succeeded"', '"succeedeX"'))

        report = fsck_tree(root)
        assert not report.clean
        problems = {f.problem for f in report.findings}
        assert problems == {"bad-frame", "bad-envelope", "corrupt-record",
                            "missing-payload"}
        # Truncating a framed checkpoint at 50% decapitates the magic-or-
        # not sniff only if the cut lands inside the header; either way it
        # must be flagged, as bad-frame or not-framed.
        flagged = {f.path for f in report.findings}
        assert str(root / "stage1.ckpt") in flagged

    def test_repair_converges_to_clean(self, tmp_path):
        root = _build_root(tmp_path)
        corrupt_file(root / "sra" / "stage1_rows" / "8.bin", "bitflip")
        corrupt_file(root / "cache" / ("a" * 16 + ".json"), "garbage")
        corrupt_file(root / "sra" / "stage1_rows" / "16.bin", "delete")
        journal = root / "journal.jsonl"
        journal.write_text(
            journal.read_text().replace('"succeeded"', '"succeedeX"'))

        first = fsck_tree(root, repair=True)
        assert first.repaired
        rescan = fsck_tree(root)
        assert rescan.clean, [f.to_json() for f in rescan.findings]
        # Nothing was deleted: the damage is preserved under quarantine.
        assert list((root / "sra" / "stage1_rows" / "quarantine").iterdir())
        assert list((root / "cache" / "quarantine").iterdir())
        # The journal kept its valid records.
        replay = replay_journal(root / "journal.jsonl")
        assert replay.corrupt == 0
        assert len(replay.records) == 1
