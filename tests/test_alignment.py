"""Alignment object: geometry, scoring, gap runs, rendering, composition."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import TYPE_GAP_S0, TYPE_GAP_S1, TYPE_MATCH
from repro.errors import AlignmentError
from repro.align.alignment import Alignment
from repro.align.scoring import PAPER_SCHEME
from repro.sequences.sequence import Sequence


def aln(i0, j0, ops):
    return Alignment(i0, j0, np.asarray(ops, dtype=np.uint8))


class TestGeometry:
    def test_end_position(self):
        a = aln(2, 3, [0, 0, 1, 2, 0])
        # 4 ops consume S0 (not type 1), 4 consume S1 (not type 2)
        assert a.end == (2 + 4, 3 + 4)
        assert a.span0 == 4 and a.span1 == 4

    def test_empty_alignment(self):
        a = aln(5, 5, [])
        assert a.end == (5, 5)
        assert len(a) == 0

    def test_invalid_ops_rejected(self):
        with pytest.raises(AlignmentError):
            aln(0, 0, [0, 3])

    def test_negative_start_rejected(self):
        with pytest.raises(AlignmentError):
            aln(-1, 0, [0])

    def test_ops_immutable(self):
        a = aln(0, 0, [0, 1])
        with pytest.raises(ValueError):
            a.ops[0] = 2


class TestScoring:
    def test_figure1_alignment(self):
        # Figure 1 of the paper: ACTTCC--AGA vs AGTTCCGGAGG with the
        # figure's linear costs replaced by our affine ones.
        s0 = Sequence.from_text("ACTTCCAGA")
        s1 = Sequence.from_text("AGTTCCGGAGG")
        ops = [0, 0, 0, 0, 0, 0, 1, 1, 0, 0, 0]
        a = aln(0, 0, ops)
        comp = a.composition(s0, s1, PAPER_SCHEME)
        assert comp.matches == 7
        assert comp.mismatches == 2
        assert comp.gap_opens == 1
        assert comp.gap_extensions == 1
        assert comp.score == 7 * 1 + 2 * (-3) - 1 * 5 - 1 * 2

    def test_gap_run_cost_matches_scheme(self):
        s0 = Sequence.from_text("AAAA")
        s1 = Sequence.from_text("AAAAAAA")
        a = aln(0, 0, [0, 0, 1, 1, 1, 0, 0])
        assert a.score(s0, s1, PAPER_SCHEME) == 4 - PAPER_SCHEME.gap_cost(3)

    def test_out_of_range_rejected(self):
        s0 = Sequence.from_text("AC")
        s1 = Sequence.from_text("AC")
        with pytest.raises(AlignmentError):
            aln(0, 0, [0, 0, 0]).score(s0, s1, PAPER_SCHEME)


class TestGapRuns:
    def test_runs_and_kinds(self):
        a = aln(0, 0, [0, 1, 1, 0, 2, 0, 1])
        gap1, gap2 = a.gap_runs()
        assert [(g.length, g.kind) for g in gap1] == [(2, TYPE_GAP_S0),
                                                      (1, TYPE_GAP_S0)]
        assert [(g.length, g.kind) for g in gap2] == [(1, TYPE_GAP_S1)]
        # first run opens after column 0: position (1, 1)
        assert (gap1[0].i, gap1[0].j) == (1, 1)

    def test_leading_gap_position(self):
        a = aln(4, 7, [2, 0])
        _, gap2 = a.gap_runs()
        assert (gap2[0].i, gap2[0].j, gap2[0].length) == (4, 7, 1)

    def test_no_gaps(self):
        gap1, gap2 = aln(0, 0, [0, 0]).gap_runs()
        assert gap1 == [] and gap2 == []

    @settings(max_examples=50, deadline=None)
    @given(ops=st.lists(st.integers(0, 2), max_size=60))
    def test_runs_account_for_all_gap_columns(self, ops):
        a = aln(0, 0, ops)
        gap1, gap2 = a.gap_runs()
        total = sum(g.length for g in gap1) + sum(g.length for g in gap2)
        assert total == int(np.count_nonzero(a.ops != TYPE_MATCH))


class TestComposition:
    @settings(max_examples=40, deadline=None)
    @given(ops=st.lists(st.integers(0, 2), max_size=60), seed=st.integers(0, 99))
    def test_census_sums_to_length(self, ops, seed):
        rng = np.random.default_rng(seed)
        a = aln(0, 0, ops)
        i1, j1 = a.end
        s0 = Sequence(rng.integers(0, 4, size=max(1, i1), dtype=np.uint8))
        s1 = Sequence(rng.integers(0, 4, size=max(1, j1), dtype=np.uint8))
        comp = a.composition(s0, s1, PAPER_SCHEME)
        assert comp.length == len(a)
        # Gap opens equals the number of runs.
        gap1, gap2 = a.gap_runs()
        assert comp.gap_opens == len(gap1) + len(gap2)


class TestConcat:
    def test_concat_requires_continuity(self):
        a = aln(0, 0, [0, 0])
        b = aln(2, 2, [1])
        c = a.concat(b)
        assert c.end == (2, 3)
        with pytest.raises(AlignmentError):
            b.concat(a)

    def test_concat_all_preserves_score(self):
        s0 = Sequence.from_text("ACGTACGT")
        s1 = Sequence.from_text("ACGAACGT")
        a = aln(0, 0, [0, 0, 0, 0])
        b = aln(4, 4, [0, 0, 0, 0])
        whole = Alignment.concat_all([a, b])
        assert (whole.score(s0, s1, PAPER_SCHEME)
                == a.score(s0, s1, PAPER_SCHEME) + b.score(s0, s1, PAPER_SCHEME))

    def test_concat_merges_gap_runs_in_scoring(self):
        # A gap run split across two parts must cost ONE opening overall
        # when rescored on the concatenated alignment.
        s0 = Sequence.from_text("AAAA")
        s1 = Sequence.from_text("AAAAAAAA")
        a = aln(0, 0, [0, 0, 1, 1])
        b = aln(2, 4, [1, 1, 0, 0])
        whole = a.concat(b)
        assert whole.score(s0, s1, PAPER_SCHEME) == 4 - PAPER_SCHEME.gap_cost(4)

    def test_concat_empty_list_rejected(self):
        with pytest.raises(AlignmentError):
            Alignment.concat_all([])


class TestTransforms:
    def test_transposed_swaps_gap_kinds(self):
        a = aln(1, 2, [0, 1, 2])
        t = a.transposed()
        assert t.start == (2, 1)
        assert list(t.ops) == [0, 2, 1]
        assert t.transposed().start == a.start

    def test_offset(self):
        a = aln(1, 2, [0]).offset(10, 20)
        assert a.start == (11, 22)

    def test_reversed_path(self):
        a = aln(0, 0, [0, 1, 2])  # on reversed seqs of lengths (5, 7)
        r = a.reversed_path(5, 7)
        assert list(r.ops) == [2, 1, 0]
        assert r.end == (5, 7)

    def test_transposed_score_invariant(self):
        s0 = Sequence.from_text("ACGGT")
        s1 = Sequence.from_text("ACT")
        a = aln(0, 0, [0, 0, 2, 2, 0])
        assert (a.score(s0, s1, PAPER_SCHEME)
                == a.transposed().score(s1, s0, PAPER_SCHEME))


class TestIdentityAndCoverage:
    def test_identity(self):
        s0 = Sequence.from_text("ACGT")
        s1 = Sequence.from_text("ACGA")
        a = aln(0, 0, [0, 0, 0, 0])
        assert a.identity(s0, s1) == 0.75

    def test_identity_empty(self):
        s = Sequence.from_text("A")
        assert aln(0, 0, []).identity(s, s) == 0.0

    def test_coverage(self):
        s0 = Sequence.from_text("ACGTACGT")
        s1 = Sequence.from_text("ACGT")
        a = aln(2, 0, [0, 0, 0, 0])
        c0, c1 = a.coverage(s0, s1)
        assert c0 == 0.5 and c1 == 1.0

    def test_paper_style_identity_claim(self):
        # The paper: matches were 96.6% of the chimp chromosome size.
        s0 = Sequence.from_text("ACGT" * 25)
        a = aln(0, 0, [0] * 100)
        comp = a.composition(s0, s0, PAPER_SCHEME)
        assert comp.matches / len(s0) == 1.0


class TestRendering:
    def test_render_rows(self):
        s0 = Sequence.from_text("ACTTCC")
        s1 = Sequence.from_text("AGTTC")
        a = aln(0, 0, [0, 0, 0, 0, 0, 2])
        top, marker, bottom = a.render_rows(s0, s1)
        assert top == "ACTTCC"
        assert bottom == "AGTTC-"
        assert marker == "|.||| "
