"""Simulated device: grid geometry, block shrinking, performance model."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError, DeviceError
from repro.gpusim import (
    GTX_285,
    PENTIUM_DUALCORE,
    DeviceSpec,
    KernelGrid,
    SweepGeometry,
    effective_blocks,
    grid_rate_gcups,
    host_seconds,
    stage1_vram_bytes,
    sweep_cost,
)

STAGE1_GRID = KernelGrid(blocks=240, threads=64, alpha=4)  # the paper's B1/T1
STAGE3_GRID = KernelGrid(blocks=60, threads=128, alpha=4)


class TestKernelGrid:
    def test_block_rows(self):
        assert STAGE1_GRID.block_rows == 256

    def test_minimum_width(self):
        assert STAGE3_GRID.minimum_width == 2 * 60 * 128

    def test_invalid_grid(self):
        with pytest.raises(ConfigError):
            KernelGrid(blocks=0, threads=1)


class TestEffectiveBlocks:
    @pytest.mark.parametrize("width,expected", [
        # Table VIII: W_max -> B3 for T3 = 128 on the GTX 285 (30 SMs).
        (56320, 60),
        (14336, 30),
        (6656, 26),
        (3684, 14),
        (2624, 10),
    ])
    def test_reproduces_table8_b3(self, width, expected):
        assert effective_blocks(60, 128, width, GTX_285) == expected

    def test_never_below_one(self):
        assert effective_blocks(60, 128, 1, GTX_285) == 1

    def test_rounds_to_multiprocessor_multiple(self):
        # 100 blocks fit, but 90 is the largest multiple of 30.
        assert effective_blocks(240, 64, 100 * 2 * 64, GTX_285) == 90

    def test_invalid_width(self):
        with pytest.raises(ConfigError):
            effective_blocks(60, 128, 0, GTX_285)


class TestSweepGeometry:
    def test_external_diagonals_cover_grid(self):
        geo = SweepGeometry(1024, 10**6, STAGE1_GRID)
        assert geo.block_row_count == 4
        assert geo.external_diagonals == 4 + 240 - 1

    def test_bus_traffic_positive(self):
        geo = SweepGeometry(1024, 4096, KernelGrid(8, 16, 2))
        assert geo.horizontal_bus_bytes > 0
        assert geo.vertical_bus_bytes > 0

    def test_invalid_area(self):
        with pytest.raises(ConfigError):
            SweepGeometry(0, 10, STAGE1_GRID)


class TestPerformanceModel:
    def test_saturated_rate_is_peak(self):
        assert grid_rate_gcups(STAGE1_GRID, GTX_285) == GTX_285.peak_gcups

    def test_starved_grid_derated(self):
        tiny = KernelGrid(blocks=10, threads=128, alpha=4)
        rate = grid_rate_gcups(tiny, GTX_285)
        assert rate == pytest.approx(
            GTX_285.peak_gcups * 1280 / GTX_285.saturation_threads)
        # The paper's Stage-2 grid (B2=60, T2=128) is NOT starved: Table
        # VIII's Cells_2 over Table VII's Stage-2 time implies ~24 GCUPS.
        stage2 = KernelGrid(blocks=60, threads=128, alpha=4)
        assert grid_rate_gcups(stage2, GTX_285) == GTX_285.peak_gcups

    def test_stage1_paper_scale_runtime(self):
        # The 33M x 47M comparison ran Stage 1 in 64507 s without flush
        # (Table IV).  The model must land within a few percent.
        m, n = 32_799_110, 46_944_323
        cost = sweep_cost(m, n, STAGE1_GRID, GTX_285)
        assert cost.seconds == pytest.approx(64507, rel=0.03)
        assert cost.mcups == pytest.approx(23869, rel=0.03)

    def test_small_sequence_mcups_ramp(self):
        # Table IV: the 162K x 172K row reaches only ~19.8 GCUPS because
        # diagonal overheads dominate short sweeps.
        cost = sweep_cost(162_114, 171_823, STAGE1_GRID, GTX_285)
        assert 17_000 < cost.mcups < 22_000
        big = sweep_cost(5_227_293, 5_228_663, STAGE1_GRID, GTX_285)
        assert big.mcups > cost.mcups  # rate grows with size (Figure 11)

    def test_flush_overhead_about_one_percent(self):
        # Table IV, chromosome row: 50 GB flushed adds ~650 s to 64507 s.
        m, n = 32_799_110, 46_944_323
        plain = sweep_cost(m, n, STAGE1_GRID, GTX_285)
        flushed = sweep_cost(m, n, STAGE1_GRID, GTX_285,
                             flushed_bytes=50 * 10**9)
        overhead = (flushed.seconds - plain.seconds) / plain.seconds
        assert 0.005 < overhead < 0.02

    def test_gcups_requires_positive_time(self):
        from repro.gpusim.perf import SweepCost
        with pytest.raises(DeviceError):
            _ = SweepCost(1, 1, 0, 0.0).gcups

    def test_host_seconds_scales_with_threads(self):
        one = host_seconds(10**9, PENTIUM_DUALCORE, threads=1)
        two = host_seconds(10**9, PENTIUM_DUALCORE, threads=2)
        assert one == pytest.approx(2 * two)
        # Cannot exceed physical cores.
        assert host_seconds(10**9, PENTIUM_DUALCORE, threads=16) == two

    def test_host_negative_cells_rejected(self):
        with pytest.raises(DeviceError):
            host_seconds(-1, PENTIUM_DUALCORE)


class TestVram:
    def test_stage1_vram_chromosome_scale(self):
        # Table VIII reports VRAM_1 = 435 MB for the chromosome run; the
        # ledger (sequences + buses) must land in that ballpark.
        got = stage1_vram_bytes(32_799_110, 46_944_323, STAGE1_GRID)
        assert 350e6 < got < 520e6

    def test_device_validation(self):
        with pytest.raises(DeviceError):
            DeviceSpec("x", 0, 1, 1, 1, 1.0, 1.0, 1.0, 1)
