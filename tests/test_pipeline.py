"""End-to-end pipeline tests, including the property-based score invariant."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.align.full_matrix import local_align
from repro.align.scoring import PAPER_SCHEME
from repro.core import CUDAlign, PipelineConfig, small_config
from repro.sequences.sequence import Sequence
from repro.sequences.synth import (
    MutationProfile,
    embedded_core_pair,
    homologous_pair,
    random_dna,
)

from tests.conftest import make_pair


def run_small(s0, s1, **kw):
    config = small_config(block_rows=32, n=len(s1), sra_rows=kw.pop("sra_rows", 4),
                          **kw)
    return CUDAlign(config).run(s0, s1), config


class TestEndToEnd:
    def test_homologous_pair_full_span(self, rng):
        s0, s1 = homologous_pair(
            600, rng, profile=MutationProfile(substitution=0.01,
                                              insertion=0.002, deletion=0.002))
        result, config = run_small(s0, s1)
        _, want = local_align(s0, s1, config.scheme)
        assert result.best_score == want
        # Near-identical genomes: alignment spans almost everything.
        assert result.alignment_length > 0.9 * min(len(s0), len(s1))

    def test_embedded_core_short_hit(self, rng):
        s0, s1 = embedded_core_pair(500, 450, 90, rng)
        result, config = run_small(s0, s1)
        _, want = local_align(s0, s1, config.scheme)
        assert result.best_score == want
        assert result.alignment_length < 0.5 * min(len(s0), len(s1))

    def test_unrelated_inputs(self, rng):
        s0 = random_dna(250, rng, "A")
        s1 = random_dna(260, rng, "B")
        result, config = run_small(s0, s1)
        _, want = local_align(s0, s1, config.scheme)
        assert result.best_score == want

    def test_identical_sequences(self):
        s = Sequence.from_text("ACGT" * 120)
        result, config = run_small(s, s)
        assert result.best_score == 480 * config.scheme.match
        comp = result.composition
        assert comp.mismatches == 0 and comp.gap_opens == 0

    def test_no_alignment_returns_empty(self):
        s0 = Sequence.from_text("A" * 400)
        s1 = Sequence.from_text("T" * 400)
        result, _ = run_small(s0, s1)
        assert result.best_score == 0
        assert result.alignment is None
        assert result.stage2 is None

    def test_composition_consistent(self, rng):
        s0, s1 = make_pair(rng, 400, 380)
        result, config = run_small(s0, s1)
        comp = result.composition
        assert comp.score == result.best_score
        assert comp.length == result.alignment_length

    def test_binary_round_trip_through_result(self, rng):
        s0, s1 = make_pair(rng, 300, 300)
        result, _ = run_small(s0, s1)
        rebuilt = result.binary.reconstruct()
        np.testing.assert_array_equal(rebuilt.ops, result.alignment.ops)

    def test_disk_workdir(self, rng, tmp_path):
        s0, s1 = make_pair(rng, 300, 300)
        config = small_config(block_rows=32, n=len(s1), sra_rows=4)
        result = CUDAlign(config, workdir=tmp_path).run(s0, s1)
        _, want = local_align(s0, s1, config.scheme)
        assert result.best_score == want
        assert (tmp_path / "sra").exists()

    def test_rejects_non_sequences(self):
        with pytest.raises(ConfigError):
            CUDAlign(small_config()).run("ACGT", "ACGT")

    def test_paper_default_config_runs(self, rng):
        # The paper's exact grids/SRA on a scaled input: grids shrink via
        # the minimum size requirement and special rows simply do not fit,
        # but the pipeline must still be exact.
        s0, s1 = make_pair(rng, 400, 400)
        result = CUDAlign(PipelineConfig()).run(s0, s1)
        _, want = local_align(s0, s1, PAPER_SCHEME)
        assert result.best_score == want


class TestConfigSweeps:
    @pytest.mark.parametrize("sra_rows", [0, 1, 2, 8, 32])
    def test_sra_sizes_do_not_change_result(self, rng, sra_rows):
        s0, s1 = make_pair(rng, 350, 330)
        result, config = run_small(s0, s1, sra_rows=sra_rows)
        _, want = local_align(s0, s1, config.scheme)
        assert result.best_score == want
        if result.alignment is not None:
            assert result.alignment.score(s0, s1, config.scheme) == want

    @pytest.mark.parametrize("mps", [4, 16, 64, 1024])
    def test_max_partition_size_sweep(self, rng, mps):
        s0, s1 = make_pair(rng, 300, 300)
        result, config = run_small(s0, s1, max_partition_size=mps)
        _, want = local_align(s0, s1, config.scheme)
        assert result.best_score == want

    def test_ablations_do_not_change_result(self, rng):
        s0, s1 = make_pair(rng, 350, 320)
        base = small_config(block_rows=32, n=len(s1), sra_rows=4)
        scores = set()
        for orth in (True, False):
            for bal in (True, False):
                config = dataclasses.replace(
                    base, stage4_orthogonal=orth, stage4_balanced=bal)
                scores.add(CUDAlign(config).run(s0, s1).best_score)
        assert len(scores) == 1

    def test_workers_do_not_change_result(self, rng):
        s0, s1 = make_pair(rng, 350, 320)
        serial, config = run_small(s0, s1)
        parallel = CUDAlign(dataclasses.replace(config, workers=4)).run(s0, s1)
        assert parallel.best_score == serial.best_score
        np.testing.assert_array_equal(parallel.alignment.ops,
                                      serial.alignment.ops)


class TestPropertyBased:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), kind=st.integers(0, 2),
           sra_rows=st.integers(0, 6))
    def test_pipeline_score_equals_reference(self, seed, kind, sra_rows):
        """The headline invariant: for arbitrary inputs and SRA budgets the
        pipeline's alignment rescores exactly to the optimal local score."""
        rng = np.random.default_rng(seed)
        if kind == 0:
            s0, s1 = homologous_pair(150 + seed % 100, rng)
        elif kind == 1:
            s0, s1 = embedded_core_pair(160, 140, 40, rng)
        else:
            s0, s1 = random_dna(120, rng, "A"), random_dna(130, rng, "B")
        config = small_config(block_rows=16, n=len(s1), sra_rows=sra_rows,
                              max_partition_size=8)
        result = CUDAlign(config).run(s0, s1, visualize=False)
        _, want = local_align(s0, s1, config.scheme)
        assert result.best_score == want
        if want > 0:
            assert result.alignment.score(s0, s1, config.scheme) == want

    @settings(max_examples=15, deadline=None)
    @given(t0=st.text(alphabet="ACGTN", min_size=40, max_size=120),
           t1=st.text(alphabet="ACGTN", min_size=40, max_size=120))
    def test_pipeline_handles_arbitrary_text(self, t0, t1):
        s0 = Sequence.from_text(t0)
        s1 = Sequence.from_text(t1)
        config = small_config(block_rows=16, n=len(s1), sra_rows=2,
                              max_partition_size=8)
        result = CUDAlign(config).run(s0, s1, visualize=False)
        _, want = local_align(s0, s1, config.scheme)
        assert result.best_score == want


class TestStatistics:
    def test_crosspoint_counts_monotone(self, rng):
        s0, s1 = make_pair(rng, 400, 380)
        result, _ = run_small(s0, s1, sra_rows=6, max_partition_size=8)
        counts = result.crosspoint_counts
        assert counts["L1"] == 1
        assert counts.get("L2", 2) <= counts.get("L3", 10**9)
        assert counts.get("L3", 2) <= counts.get("L4", 10**9)

    def test_stage_times_recorded(self, rng):
        s0, s1 = make_pair(rng, 300, 300)
        result, _ = run_small(s0, s1)
        walls = result.stage_wall_seconds()
        assert set(walls) == {"1", "2", "3", "4", "5", "6"}
        assert walls["1"] > 0
        assert result.modeled_total_seconds > 0

    def test_matrix_cells(self, rng):
        s0, s1 = make_pair(rng, 123, 77)
        result, _ = run_small(s0, s1)
        assert result.matrix_cells == 123 * 77
