"""Tests for the HTTP gateway (repro.gateway).

Everything network-facing goes over a real localhost socket — the
protocol tests exercise the exact byte stream a client sees, not the
handlers in isolation.
"""

from __future__ import annotations

import json
import http.client
import time

import pytest

from repro.errors import ConfigError
from repro.gateway import (
    EventBroker,
    GatewayPolicy,
    GatewayRunner,
    ServiceDispatcher,
    TokenBucket,
    map_priority_class,
)
from repro.service import JobState, execute_job, spec_from_payload
from repro.telemetry import QueueSink

#: Small catalog jobs finish in well under a second each.
TINY = {"catalog": "162Kx172K", "scale": 8192, "block_rows": 32}


# ------------------------------------------------------------------ helpers
class Client:
    """A thin http.client wrapper returning (status, headers, json)."""

    def __init__(self, port: int):
        self.conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)

    def request(self, method: str, path: str, payload=None, *,
                tenant: str | None = None, raw_body: bytes | None = None):
        headers = {"Content-Type": "application/json"}
        if tenant is not None:
            headers["X-Repro-Tenant"] = tenant
        body = raw_body
        if payload is not None:
            body = json.dumps(payload).encode()
        self.conn.request(method, path, body=body, headers=headers)
        response = self.conn.getresponse()
        data = response.read()
        try:
            decoded = json.loads(data) if data else None
        except json.JSONDecodeError:
            decoded = data
        return response.status, dict(response.getheaders()), decoded

    def close(self):
        self.conn.close()


def wait_terminal(client: Client, job_id: str, timeout: float = 60.0) -> dict:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, _, snapshot = client.request("GET", f"/v1/jobs/{job_id}")
        assert status == 200
        if snapshot["state"] in JobState.TERMINAL:
            return snapshot
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} did not finish within {timeout}s")


def read_sse(port: int, path: str, *, timeout: float = 30.0) -> list[dict]:
    """Consume one SSE stream to its end; returns the decoded events."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    conn.request("GET", path)
    response = conn.getresponse()
    assert response.status == 200
    assert response.getheader("Content-Type") == "text/event-stream"
    events = []
    current: dict = {}
    for raw in response:
        line = raw.decode("utf-8").rstrip("\n")
        if not line:
            if current:
                events.append(current)
                current = {}
            continue
        if line.startswith(":"):
            continue
        field, _, value = line.partition(": ")
        if field == "id":
            current["id"] = int(value)
        elif field == "event":
            current["event"] = value
        elif field == "data":
            current["data"] = json.loads(value)
    conn.close()
    return events


@pytest.fixture
def gateway_factory(tmp_path):
    """Start gateways on ephemeral ports; everything stops at teardown."""
    runners = []

    def factory(policy: GatewayPolicy | None = None, *, workers: int = 1,
                resume: bool = False, name: str = "svc",
                max_body: int = 1 << 20) -> GatewayRunner:
        dispatcher = ServiceDispatcher(str(tmp_path / name), workers=workers,
                                       resume=resume, poll_seconds=0.01)
        runner = GatewayRunner(dispatcher, policy, port=0,
                               max_body=max_body).start()
        runners.append(runner)
        return runner

    yield factory
    for runner in runners:
        runner.stop()


# ------------------------------------------------------------------- policy
class TestPolicy:
    def test_token_bucket_rate(self):
        clock = [0.0]
        bucket = TokenBucket(rate=2.0, burst=2.0, clock=lambda: clock[0])
        assert bucket.take() == 0.0
        assert bucket.take() == 0.0          # burst exhausted
        wait = bucket.take()
        assert wait == pytest.approx(0.5)    # 1 token at 2/s
        clock[0] += 0.5
        assert bucket.take() == 0.0
        with pytest.raises(ConfigError):
            TokenBucket(rate=0, burst=1)

    def test_priority_classes(self):
        assert map_priority_class("interactive") > \
               map_priority_class("normal") > map_priority_class("batch")
        with pytest.raises(ConfigError, match="priority class"):
            map_priority_class("urgent")

    def test_admit_quota_and_depth(self):
        clock = [0.0]
        policy = GatewayPolicy(max_active_per_tenant=2, max_queue_depth=4,
                               clock=lambda: clock[0])
        ok = policy.admit("a", tenant_active=0, queue_depth=0)
        assert ok and ok.retry_after == 0.0
        over = policy.admit("a", tenant_active=2, queue_depth=1)
        assert not over and "active jobs" in over.reason
        deep = policy.admit("b", tenant_active=0, queue_depth=4)
        assert not deep and "queue depth" in deep.reason
        assert deep.retry_after >= 1.0
        stats = policy.stats()
        assert stats["a"] == {"submitted": 1, "rejected": 1}
        assert stats["b"] == {"submitted": 0, "rejected": 1}

    def test_admit_rate_limit(self):
        clock = [0.0]
        policy = GatewayPolicy(rate_per_tenant=1.0, burst_per_tenant=1.0,
                               clock=lambda: clock[0])
        assert policy.admit("a", tenant_active=0, queue_depth=0)
        throttled = policy.admit("a", tenant_active=0, queue_depth=0)
        assert not throttled and "rate" in throttled.reason
        assert throttled.retry_after == pytest.approx(1.0)


# ------------------------------------------------------------------- broker
class TestEventBroker:
    def test_backlog_then_live_exactly_once(self):
        import asyncio

        broker = EventBroker()
        broker.publish("j", "queued", {"n": 1})
        broker.publish("j", "running", {"n": 2})

        async def consume():
            backlog, queue = broker.subscribe("j")
            broker.publish("j", "succeeded", {"n": 3}, final=True)
            live = await asyncio.wait_for(queue.get(), timeout=5)
            broker.unsubscribe("j", queue)
            return backlog, live

        backlog, live = asyncio.run(consume())
        assert [e["event"] for e in backlog] == ["queued", "running"]
        assert live["event"] == "succeeded" and live["final"]
        seqs = [e["seq"] for e in backlog] + [live["seq"]]
        assert seqs == sorted(seqs)


# ---------------------------------------------------------------- telemetry
class TestQueueSink:
    def test_bounded_and_lossy_on_the_old_side(self):
        sink = QueueSink(maxsize=2)
        for value in range(4):
            sink.on_metric("m", "counter", value)
        assert sink.dropped == 2
        drained = sink.drain()
        assert [record["value"] for record in drained] == [2, 3]
        assert sink.drain() == []


# ----------------------------------------------------------------- protocol
class TestProtocol:
    def test_submit_status_result_round_trip(self, gateway_factory,
                                             tmp_path):
        runner = gateway_factory()
        client = Client(runner.port)
        status, headers, body = client.request(
            "POST", "/v1/jobs", {"job_id": "rt", **TINY}, tenant="alice")
        assert status == 201
        assert headers["Location"] == "/v1/jobs/rt"
        assert body["tenant"] == "alice"

        snapshot = wait_terminal(client, "rt")
        assert snapshot["state"] == JobState.SUCCEEDED
        assert snapshot["tenant"] == "alice"

        status, headers, result = client.request("GET", "/v1/jobs/rt/result")
        assert status == 200
        assert headers["X-Repro-Digest"].startswith("sha256:")
        # Bit-identical to a direct in-process run of the same spec.
        direct = execute_job(spec_from_payload(dict(TINY)),
                             str(tmp_path / "direct"), attempt=1)
        for key in ("best_score", "alignment_length", "start", "end",
                    "digest0", "digest1"):
            assert result["result"][key] == direct[key], key
        client.close()

    def test_rejections(self, gateway_factory):
        runner = gateway_factory(max_body=512)
        client = Client(runner.port)
        # Malformed JSON body.
        status, _, body = client.request("POST", "/v1/jobs",
                                         raw_body=b"{not json")
        assert status == 400 and "malformed JSON" in body["error"]
        # Schema violation: unknown field (the specfile schema gate).
        status, _, body = client.request(
            "POST", "/v1/jobs", {**TINY, "bogus": 1})
        assert status == 400 and "unknown job spec" in body["error"]
        # Invalid knob values surface the ConfigError message.
        status, _, body = client.request(
            "POST", "/v1/jobs", {**TINY, "max_retries": -1})
        assert status == 400 and "max_retries" in body["error"]
        # Oversized body.
        status, _, body = client.request(
            "POST", "/v1/jobs", raw_body=b"x" * 1024)
        assert status == 413
        client.close()   # 413 closes the connection

        client = Client(runner.port)
        # Unknown routes and methods.
        assert client.request("GET", "/v1/nope")[0] == 404
        assert client.request("GET", "/v1/jobs/ghost")[0] == 404
        assert client.request("GET", "/v1/jobs/ghost/result")[0] == 404
        assert client.request("GET", "/v1/jobs/ghost/events")[0] == 404
        assert client.request("PUT", "/v1/jobs")[0] == 405
        # Duplicate job id -> 409.
        assert client.request("POST", "/v1/jobs",
                              {"job_id": "dup", **TINY})[0] == 201
        status, _, body = client.request("POST", "/v1/jobs",
                                         {"job_id": "dup", **TINY})
        assert status == 409 and "already submitted" in body["error"]
        client.close()

    def test_healthz_and_metrics(self, gateway_factory):
        runner = gateway_factory()
        client = Client(runner.port)
        status, _, health = client.request("GET", "/v1/healthz")
        assert status == 200 and health["status"] == "ok"
        status, _, metrics = client.request("GET", "/v1/metrics")
        assert status == 200
        assert "metrics" in metrics and "tenants" in metrics
        client.close()


# -------------------------------------------------------------- backpressure
class TestBackpressure:
    def test_tenant_concurrency_quota_429(self, gateway_factory):
        runner = gateway_factory(GatewayPolicy(max_active_per_tenant=2))
        runner.dispatcher.pause()    # pin submissions in PENDING
        client = Client(runner.port)
        assert client.request("POST", "/v1/jobs",
                              {"job_id": "q1", **TINY, "seed": 1},
                              tenant="alice")[0] == 201
        assert client.request("POST", "/v1/jobs",
                              {"job_id": "q2", **TINY, "seed": 2},
                              tenant="alice")[0] == 201
        status, headers, body = client.request(
            "POST", "/v1/jobs", {"job_id": "q3", **TINY, "seed": 3},
            tenant="alice")
        assert status == 429
        assert int(headers["Retry-After"]) >= 1
        assert "active jobs" in body["error"]
        # A different tenant is not throttled by alice's quota.
        assert client.request("POST", "/v1/jobs",
                              {"job_id": "q4", **TINY, "seed": 4},
                              tenant="bob")[0] == 201
        # Draining the queue frees the quota.
        runner.dispatcher.resume()
        for job_id in ("q1", "q2", "q4"):
            wait_terminal(client, job_id)
        status, _, _ = client.request(
            "POST", "/v1/jobs", {"job_id": "q3", **TINY, "seed": 3},
            tenant="alice")
        assert status == 201
        wait_terminal(client, "q3")
        client.close()

    def test_queue_depth_backpressure_429(self, gateway_factory):
        runner = gateway_factory(GatewayPolicy(max_queue_depth=2))
        runner.dispatcher.pause()
        client = Client(runner.port)
        for seed in (1, 2):
            assert client.request(
                "POST", "/v1/jobs", {**TINY, "seed": seed},
                tenant=f"t{seed}")[0] == 201
        status, headers, body = client.request(
            "POST", "/v1/jobs", {**TINY, "seed": 3}, tenant="t3")
        assert status == 429
        assert "queue depth" in body["error"]
        assert int(headers["Retry-After"]) >= 1
        runner.dispatcher.resume()
        client.close()


# ---------------------------------------------------------------------- SSE
class TestEvents:
    def test_sse_lifecycle_ordering(self, gateway_factory):
        runner = gateway_factory()
        runner.dispatcher.pause()
        client = Client(runner.port)
        assert client.request("POST", "/v1/jobs",
                              {"job_id": "sse", **TINY})[0] == 201
        runner.dispatcher.resume()
        events = read_sse(runner.port, "/v1/jobs/sse/events")
        names = [e["event"] for e in events]
        # Lifecycle order, telemetry spans interleaved after completion.
        assert names[0] == "queued"
        assert "running" in names
        assert names.index("queued") < names.index("running")
        terminal = [n for n in names if n in ("succeeded", "cached")]
        assert terminal, names
        assert events[-1]["data"]["final"] is True
        ids = [e["id"] for e in events]
        assert ids == sorted(ids)
        # The terminal event carries the result summary.
        final = events[-1]
        assert final["data"]["data"]["result"]["best_score"] > 0
        client.close()

    def test_sse_backlog_replay_after_completion(self, gateway_factory):
        runner = gateway_factory()
        client = Client(runner.port)
        client.request("POST", "/v1/jobs", {"job_id": "late", **TINY})
        wait_terminal(client, "late")
        # Subscribing after the fact still yields the whole story.
        events = read_sse(runner.port, "/v1/jobs/late/events")
        names = [e["event"] for e in events]
        assert names[0] == "queued" and "succeeded" in names
        client.close()


# -------------------------------------------------------------- cancellation
class TestCancellation:
    def test_cancel_pending_job(self, gateway_factory):
        runner = gateway_factory()
        runner.dispatcher.pause()
        client = Client(runner.port)
        client.request("POST", "/v1/jobs", {"job_id": "cx", **TINY},
                       tenant="alice")
        status, _, body = client.request("DELETE", "/v1/jobs/cx",
                                         tenant="alice")
        assert status == 200 and body["state"] == "cancelled"
        status, _, snapshot = client.request("GET", "/v1/jobs/cx")
        assert snapshot["state"] == JobState.CANCELLED
        # The result is gone, not pending.
        assert client.request("GET", "/v1/jobs/cx/result")[0] == 410
        # Cancelling again conflicts.
        assert client.request("DELETE", "/v1/jobs/cx",
                              tenant="alice")[0] == 409
        # The SSE stream ends on the cancellation event.
        events = read_sse(runner.port, "/v1/jobs/cx/events")
        assert events[-1]["event"] == "cancelled"
        assert events[-1]["data"]["final"] is True
        client.close()

    def test_cancel_requires_matching_tenant(self, gateway_factory):
        runner = gateway_factory()
        runner.dispatcher.pause()
        client = Client(runner.port)
        client.request("POST", "/v1/jobs", {"job_id": "own", **TINY},
                       tenant="alice")
        status, _, body = client.request("DELETE", "/v1/jobs/own",
                                         tenant="mallory")
        assert status == 403 and "alice" in body["error"]
        assert client.request("DELETE", "/v1/jobs/own",
                              tenant="alice")[0] == 200
        client.close()


# ------------------------------------------------------------- acceptance
class TestAcceptance:
    def test_two_tenants_mixed_priorities_end_to_end(self, gateway_factory,
                                                     tmp_path):
        """The ISSUE demo: >=8 jobs across 2 tenants with mixed priority
        classes, progress streamed over SSE, every result retrieved and
        bit-identical to a direct in-process run, and a 429 observed when
        the per-tenant concurrency quota is exceeded."""
        runner = gateway_factory(
            GatewayPolicy(max_active_per_tenant=4, max_queue_depth=64),
            workers=2)
        client = Client(runner.port)

        submissions = []   # (job_id, spec payload)
        for index in range(8):
            tenant = ("alice", "bob")[index % 2]
            klass = ("interactive", "normal", "batch")[index % 3]
            job_id = f"{tenant}-{index}"
            payload = {"job_id": job_id, **TINY, "seed": index,
                       "priority_class": klass}
            status, _, body = client.request("POST", "/v1/jobs", payload,
                                             tenant=tenant)
            assert status == 201, body
            assert body["priority"] == {"interactive": 20, "normal": 10,
                                        "batch": 0}[klass]
            submissions.append((job_id, payload, tenant))

        # Ninth rapid submission for alice exceeds her active quota
        # while her first four are still queued/running -> 429.  (If the
        # tiny jobs drained faster than the submissions, the quota can
        # legitimately admit it — pause/submit/resume pins the race.)
        runner.dispatcher.pause()
        active = runner.dispatcher.tenant_active("alice")
        overflow_status = None
        for seed in range(100, 100 + 5 - active):
            overflow_status, headers, _ = client.request(
                "POST", "/v1/jobs", {**TINY, "seed": seed}, tenant="alice")
            if overflow_status == 429:
                assert int(headers["Retry-After"]) >= 1
                break
        assert overflow_status == 429
        runner.dispatcher.resume()

        for job_id, payload, tenant in submissions:
            snapshot = wait_terminal(client, job_id)
            assert snapshot["state"] in (JobState.SUCCEEDED, JobState.CACHED)
            status, _, body = client.request("GET",
                                             f"/v1/jobs/{job_id}/result")
            assert status == 200
            direct_payload = {k: v for k, v in payload.items()
                              if k != "priority_class"}
            direct_payload["job_id"] = f"direct-{job_id}"
            direct = execute_job(spec_from_payload(direct_payload),
                                 str(tmp_path / f"direct-{job_id}"),
                                 attempt=1)
            for key in ("best_score", "alignment_length", "start", "end",
                        "digest0", "digest1"):
                assert body["result"][key] == direct[key], (job_id, key)

        # SSE: every job's stream replays to a terminal event.
        for job_id, _, _ in submissions[:3]:
            events = read_sse(runner.port, f"/v1/jobs/{job_id}/events")
            assert events[-1]["data"]["final"] is True

        # Tenancy is visible in listings and metrics.
        status, _, body = client.request("GET", "/v1/jobs?tenant=alice")
        alice_jobs = {j["job_id"] for j in body["jobs"]}
        assert {j for j, _, t in submissions if t == "alice"} <= alice_jobs
        status, _, metrics = client.request("GET", "/v1/metrics")
        assert metrics["tenants"]["alice"]["rejected"] >= 1
        assert metrics["metrics"]["service.jobs_submitted"] >= 8
        client.close()


# ------------------------------------------------------------ dispatcher
class TestDispatcher:
    def test_resume_recovers_accepted_jobs(self, tmp_path):
        """Journal recovery without HTTP: accepted-but-unfinished jobs
        from a dead dispatcher run to completion under resume=True."""
        root = str(tmp_path / "svc")
        first = ServiceDispatcher(root, workers=1)
        first.pause()
        first.start()
        spec = spec_from_payload({"job_id": "recov", **TINY})
        first.submit(spec, tenant="alice")
        # Simulate a crash: stop the pump without draining; the journal
        # already carries the submission.
        first.stop()
        first.service.pool.shutdown()

        second = ServiceDispatcher(root, workers=1, resume=True)
        second.start()
        try:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                snapshot = second.snapshot("recov")
                if snapshot and snapshot["state"] in JobState.TERMINAL:
                    break
                time.sleep(0.05)
            assert second.snapshot("recov")["state"] == JobState.SUCCEEDED
        finally:
            second.close()
