"""Tests for the supervised runtime (repro.service.supervision et al.):

heartbeat stall detection, poison-job quarantine, retry backoff with a
journaled ``not_before``, disk/RSS resource guards, pump self-health and
the gateway's component-level ``/healthz`` — ending in the chaos
acceptance scenario (hang + crash-loop + healthy jobs through the
gateway, plus the abandoned-journal replay).
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.errors import ConfigError
from repro.gateway import GatewayPolicy, GatewayRunner, ServiceDispatcher
from repro.service import (
    AlignmentService,
    DiskGuard,
    JOURNAL_NAME,
    JobQueue,
    JobSpec,
    JobState,
    RetryBackoff,
    SupervisorConfig,
    execute_job,
    read_diagnostics,
    replay_journal,
    rss_bytes,
)

from tests.test_gateway import TINY, Client, wait_terminal

#: Fast supervision defaults for tests: sub-second stall bound, tiny
#: backoff so retries don't slow suites down, quarantine on the 2nd crash.
FAST = dict(stall_seconds=0.75, crash_loop_threshold=2,
            backoff=RetryBackoff(base_seconds=0.01))


def tiny_spec(job_id: str, seed: int = 0, **extra) -> JobSpec:
    return JobSpec(job_id=job_id, seed=seed, **TINY, **extra)


def journal_of(service: AlignmentService) -> str:
    return os.path.join(service.root, JOURNAL_NAME)


# ----------------------------------------------------------- RetryBackoff
class TestRetryBackoff:
    def test_deterministic_per_job_and_count(self):
        backoff = RetryBackoff(seed=42)
        assert [backoff.delay("a", n) for n in (1, 2, 3)] \
            == [backoff.delay("a", n) for n in (1, 2, 3)]
        # Different jobs jitter differently (decorrelated retries).
        assert backoff.delay("a", 1) != backoff.delay("b", 1)

    def test_exponential_growth_within_jitter_bounds(self):
        backoff = RetryBackoff(base_seconds=0.1, factor=2.0,
                               cap_seconds=60.0, jitter=0.25)
        for n in range(1, 8):
            raw = min(60.0, 0.1 * 2.0 ** (n - 1))
            delay = backoff.delay("job", n)
            assert raw * 0.75 <= delay <= raw * 1.25

    def test_cap(self):
        backoff = RetryBackoff(base_seconds=1.0, factor=10.0,
                               cap_seconds=5.0, jitter=0.0)
        assert backoff.delay("j", 50) == 5.0

    def test_zero_count_is_immediate(self):
        assert RetryBackoff().delay("j", 0) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            RetryBackoff(base_seconds=-1)
        with pytest.raises(ConfigError):
            RetryBackoff(factor=0.5)
        with pytest.raises(ConfigError):
            RetryBackoff(jitter=1.0)


# --------------------------------------------------------------- DiskGuard
class TestDiskGuard:
    def test_hysteresis(self):
        free = iter([100, 10, 100, 200, 150])
        guard = DiskGuard("/tmp", low_water_bytes=64, high_water_bytes=128,
                          probe=lambda: next(free))
        # 100 free: above low water, runs.  10: trips.  100: still below
        # high water, stays tripped.  200: recovers.  150: stays up.
        assert [guard.poll() for _ in range(5)] \
            == [False, True, True, False, False]

    def test_default_probe_reads_real_filesystem(self, tmp_path):
        guard = DiskGuard(tmp_path, low_water_bytes=1)
        assert guard.poll() is False
        assert guard.free_bytes > 0

    def test_validation(self):
        with pytest.raises(ConfigError):
            DiskGuard("/tmp", low_water_bytes=0)
        with pytest.raises(ConfigError):
            DiskGuard("/tmp", low_water_bytes=100, high_water_bytes=50)


# --------------------------------------------------------------- rss_bytes
class TestRssBytes:
    def test_unknown_pid_is_none(self):
        assert rss_bytes(2 ** 22 + 12345) is None

    @pytest.mark.skipif(rss_bytes(os.getpid()) is None,
                        reason="/proc not available on this platform")
    def test_own_process_positive(self):
        assert rss_bytes(os.getpid()) > 1024 * 1024   # >1 MiB resident


# ------------------------------------------------- queue: backoff + replay
class TestQueueBackoff:
    def test_mark_retry_not_before_holds_job_back(self, tmp_path):
        queue = JobQueue(tmp_path / JOURNAL_NAME)
        a = queue.submit(tiny_spec("a"))
        b = queue.submit(tiny_spec("b", seed=1))
        queue.mark_running(a)
        queue.mark_retry(a, "boom", not_before=time.time() + 60)
        # a is pending but backed off: b dispatches first.
        assert queue.next_pending().job_id == "b"
        # Once the clock passes not_before, a wins its original slot back.
        assert queue.next_pending(now=time.time() + 61).job_id == "a"
        assert queue.next_not_before() == a.not_before

    def test_mark_running_clears_not_before(self, tmp_path):
        queue = JobQueue(tmp_path / JOURNAL_NAME)
        a = queue.submit(tiny_spec("a"))
        queue.mark_running(a)
        queue.mark_retry(a, "boom", not_before=time.time() - 1)
        queue.mark_running(a)
        assert a.not_before is None

    def test_not_before_survives_replay(self, tmp_path):
        journal = tmp_path / JOURNAL_NAME
        queue = JobQueue(journal)
        a = queue.submit(tiny_spec("a"))
        hold = time.time() + 3600
        queue.mark_running(a)
        queue.mark_retry(a, "boom", not_before=hold)
        records, events, corrupt = replay_journal(journal)
        assert corrupt == 0
        assert records[0].not_before == pytest.approx(hold)
        recovered = JobQueue.recover(journal)
        assert recovered.next_pending() is None            # still held
        assert recovered.next_pending(now=hold + 1).job_id == "a"

    def test_hot_requeue_regression_mixed_retry_cancel_replay(self, tmp_path):
        """Satellite: a replay of mixed retry/cancel events must keep
        FIFO-within-priority — the retried job resumes its *original*
        submission slot, cancelled jobs drop out cleanly."""
        journal = tmp_path / JOURNAL_NAME
        queue = JobQueue(journal)
        a = queue.submit(tiny_spec("a"))
        b = queue.submit(tiny_spec("b", seed=1))
        c = queue.submit(tiny_spec("c", seed=2))
        queue.mark_running(a)
        queue.mark_retry(a, "boom")                  # no backoff: hot path
        queue.mark_cancelled(b, "user said so")
        # Live queue: a (original slot) before c, b gone.
        assert queue.next_pending().job_id == "a"
        recovered = JobQueue.recover(journal)
        assert recovered.get("b").state == JobState.CANCELLED
        first = recovered.next_pending()
        assert first.job_id == "a"
        recovered.mark_running(first)
        assert recovered.next_pending().job_id == "c"

    def test_interrupted_does_not_charge_retry_budget(self, tmp_path):
        journal = tmp_path / JOURNAL_NAME
        queue = JobQueue(journal)
        a = queue.submit(tiny_spec("a", max_retries=0))
        queue.mark_running(a)
        queue.mark_interrupted(a, "stall killed")
        assert a.state == JobState.PENDING
        assert a.failures == 0
        assert a.crashes == 1 and a.interruptions == 1
        records, _, _ = replay_journal(journal)
        assert records[0].failures == 0
        assert records[0].crashes == 1

    def test_quarantine_is_terminal_and_replays(self, tmp_path):
        journal = tmp_path / JOURNAL_NAME
        queue = JobQueue(journal)
        a = queue.submit(tiny_spec("a"))
        queue.mark_running(a)
        a.crashes = 3
        queue.mark_quarantined(a, "crash loop", diagnostics="/d.json")
        assert a.done
        with pytest.raises(ConfigError):
            queue.mark_cancelled(a)
        recovered = JobQueue.recover(journal)
        replayed = recovered.get("a")
        assert replayed.state == JobState.QUARANTINED
        assert replayed.crashes == 3
        assert replayed.diagnostics == "/d.json"
        assert recovered.next_pending() is None


# ------------------------------------------------------ stall detection
class TestStallDetection:
    def test_hang_before_first_heartbeat_is_killed_and_retried(self, tmp_path):
        """Satellite: a child blocked before ever writing to its result
        pipe, with NO deadline — only the stall detector can reap it."""
        service = AlignmentService(tmp_path / "svc", workers=1,
                                   supervisor=SupervisorConfig(**FAST))
        spec = tiny_spec("wedge", inject_hang_row=0)
        assert spec.deadline_seconds is None
        service.submit(spec)
        tick = time.monotonic()
        service.run()
        elapsed = time.monotonic() - tick
        service.close()
        record = service.queue.get("wedge")
        assert record.state == JobState.SUCCEEDED
        assert record.attempts == 2
        assert record.failures == 0          # stall charged no retry budget
        assert record.crashes == 1
        # Killed within the stall bound (plus scheduling slack), not hours.
        assert elapsed < 0.75 + 10.0
        snapshot = service.telemetry.metrics.snapshot()
        assert snapshot["supervision.stalls"] == 1
        assert snapshot["supervision.interrupted"] == 1

    def test_stall_kill_resumes_from_checkpoint_bit_identical(self, tmp_path):
        """The killed attempt's checkpoint feeds the retry, and the final
        result is bit-identical to an uninjected direct run."""
        service = AlignmentService(tmp_path / "svc", workers=1,
                                   supervisor=SupervisorConfig(**FAST))
        service.submit(tiny_spec("late-hang", inject_hang_row=200,
                                 checkpoint_every_rows=64))
        service.run()
        service.close()
        record = service.queue.get("late-hang")
        assert record.state == JobState.SUCCEEDED
        assert record.result["resumed_from_row"] >= 64
        clean = execute_job(tiny_spec("clean", checkpoint_every_rows=64),
                            str(tmp_path / "clean"), attempt=1)
        for key in ("best_score", "alignment_length", "start", "end"):
            assert record.result[key] == clean[key], key

    def test_healthy_jobs_unaffected_by_stall_bound(self, tmp_path):
        service = AlignmentService(tmp_path / "svc", workers=2,
                                   supervisor=SupervisorConfig(**FAST))
        service.submit_many([tiny_spec(f"ok-{i}", seed=i) for i in range(3)])
        service.run()
        service.close()
        states = {r.job_id: r.state for r in service.queue.records()}
        assert set(states.values()) == {JobState.SUCCEEDED}
        assert "supervision.stalls" not in \
            service.telemetry.metrics.snapshot()


# -------------------------------------------------------------- RSS guard
@pytest.mark.skipif(rss_bytes(os.getpid()) is None,
                    reason="/proc not available on this platform")
class TestRssGuard:
    def test_over_budget_attempt_fails_as_memory_limit(self, tmp_path):
        service = AlignmentService(tmp_path / "svc", workers=1,
                                   supervisor=SupervisorConfig(**FAST))
        # 1 MiB ceiling: any Python child exceeds it instantly.
        service.submit(tiny_spec("hog", max_rss_bytes=1 << 20,
                                 max_retries=0))
        service.run()
        service.close()
        record = service.queue.get("hog")
        assert record.state == JobState.FAILED
        assert "memory limit exceeded" in record.error
        assert record.failures == 1          # honest failure, not a crash
        assert record.crashes == 0
        snapshot = service.telemetry.metrics.snapshot()
        assert snapshot["supervision.memory_kills"] == 1


# ------------------------------------------------------------- quarantine
class TestQuarantine:
    def run_crash_loop(self, root, threshold=2):
        service = AlignmentService(
            root, workers=1,
            supervisor=SupervisorConfig(
                stall_seconds=0.75, crash_loop_threshold=threshold,
                backoff=RetryBackoff(base_seconds=0.01)))
        # Crashes on every attempt; max_retries is irrelevant because
        # crashes charge the quarantine ledger, not the retry budget.
        service.submit(tiny_spec("poison", inject_crash_attempts=99,
                                 max_retries=5))
        service.submit(tiny_spec("fine", seed=3))
        service.run()
        service.close()
        return service

    def test_crash_loop_quarantines_with_diagnostics(self, tmp_path):
        service = self.run_crash_loop(tmp_path / "svc")
        poison = service.queue.get("poison")
        assert poison.state == JobState.QUARANTINED
        assert poison.crashes == 2
        assert poison.failures == 0
        assert service.queue.get("fine").state == JobState.SUCCEEDED
        bundle = read_diagnostics(service.job_workdir("poison"))
        assert bundle["state"] == JobState.QUARANTINED
        assert bundle["job_id"] == "poison"
        assert bundle["crashes"] == 2
        assert bundle["spec"]["inject_crash_attempts"] == 99
        assert len(bundle["attempt_log"]) == 2
        assert all("worker died" in entry["error"]
                   for entry in bundle["attempt_log"])
        assert poison.diagnostics == os.path.join(
            service.job_workdir("poison"), "diagnostics.json")
        snapshot = service.telemetry.metrics.snapshot()
        assert snapshot["supervision.quarantined"] == 1

    def test_cli_jobs_diagnose_renders_bundle(self, tmp_path, capsys):
        from repro.cli import main

        root = tmp_path / "svc"
        self.run_crash_loop(root)
        assert main(["jobs", "diagnose", "poison",
                     "--root", str(root)]) == 0
        out = capsys.readouterr().out
        assert "poison: quarantined" in out
        assert "crashes: 2" in out
        assert "worker died" in out
        # Unknown/never-quarantined job: clean error, not a traceback.
        assert main(["jobs", "diagnose", "fine", "--root", str(root)]) == 1
        assert "no diagnostics bundle" in capsys.readouterr().err

    def test_cli_jobs_table_lists_quarantined(self, tmp_path, capsys):
        from repro.cli import main

        root = tmp_path / "svc"
        self.run_crash_loop(root)
        assert main(["jobs", "--root", str(root)]) == 0
        out = capsys.readouterr().out
        assert "quarantined" in out

    def test_abandoned_journal_replays_to_same_terminal_states(
            self, tmp_path):
        """Kill-mid-chaos equivalence: drive a crash-looper partway (one
        interruption journaled, with its backoff), abandon the service
        without letting it finish, then recover the journal in a fresh
        service — the replay must restore counters and ``not_before``,
        and resuming must land on the same terminal states."""
        root = tmp_path / "svc"
        supervisor = SupervisorConfig(
            crash_loop_threshold=2, backoff=RetryBackoff(base_seconds=0.2))
        service = AlignmentService(root, workers=1, supervisor=supervisor)
        service.submit(tiny_spec("poison", inject_crash_attempts=99))
        service.submit(tiny_spec("fine", seed=4))
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            service.step()
            if service.queue.get("poison").interruptions >= 1:
                break
            time.sleep(0.01)
        record = service.queue.get("poison")
        assert record.interruptions >= 1
        # Abandon: kill the attempts, leave the journal where it lies.
        service.pool.shutdown()
        service.telemetry.close()

        records, _, corrupt = replay_journal(os.path.join(root, JOURNAL_NAME))
        assert corrupt == 0
        replayed = {r.job_id: r for r in records}
        assert replayed["poison"].crashes == record.crashes
        if replayed["poison"].state == JobState.PENDING:
            assert replayed["poison"].not_before is not None

        resumed = AlignmentService(root, workers=1, resume=True,
                                   supervisor=supervisor)
        resumed.run()
        resumed.close()
        assert resumed.queue.get("poison").state == JobState.QUARANTINED
        assert resumed.queue.get("fine").state in (JobState.SUCCEEDED,
                                                   JobState.CACHED)
        bundle = read_diagnostics(resumed.job_workdir("poison"))
        assert bundle["state"] == JobState.QUARANTINED


# -------------------------------------------------------------- disk guard
class TestDiskGuardService:
    def test_pause_evict_resume(self, tmp_path):
        free = {"bytes": 10 * 1024 * 1024}
        supervisor = SupervisorConfig(
            backoff=RetryBackoff(base_seconds=0.01),
            disk_low_water_bytes=1024 * 1024,
            disk_high_water_bytes=2 * 1024 * 1024,
            disk_probe=lambda: free["bytes"])
        service = AlignmentService(tmp_path / "svc", workers=1,
                                   supervisor=supervisor)
        # Prime the cache with one finished job.
        service.submit(tiny_spec("warm"))
        service.run()
        assert len(service.cache) == 1
        # Trip the guard: dispatch pauses, the cache is evicted.
        free["bytes"] = 512 * 1024
        service.submit(tiny_spec("held", seed=9))
        for _ in range(3):
            service.step()
        assert service.disk_paused
        assert service.queue.get("held").state == JobState.PENDING
        assert len(service.cache) == 0
        snapshot = service.telemetry.metrics.snapshot()
        assert snapshot["supervision.disk_paused"] == 1
        assert snapshot["supervision.disk_pauses"] == 1
        assert snapshot["supervision.cache_evicted"] == 1
        # Recover past high water: dispatch resumes and the job lands.
        free["bytes"] = 10 * 1024 * 1024
        service.run()
        service.close()
        assert not service.disk_paused
        assert service.queue.get("held").state == JobState.SUCCEEDED
        assert service.telemetry.metrics.snapshot()[
            "supervision.disk_paused"] == 0


# -------------------------------------------------- pump self-health
class TestPumpSelfHealth:
    def wait_pump_dead(self, dispatcher, timeout=10.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if not dispatcher._thread.is_alive():
                return
            time.sleep(0.01)
        raise AssertionError("pump thread did not die")

    def test_crash_once_restarts_and_degrades(self, tmp_path):
        dispatcher = ServiceDispatcher(str(tmp_path / "svc"),
                                       poll_seconds=0.01)
        original = dispatcher.service.step
        crashes = {"left": 1}

        def flaky_step():
            if crashes["left"] > 0:
                crashes["left"] -= 1
                raise RuntimeError("injected pump crash")
            return original()

        dispatcher.service.step = flaky_step
        try:
            dispatcher.start()
            self.wait_pump_dead(dispatcher)
            health = dispatcher.health()
            # One-shot restart happened inside health(); the gateway is
            # degraded but alive, and the pump works again.
            assert health["status"] == "degraded"
            assert health["components"]["pump"] == "degraded"
            assert "injected pump crash" in health["pump_error"]
            assert dispatcher._thread.is_alive()
            assert dispatcher.metrics()["supervision.pump_restarts"] == 1
            # The restarted pump still drives jobs to completion.
            dispatcher.submit(tiny_spec("after-restart"), tenant="t")
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                snapshot = dispatcher.snapshot("after-restart")
                if snapshot["state"] in JobState.TERMINAL:
                    break
                time.sleep(0.05)
            assert snapshot["state"] == JobState.SUCCEEDED
        finally:
            dispatcher.close()

    def test_second_crash_is_unhealthy(self, tmp_path):
        dispatcher = ServiceDispatcher(str(tmp_path / "svc"),
                                       poll_seconds=0.01)

        def dying_step():
            raise RuntimeError("pump keeps dying")

        dispatcher.service.step = dying_step
        try:
            dispatcher.start()
            self.wait_pump_dead(dispatcher)
            assert dispatcher.health()["status"] == "degraded"  # restart 1
            self.wait_pump_dead(dispatcher)                     # dies again
            health = dispatcher.health()
            assert health["status"] == "unhealthy"
            assert health["components"]["pump"] == "dead"
        finally:
            dispatcher.close()

    def test_healthz_maps_states_to_http(self, tmp_path):
        dispatcher = ServiceDispatcher(str(tmp_path / "svc"),
                                       poll_seconds=0.01)

        def dying_step():
            raise RuntimeError("pump keeps dying")

        runner = GatewayRunner(dispatcher, GatewayPolicy(), port=0).start()
        client = Client(runner.port)
        try:
            status, _, health = client.request("GET", "/v1/healthz")
            assert status == 200
            assert health["status"] == "ok"
            assert health["components"] == {"pump": "ok", "disk": "ok"}
            dispatcher.service.step = dying_step
            self.wait_pump_dead(dispatcher)
            status, _, health = client.request("GET", "/v1/healthz")
            assert status == 200 and health["status"] == "degraded"
            self.wait_pump_dead(dispatcher)
            status, headers, health = client.request("GET", "/v1/healthz")
            assert status == 503
            assert health["status"] == "unhealthy"
            assert "Retry-After" in headers
        finally:
            client.close()
            runner.stop()


# ------------------------------------------------------- chaos acceptance
class TestChaosAcceptance:
    def test_gateway_chaos(self, tmp_path):
        """The acceptance scenario: a hang job (no deadline) and a
        crash-looper ride alongside healthy jobs through the gateway.
        The stall detector reaps the hang, the crash-looper lands in
        QUARANTINED with a readable bundle, the healthy jobs match a
        direct pipeline run bit for bit, and the disk-guard drill
        degrades ``/healthz`` then recovers."""
        free = {"bytes": 10 * 1024 * 1024}
        supervisor = SupervisorConfig(
            stall_seconds=1.0, crash_loop_threshold=2,
            backoff=RetryBackoff(base_seconds=0.01),
            disk_low_water_bytes=1024 * 1024,
            disk_high_water_bytes=2 * 1024 * 1024,
            disk_probe=lambda: free["bytes"])
        dispatcher = ServiceDispatcher(str(tmp_path / "gw"), workers=2,
                                       poll_seconds=0.01,
                                       supervisor=supervisor)
        runner = GatewayRunner(dispatcher, GatewayPolicy(), port=0).start()
        client = Client(runner.port)
        try:
            tick = time.monotonic()
            for payload in (
                    {"job_id": "hang", **TINY, "inject_hang_row": 0},
                    {"job_id": "poison", **TINY, "seed": 1,
                     "inject_crash_attempts": 99},
                    {"job_id": "good-1", **TINY, "seed": 2},
                    {"job_id": "good-2", **TINY, "seed": 3}):
                status, _, _ = client.request("POST", "/v1/jobs", payload,
                                              tenant="chaos")
                assert status == 201
            outcomes = {job_id: wait_terminal(client, job_id, timeout=120)
                        for job_id in ("hang", "poison", "good-1", "good-2")}
            elapsed = time.monotonic() - tick

            # The stalled attempt was detected and killed within the
            # stall bound (modulo poll cadence), not a 120 s timeout.
            assert outcomes["hang"]["state"] == "succeeded"
            assert outcomes["hang"]["crashes"] == 1
            assert outcomes["hang"]["failures"] == 0
            assert elapsed < 60

            # Crash-looper: quarantined, with a readable bundle.
            assert outcomes["poison"]["state"] == "quarantined"
            bundle = read_diagnostics(os.path.join(
                str(tmp_path / "gw"), "jobs", "poison"))
            assert bundle["crashes"] == 2
            status, _, body = client.request("GET", "/v1/jobs/poison/result")
            assert status == 410          # no result will ever exist

            # Healthy jobs: bit-identical to a direct pipeline run.
            reference = execute_job(tiny_spec("ref", seed=2),
                                    str(tmp_path / "ref"), attempt=1)
            for job_id, seed in (("good-1", 2), ("good-2", 3)):
                assert outcomes[job_id]["state"] in ("succeeded", "cached")
                status, _, body = client.request(
                    "GET", f"/v1/jobs/{job_id}/result")
                assert status == 200
                if seed == 2:
                    result = body["result"]
                    for key in ("best_score", "alignment_length",
                                "start", "end", "digest0", "digest1"):
                        assert result[key] == reference[key], key

            # Disk-guard drill: degraded + submissions 503, then recovery.
            free["bytes"] = 512 * 1024
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                status, _, health = client.request("GET", "/v1/healthz")
                if health["status"] == "degraded":
                    break
                time.sleep(0.05)
            assert health["status"] == "degraded"
            assert health["components"]["disk"] == "paused"
            status, headers, _ = client.request(
                "POST", "/v1/jobs", {"job_id": "refused", **TINY, "seed": 9},
                tenant="chaos")
            assert status == 503
            assert "Retry-After" in headers
            free["bytes"] = 10 * 1024 * 1024
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                status, _, health = client.request("GET", "/v1/healthz")
                if health["status"] == "ok":
                    break
                time.sleep(0.05)
            assert health["status"] == "ok"

            # The journal replays every supervision event to the same
            # terminal states (kill-and-recover equivalence).
            records, _, corrupt = replay_journal(
                os.path.join(str(tmp_path / "gw"), JOURNAL_NAME))
            assert corrupt == 0
            states = {r.job_id: r.state for r in records}
            assert states["poison"] == JobState.QUARANTINED
            assert states["hang"] == JobState.SUCCEEDED
            assert states["good-1"] in (JobState.SUCCEEDED, JobState.CACHED)
            by_id = {r.job_id: r for r in records}
            assert by_id["poison"].crashes == 2
            assert by_id["poison"].diagnostics.endswith("diagnostics.json")

            # SSE stream for the quarantined job ends with the terminal
            # event so subscribers aren't left hanging.
            from tests.test_gateway import read_sse
            events = read_sse(runner.port, "/v1/jobs/poison/events")
            assert events[-1]["event"] == "quarantined"
            assert events[-1]["data"]["final"] is True
        finally:
            client.close()
            runner.stop()


# ------------------------------------------------------- spec validation
class TestSupervisionSpecs:
    def test_spec_supervision_fields_round_trip(self):
        spec = tiny_spec("s", stall_seconds=2.5, max_rss_bytes=1 << 30,
                         inject_hang_row=10, inject_crash_attempts=2)
        assert JobSpec.from_json(spec.to_json()) == spec

    def test_spec_validation(self):
        with pytest.raises(ConfigError):
            tiny_spec("s", stall_seconds=0)
        with pytest.raises(ConfigError):
            tiny_spec("s", max_rss_bytes=0)
        with pytest.raises(ConfigError):
            tiny_spec("s", inject_crash_attempts=-1)

    def test_supervisor_config_validation(self):
        with pytest.raises(ConfigError):
            SupervisorConfig(stall_seconds=-1)
        with pytest.raises(ConfigError):
            SupervisorConfig(max_rss_bytes=0)
        with pytest.raises(ConfigError):
            SupervisorConfig(crash_loop_threshold=0)

    def test_spec_stall_overrides_pool_default(self, tmp_path):
        # Pool default is generous; the spec's own tight bound wins.
        service = AlignmentService(
            tmp_path / "svc", workers=1,
            supervisor=SupervisorConfig(
                stall_seconds=300.0,
                backoff=RetryBackoff(base_seconds=0.01)))
        service.submit(tiny_spec("wedge", inject_hang_row=0,
                                 stall_seconds=0.75))
        tick = time.monotonic()
        service.run()
        service.close()
        assert time.monotonic() - tick < 60
        assert service.queue.get("wedge").state == JobState.SUCCEEDED
