"""Progress callback coverage."""

from __future__ import annotations

from repro.core import CUDAlign, small_config

from tests.conftest import make_pair


class TestProgress:
    def test_stage1_band_updates_and_stage_completions(self, rng):
        s0, s1 = make_pair(rng, 300, 300)
        events: list[tuple[str, float]] = []
        config = small_config(block_rows=32, n=len(s1), sra_rows=4)
        CUDAlign(config, progress=lambda s, f: events.append((s, f))).run(
            s0, s1)
        stages = {s for s, _ in events}
        assert {"stage1", "stage2", "stage5", "stage6"} <= stages
        # Stage 1 reports per band, monotonically, ending at 1.0.
        s1_fracs = [f for s, f in events if s == "stage1"]
        assert len(s1_fracs) > 3
        assert s1_fracs == sorted(s1_fracs)
        assert s1_fracs[-1] == 1.0
        # All fractions are within [0, 1].
        assert all(0 <= f <= 1 for _, f in events)

    def test_no_callback_is_fine(self, rng):
        s0, s1 = make_pair(rng, 100, 100)
        config = small_config(block_rows=32, n=len(s1), sra_rows=2)
        result = CUDAlign(config).run(s0, s1, visualize=False)
        assert result.best_score >= 0

    def test_visualize_false_skips_stage6_event(self, rng):
        s0, s1 = make_pair(rng, 120, 120)
        events: list[str] = []
        config = small_config(block_rows=32, n=len(s1), sra_rows=2)
        CUDAlign(config, progress=lambda s, f: events.append(s)).run(
            s0, s1, visualize=False)
        assert "stage6" not in events
