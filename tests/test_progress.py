"""Progress callback and observer coverage."""

from __future__ import annotations

import pytest

from repro.core import CUDAlign, small_config
from repro.telemetry import PipelineObserver

from tests.conftest import make_pair


class TestProgress:
    def test_stage1_band_updates_and_stage_completions(self, rng):
        s0, s1 = make_pair(rng, 300, 300)
        events: list[tuple[str, float]] = []
        config = small_config(block_rows=32, n=len(s1), sra_rows=4)
        with pytest.warns(DeprecationWarning):
            aligner = CUDAlign(config,
                               progress=lambda s, f: events.append((s, f)))
        aligner.run(s0, s1)
        stages = {s for s, _ in events}
        assert {"stage1", "stage2", "stage5", "stage6"} <= stages
        # Stage 1 reports per band, monotonically, ending at 1.0.
        s1_fracs = [f for s, f in events if s == "stage1"]
        assert len(s1_fracs) > 3
        assert s1_fracs == sorted(s1_fracs)
        assert s1_fracs[-1] == 1.0
        # All fractions are within [0, 1].
        assert all(0 <= f <= 1 for _, f in events)

    def test_no_callback_is_fine(self, rng):
        s0, s1 = make_pair(rng, 100, 100)
        config = small_config(block_rows=32, n=len(s1), sra_rows=2)
        result = CUDAlign(config).run(s0, s1, visualize=False)
        assert result.best_score >= 0

    def test_visualize_false_skips_stage6_event(self, rng):
        s0, s1 = make_pair(rng, 120, 120)
        events: list[str] = []
        config = small_config(block_rows=32, n=len(s1), sra_rows=2)
        with pytest.warns(DeprecationWarning):
            aligner = CUDAlign(config,
                               progress=lambda s, f: events.append(s))
        aligner.run(s0, s1, visualize=False)
        assert "stage6" not in events


class TestObserver:
    def test_typed_observer_sees_stage_lifecycle(self, rng):
        class Recorder(PipelineObserver):
            def __init__(self):
                self.starts: list[str] = []
                self.ends: list[tuple[str, object]] = []
                self.fractions: list[tuple[str, float]] = []
                self.metrics: list[str] = []

            def on_stage_start(self, stage):
                self.starts.append(stage)

            def on_stage_progress(self, stage, fraction):
                self.fractions.append((stage, fraction))

            def on_stage_end(self, stage, result):
                self.ends.append((stage, result))

            def on_metric(self, name, value):
                self.metrics.append(name)

        recorder = Recorder()
        s0, s1 = make_pair(rng, 300, 300)
        config = small_config(block_rows=32, n=len(s1), sra_rows=4)
        result = CUDAlign(config, observer=recorder).run(s0, s1)
        # Every executed stage starts exactly once and ends exactly once,
        # in order, carrying its result object.
        executed = ["stage" + key for key in result.stages()]
        assert recorder.starts == executed
        assert [stage for stage, _ in recorder.ends] == executed
        ended = dict(recorder.ends)
        assert ended["stage1"] is result.stage1
        assert ended["stage5"] is result.stage5
        # Stage-1 band fractions flow through on_stage_progress.
        assert any(s == "stage1" for s, _ in recorder.fractions)
        # Metric updates reach on_metric.
        assert "cells.swept" in recorder.metrics

    def test_observer_does_not_warn(self, rng):
        import warnings

        s0, s1 = make_pair(rng, 100, 100)
        config = small_config(block_rows=32, n=len(s1), sra_rows=2)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            CUDAlign(config, observer=PipelineObserver()).run(
                s0, s1, visualize=False)
