"""Smoke tests: every example script must run end to end.

Run in-process (not via subprocess) so coverage and failures are
attributable; stdout is captured by pytest.  The chromosome example takes
a size argument, which we shrink for test latency.
"""

from __future__ import annotations

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def load_example(name: str):
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", [
    "quickstart",
    "sra_tradeoff",
    "cluster_vs_gpu",
    "visualize_alignment",
    "linear_space_toolbox",
])
def test_example_runs(name, capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)  # examples write SVGs to the cwd
    module = load_example(name)
    module.main()
    out = capsys.readouterr().out
    assert len(out) > 100  # every example narrates its results


def test_chromosome_example_runs(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    module = load_example("chromosome_comparison")
    module.main(scale=16384)
    out = capsys.readouterr().out
    assert "Table X analogue" in out
    assert "best score" in out
    assert (tmp_path / "chromosome_alignment.svg").exists()
