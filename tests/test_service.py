"""Tests for the batch alignment job service (repro.service)."""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.align.scoring import PAPER_SCHEME, ScoringScheme
from repro.errors import ConfigError
from repro.sequences import homologous_pair, write_fasta
from repro.service import (
    AlignmentService,
    FailureInjector,
    InjectedFailure,
    JOURNAL_NAME,
    JobQueue,
    JobSpec,
    JobState,
    ResultCache,
    WorkerPool,
    cache_key,
    config_fingerprint,
    execute_job,
    load_specs,
    replay_journal,
)


@pytest.fixture
def fasta_pair(tmp_path):
    rng = np.random.default_rng(7)
    s0, s1 = homologous_pair(600, rng, names=("jobA", "jobB"))
    p0 = tmp_path / "a.fasta"
    p1 = tmp_path / "b.fasta"
    write_fasta(p0, s0)
    write_fasta(p1, s1)
    return str(p0), str(p1)


# --------------------------------------------------------------- JobSpec
class TestJobSpec:
    def test_requires_exactly_one_input_form(self, fasta_pair):
        p0, p1 = fasta_pair
        with pytest.raises(ConfigError):
            JobSpec()  # neither paths nor catalog
        with pytest.raises(ConfigError):
            JobSpec(seq0=p0)  # seq1 missing
        with pytest.raises(ConfigError):
            JobSpec(seq0=p0, seq1=p1, catalog="162Kx172K")  # both forms
        JobSpec(seq0=p0, seq1=p1)
        JobSpec(catalog="162Kx172K")

    def test_envelope_validation(self, fasta_pair):
        p0, p1 = fasta_pair
        with pytest.raises(ConfigError):
            JobSpec(seq0=p0, seq1=p1, max_retries=-1)
        with pytest.raises(ConfigError):
            JobSpec(seq0=p0, seq1=p1, deadline_seconds=0)

    def test_pipeline_knobs_validated_at_submit_time(self, fasta_pair):
        p0, p1 = fasta_pair
        # PipelineConfig owns the rule; the spec probes it on construction.
        with pytest.raises(ConfigError):
            JobSpec(seq0=p0, seq1=p1, workers=0)
        with pytest.raises(ConfigError):
            JobSpec(seq0=p0, seq1=p1, block_rows=0)

    def test_auto_ids_unique(self, fasta_pair):
        p0, p1 = fasta_pair
        a = JobSpec(seq0=p0, seq1=p1)
        b = JobSpec(seq0=p0, seq1=p1)
        assert a.job_id != b.job_id
        assert a.job_id.startswith("job-")

    def test_json_round_trip(self, fasta_pair):
        p0, p1 = fasta_pair
        spec = JobSpec(job_id="rt", seq0=p0, seq1=p1,
                       scheme=ScoringScheme(2, -1, 3, 1), priority=4,
                       deadline_seconds=9.5, inject_failure_row=100)
        clone = JobSpec.from_json(spec.to_json())
        assert clone == spec
        assert clone.scheme == ScoringScheme(2, -1, 3, 1)

    def test_from_json_rejects_unknown_fields(self):
        with pytest.raises(ConfigError, match="unknown job spec"):
            JobSpec.from_json({"catalog": "162Kx172K", "bogus": 1})


# ----------------------------------------------------------------- cache
class TestCache:
    def test_fingerprint_ignores_execution_knobs(self):
        base = JobSpec(catalog="162Kx172K")
        threaded = JobSpec(catalog="162Kx172K", workers=4,
                           checkpoint_every_rows=None)
        coarser = JobSpec(catalog="162Kx172K", block_rows=32)
        n = 4096
        assert (config_fingerprint(base.pipeline_config(n))
                == config_fingerprint(threaded.pipeline_config(n)))
        assert (config_fingerprint(base.pipeline_config(n))
                != config_fingerprint(coarser.pipeline_config(n)))

    def test_key_depends_on_scheme_and_order(self):
        fp = "f" * 64
        base = cache_key("d0", "d1", PAPER_SCHEME, fp)
        assert cache_key("d0", "d1", PAPER_SCHEME, fp) == base
        assert cache_key("d1", "d0", PAPER_SCHEME, fp) != base
        assert cache_key("d0", "d1", ScoringScheme(2, -1, 3, 1), fp) != base

    def test_put_get_persists_across_instances(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert cache.get("k" * 64) is None
        cache.put("k" * 64, {"best_score": 42})
        assert cache.get("k" * 64) == {"best_score": 42}
        reopened = ResultCache(tmp_path / "cache")
        assert reopened.get("k" * 64)["best_score"] == 42
        assert len(reopened) == 1

    def test_stats(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.get("a" * 64)
        cache.put("a" * 64, {"x": 1})
        cache.get("a" * 64)
        stats = cache.stats()
        assert stats == {"entries": 1, "hits": 1, "misses": 1,
                         "corrupt": 0, "hit_rate": 0.5}


# ----------------------------------------------------------------- queue
class TestJobQueue:
    def test_priority_then_fifo(self, tmp_path):
        queue = JobQueue(tmp_path / JOURNAL_NAME)
        low = queue.submit(JobSpec(job_id="low", catalog="162Kx172K"))
        hi1 = queue.submit(JobSpec(job_id="hi1", catalog="162Kx172K",
                                   priority=5))
        queue.submit(JobSpec(job_id="hi2", catalog="162Kx172K", priority=5))
        assert queue.next_pending() is hi1
        assert queue.next_pending(skip={"hi1", "hi2"}) is low
        queue.mark_running(hi1)
        assert queue.next_pending().job_id == "hi2"

    def test_duplicate_id_rejected(self, tmp_path):
        queue = JobQueue(tmp_path / JOURNAL_NAME)
        queue.submit(JobSpec(job_id="x", catalog="162Kx172K"))
        with pytest.raises(ConfigError):
            queue.submit(JobSpec(job_id="x", catalog="162Kx172K"))

    def test_journal_replay_reconstructs_states(self, tmp_path):
        path = tmp_path / JOURNAL_NAME
        queue = JobQueue(path)
        ok = queue.submit(JobSpec(job_id="ok", catalog="162Kx172K"))
        bad = queue.submit(JobSpec(job_id="bad", catalog="162Kx172K",
                                   max_retries=0))
        queue.mark_running(ok)
        queue.mark_succeeded(ok, {"best_score": 7, "wall_seconds": 0.1})
        queue.mark_running(bad)
        queue.mark_failed(bad, "boom")
        records, events, corrupt = replay_journal(path)
        assert corrupt == 0
        by_id = {r.job_id: r for r in records}
        assert by_id["ok"].state == JobState.SUCCEEDED
        assert by_id["ok"].result["best_score"] == 7
        assert by_id["bad"].state == JobState.FAILED
        assert by_id["bad"].error == "boom"
        assert [e["event"] for e in events][:2] == ["submitted", "submitted"]

    def test_recover_requeues_interrupted_without_charging_retries(
            self, tmp_path):
        path = tmp_path / JOURNAL_NAME
        queue = JobQueue(path)
        mid = queue.submit(JobSpec(job_id="mid", catalog="162Kx172K"))
        queue.mark_running(mid)          # service "dies" here
        # Torn final line from the killed process must not break replay.
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "succ')
        recovered = JobQueue.recover(path)
        record = recovered.get("mid")
        assert record.state == JobState.PENDING
        assert record.failures == 0      # interrupted, not failed
        assert recovered.corrupt_records == 1    # the torn line
        _, events, _ = replay_journal(path)
        assert events[-1]["event"] == "recovered"

    def test_recover_missing_journal_is_empty(self, tmp_path):
        queue = JobQueue.recover(tmp_path / "nope" / JOURNAL_NAME)
        assert len(queue) == 0 and queue.depth == 0

    def test_heap_drains_in_priority_then_submission_order(self, tmp_path):
        """Stress the heap selection: ~50 jobs with random priorities
        must drain in (priority desc, submission order asc) order."""
        import random

        rng = random.Random(42)
        queue = JobQueue(tmp_path / JOURNAL_NAME)
        expected = []
        for index in range(50):
            priority = rng.randrange(5)
            queue.submit(JobSpec(job_id=f"j{index:02d}",
                                 catalog="162Kx172K", priority=priority))
            expected.append((-priority, index, f"j{index:02d}"))
        expected.sort()
        drained = []
        while True:
            record = queue.next_pending()
            if record is None:
                break
            drained.append(record.job_id)
            queue.mark_running(record)
        assert drained == [job_id for _, _, job_id in expected]

    def test_retry_keeps_original_fifo_slot(self, tmp_path):
        """A retried job re-enters the queue at its original submission
        slot within its priority band (the linear-scan semantics)."""
        queue = JobQueue(tmp_path / JOURNAL_NAME)
        first = queue.submit(JobSpec(job_id="first", catalog="162Kx172K"))
        queue.submit(JobSpec(job_id="second", catalog="162Kx172K"))
        queue.mark_running(first)
        queue.mark_retry(first, "transient")
        # Despite re-entering after `second` was submitted, `first`
        # still drains ahead of it.
        assert queue.next_pending() is first

    def test_next_pending_skips_stale_heap_entries(self, tmp_path):
        queue = JobQueue(tmp_path / JOURNAL_NAME)
        top = queue.submit(JobSpec(job_id="top", catalog="162Kx172K",
                                   priority=9))
        rest = queue.submit(JobSpec(job_id="rest", catalog="162Kx172K"))
        queue.mark_running(top)
        queue.mark_succeeded(top, {"best_score": 1})
        # `top` still sits in the heap as a stale entry; selection must
        # fall through to `rest` and keep working on repeat calls.
        assert queue.next_pending() is rest
        assert queue.next_pending() is rest

    def test_cancel_pending_is_journaled_and_terminal(self, tmp_path):
        path = tmp_path / JOURNAL_NAME
        queue = JobQueue(path)
        record = queue.submit(JobSpec(job_id="cx", catalog="162Kx172K"))
        queue.mark_cancelled(record, reason="operator request")
        assert record.state == JobState.CANCELLED
        assert record.done
        assert queue.depth == 0
        assert queue.next_pending() is None
        with pytest.raises(ConfigError, match="already cancelled"):
            queue.mark_cancelled(record)
        # Replay reconstructs the terminal state from the journal.
        records, events, corrupt = replay_journal(path)
        assert corrupt == 0
        assert records[0].state == JobState.CANCELLED
        assert records[0].error == "operator request"
        assert events[-1]["event"] == "cancelled"
        # And recover() does not resurrect it as pending.
        recovered = JobQueue.recover(path)
        assert recovered.get("cx").state == JobState.CANCELLED
        assert recovered.depth == 0


# -------------------------------------------------------------- specfile
class TestSpecFile:
    def test_json_array_and_jsonl(self, tmp_path):
        array = tmp_path / "specs.json"
        array.write_text(json.dumps(
            [{"catalog": "162Kx172K"}, {"catalog": "543Kx536K"}]))
        lines = tmp_path / "specs.jsonl"
        lines.write_text('# comment\n{"catalog": "162Kx172K"}\n\n'
                         '{"catalog": "543Kx536K", "priority": 3}\n')
        assert [s.catalog for s in load_specs(array)] == \
               ["162Kx172K", "543Kx536K"]
        specs = load_specs(lines)
        assert specs[1].priority == 3

    def test_malformed(self, tmp_path):
        empty = tmp_path / "empty.json"
        empty.write_text("  \n")
        with pytest.raises(ConfigError, match="empty"):
            load_specs(empty)
        torn = tmp_path / "torn.jsonl"
        torn.write_text('{"catalog": ')
        with pytest.raises(ConfigError, match="line 1"):
            load_specs(torn)
        scalar = tmp_path / "scalar.json"
        scalar.write_text('[1, 2]')
        with pytest.raises(ConfigError, match="expected an object"):
            load_specs(scalar)


# ---------------------------------------------------------------- worker
class TestWorker:
    def test_pool_rejects_nonpositive_workers(self):
        with pytest.raises(ConfigError, match="workers must be positive"):
            WorkerPool(0)

    def test_execute_job_inline(self, fasta_pair, tmp_path):
        p0, p1 = fasta_pair
        spec = JobSpec(job_id="inline", seq0=p0, seq1=p1, block_rows=32)
        summary = execute_job(spec, str(tmp_path / "wd"), attempt=1)
        assert summary["best_score"] > 0
        assert not summary["resumed_from_row"]   # fresh run, no resume
        assert os.path.exists(summary["manifest"])
        assert len(summary["digest0"]) == 64

    def test_failure_injector_fires_only_past_row(self):
        injector = FailureInjector(m=1000, fail_at_row=500)
        injector.on_stage_progress("stage1", 0.25)   # row 250: fine
        injector.on_stage_progress("stage2", 1.0)    # other stages: fine
        with pytest.raises(InjectedFailure):
            injector.on_stage_progress("stage1", 0.6)


# --------------------------------------------------------------- service
def _read_json(path):
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


class TestAlignmentService:
    def test_acceptance_batch(self, fasta_pair, tmp_path, capsys):
        """The ISSUE acceptance scenario, via the `repro batch` CLI.

        8 jobs, one duplicate, one injected mid-run failure: the
        duplicate is served from the ResultCache, the failed job is
        retried from its checkpoint (Stage 1 resumes rather than
        re-running, visible in its span records), and queue-depth /
        cache-hit metrics land in the service manifest.
        """
        from repro.cli import main

        p0, p1 = fasta_pair
        specs = [
            {"job_id": "alpha", "seq0": p0, "seq1": p1, "block_rows": 32},
            {"job_id": "alpha-dup", "seq0": p0, "seq1": p1,
             "block_rows": 32},
            {"job_id": "boom", "seq0": p0, "seq1": p1, "block_rows": 32,
             "scheme": [2, -1, 3, 1], "checkpoint_every_rows": 64,
             "inject_failure_row": 200},
        ] + [{"job_id": f"cat-{seed}", "catalog": "162Kx172K",
              "scale": 8192, "seed": seed, "block_rows": 32}
             for seed in range(5)]
        spec_file = tmp_path / "specs.json"
        spec_file.write_text(json.dumps(specs))
        root = tmp_path / "svc"

        rc = main(["batch", str(spec_file), "--root", str(root),
                   "--workers", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "served from cache" in out

        manifest = _read_json(root / "manifest.json")
        jobs = {j["job_id"]: j for j in manifest["jobs"]}
        assert len(jobs) == 8

        # Duplicate served from the cache (never ran a worker).
        dup = jobs["alpha-dup"]
        assert dup["state"] == JobState.CACHED
        assert dup["cache_hit"] is True
        assert dup["attempts"] == 0
        assert dup["result"]["best_score"] == \
               jobs["alpha"]["result"]["best_score"]
        assert dup["cache_key"] == jobs["alpha"]["cache_key"]

        # Injected failure: first attempt died, retry resumed from the
        # checkpoint and succeeded.
        boom = jobs["boom"]
        assert boom["state"] == JobState.SUCCEEDED
        assert boom["attempts"] == 2
        assert boom["failures"] == 1
        assert boom["result"]["resumed_from_row"] >= 64

        # Stage 1 was not re-run from scratch: its span on the retry
        # records a positive resume row, and the job manifest's extra
        # block agrees.
        job_manifest = _read_json(root / "jobs" / "boom" / "manifest.json")
        stage1_spans = [s for s in job_manifest["spans"]
                        if s["name"] == "stage1"]
        assert stage1_spans
        assert all(s["attributes"]["resumed_from_row"] >= 64
                   for s in stage1_spans)
        assert job_manifest["extra"]["attempt"] == 2
        assert job_manifest["extra"]["resumes_from_row"] >= 64

        # Service-level metrics: queue depth gauge and cache-hit rate.
        metrics = manifest["metrics"]
        assert metrics["service.queue_depth"] == 0
        assert metrics["service.jobs_submitted"] == 8
        assert metrics["service.cache_hits"] >= 1
        assert metrics["service.retries"] == 1
        assert manifest["cache"]["hit_rate"] > 0
        assert manifest["summary"]["succeeded"] == 7
        assert manifest["summary"]["cached"] == 1
        # One service.job span per finished attempt.
        assert sum(1 for s in manifest["spans"]
                   if s["name"] == "service.job") >= 8

    def test_kill_and_resume_queue(self, tmp_path, capsys):
        """`--max-jobs 1` then `--resume` is the kill+resume analogue:
        the journal alone carries the queue across service processes and
        the second run serves the duplicate from the persisted cache."""
        from repro.cli import main

        specs = [
            {"job_id": "first", "catalog": "162Kx172K", "scale": 8192,
             "block_rows": 32},
            {"job_id": "first-dup", "catalog": "162Kx172K", "scale": 8192,
             "block_rows": 32},
            {"job_id": "other", "catalog": "162Kx172K", "scale": 8192,
             "seed": 9, "block_rows": 32},
        ]
        spec_file = tmp_path / "specs.json"
        spec_file.write_text(json.dumps(specs))
        root = tmp_path / "svc"

        rc = main(["batch", str(spec_file), "--root", str(root),
                   "--max-jobs", "1"])
        assert rc == 0
        assert "still pending" in capsys.readouterr().out

        rc = main(["batch", "--resume", "--root", str(root)])
        assert rc == 0
        capsys.readouterr()

        records, events, _ = replay_journal(root / JOURNAL_NAME)
        by_id = {r.job_id: r for r in records}
        assert by_id["first"].state == JobState.SUCCEEDED
        assert by_id["first-dup"].state == JobState.CACHED
        assert by_id["other"].state == JobState.SUCCEEDED
        assert any(e["event"] == "recovered" for e in events)

        rc = main(["jobs", "--root", str(root)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "first-dup" in out and "cached" in out

    def test_deadline_timeout_fails_job(self, fasta_pair, tmp_path):
        p0, p1 = fasta_pair
        service = AlignmentService(tmp_path / "svc")
        try:
            service.submit(JobSpec(job_id="slow", seq0=p0, seq1=p1,
                                   deadline_seconds=1e-3, max_retries=0))
            summary = service.run()
        finally:
            service.close()
        record = service.queue.get("slow")
        assert record.state == JobState.FAILED
        assert "deadline" in record.error
        assert summary["timeouts"] == 1
        assert summary["failed"] == 1

    def test_retries_exhausted_marks_failed(self, fasta_pair, tmp_path):
        p0, p1 = fasta_pair
        service = AlignmentService(tmp_path / "svc")
        try:
            # No checkpointing and failure injected on *every* row of
            # every attempt would defeat the injector's attempt<=1 guard;
            # instead exhaust the budget with max_retries=0.
            service.submit(JobSpec(
                job_id="doomed", seq0=p0, seq1=p1, max_retries=0,
                checkpoint_every_rows=None, inject_failure_row=100))
            summary = service.run()
        finally:
            service.close()
        record = service.queue.get("doomed")
        assert record.state == JobState.FAILED
        assert "InjectedFailure" in record.error
        assert summary["retries"] == 0

    def test_python_api_summary(self, tmp_path):
        service = AlignmentService(tmp_path / "svc", workers=2)
        try:
            service.submit_many([
                JobSpec(job_id="a", catalog="162Kx172K", scale=8192,
                        block_rows=32),
                JobSpec(job_id="b", catalog="162Kx172K", scale=8192,
                        block_rows=32),   # duplicate of a
            ])
            summary = service.run()
        finally:
            service.close()
        assert summary["jobs"] == 2
        assert summary["succeeded"] + summary["cached"] == 2
        assert summary["cached"] == 1
        assert summary["jobs_per_second"] > 0
        assert summary["cache"]["hits"] == 1


# ------------------------------------------------------------ cancellation
class TestCancellation:
    def test_service_cancel_pending_and_summary(self, tmp_path):
        service = AlignmentService(tmp_path / "svc")
        try:
            service.submit(JobSpec(job_id="go", catalog="162Kx172K",
                                   scale=8192, block_rows=32))
            service.submit(JobSpec(job_id="stop", catalog="162Kx172K",
                                   scale=8192, seed=1, block_rows=32))
            assert service.cancel("stop") is True
            assert service.cancel("stop") is False      # already terminal
            with pytest.raises(ConfigError, match="unknown job id"):
                service.cancel("ghost")
            summary = service.run()
        finally:
            service.close()
        assert service.queue.get("stop").state == JobState.CANCELLED
        assert service.queue.get("go").state == JobState.SUCCEEDED
        assert summary["cancelled"] == 1
        assert summary["succeeded"] == 1
        metrics = service.telemetry.metrics.snapshot()
        assert metrics["service.jobs_cancelled"] == 1

    def test_service_cancel_running_terminates_attempt(self, tmp_path):
        """A running job's worker process is killed and the job lands in
        CANCELLED without charging the retry budget."""
        service = AlignmentService(tmp_path / "svc")
        try:
            # A big scale keeps the attempt busy long enough to cancel.
            service.submit(JobSpec(job_id="long", catalog="543Kx536K",
                                   scale=65536, block_rows=32))
            for _ in range(200):
                service.step()
                record = service.queue.get("long")
                if record.state == JobState.RUNNING:
                    break
            assert record.state == JobState.RUNNING
            assert service.cancel("long") is True
            assert record.state == JobState.CANCELLED
            assert record.failures == 0
            assert service.pool.in_flight == 0
            # The pump never resurrects it.
            service.step()
            assert record.state == JobState.CANCELLED
        finally:
            service.close()

    def test_jobs_cancel_cli(self, tmp_path, capsys):
        from repro.cli import main

        root = tmp_path / "svc"
        service = AlignmentService(root)
        try:
            service.submit(JobSpec(job_id="victim", catalog="162Kx172K",
                                   scale=8192, block_rows=32))
        finally:
            service.close()

        assert main(["jobs", "cancel", "--root", str(root)]) == 2  # no id
        assert main(["jobs", "cancel", "ghost", "--root", str(root)]) == 2
        assert main(["jobs", "cancel", "victim", "--root", str(root)]) == 0
        out = capsys.readouterr().out
        assert "cancelled victim" in out
        # Re-cancelling a terminal job is refused.
        assert main(["jobs", "cancel", "victim", "--root", str(root)]) == 1
        # The cancellation is durable: recover() sees the terminal state.
        recovered = JobQueue.recover(root / JOURNAL_NAME)
        assert recovered.get("victim").state == JobState.CANCELLED
