"""Per-stage tests: each stage against the reference ground truth."""

from __future__ import annotations

import numpy as np
import pytest

from repro.constants import TYPE_GAP_S0, TYPE_GAP_S1, TYPE_MATCH
from repro.errors import PartitionError
from repro.align import full_matrix, reference
from repro.core import (
    CrosspointChain,
    Crosspoint,
    run_stage1,
    run_stage2,
    run_stage3,
    run_stage4,
    run_stage5,
    run_stage6,
    small_config,
    sra_bytes_for_rows,
)
from repro.core.stage1 import ROWS_NS
from repro.storage.sra import SpecialLineStore

from tests.conftest import make_pair


@pytest.fixture
def pair(rng):
    return make_pair(rng, 300, 280)


def stores(config):
    return (SpecialLineStore(config.sra_bytes),
            SpecialLineStore(config.sca_bytes))


def config_for(pair, sra_rows=4, **kw):
    return small_config(block_rows=32, n=len(pair[1]), sra_rows=sra_rows, **kw)


class TestStage1:
    def test_best_matches_reference(self, pair):
        s0, s1 = pair
        config = config_for(pair)
        sra, _ = stores(config)
        result = run_stage1(s0, s1, config, sra)
        mats = reference.sw_matrices(s0, s1, config.scheme)
        best, _ = reference.best_cell(mats.H)
        assert result.best_score == best
        i, j = result.end_point.i, result.end_point.j
        assert mats.H[i, j] == best

    def test_special_rows_saved_and_correct(self, pair):
        s0, s1 = pair
        config = config_for(pair, sra_rows=5)
        sra, _ = stores(config)
        result = run_stage1(s0, s1, config, sra)
        assert result.special_rows
        assert sra.positions(ROWS_NS) == list(result.special_rows)
        mats = reference.sw_matrices(s0, s1, config.scheme)
        for r in result.special_rows:
            line = sra.load(ROWS_NS, r)
            np.testing.assert_array_equal(line.H, mats.H[r])
            np.testing.assert_array_equal(line.G, mats.F[r])
            assert r % config.grid1.block_rows == 0

    def test_sra_budget_respected(self, pair):
        s0, s1 = pair
        config = config_for(pair, sra_rows=2)
        sra, _ = stores(config)
        result = run_stage1(s0, s1, config, sra)
        assert sra.bytes_used <= config.sra_bytes
        assert result.flushed_bytes == sra.bytes_used

    def test_zero_sra_disables_flush(self, pair):
        s0, s1 = pair
        config = config_for(pair, sra_rows=0)
        sra, _ = stores(config)
        result = run_stage1(s0, s1, config, sra)
        assert result.special_rows == ()
        assert result.flushed_bytes == 0

    def test_cells_and_model(self, pair):
        s0, s1 = pair
        config = config_for(pair)
        sra, _ = stores(config)
        result = run_stage1(s0, s1, config, sra)
        assert result.cells == len(s0) * len(s1)
        assert result.modeled_seconds >= result.modeled_seconds_no_flush
        assert result.mcups_modeled > 0


class TestStage2:
    def run12(self, pair, sra_rows=4):
        s0, s1 = pair
        config = config_for(pair, sra_rows=sra_rows)
        sra, sca = stores(config)
        stage1 = run_stage1(s0, s1, config, sra)
        stage2 = run_stage2(s0, s1, config, sra, sca, stage1)
        return config, sra, sca, stage1, stage2, s0, s1

    def test_chain_valid_and_scores_bracket(self, pair):
        _, _, _, stage1, stage2, _, _ = self.run12(pair)
        chain = CrosspointChain(stage2.crosspoints)
        assert chain.start.score == 0
        assert chain.end.score == stage1.best_score
        assert chain.end == stage1.end_point

    def test_start_point_is_true_local_start(self, pair):
        config, _, _, _, stage2, s0, s1 = self.run12(pair)
        start = stage2.crosspoints[0]
        end = stage2.crosspoints[-1]
        # Global alignment of the spanned rectangle equals the local best.
        got = reference.global_score(s0[start.i:end.i], s1[start.j:end.j],
                                     config.scheme)
        assert got == end.score

    def test_crosspoints_lie_on_special_rows(self, pair):
        _, sra, _, _, stage2, _, _ = self.run12(pair)
        rows = set(sra.positions(ROWS_NS))
        for point in stage2.crosspoints[1:-1]:
            assert point.i in rows

    def test_crosspoint_scores_are_forward_values(self, pair):
        config, _, _, _, stage2, s0, s1 = self.run12(pair)
        mats = reference.sw_matrices(s0, s1, config.scheme)
        for point in stage2.crosspoints[1:-1]:
            want = (mats.H if point.type == TYPE_MATCH else mats.F)[point.i, point.j]
            assert point.score == want

    def test_partition_scores_verified_by_reference(self, pair):
        config, _, _, _, stage2, s0, s1 = self.run12(pair)
        for p in CrosspointChain(stage2.crosspoints).partitions():
            if p.degenerate:
                continue
            want = reference.global_score(
                s0[p.start.i:p.end.i], s1[p.start.j:p.end.j], config.scheme,
                start_gap=p.start.type, end_gap=p.end.type)
            assert want == p.score

    def test_saved_columns_cover_partitions(self, pair):
        _, _, sca, _, stage2, _, _ = self.run12(pair, sra_rows=6)
        for band in stage2.bands:
            for j in band.column_positions:
                assert band.lo.j < j < band.hi.j
                line = sca.load(band.namespace, j)
                assert line.lo <= band.lo.i and line.hi >= band.hi.i

    def test_orthogonal_execution_skips_area(self, pair):
        # Stage 2's processed area must be far below the full matrix when
        # special rows exist (Section IV-C: ~flush interval x n).
        _, _, _, stage1, stage2, s0, s1 = self.run12(pair, sra_rows=8)
        assert stage2.cells < stage1.cells

    def test_no_special_rows_single_band(self, pair):
        _, _, _, _, stage2, _, _ = self.run12(pair, sra_rows=0)
        assert len(stage2.crosspoints) == 2  # start and end only
        assert stage2.bands[0].column_positions == ()

    def test_zero_sca_budget_saves_no_columns(self, pair):
        import dataclasses
        s0, s1 = pair
        config = dataclasses.replace(config_for(pair, sra_rows=5),
                                     sca_bytes=0)
        sra, sca = stores(config)
        stage1 = run_stage1(s0, s1, config, sra)
        stage2 = run_stage2(s0, s1, config, sra, sca, stage1)
        assert all(b.column_positions == () for b in stage2.bands)
        # The pipeline then skips Stage 3 entirely.
        from repro.core import CUDAlign
        result = CUDAlign(config).run(s0, s1, visualize=False)
        assert result.stage3 is None
        assert result.best_score == stage1.best_score


class TestStage3:
    def run123(self, pair, sra_rows=6):
        s0, s1 = pair
        config = config_for(pair, sra_rows=sra_rows)
        sra, sca = stores(config)
        stage1 = run_stage1(s0, s1, config, sra)
        stage2 = run_stage2(s0, s1, config, sra, sca, stage1)
        stage3 = run_stage3(s0, s1, config, sca, stage2)
        return config, stage1, stage2, stage3, s0, s1

    def test_chain_refined_and_valid(self, pair):
        _, stage1, stage2, stage3, _, _ = self.run123(pair)
        chain = CrosspointChain(stage3.crosspoints)
        assert len(chain) >= len(stage2.crosspoints)
        assert chain.end.score == stage1.best_score

    def test_new_crosspoints_on_special_columns(self, pair):
        _, _, stage2, stage3, _, _ = self.run123(pair)
        stage2_keys = {(p.i, p.j) for p in stage2.crosspoints}
        columns = {j for band in stage2.bands for j in band.column_positions}
        new = [p for p in stage3.crosspoints
               if (p.i, p.j) not in stage2_keys]
        assert all(p.j in columns for p in new)

    def test_partition_scores_still_consistent(self, pair):
        config, _, _, stage3, s0, s1 = self.run123(pair)
        for p in CrosspointChain(stage3.crosspoints).partitions():
            if p.degenerate:
                continue
            want = reference.global_score(
                s0[p.start.i:p.end.i], s1[p.start.j:p.end.j], config.scheme,
                start_gap=p.start.type, end_gap=p.end.type)
            assert want == p.score

    def test_columns_released_after_consumption(self, pair):
        s0, s1 = pair
        config = config_for(pair, sra_rows=6)
        sra, sca = stores(config)
        stage1 = run_stage1(s0, s1, config, sra)
        stage2 = run_stage2(s0, s1, config, sra, sca, stage1)
        assert sca.bytes_used > 0
        run_stage3(s0, s1, config, sca, stage2)
        assert sca.bytes_used == 0

    def test_workers_agree_with_serial(self, pair):
        import dataclasses
        s0, s1 = pair
        config = config_for(pair, sra_rows=6)
        serial = self.run123(pair)[3]
        config2 = dataclasses.replace(config, workers=3)
        sra, sca = stores(config2)
        stage1 = run_stage1(s0, s1, config2, sra)
        stage2 = run_stage2(s0, s1, config2, sra, sca, stage1)
        parallel = run_stage3(s0, s1, config2, sca, stage2)
        assert parallel.crosspoints == serial.crosspoints


class TestStage4:
    def chain_for(self, pair, config):
        s0, s1 = pair
        sra, sca = stores(config)
        stage1 = run_stage1(s0, s1, config, sra)
        stage2 = run_stage2(s0, s1, config, sra, sca, stage1)
        stage3 = run_stage3(s0, s1, config, sca, stage2)
        return CrosspointChain(stage3.crosspoints)

    def test_all_partitions_fit_after(self, pair):
        s0, s1 = pair
        config = config_for(pair, max_partition_size=12)
        chain = self.chain_for(pair, config)
        result = run_stage4(s0, s1, config, chain)
        out = CrosspointChain(result.crosspoints)
        for p in out.partitions():
            assert p.degenerate or p.max_dim <= 12

    def test_iterations_halve_dimensions(self, pair):
        s0, s1 = pair
        config = config_for(pair, max_partition_size=8)
        chain = self.chain_for(pair, config)
        result = run_stage4(s0, s1, config, chain)
        dims = [max(it.h_max, it.w_max) for it in result.iterations]
        assert all(b <= a for a, b in zip(dims, dims[1:]))
        counts = [it.crosspoints for it in result.iterations]
        assert all(b >= a for a, b in zip(counts, counts[1:]))
        # Each iteration at most doubles the crosspoints (Section IV-E).
        assert all(b <= 2 * a for a, b in zip(counts, counts[1:]))

    def test_balanced_needs_fewer_iterations_on_skewed(self, rng):
        import dataclasses
        # A skewed comparison: tall-narrow partitions dominate.
        s0, s1 = make_pair(rng, 600, 80)
        config = config_for((s0, s1), sra_rows=0, max_partition_size=10)
        chain = self.chain_for((s0, s1), config)
        bal = run_stage4(s0, s1, config, chain)
        unbal = run_stage4(
            s0, s1, dataclasses.replace(config, stage4_balanced=False), chain)
        assert len(bal.iterations) <= len(unbal.iterations)
        final_bal = CrosspointChain(bal.crosspoints)
        final_unbal = CrosspointChain(unbal.crosspoints)
        assert final_bal.end.score == final_unbal.end.score

    def test_orthogonal_same_chain_scores(self, pair):
        import dataclasses
        s0, s1 = pair
        config = config_for(pair, max_partition_size=10)
        chain = self.chain_for(pair, config)
        orth = run_stage4(s0, s1, config, chain)
        plain = run_stage4(
            s0, s1, dataclasses.replace(config, stage4_orthogonal=False), chain)
        assert CrosspointChain(orth.crosspoints).end.score == \
            CrosspointChain(plain.crosspoints).end.score
        # Orthogonal execution processes fewer cells (Table IX).
        assert orth.cells < plain.cells


class TestStage5And6:
    def full_chain(self, pair, config):
        s0, s1 = pair
        sra, sca = stores(config)
        stage1 = run_stage1(s0, s1, config, sra)
        stage2 = run_stage2(s0, s1, config, sra, sca, stage1)
        stage3 = run_stage3(s0, s1, config, sca, stage2)
        chain = CrosspointChain(stage3.crosspoints)
        stage4 = run_stage4(s0, s1, config, chain)
        return stage1, CrosspointChain(stage4.crosspoints)

    def test_alignment_matches_best_score(self, pair):
        s0, s1 = pair
        config = config_for(pair, max_partition_size=16)
        stage1, chain = self.full_chain(pair, config)
        result = run_stage5(s0, s1, config, chain)
        assert result.alignment.score(s0, s1, config.scheme) == stage1.best_score
        assert result.partitions_aligned == len(chain) - 1

    def test_rejects_oversized_partitions(self, pair):
        s0, s1 = pair
        config = config_for(pair, max_partition_size=16)
        chain = CrosspointChain([
            Crosspoint(0, 0, 0), Crosspoint(100, 100, 50)])
        with pytest.raises(PartitionError, match="oversized"):
            run_stage5(s0, s1, config, chain)

    def test_stage6_round_trip(self, pair):
        s0, s1 = pair
        config = config_for(pair, max_partition_size=16)
        _, chain = self.full_chain(pair, config)
        stage5 = run_stage5(s0, s1, config, chain)
        stage6 = run_stage6(s0, s1, config, stage5.binary)
        np.testing.assert_array_equal(stage6.alignment.ops, stage5.alignment.ops)
        assert stage6.alignment.start == stage5.alignment.start
        assert "Alignment of" in stage6.text
        assert "*" in stage6.dotplot
        assert stage6.compression_ratio > 1
