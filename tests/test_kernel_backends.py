"""Kernel-backend conformance: every registered backend, bit for bit.

The registry (:mod:`repro.align.kernels`) promises that every backend is
an *exact* drop-in for the serial ``rowscan`` reference — identical
H/E/F rows, best cell, watch hit, saved rows, taps, cell counts and
checkpoints — so this suite runs the whole registry through the same
assertion (:func:`tests.conftest.assert_sweeps_identical`) on inputs
chosen to break lookalikes: N-heavy sequences through the substitution
LUT, the ``gap_first == gap_ext`` scan boundary, one-row and one-column
matrices, every forced/start-gap regime, windowed ``advance`` cuts, and
cross-backend checkpoint resume.  It also pins ``make_sweeper``'s
routing (including the ``kernel.fallback`` signal) and the bench
ledger's refusal to report names the registry cannot back.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.constants import TYPE_GAP_S0, TYPE_GAP_S1, TYPE_MATCH
from repro.errors import ConfigError
from repro.align import DiagonalSweeper, RowSweeper
from repro.align.kernels import (KernelBackend, backend_names, get_backend,
                                 register_backend, serial_kernel_names,
                                 _REGISTRY)
from repro.align.myers_miller import MMConfig, find_midpoint, mm_score
from repro.align.scoring import PAPER_SCHEME
from repro.core import CUDAlign, small_config
from repro.parallel import MIN_PARALLEL_CELLS, ParallelRowSweeper
from repro.service import JobSpec
from repro.sequences.sequence import N_CODE, Sequence
from repro.telemetry.metrics import MetricsRegistry

from tests.conftest import SCHEMES, assert_sweeps_identical, make_pair

from benchmarks.bench_backends import build_ledger, validate_ledger

REGIMES = [
    ("local", dict(local=True, start_gap=TYPE_MATCH, forced=False)),
    ("global", dict(local=False, start_gap=TYPE_MATCH, forced=False)),
    ("gap-s0", dict(local=False, start_gap=TYPE_GAP_S0, forced=False)),
    ("gap-s1", dict(local=False, start_gap=TYPE_GAP_S1, forced=False)),
    ("forced-s0", dict(local=False, start_gap=TYPE_GAP_S0, forced=True)),
    ("forced-s1", dict(local=False, start_gap=TYPE_GAP_S1, forced=True)),
]

#: Every backend the registry knows; the suite derives its matrix from
#: the registry so a new backend is conformance-tested by registration.
ALL_BACKENDS = backend_names()
NON_REFERENCE = [b for b in ALL_BACKENDS if b != "rowscan"]


def _make(name, s0, s1, scheme, **kw):
    # Non-serial backends run inline (executor=None): same schedule, no
    # pool — conformance is about the arithmetic, not the transport.
    return get_backend(name).make(s0.codes, s1.codes, scheme, **kw)


def _n_heavy_pair(rng, m, n, frac=0.3):
    """Sequences where ~frac of the bases are N — the LUT row that a
    match/mismatch branch (instead of a table gather) would get wrong."""
    c0 = rng.integers(0, 4, size=m).astype(np.uint8)
    c1 = rng.integers(0, 4, size=n).astype(np.uint8)
    c0[rng.random(m) < frac] = N_CODE
    c1[rng.random(n) < frac] = N_CODE
    return Sequence(c0, name="n0"), Sequence(c1, name="n1")


class TestRegistry:
    def test_builtins_registered(self):
        assert set(ALL_BACKENDS) >= {"rowscan", "diagonal", "batched",
                                     "wavefront"}
        assert set(serial_kernel_names()) == {"rowscan", "diagonal",
                                              "batched"}
        assert not get_backend("wavefront").serial
        assert not get_backend("wavefront").interior_taps
        assert get_backend("batched").batch
        assert not get_backend("rowscan").batch

    def test_unknown_name_is_an_error(self):
        with pytest.raises(ConfigError, match="unknown kernel backend"):
            get_backend("cuda")

    def test_duplicate_registration_is_an_error(self):
        with pytest.raises(ConfigError, match="already registered"):
            register_backend(KernelBackend(name="rowscan",
                                           factory=RowSweeper))

    def test_registration_round_trip(self):
        backend = KernelBackend(name="__test_backend__", factory=RowSweeper,
                                description="test-only alias")
        register_backend(backend)
        try:
            assert get_backend("__test_backend__") is backend
            assert "__test_backend__" in backend_names()
            assert "__test_backend__" in serial_kernel_names()
        finally:
            _REGISTRY.pop("__test_backend__")


class TestConformance:
    """Every backend vs the rowscan reference, adversarial inputs."""

    @pytest.mark.parametrize("regime", [r[1] for r in REGIMES],
                             ids=[r[0] for r in REGIMES])
    @pytest.mark.parametrize("name", NON_REFERENCE)
    def test_every_regime(self, rng, name, regime):
        s0, s1 = make_pair(rng, 73, 61)
        scheme = SCHEMES[(len(name) + len(str(regime))) % len(SCHEMES)]
        kw = dict(track_best=True, save_rows=np.array([10, 32, 61]),
                  tap_columns=np.array([len(s1)]))
        ref = _make("rowscan", s0, s1, scheme, **regime, **kw).run()
        watch = ref.best if regime["local"] else None
        ref = _make("rowscan", s0, s1, scheme, watch_value=watch,
                    **regime, **kw).run()
        other = _make(name, s0, s1, scheme, watch_value=watch,
                      **regime, **kw).run()
        assert_sweeps_identical(ref, other)

    @pytest.mark.parametrize("name", NON_REFERENCE)
    def test_n_heavy_sequences(self, rng, name):
        # The substitution LUT has a dedicated N row; any backend that
        # shortcuts scoring to "match or mismatch" diverges here.
        s0, s1 = _n_heavy_pair(rng, 80, 66)
        for _, regime in (REGIMES[0], REGIMES[4]):
            ref = _make("rowscan", s0, s1, PAPER_SCHEME, track_best=True,
                        **regime).run()
            other = _make(name, s0, s1, PAPER_SCHEME, track_best=True,
                          **regime).run()
            assert_sweeps_identical(ref, other)

    @pytest.mark.parametrize("name", NON_REFERENCE)
    def test_flat_gap_scheme(self, rng, name):
        # gap_first == gap_ext collapses the open/extend distinction —
        # the boundary case of the prefix-max E scan's algebra.
        scheme = SCHEMES[2]
        assert scheme.gap_first == scheme.gap_ext
        s0, s1 = make_pair(rng, 57, 64)
        for _, regime in REGIMES:
            ref = _make("rowscan", s0, s1, scheme, **regime).run()
            other = _make(name, s0, s1, scheme, **regime).run()
            assert_sweeps_identical(ref, other)

    @pytest.mark.parametrize("m,n", [(1, 40), (37, 1), (1, 1), (2, 2)])
    @pytest.mark.parametrize("name", NON_REFERENCE)
    def test_degenerate_shapes(self, rng, name, m, n):
        s0, s1 = make_pair(rng, m, n, related=False)
        for _, regime in REGIMES:
            ref = _make("rowscan", s0, s1, PAPER_SCHEME, track_best=True,
                        **regime).run()
            other = _make(name, s0, s1, PAPER_SCHEME, track_best=True,
                          **regime).run()
            assert_sweeps_identical(ref, other)

    @pytest.mark.parametrize("name", NON_REFERENCE)
    def test_windowed_advance(self, rng, name):
        # Stage 1 drives sweeps in block windows; backends must agree at
        # every cut, not just at the end (window size 17 never divides
        # the row count evenly).
        s0, s1 = make_pair(rng, 96, 80)
        ref = _make("rowscan", s0, s1, PAPER_SCHEME, local=True,
                    track_best=True)
        other = _make(name, s0, s1, PAPER_SCHEME, local=True,
                      track_best=True)
        while not ref.done:
            assert ref.advance(17) == other.advance(17)
            np.testing.assert_array_equal(ref.H, other.H)
            np.testing.assert_array_equal(ref.E, other.E)
            np.testing.assert_array_equal(ref.F, other.F)
            assert ref.best == other.best
        assert other.done

    def test_interior_taps(self, rng):
        # Interior tap columns are a capability, not part of the base
        # contract: conformance applies to every backend that claims it.
        s0, s1 = make_pair(rng, 50, 44)
        capable = [n for n in ALL_BACKENDS
                   if get_backend(n).interior_taps and n != "rowscan"]
        assert "diagonal" in capable
        taps = np.array([1, 17, len(s1)])
        for name in capable:
            for _, regime in REGIMES:
                ref = _make("rowscan", s0, s1, PAPER_SCHEME,
                            tap_columns=taps, **regime).run()
                other = _make(name, s0, s1, PAPER_SCHEME,
                              tap_columns=taps, **regime).run()
                assert_sweeps_identical(ref, other)

    def test_checkpoint_resumes_across_backends(self, rng):
        # A state_dict written by the diagonal kernel mid-sweep resumes
        # the rowscan kernel (and vice versa) to the same final state —
        # the property that makes Stage-1 checkpoints backend-agnostic.
        s0, s1 = make_pair(rng, 90, 70)
        kw = dict(local=True, track_best=True)
        reference = _make("rowscan", s0, s1, PAPER_SCHEME, **kw).run()

        diag = _make("diagonal", s0, s1, PAPER_SCHEME, **kw)
        diag.advance(41)
        resumed = _make("rowscan", s0, s1, PAPER_SCHEME, **kw)
        resumed.load_state(diag.state_dict())
        assert_sweeps_identical(reference, resumed.run())
        assert_sweeps_identical(reference, diag.run())

        row = _make("rowscan", s0, s1, PAPER_SCHEME, **kw)
        row.advance(41)
        resumed = _make("diagonal", s0, s1, PAPER_SCHEME, **kw)
        resumed.load_state(row.state_dict())
        assert_sweeps_identical(reference, resumed.run())


class TestMakeSweeperRouting:
    def test_kernel_selects_backend(self, rng):
        from repro.parallel import make_sweeper
        s0, s1 = make_pair(rng, 40, 40)
        sweep = make_sweeper(s0.codes, s1.codes, PAPER_SCHEME,
                             kernel="diagonal")
        assert type(sweep) is DiagonalSweeper
        sweep = make_sweeper(s0.codes, s1.codes, PAPER_SCHEME)
        assert type(sweep) is RowSweeper

    def test_non_serial_kernel_rejected(self, rng):
        from repro.parallel import make_sweeper
        s0, s1 = make_pair(rng, 16, 16)
        with pytest.raises(ConfigError, match="not an in-process backend"):
            make_sweeper(s0.codes, s1.codes, PAPER_SCHEME,
                         kernel="wavefront")
        with pytest.raises(ConfigError, match="unknown kernel backend"):
            make_sweeper(s0.codes, s1.codes, PAPER_SCHEME, kernel="gpu")

    def test_small_matrix_fallback_is_signalled(self, rng):
        # The silent-serial-fallback bug: an attached executor that ends
        # up unused must tick kernel.fallback with a reason, not vanish.
        from repro.parallel import make_sweeper
        s0, s1 = make_pair(rng, 40, 40)
        assert 40 * 40 < MIN_PARALLEL_CELLS
        metrics = MetricsRegistry()
        sweep = make_sweeper(s0.codes, s1.codes, PAPER_SCHEME,
                             kernel="diagonal", executor=object(),
                             metrics=metrics)
        assert type(sweep) is DiagonalSweeper
        snap = metrics.snapshot()
        assert snap["kernel.fallback"] == 1
        assert snap["kernel.fallback.small_matrix"] == 1

    def test_interior_tap_fallback_is_signalled(self, rng):
        from repro.parallel import make_sweeper
        s0, s1 = make_pair(rng, 200, 200)
        metrics = MetricsRegistry()
        sweep = make_sweeper(s0.codes, s1.codes, PAPER_SCHEME,
                             executor=object(), metrics=metrics,
                             tap_columns=np.array([3, 200]))
        assert type(sweep) is RowSweeper
        snap = metrics.snapshot()
        assert snap["kernel.fallback"] == 1
        assert snap["kernel.fallback.interior_taps"] == 1

    def test_no_executor_is_not_a_fallback(self, rng):
        # Serial-by-configuration is the requested path, not a fallback.
        from repro.parallel import make_sweeper
        s0, s1 = make_pair(rng, 40, 40)
        metrics = MetricsRegistry()
        make_sweeper(s0.codes, s1.codes, PAPER_SCHEME, metrics=metrics)
        assert "kernel.fallback" not in metrics.snapshot()

    def test_executor_routes_to_wavefront(self, rng):
        from repro.parallel import WavefrontExecutor, make_sweeper
        s0, s1 = make_pair(rng, 200, 180)
        with WavefrontExecutor(1) as executor:
            metrics = MetricsRegistry()
            sweep = make_sweeper(s0.codes, s1.codes, PAPER_SCHEME,
                                 kernel="diagonal", executor=executor,
                                 metrics=metrics)
            assert isinstance(sweep, ParallelRowSweeper)
            assert "kernel.fallback" not in metrics.snapshot()
            sweep.close()


class TestPipelineParity:
    def test_diagonal_pipeline_bit_identical(self, rng, tmp_path):
        s0, s1 = make_pair(rng, 300, 280)
        ref_cfg = small_config(block_rows=32, n=len(s1), sra_rows=5)
        diag_cfg = small_config(block_rows=32, n=len(s1), sra_rows=5,
                                kernel="diagonal")
        ref = CUDAlign(ref_cfg, workdir=str(tmp_path / "row")).run(s0, s1)
        out = CUDAlign(diag_cfg, workdir=str(tmp_path / "diag")).run(s0, s1)
        assert out.best_score == ref.best_score
        assert out.stage1.end_point == ref.stage1.end_point
        assert out.stage1.special_rows == ref.stage1.special_rows
        assert out.stage2.crosspoints == ref.stage2.crosspoints
        assert out.stage3.crosspoints == ref.stage3.crosspoints
        assert out.stage4.crosspoints == ref.stage4.crosspoints
        assert out.binary.encode() == ref.binary.encode()

    def test_config_rejects_bad_kernel(self):
        with pytest.raises(ConfigError):
            small_config(block_rows=32, n=256, kernel="wavefront")
        with pytest.raises(ConfigError):
            small_config(block_rows=32, n=256, kernel="nope")

    def test_myers_miller_parity(self, rng):
        s0, s1 = make_pair(rng, 120, 100)
        assert (mm_score(s0.codes, s1.codes, PAPER_SCHEME, kernel="diagonal")
                == mm_score(s0.codes, s1.codes, PAPER_SCHEME))
        ref = find_midpoint(s0.codes, s1.codes, PAPER_SCHEME,
                            config=MMConfig(kernel="rowscan"))
        diag = find_midpoint(s0.codes, s1.codes, PAPER_SCHEME,
                             config=MMConfig(kernel="diagonal"))
        assert diag == ref
        with pytest.raises(ConfigError):
            MMConfig(kernel="wavefront")

    def test_job_spec_round_trips_kernel(self):
        spec = JobSpec(seq0="a.fa", seq1="b.fa", kernel="diagonal")
        assert JobSpec.from_json(spec.to_json()).kernel == "diagonal"
        assert spec.pipeline_config(n=4096).kernel == "diagonal"
        with pytest.raises(ConfigError):
            JobSpec(seq0="a.fa", seq1="b.fa", kernel="warpspeed")


class TestBenchLedger:
    """The MCUPS ledger cannot report a backend the code cannot back."""

    TRAJECTORY = (Path(__file__).resolve().parent.parent
                  / "benchmarks" / "trajectory" / "BENCH_backends.json")

    def test_committed_trajectory_is_valid(self):
        ledger = json.loads(self.TRAJECTORY.read_text())
        validate_ledger(ledger)
        assert set(ledger["registry"]) == set(backend_names())

    def test_unknown_backend_name_rejected(self):
        ledger = json.loads(self.TRAJECTORY.read_text())
        spec = next(iter(ledger["workloads"]))
        entry = ledger["workloads"][spec]["backends"]
        entry["cuda"] = next(iter(entry.values()))
        with pytest.raises(ValueError, match="unregistered backend 'cuda'"):
            validate_ledger(ledger)

    def test_registry_drift_rejected(self):
        ledger = json.loads(self.TRAJECTORY.read_text())
        ledger["registry"].append("retired_kernel")
        with pytest.raises(ValueError, match="registry"):
            validate_ledger(ledger)

    def test_schema_drift_rejected(self):
        ledger = json.loads(self.TRAJECTORY.read_text())
        ledger["schema"] = 999
        with pytest.raises(ValueError, match="schema"):
            validate_ledger(ledger)

    def test_build_refuses_unknown_backends(self):
        with pytest.raises(ConfigError, match="refuses to report"):
            build_ledger(["8x8"], ["rowscan", "cuda"], workers=1, repeats=1)

    def test_measured_entry_validates(self):
        ledger = build_ledger(["48x40"], ["rowscan", "diagonal"],
                              workers=1, repeats=1)
        validate_ledger(ledger)
        entry = ledger["workloads"]["48x40"]
        assert entry["cells"] == 48 * 40
        assert entry["backends"]["rowscan"]["speedup_vs_rowscan"] == 1.0
