"""Crosspoint and partition invariants."""

from __future__ import annotations

import pytest

from repro.constants import TYPE_GAP_S0, TYPE_GAP_S1, TYPE_MATCH
from repro.errors import PartitionError
from repro.core.crosspoints import Crosspoint, CrosspointChain, Partition


def cp(i, j, score, type=TYPE_MATCH):
    return Crosspoint(i, j, score, type)


class TestCrosspoint:
    def test_valid(self):
        point = cp(3, 4, 10, TYPE_GAP_S1)
        assert (point.i, point.j, point.score, point.type) == (3, 4, 10, 2)

    def test_negative_coords_rejected(self):
        with pytest.raises(PartitionError):
            cp(-1, 0, 0)

    def test_bad_type_rejected(self):
        with pytest.raises(PartitionError):
            cp(0, 0, 0, 5)

    def test_ordering(self):
        assert cp(1, 2, 0) < cp(2, 1, 0)


class TestPartition:
    def test_geometry(self):
        p = Partition(cp(2, 3, 5), cp(10, 7, 20))
        assert (p.height, p.width) == (8, 4)
        assert p.max_dim == 8
        assert p.area == 32
        assert p.score == 15
        assert not p.degenerate

    def test_degenerate(self):
        p = Partition(cp(2, 3, 5), cp(2, 9, 1))
        assert p.degenerate and p.height == 0

    def test_reversed_rejected(self):
        with pytest.raises(PartitionError):
            Partition(cp(5, 5, 0), cp(4, 9, 0))

    def test_empty_rejected(self):
        with pytest.raises(PartitionError):
            Partition(cp(5, 5, 0), cp(5, 5, 1))


class TestChain:
    def chain(self):
        return CrosspointChain([
            cp(0, 0, 0), cp(4, 5, 7, TYPE_GAP_S1), cp(9, 9, 4), cp(12, 20, 30),
        ])

    def test_partitions(self):
        parts = self.chain().partitions()
        assert len(parts) == 3
        assert parts[0].score == 7
        assert parts[1].score == -3  # scores may dip between crosspoints
        assert self.chain().best_score == 30

    def test_max_partition_dim(self):
        assert self.chain().max_partition_dim() == 11

    def test_too_short_rejected(self):
        with pytest.raises(PartitionError):
            CrosspointChain([cp(0, 0, 0)])

    def test_non_monotone_rejected(self):
        with pytest.raises(PartitionError, match="monotone"):
            CrosspointChain([cp(0, 0, 0), cp(5, 5, 1), cp(4, 9, 2)])

    def test_duplicate_rejected(self):
        with pytest.raises(PartitionError, match="duplicate"):
            CrosspointChain([cp(0, 0, 0), cp(5, 5, 1), cp(5, 5, 2)])

    def test_typed_endpoints_rejected(self):
        with pytest.raises(PartitionError, match="type 0"):
            CrosspointChain([cp(0, 0, 0, TYPE_GAP_S0), cp(5, 5, 1)])

    def test_nonzero_start_score_rejected(self):
        with pytest.raises(PartitionError, match="score 0"):
            CrosspointChain([cp(0, 0, 3), cp(5, 5, 9)])

    def test_refine_inserts_points(self):
        refined = self.chain().refine(0, [cp(2, 2, 3)])
        assert len(refined) == 5
        assert refined[1] == cp(2, 2, 3)

    def test_refine_bad_index(self):
        with pytest.raises(PartitionError):
            self.chain().refine(99, [])

    def test_merged_skips_shared_endpoints(self):
        merged = CrosspointChain.merged([
            [cp(0, 0, 0), cp(3, 3, 5)],
            [cp(3, 3, 5), cp(8, 8, 11)],
        ])
        assert len(merged) == 3
