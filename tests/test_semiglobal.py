"""Semi-global (overlap) alignment: free leading and trailing gaps."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AlignmentError
from repro.align import reference
from repro.align.scoring import PAPER_SCHEME
from repro.align.semiglobal import semiglobal_align, semiglobal_score
from repro.sequences.sequence import Sequence

from tests.conftest import SCHEMES, make_pair

dna = st.text(alphabet="ACGT", min_size=1, max_size=32)


def brute_force_semiglobal(s0, s1, scheme) -> int:
    """Max global score over all (suffix-of-prefix) anchorings: the path
    starts on row 0 or column 0 and ends on row m or column n."""
    m, n = len(s0), len(s1)
    best = None
    for i0 in range(m):
        for j0 in range(n):
            if i0 and j0:
                continue  # start must touch a boundary
            for i1 in range(i0 + 1, m + 1):
                for j1 in range(j0 + 1, n + 1):
                    if i1 != m and j1 != n:
                        continue  # end must touch a boundary
                    score = reference.global_score(
                        s0[i0:i1], s1[j0:j1], scheme)
                    best = score if best is None else max(best, score)
    # The empty overlap (both sequences entirely in free gaps) is valid.
    return max(best, 0)


class TestSemiGlobal:
    def test_contained_query(self, scheme):
        s0 = Sequence.from_text("CCGTA")
        s1 = Sequence.from_text("TTTTCCGTATTTT")
        result = semiglobal_align(s0, s1, scheme)
        assert result.score == 5 * scheme.match
        assert result.start == (0, 4)
        assert result.end == (5, 9)

    def test_overlap_suffix_prefix(self, scheme):
        # S0's suffix overlaps S1's prefix.
        s0 = Sequence.from_text("AAAACCGT")
        s1 = Sequence.from_text("CCGTTTTT")
        result = semiglobal_align(s0, s1, scheme)
        assert result.score == 4 * scheme.match
        assert result.start == (4, 0) and result.end == (8, 4)

    def test_matches_brute_force_small(self):
        rng = np.random.default_rng(8)
        for _ in range(5):
            s0, s1 = make_pair(rng, 7, 9)
            want = brute_force_semiglobal(s0, s1, PAPER_SCHEME)
            assert semiglobal_score(s0, s1, PAPER_SCHEME) == want

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_bracketed_by_local_and_global(self, rng, scheme):
        s0, s1 = make_pair(rng, 40, 45)
        local = reference.sw_score(s0, s1, scheme)
        global_ = reference.global_score(s0, s1, scheme)
        semi = semiglobal_score(s0, s1, scheme)
        assert global_ <= semi <= local

    @settings(max_examples=40, deadline=None)
    @given(t0=dna, t1=dna)
    def test_property_path_touches_boundaries(self, t0, t1):
        s0, s1 = Sequence.from_text(t0), Sequence.from_text(t1)
        result = semiglobal_align(s0, s1, PAPER_SCHEME)
        i0, j0 = result.start
        i1, j1 = result.end
        assert i0 == 0 or j0 == 0
        assert i1 == len(s0) or j1 == len(s1)
        assert result.alignment.score(s0, s1, PAPER_SCHEME) == result.score

    @settings(max_examples=25, deadline=None)
    @given(t0=dna, t1=dna)
    def test_property_bracketing(self, t0, t1):
        s0, s1 = Sequence.from_text(t0), Sequence.from_text(t1)
        local = reference.sw_score(s0, s1, PAPER_SCHEME)
        global_ = reference.global_score(s0, s1, PAPER_SCHEME)
        semi = semiglobal_score(s0, s1, PAPER_SCHEME)
        assert global_ <= semi <= local

    def test_empty_rejected(self, scheme):
        with pytest.raises(AlignmentError):
            semiglobal_align(np.empty(0, np.uint8), np.zeros(3, np.uint8),
                             scheme)
