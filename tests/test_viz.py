"""Stage-6 rendering: text blocks, ASCII and SVG dotplots."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import AlignmentError
from repro.align.alignment import Alignment
from repro.sequences.sequence import Sequence
from repro.viz import ascii_dotplot, render_alignment_text, svg_dotplot


def aln(i0, j0, ops):
    return Alignment(i0, j0, np.asarray(ops, np.uint8))


class TestTextRender:
    def test_block_structure(self):
        s0 = Sequence.from_text("ACGTACGTAC", name="chrA")
        s1 = Sequence.from_text("ACGTACGTAC", name="chrB")
        a = aln(0, 0, [0] * 10)
        text = render_alignment_text(a, s0, s1, width=4)
        lines = text.splitlines()
        assert lines[0].startswith("Alignment of chrA x chrB")
        # 10 columns at width 4 -> 3 blocks of 4 lines each (3 rows + blank).
        blocks = [line for line in lines if line.startswith("chrA")]
        assert len(blocks) == 3
        # Coordinates advance per block (1-based).
        assert blocks[0].split()[1] == "1"
        assert blocks[1].split()[1] == "5"

    def test_coordinates_skip_gaps(self):
        s0 = Sequence.from_text("AAAA")
        s1 = Sequence.from_text("AAAAAA")
        a = aln(0, 0, [0, 0, 1, 1, 0, 0])
        text = render_alignment_text(a, s0, s1, width=3)
        rows = [line for line in text.splitlines() if line.startswith("seq")]
        # Second block starts at S0 base 3 (two gaps consumed no S0 bases).
        assert rows[2].split()[1] == "3"

    def test_marker_line(self):
        s0 = Sequence.from_text("ACGT")
        s1 = Sequence.from_text("AGGT")
        text = render_alignment_text(aln(0, 0, [0, 0, 0, 0]), s0, s1)
        marker = text.splitlines()[4]
        assert marker.strip() == "|.||"

    def test_invalid_width(self):
        s = Sequence.from_text("ACGT")
        with pytest.raises(AlignmentError):
            render_alignment_text(aln(0, 0, [0]), s, s, width=0)


class TestAsciiDotplot:
    def test_diagonal_path(self):
        a = aln(0, 0, [0] * 100)
        plot = ascii_dotplot(a, 100, 100, size=10)
        rows = plot.splitlines()[1:]
        assert len(rows) == 10
        # Diagonal: row k has a star near column k.
        for k, row in enumerate(rows):
            assert "*" in row
            assert abs(row.index("*") - k) <= 1

    def test_offset_path(self):
        a = aln(0, 50, [0] * 40)
        plot = ascii_dotplot(a, 100, 100, size=10)
        rows = plot.splitlines()[1:]
        first = next(r for r in rows if "*" in r)
        assert first.index("*") >= 5  # starts in the right half

    def test_small_matrix(self):
        a = aln(0, 0, [0, 0])
        plot = ascii_dotplot(a, 2, 2, size=40)
        assert "*" in plot

    def test_validation(self):
        a = aln(0, 0, [0])
        with pytest.raises(AlignmentError):
            ascii_dotplot(a, 10, 10, size=1)
        with pytest.raises(AlignmentError):
            ascii_dotplot(a, 0, 10)


class TestSvgDotplot:
    def test_structure(self):
        a = aln(10, 10, [0] * 50)
        svg = svg_dotplot(a, 100, 100)
        assert svg.startswith("<svg")
        assert "polyline" in svg and "crimson" in svg
        assert "S1 (1..100)" in svg

    def test_stride_downsamples(self):
        a = aln(0, 0, [0] * 10_000)
        svg = svg_dotplot(a, 10_000, 10_000, stride=1000)
        points = svg.split('points="')[1].split('"')[0].split()
        assert len(points) <= 12

    def test_endpoints_always_kept(self):
        a = aln(0, 0, [0] * 999)
        svg = svg_dotplot(a, 1000, 1000, stride=100)
        points = svg.split('points="')[1].split('"')[0].split()
        first = points[0].split(",")
        last = points[-1].split(",")
        assert float(first[0]) < float(last[0])

    def test_validation(self):
        with pytest.raises(AlignmentError):
            svg_dotplot(aln(0, 0, [0]), 0, 10)
