"""Multi-GPU extension: pipeline decomposition and its time model."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError, DeviceError
from repro.align import reference
from repro.gpusim import (
    GTX_285,
    KernelGrid,
    MultiGpuSystem,
    multi_gpu_sweep_cost,
    multi_gpu_sweep_score,
    stage4_gpu_estimate,
    sweep_cost,
)

from tests.conftest import make_pair

GRID = KernelGrid(240, 64, 4)


class TestRealExecution:
    @pytest.mark.parametrize("devices", [1, 2, 4])
    def test_sliced_sweep_is_exact(self, rng, scheme, devices):
        s0, s1 = make_pair(rng, 90, 120)
        system = MultiGpuSystem(GTX_285, devices)
        score = multi_gpu_sweep_score(s0, s1, scheme, system, band_rows=16)
        assert score == reference.sw_score(s0, s1, scheme)

    def test_too_many_devices(self, rng, scheme):
        s0, s1 = make_pair(rng, 10, 4)
        with pytest.raises(ConfigError):
            multi_gpu_sweep_score(s0, s1, scheme,
                                  MultiGpuSystem(GTX_285, 8))


class TestTimeModel:
    def test_dual_card_near_double(self):
        m, n = 32_799_110, 46_944_323
        dual = multi_gpu_sweep_cost(m, n, GRID, MultiGpuSystem(GTX_285, 2))
        assert 1.7 < dual.speedup_vs_one <= 2.0
        assert 0.85 < dual.efficiency <= 1.0

    def test_quad_card_efficiency_drops(self):
        m, n = 32_799_110, 46_944_323
        dual = multi_gpu_sweep_cost(m, n, GRID, MultiGpuSystem(GTX_285, 2))
        quad = multi_gpu_sweep_cost(m, n, GRID, MultiGpuSystem(GTX_285, 4))
        assert quad.seconds < dual.seconds
        assert quad.efficiency < dual.efficiency

    def test_single_device_matches_sweep_cost(self):
        m, n = 5_227_293, 5_228_663
        one = multi_gpu_sweep_cost(m, n, GRID, MultiGpuSystem(GTX_285, 1))
        base = sweep_cost(m, n, GRID, GTX_285).seconds
        assert one.seconds == pytest.approx(base, rel=0.01)
        assert one.speedup_vs_one == pytest.approx(1.0, rel=0.01)

    def test_transfer_accounted(self):
        m, n = 32_799_110, 46_944_323
        slow = MultiGpuSystem(GTX_285, 2, link_bytes_per_s=1e6)
        fast = MultiGpuSystem(GTX_285, 2, link_bytes_per_s=1e12)
        assert (multi_gpu_sweep_cost(m, n, GRID, slow).seconds
                > multi_gpu_sweep_cost(m, n, GRID, fast).seconds)

    def test_validation(self):
        with pytest.raises(DeviceError):
            MultiGpuSystem(GTX_285, 0)
        with pytest.raises(DeviceError):
            MultiGpuSystem(GTX_285, 2, link_bytes_per_s=0)
        with pytest.raises(ConfigError):
            multi_gpu_sweep_cost(0, 5, GRID, MultiGpuSystem(GTX_285, 2))


class TestStage4GpuEstimate:
    def test_many_partitions_saturate(self):
        fast = stage4_gpu_estimate(10**10, partitions=10_000, grid=GRID,
                                   device=GTX_285)
        assert fast == pytest.approx(10**10 / (GTX_285.peak_gcups * 1e9),
                                     rel=0.01)

    def test_few_partitions_starve(self):
        few = stage4_gpu_estimate(10**10, partitions=2, grid=GRID,
                                  device=GTX_285)
        many = stage4_gpu_estimate(10**10, partitions=10_000, grid=GRID,
                                   device=GTX_285)
        assert few > 10 * many

    def test_zero_cells(self):
        assert stage4_gpu_estimate(0, 10, GRID, GTX_285) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            stage4_gpu_estimate(-1, 1, GRID, GTX_285)
