"""Myers-Miller linear-space alignment vs the full-matrix ground truth."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import TYPE_GAP_S0, TYPE_GAP_S1, TYPE_MATCH
from repro.errors import MatchingError
from repro.align import full_matrix, reference
from repro.align.myers_miller import (
    MMConfig,
    MMStats,
    degenerate_alignment,
    mm_align,
    mm_score,
)
from repro.align.scoring import PAPER_SCHEME

from tests.conftest import SCHEMES, make_pair

dna = st.text(alphabet="ACGT", min_size=1, max_size=64)
gap_states = st.sampled_from([TYPE_MATCH, TYPE_GAP_S0, TYPE_GAP_S1])

SMALL_BASE = MMConfig(base_max_cells=16, strip=4)


def check_alignment(path, score, s0, s1, scheme, start_gap, end_gap):
    """An MM result must span the rectangle and rescore to its score once
    the boundary conventions are unwound."""
    assert path.start == (0, 0)
    assert path.end == (len(s0), len(s1))
    raw = path.score(s0, s1, scheme)
    adjust = 0
    # start waiver: first run of the matching kind was charged an opening
    # by the rescorer but the partition does not pay it.
    if start_gap != TYPE_MATCH and len(path) and path.ops[0] == start_gap:
        adjust += scheme.gap_open
    assert raw + adjust == score


class TestMMScore:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_score_matches_reference(self, rng, scheme):
        s0, s1 = make_pair(rng, 40, 50)
        assert mm_score(s0.codes, s1.codes, scheme) == \
            reference.global_score(s0, s1, scheme)


class TestMMAlign:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_plain_global(self, rng, scheme):
        s0, s1 = make_pair(rng, 60, 70)
        want = reference.global_score(s0, s1, scheme)
        path, score = mm_align(s0.codes, s1.codes, scheme, config=SMALL_BASE)
        assert score == want
        assert path.score(s0, s1, scheme) == want

    def test_recursion_actually_splits(self, rng, scheme):
        s0, s1 = make_pair(rng, 64, 64)
        stats = MMStats()
        mm_align(s0.codes, s1.codes, scheme, config=SMALL_BASE, stats=stats)
        assert stats.splits > 1
        assert stats.max_depth > 1

    @settings(max_examples=40, deadline=None)
    @given(t0=dna, t1=dna)
    def test_property_matches_full_matrix(self, t0, t1):
        from repro.sequences.sequence import Sequence
        s0, s1 = Sequence.from_text(t0), Sequence.from_text(t1)
        _, want = full_matrix.global_align(s0, s1, PAPER_SCHEME)
        path, got = mm_align(s0.codes, s1.codes, PAPER_SCHEME,
                             config=SMALL_BASE)
        assert got == want
        assert path.score(s0, s1, PAPER_SCHEME) == want

    @settings(max_examples=30, deadline=None)
    @given(t0=dna, t1=dna, start=gap_states, end=gap_states)
    def test_property_boundary_states(self, t0, t1, start, end):
        from repro.sequences.sequence import Sequence
        s0, s1 = Sequence.from_text(t0), Sequence.from_text(t1)
        _, want = full_matrix.global_align(s0, s1, PAPER_SCHEME,
                                           start_gap=start, end_gap=end)
        path, got = mm_align(s0.codes, s1.codes, PAPER_SCHEME,
                             start_gap=start, end_gap=end, config=SMALL_BASE)
        assert got == want
        check_alignment(path, got, s0, s1, PAPER_SCHEME, start, end)

    def test_goal_verified(self, rng, scheme):
        s0, s1 = make_pair(rng, 30, 30)
        want = reference.global_score(s0, s1, scheme)
        path, got = mm_align(s0.codes, s1.codes, scheme, goal=want,
                             config=SMALL_BASE)
        assert got == want
        with pytest.raises(MatchingError):
            mm_align(s0.codes, s1.codes, scheme, goal=want + 1,
                     config=MMConfig(base_max_cells=16, orthogonal=False))


class TestOrthogonalExecution:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_same_result_fewer_cells(self, rng, scheme):
        s0, s1 = make_pair(rng, 90, 90)
        want = reference.global_score(s0, s1, scheme)
        plain_stats, orth_stats = MMStats(), MMStats()
        p1, g1 = mm_align(s0.codes, s1.codes, scheme, goal=want,
                          config=MMConfig(base_max_cells=64, orthogonal=False),
                          stats=plain_stats)
        p2, g2 = mm_align(s0.codes, s1.codes, scheme, goal=want,
                          config=MMConfig(base_max_cells=64, strip=8),
                          stats=orth_stats)
        assert g1 == g2 == want
        assert p2.score(s0, s1, scheme) == want
        # The goal-based reverse half must skip real work.
        assert orth_stats.cells_reverse < plain_stats.cells_reverse

    def test_savings_near_theoretical(self, rng):
        # Over many random splits the reverse half processes ~50% of its
        # area (paper: 25% total saving).  Allow a generous band.
        s0, s1 = make_pair(rng, 256, 256)
        want = reference.global_score(s0, s1, PAPER_SCHEME)
        plain, orth = MMStats(), MMStats()
        mm_align(s0.codes, s1.codes, PAPER_SCHEME, goal=want,
                 config=MMConfig(base_max_cells=256, orthogonal=False),
                 stats=plain)
        mm_align(s0.codes, s1.codes, PAPER_SCHEME, goal=want,
                 config=MMConfig(base_max_cells=256, strip=8), stats=orth)
        ratio = orth.cells_reverse / plain.cells_reverse
        assert ratio < 0.95


class TestBalancedSplitting:
    def test_wide_partition_transposed(self, rng, scheme):
        s0, s1 = make_pair(rng, 16, 300)
        want = reference.global_score(s0, s1, scheme)
        path, got = mm_align(s0.codes, s1.codes, scheme,
                             config=MMConfig(base_max_cells=64))
        assert got == want
        assert path.end == (16, 300)

    def test_unbalanced_mode_still_correct(self, rng, scheme):
        s0, s1 = make_pair(rng, 16, 300)
        want = reference.global_score(s0, s1, scheme)
        _, got = mm_align(s0.codes, s1.codes, scheme,
                          config=MMConfig(base_max_cells=64, balanced=False))
        assert got == want

    def test_balanced_transposes_only_wide_problems(self, rng):
        # Balanced splitting on a tall-narrow problem behaves identically
        # to unbalanced (no transposition is ever needed).
        s0, s1 = make_pair(rng, 300, 16)
        bal, unbal = MMStats(), MMStats()
        cfg_b = MMConfig(base_max_cells=64)
        cfg_u = MMConfig(base_max_cells=64, balanced=False)
        _, g1 = mm_align(s0.codes, s1.codes, PAPER_SCHEME, config=cfg_b,
                         stats=bal)
        _, g2 = mm_align(s0.codes, s1.codes, PAPER_SCHEME, config=cfg_u,
                         stats=unbal)
        assert g1 == g2
        assert bal.splits == unbal.splits
        # The iteration-count benefit of balanced splitting (Figure 10) is
        # asserted at the Stage-4 level in test_stage4.py, where rounds
        # halve partitions until max_partition_size is met.


class TestDegenerate:
    def test_empty_both(self, scheme):
        path, score = mm_align(np.empty(0, np.uint8), np.empty(0, np.uint8),
                               scheme)
        assert len(path) == 0 and score == 0

    def test_empty_s0_costs_gap_run(self, scheme):
        codes = np.zeros(5, np.uint8)
        path, score = mm_align(np.empty(0, np.uint8), codes, scheme)
        assert score == -scheme.gap_cost(5)
        assert list(path.ops) == [TYPE_GAP_S0] * 5

    def test_empty_s0_waived(self, scheme):
        codes = np.zeros(5, np.uint8)
        _, score = mm_align(np.empty(0, np.uint8), codes, scheme,
                            start_gap=TYPE_GAP_S0)
        assert score == -5 * scheme.gap_ext

    def test_degenerate_requires_empty_side(self):
        with pytest.raises(MatchingError):
            degenerate_alignment(2, 3)

    def test_degenerate_wrong_end_state(self, scheme):
        with pytest.raises(MatchingError):
            mm_align(np.empty(0, np.uint8), np.zeros(3, np.uint8), scheme,
                     end_gap=TYPE_GAP_S1)
