"""Database-scan baseline: batch scores vs the pairwise reference."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.align import reference
from repro.align.scoring import PAPER_SCHEME
from repro.baselines import scan_database
from repro.sequences import MutationProfile, Sequence, mutate, random_dna

from tests.conftest import SCHEMES


def make_db(rng, count=12, lo=20, hi=80):
    return [random_dna(int(rng.integers(lo, hi)), rng, name=f"subj{k}")
            for k in range(count)]


class TestScanCorrectness:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_every_score_matches_pairwise(self, rng, scheme):
        query = random_dna(50, rng, "query")
        db = make_db(rng)
        result = scan_database(query, db, scheme, top=len(db))
        got = {hit.index: hit.score for hit in result.hits}
        for k, subject in enumerate(db):
            assert got[k] == reference.sw_score(query, subject, scheme), k

    def test_planted_hit_ranks_first(self, rng):
        query = random_dna(60, rng, "query")
        db = make_db(rng, count=20)
        # Plant a mutated copy of the query.
        planted = mutate(query, MutationProfile(substitution=0.05,
                                                insertion=0, deletion=0),
                         rng, name="planted")
        db.append(planted)
        result = scan_database(query, db, PAPER_SCHEME, top=3)
        assert result.best.name == "planted"
        assert result.best.score > 30

    def test_ragged_lengths_padding_safe(self, rng):
        query = random_dna(30, rng)
        db = [Sequence.from_text("A"), random_dna(200, rng),
              Sequence.from_text("ACGT")]
        result = scan_database(query, db, PAPER_SCHEME, top=3)
        for hit in result.hits:
            assert hit.score == reference.sw_score(query, db[hit.index],
                                                   PAPER_SCHEME)

    def test_n_query_bases(self, rng):
        query = Sequence.from_text("ACGTNNNNACGT")
        db = make_db(rng, count=5)
        result = scan_database(query, db, PAPER_SCHEME, top=5)
        for hit in result.hits:
            assert hit.score == reference.sw_score(query, db[hit.index],
                                                   PAPER_SCHEME)

    @settings(max_examples=20, deadline=None)
    @given(qt=st.text(alphabet="ACGT", min_size=1, max_size=25),
           subjects=st.lists(st.text(alphabet="ACGTN", min_size=1,
                                     max_size=30), min_size=1, max_size=6))
    def test_property_batch_equals_pairwise(self, qt, subjects):
        query = Sequence.from_text(qt)
        db = [Sequence.from_text(t, name=str(k))
              for k, t in enumerate(subjects)]
        result = scan_database(query, db, PAPER_SCHEME, top=len(db))
        for hit in result.hits:
            assert hit.score == reference.sw_score(query, db[hit.index],
                                                   PAPER_SCHEME)


class TestScanApi:
    def test_top_limits_hits(self, rng):
        query = random_dna(30, rng)
        result = scan_database(query, make_db(rng, count=9), PAPER_SCHEME,
                               top=4)
        assert len(result.hits) == 4
        scores = [h.score for h in result.hits]
        assert scores == sorted(scores, reverse=True)

    def test_cells_counted(self, rng):
        query = random_dna(10, rng)
        db = [random_dna(7, rng), random_dna(13, rng)]
        result = scan_database(query, db, PAPER_SCHEME)
        assert result.cells == 10 * 20
        assert result.mcups > 0

    def test_validation(self, rng):
        query = random_dna(10, rng)
        with pytest.raises(ConfigError):
            scan_database(query, [], PAPER_SCHEME)
        with pytest.raises(ConfigError):
            scan_database(query, make_db(rng, 2), PAPER_SCHEME, top=0)
