"""Reference DP + vectorized full-matrix aligner: tracebacks and boundary
gap states, cross-validated against each other and against rescoring."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import TYPE_GAP_S0, TYPE_GAP_S1, TYPE_MATCH
from repro.align import full_matrix, reference
from repro.align.scoring import PAPER_SCHEME
from repro.sequences.sequence import Sequence

from tests.conftest import SCHEMES, make_pair

dna = st.text(alphabet="ACGT", min_size=1, max_size=40)
gap_states = st.sampled_from([TYPE_MATCH, TYPE_GAP_S0, TYPE_GAP_S1])


class TestReferenceLocal:
    def test_known_tiny_case(self, scheme):
        s0 = Sequence.from_text("ACACACTA")
        s1 = Sequence.from_text("AGCACACA")
        score = reference.sw_score(s0, s1, scheme)
        path = reference.sw_align(s0, s1, scheme)
        assert path.score(s0, s1, scheme) == score
        assert score > 0

    def test_identical_sequences(self, scheme):
        s = Sequence.from_text("ACGTACGTAC")
        assert reference.sw_score(s, s, scheme) == 10 * scheme.match

    def test_unrelated_floor_at_zero(self, scheme):
        s0 = Sequence.from_text("AAAA")
        s1 = Sequence.from_text("TTTT")
        assert reference.sw_score(s0, s1, scheme) == 0

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_traceback_rescoring(self, rng, scheme):
        s0, s1 = make_pair(rng, 30, 34)
        mats = reference.sw_matrices(s0, s1, scheme)
        best, _ = reference.best_cell(mats.H)
        path = reference.sw_align(s0, s1, scheme)
        assert path.score(s0, s1, scheme) == best


class TestReferenceGlobal:
    def test_global_score_symmetry(self, rng, scheme):
        s0, s1 = make_pair(rng, 18, 25)
        a = reference.global_score(s0, s1, scheme)
        b = reference.global_score(s1, s0, scheme)
        assert a == b  # transposition symmetry of global alignment

    def test_start_gap_waives_opening(self, scheme):
        # Aligning "A" against "AAA": the best path is one diagonal plus a
        # 2-long horizontal gap.  With start_gap=E a boundary run is cheaper.
        s0 = Sequence.from_text("A")
        s1 = Sequence.from_text("AAA")
        plain = reference.global_score(s0, s1, scheme)
        waived = reference.global_score(s0, s1, scheme, start_gap=TYPE_GAP_S0)
        assert plain == scheme.match - scheme.gap_cost(2)
        # Waived: leading gap of 2 at G_ext each, then the diagonal.
        assert waived == scheme.match - 2 * scheme.gap_ext

    def test_end_gap_reads_gap_matrix(self, scheme):
        s0 = Sequence.from_text("AA")
        s1 = Sequence.from_text("AAA")
        # End in E state: last column is a gap in S0.
        end_e = reference.global_score(s0, s1, scheme, end_gap=TYPE_GAP_S0)
        assert end_e == 2 * scheme.match - scheme.gap_first

    def test_traceback_rescoring_global(self, rng, scheme):
        s0, s1 = make_pair(rng, 22, 19)
        score = reference.global_score(s0, s1, scheme)
        path = reference.global_align(s0, s1, scheme)
        assert path.start == (0, 0) and path.end == (22, 19)
        assert path.score(s0, s1, scheme) == score


class TestFullMatrixAgainstReference:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_matrices_equal_local(self, rng, scheme):
        s0, s1 = make_pair(rng, 25, 31)
        ref = reference.sw_matrices(s0, s1, scheme)
        fast = full_matrix.dp_matrices(s0.codes, s1.codes, scheme, local=True)
        np.testing.assert_array_equal(fast.H, ref.H)
        np.testing.assert_array_equal(fast.E, ref.E)
        np.testing.assert_array_equal(fast.F, ref.F)

    @pytest.mark.parametrize("start_gap", [TYPE_MATCH, TYPE_GAP_S0, TYPE_GAP_S1])
    def test_matrices_equal_global(self, rng, scheme, start_gap):
        s0, s1 = make_pair(rng, 25, 31)
        ref = reference.global_matrices(s0, s1, scheme, start_gap=start_gap)
        fast = full_matrix.dp_matrices(s0.codes, s1.codes, scheme,
                                       local=False, start_gap=start_gap)
        np.testing.assert_array_equal(fast.H, ref.H)
        np.testing.assert_array_equal(fast.E, ref.E)
        np.testing.assert_array_equal(fast.F, ref.F)

    def test_local_align_matches_reference_score(self, rng, scheme):
        s0, s1 = make_pair(rng, 40, 44)
        path, score = full_matrix.local_align(s0, s1, scheme)
        assert score == reference.sw_score(s0, s1, scheme)
        assert path.score(s0, s1, scheme) == score

    @settings(max_examples=40, deadline=None)
    @given(t0=dna, t1=dna, start=gap_states, end=gap_states)
    def test_property_global_boundary_states(self, t0, t1, start, end):
        s0 = Sequence.from_text(t0)
        s1 = Sequence.from_text(t1)
        want = reference.global_score(s0, s1, PAPER_SCHEME,
                                      start_gap=start, end_gap=end)
        path, got = full_matrix.global_align(s0, s1, PAPER_SCHEME,
                                             start_gap=start, end_gap=end)
        assert got == want
        # The path must span the whole rectangle.
        assert path.start == (0, 0)
        assert path.end == (len(s0), len(s1))


class TestBoundaryGapScoreIdentity:
    """The partition-join arithmetic of Section IV-A: splitting a gap run
    across two partitions with (end_gap, start_gap) conventions must cost
    exactly one opening in total."""

    @settings(max_examples=30, deadline=None)
    @given(t0=dna, t1=dna, tm=dna, kind=st.sampled_from([TYPE_GAP_S0, TYPE_GAP_S1]))
    def test_split_gap_costs_one_opening(self, t0, t1, tm, kind):
        # Build A|B where a forced gap crosses the boundary.  Score(A, end
        # in gap) + Score(B, start in gap) for the *same* gap run must
        # equal the un-split cost: verify on the smallest closed form.
        scheme = PAPER_SCHEME
        s = Sequence.from_text("A")
        long = Sequence.from_text("AAAA")
        if kind == TYPE_GAP_S0:
            upper = reference.global_score(s, long, scheme, end_gap=kind)
            lower = reference.global_score(s, long, scheme, start_gap=kind)
        else:
            upper = reference.global_score(long, s, scheme, end_gap=kind)
            lower = reference.global_score(long, s, scheme, start_gap=kind)
        # upper ends mid-gap (open paid), lower continues it (open waived):
        # total = 2 matches + one 6-long gap run.
        assert upper + lower == 2 * scheme.match - scheme.gap_cost(6)
