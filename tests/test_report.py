"""Report generator: structure and internal consistency."""

from __future__ import annotations

import pytest

from repro.report import ReportOptions, generate_report, run_catalog
from repro.sequences import CATALOG


@pytest.fixture(scope="module")
def report_text():
    # One shared (fast) report for all structure tests.
    return generate_report(ReportOptions(scale=32768, sra_rows=4,
                                         sra_sweep=(0, 4),
                                         include_modeled=True))


class TestReport:
    def test_all_sections_present(self, report_text):
        for section in ("Results per comparison", "Per-stage wall seconds",
                        "SRA sweep", "Stage-4 iterations",
                        "Alignment composition", "Paper-scale projections"):
            assert section in report_text

    def test_every_catalog_entry_reported(self, report_text):
        for entry in CATALOG:
            assert entry.key in report_text

    def test_modeled_rows_present(self, report_text):
        assert "64,330" in report_text or "64,331" in report_text

    def test_run_catalog_results_consistent(self):
        options = ReportOptions(scale=32768, sra_rows=4)
        results = run_catalog(options)
        assert set(results) == {e.key for e in CATALOG}
        for key, result in results.items():
            if result.alignment is not None:
                assert result.composition.score == result.best_score

    def test_modeled_section_optional(self):
        text = generate_report(ReportOptions(scale=32768, sra_rows=2,
                                             sra_sweep=(0,),
                                             include_modeled=False))
        assert "Paper-scale projections" not in text
