"""Regression tests for bugs found during development.

Each test pins the exact input that exposed the defect; keep them cheap
but faithful.
"""

from __future__ import annotations

import numpy as np

from repro.align.full_matrix import local_align
from repro.core import CUDAlign, small_config
from repro.sequences import get_entry


class TestStage2SameRunFJoin:
    """A vertical gap run crossing both a special row AND the band's
    anchor crosspoint broke the original (de-biased) F-join matching:
    the seeding discount and the trailing-run double-open cancel, so the
    raw reverse values must be used.  First seen on the chromosome
    catalog entry at scale 4096 (MatchingError in band [4608, 5376])."""

    def test_chromosome_entry_scale_4096(self):
        entry = get_entry("32799Kx46944K")
        s0, s1 = entry.build(scale=4096, seed=0)
        config = small_config(block_rows=128, n=len(s1), sra_rows=12,
                              max_partition_size=32)
        result = CUDAlign(config).run(s0, s1, visualize=False)
        assert result.alignment is not None
        assert result.alignment.score(s0, s1, config.scheme) == \
            result.best_score

    def test_long_gap_runs_across_special_rows(self, rng):
        # Distilled shape: a pair whose optimal alignment contains gap
        # runs longer than the special-row spacing, so runs necessarily
        # cross rows mid-gap.
        from repro.sequences.synth import MutationProfile, homologous_pair
        s0, s1 = homologous_pair(
            900, rng, profile=MutationProfile(substitution=0.01,
                                              insertion=0.004,
                                              deletion=0.004,
                                              indel_mean_len=60.0))
        config = small_config(block_rows=16, n=len(s1), sra_rows=24,
                              max_partition_size=8)
        result = CUDAlign(config).run(s0, s1, visualize=False)
        _, want = local_align(s0, s1, config.scheme)
        assert result.best_score == want


class TestTileCornerOwnership:
    """Assembling a horizontal bus from tile segments must not let a
    tile's pinned F[0] clobber the left neighbour's value at the shared
    corner column (first seen as 3 mismatched cells at the column cuts
    in the blocksim special rows)."""

    def test_special_rows_across_segment_boundaries(self, rng, scheme):
        from repro.align.rowscan import RowSweeper
        from repro.core.config import sra_bytes_for_rows
        from repro.gpusim import GTX_285, KernelGrid
        from repro.gpusim.blocksim import simulate_stage1
        from tests.conftest import make_pair
        s0, s1 = make_pair(rng, 128, 128)
        sim = simulate_stage1(s0, s1, scheme, KernelGrid(4, 8, 2), GTX_285,
                              sra_bytes=sra_bytes_for_rows(len(s1), 4))
        mono = RowSweeper(s0.codes, s1.codes, scheme, local=True,
                          save_rows=sorted(sim.special_rows)).run()
        for r, (h, f) in sim.special_rows.items():
            np.testing.assert_array_equal(f, mono.saved[r][1])
