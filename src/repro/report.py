"""Experiment report generator.

Produces a single self-contained text report reproducing the paper's
evaluation tables on the scaled catalog — the library-level counterpart
of the benchmark harness (``cudalign report`` on the command line).

Sections map one-to-one onto the paper: results per comparison (Table
III), per-stage runtimes (Table V), the SRA sweep (Tables VII/VIII), the
Stage-4 iteration trace (Table IX), the composition census (Table X), and
the modeled paper-scale projections (Tables IV/VI).
"""

from __future__ import annotations

import io
import time
from dataclasses import dataclass

from repro.baselines.zalign import ZAlignCluster
from repro.core.config import small_config
from repro.core.pipeline import CUDAlign, PipelineResult
from repro.gpusim.device import GTX_285
from repro.gpusim.grid import KernelGrid
from repro.gpusim.perf import sweep_cost
from repro.sequences.catalog import CATALOG, CatalogEntry


@dataclass(frozen=True)
class ReportOptions:
    """What to run and at which scale."""

    scale: int = 8192
    seed: int = 0
    sra_rows: int = 8
    block_rows: int = 64
    max_partition_size: int = 32
    sra_sweep: tuple[int, ...] = (0, 2, 8, 32)
    include_modeled: bool = True


def run_catalog(options: ReportOptions) -> dict[str, PipelineResult]:
    """Execute the pipeline on every catalog entry."""
    results: dict[str, PipelineResult] = {}
    for entry in CATALOG:
        s0, s1 = entry.build(scale=options.scale, seed=options.seed)
        config = small_config(block_rows=options.block_rows, n=len(s1),
                              sra_rows=options.sra_rows,
                              max_partition_size=options.max_partition_size)
        results[entry.key] = CUDAlign(config).run(s0, s1, visualize=False)
    return results


def _section(out: io.StringIO, title: str) -> None:
    out.write(f"\n## {title}\n\n")


def _results_table(out: io.StringIO, results: dict[str, PipelineResult]) -> None:
    out.write(f"{'comparison':<16} {'score':>8} {'length':>8} {'gaps':>6} "
              f"{'start':>16} {'end':>16}\n")
    for key, result in results.items():
        if result.alignment is None:
            out.write(f"{key:<16} {0:>8} {'-':>8} {'-':>6} {'-':>16} {'-':>16}\n")
            continue
        out.write(f"{key:<16} {result.best_score:>8,} "
                  f"{result.alignment_length:>8,} {result.gap_columns:>6,} "
                  f"{str(result.alignment.start):>16} "
                  f"{str(result.alignment.end):>16}\n")


def _stage_table(out: io.StringIO, results: dict[str, PipelineResult]) -> None:
    out.write(f"{'comparison':<16}" + "".join(f" {k:>8}" for k in
                                              ("1", "2", "3", "4", "5", "6"))
              + f" {'total':>9}\n")
    for key, result in results.items():
        walls = result.stage_wall_seconds()
        out.write(f"{key:<16}" + "".join(
            f" {walls[k]:>8.3f}" for k in ("1", "2", "3", "4", "5", "6"))
            + f" {sum(walls.values()):>9.3f}\n")


def _sra_sweep_table(out: io.StringIO, entry: CatalogEntry,
                     options: ReportOptions) -> None:
    s0, s1 = entry.build(scale=options.scale, seed=options.seed)
    out.write(f"{'SRA rows':>8} {'cells2':>12} {'cells4':>12} {'|L2|':>6} "
              f"{'|L3|':>6} {'s4 iters':>9}\n")
    for rows in options.sra_sweep:
        config = small_config(block_rows=options.block_rows, n=len(s1),
                              sra_rows=rows,
                              max_partition_size=options.max_partition_size)
        result = CUDAlign(config).run(s0, s1, visualize=False)
        out.write(f"{rows:>8} {result.stage2.cells:>12,} "
                  f"{(result.stage4.cells if result.stage4 else 0):>12,} "
                  f"{len(result.stage2.crosspoints):>6} "
                  f"{(len(result.stage3.crosspoints) if result.stage3 else 0):>6} "
                  f"{(len(result.stage4.iterations) if result.stage4 else 0):>9}\n")


def _stats_table(out: io.StringIO, result: PipelineResult) -> None:
    """Generic per-stage statistics via the StageResult.stats() contract."""
    for key, stats in sorted(result.stage_stats().items()):
        pairs = []
        for name, value in stats.items():
            if name == "stage":
                continue
            if isinstance(value, float):
                pairs.append(f"{name}={value:.4g}")
            elif isinstance(value, int):
                pairs.append(f"{name}={value:,}")
            else:
                pairs.append(f"{name}={value}")
        out.write(f"stage {key}: " + "  ".join(pairs) + "\n")


def _composition_table(out: io.StringIO, result: PipelineResult) -> None:
    comp = result.composition
    if comp is None:
        out.write("(no alignment)\n")
        return
    total = comp.length
    for name, count in (("matches", comp.matches),
                        ("mismatches", comp.mismatches),
                        ("gap opens", comp.gap_opens),
                        ("gap extensions", comp.gap_extensions)):
        out.write(f"{name:>16} {count:>12,} {100 * count / total:>6.1f}%\n")
    out.write(f"{'total':>16} {total:>12,} {'100.0%':>7}  "
              f"score {comp.score:,}\n")


def _modeled_tables(out: io.StringIO) -> None:
    grid = KernelGrid(240, 64, 4)
    out.write("Stage-1 runtime model vs the paper's Table IV:\n")
    out.write(f"{'comparison':<16} {'paper s':>9} {'model s':>9}\n")
    paper = {"162Kx172K": 1.4, "1044Kx1073K": 48.3, "5227Kx5229K": 1147,
             "32799Kx46944K": 64507}
    for entry in CATALOG:
        if entry.key not in paper:
            continue
        cost = sweep_cost(entry.paper_size0, entry.paper_size1, grid, GTX_285)
        out.write(f"{entry.key:<16} {paper[entry.key]:>9,.1f} "
                  f"{cost.seconds:>9,.1f}\n")
    out.write("\nZ-align speedups (Table VI shape):\n")
    cluster = ZAlignCluster(cores=64)
    for entry in CATALOG[3:5]:
        z = cluster.modeled_seconds(entry.paper_size0, entry.paper_size1)
        c = sweep_cost(entry.paper_size0, entry.paper_size1, grid,
                       GTX_285).seconds
        out.write(f"  {entry.key}: {z / c:.1f}x over 64 cores\n")


def generate_report(options: ReportOptions | None = None) -> str:
    """Run the experiments and render the full report."""
    options = options or ReportOptions()
    out = io.StringIO()
    tick = time.perf_counter()
    out.write("# CUDAlign 2.0 reproduction report\n")
    out.write(f"scale: 1/{options.scale}  seed: {options.seed}  "
              f"SRA rows: {options.sra_rows}\n")

    results = run_catalog(options)
    _section(out, "Results per comparison (Table III analogue)")
    _results_table(out, results)
    _section(out, "Per-stage wall seconds (Table V analogue)")
    _stage_table(out, results)
    _section(out, "SRA sweep on the chromosome pair (Tables VII/VIII)")
    _sra_sweep_table(out, CATALOG[-1], options)
    _section(out, "Stage-4 iterations (Table IX analogue)")
    flagship = results["32799Kx46944K"]
    if flagship.stage4 is not None:
        out.write(f"{'it':>3} {'H_max':>7} {'W_max':>7} {'crosspoints':>12}\n")
        for it in flagship.stage4.iterations:
            out.write(f"{it.index:>3} {it.h_max:>7} {it.w_max:>7} "
                      f"{it.crosspoints:>12,}\n")
    _section(out, "Alignment composition (Table X analogue)")
    _composition_table(out, flagship)
    _section(out, "Per-stage statistics (StageResult.stats())")
    _stats_table(out, flagship)
    if options.include_modeled:
        _section(out, "Paper-scale projections (modeled)")
        _modeled_tables(out)
    out.write(f"\nreport generated in {time.perf_counter() - tick:.1f} s\n")
    return out.getvalue()

# ---------------------------------------------------------------- service

def render_batch_table(records, summary: dict) -> str:
    """The ``repro batch`` throughput table: one line per job, then the
    run summary (jobs/sec, cache hit rate, retries)."""
    out = io.StringIO()
    out.write(f"{'job':<14} {'state':<12} {'score':>8} {'length':>8} "
              f"{'att':>4} {'resume@':>8} {'seconds':>8}  note\n")
    for record in records:
        result = record.result or {}
        note = ""
        if record.cache_hit:
            note = "served from cache"
        elif record.error and record.state in ("failed", "quarantined"):
            note = record.error.splitlines()[0][:40]
        elif result.get("resumed_from_row"):
            note = "retried from checkpoint"
        score = result.get("best_score")
        length = result.get("alignment_length")
        resumed = result.get("resumed_from_row") or 0
        out.write(f"{record.job_id:<14} {record.state:<12} "
                  f"{score if score is not None else '-':>8} "
                  f"{length if length is not None else '-':>8} "
                  f"{record.attempts:>4} "
                  f"{resumed if resumed else '-':>8} "
                  f"{record.wall_seconds:>8.2f}  {note}\n")
    cache = summary.get("cache", {})
    out.write(
        f"\n{summary.get('jobs', 0)} jobs: "
        f"{summary.get('succeeded', 0)} succeeded, "
        f"{summary.get('cached', 0)} cached, "
        f"{summary.get('failed', 0)} failed, "
        f"{summary.get('remaining', 0)} remaining  "
        f"(retries: {summary.get('retries', 0)}, "
        f"timeouts: {summary.get('timeouts', 0)})\n")
    out.write(f"throughput: {summary.get('jobs_per_second', 0.0):.2f} jobs/s "
              f"over {summary.get('elapsed_seconds', 0.0):.2f} s   "
              f"cache: {cache.get('hits', 0)} hits / "
              f"{cache.get('misses', 0)} misses "
              f"({cache.get('hit_rate', 0.0):.0%} hit rate)\n")
    return out.getvalue()


def render_jobs_table(records, events) -> str:
    """The ``repro jobs`` queue/journal view."""
    out = io.StringIO()
    pending = sum(1 for r in records if r.state == "pending")
    running = sum(1 for r in records if r.state == "running")
    out.write(f"journal: {len(events)} events over {len(records)} jobs  "
              f"(queue depth: {pending}, running at last write: {running})\n\n")
    out.write(f"{'job':<14} {'state':<12} {'prio':>5} {'att':>4} "
              f"{'fail':>5} {'score':>8}  error\n")
    for record in records:
        result = record.result or {}
        score = result.get("best_score")
        error = (record.error or "").splitlines()[0][:44] if record.error else ""
        out.write(f"{record.job_id:<14} {record.state:<12} "
                  f"{record.spec.priority:>5} {record.attempts:>4} "
                  f"{record.failures:>5} "
                  f"{score if score is not None else '-':>8}  {error}\n")
    return out.getvalue()
