"""repro — reproduction of CUDAlign 2.0 (Sandes & de Melo, IPDPS 2011).

Smith-Waterman alignment of huge sequences in linear space, with the
paper's six-stage pipeline, a simulated GPU wavefront substrate, and the
full benchmark harness for every table and figure of the evaluation.

Quickstart::

    from repro import CUDAlign, PAPER_SCHEME, Sequence
    s0 = Sequence.from_text("ACGT" * 1000, name="query")
    s1 = Sequence.from_text("ACGA" * 1000, name="target")
    result = CUDAlign().run(s0, s1)
    print(result.best_score, result.alignment.end)
"""

from repro.align import PAPER_SCHEME, Alignment, ScoringScheme
from repro.sequences import Sequence, read_fasta

__version__ = "2.0.0"

__all__ = [
    "PAPER_SCHEME", "Alignment", "ScoringScheme",
    "Sequence", "read_fasta",
    "CUDAlign", "PipelineConfig",
]


def __getattr__(name):
    # The pipeline imports the whole stack; keep base imports light by
    # resolving it lazily.
    if name in ("CUDAlign", "PipelineConfig"):
        from repro.core import CUDAlign, PipelineConfig
        return {"CUDAlign": CUDAlign, "PipelineConfig": PipelineConfig}[name]
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
