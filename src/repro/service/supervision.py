"""Supervision primitives: backoff, resource guards, diagnostics.

The service's runtime-hardening toolbox, policy only — no scheduling
logic lives here.  :class:`RetryBackoff` turns a failure count into a
deterministic ``not_before`` delay (seeded jitter, so a journal replay
reproduces the exact schedule it journals).  :class:`DiskGuard` is the
low/high-water disk-free watchdog the service polls before dispatching.
:func:`rss_bytes` reads a child's resident set from ``/proc`` (``None``
off Linux, so the memory guard degrades to a no-op instead of crashing
the pool).  :func:`write_diagnostics` produces the on-disk bundle a
quarantined job leaves behind for triage (``repro jobs diagnose``).

Everything is bundled into one :class:`SupervisorConfig` so the service,
the dispatcher and the CLI share a single knob surface.
"""

from __future__ import annotations

import json
import os
import random
import shutil
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ConfigError
from repro.telemetry.manifest import json_safe

#: File name of the quarantine diagnostics bundle inside a job workdir.
DIAGNOSTICS_NAME = "diagnostics.json"


@dataclass(frozen=True)
class RetryBackoff:
    """Exponential backoff with deterministic seeded jitter.

    ``delay(job_id, failures)`` grows ``base_seconds * factor**(n-1)``
    up to ``cap_seconds``, then applies ±``jitter`` chosen by
    ``random.Random(f"{seed}:{job_id}:{n}")`` — the same (seed, job,
    count) always yields the same delay, so the ``not_before`` a journal
    records is the one a replay would recompute.
    """

    base_seconds: float = 0.05
    factor: float = 2.0
    cap_seconds: float = 60.0
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.base_seconds < 0 or self.cap_seconds < 0:
            raise ConfigError("backoff seconds must be non-negative")
        if self.factor < 1.0:
            raise ConfigError("backoff factor must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigError("backoff jitter must be in [0, 1)")

    def delay(self, job_id: str, failures: int) -> float:
        """Seconds to hold ``job_id`` back after its ``failures``-th
        abnormal/failed attempt (``failures >= 1``)."""
        if failures < 1:
            return 0.0
        raw = min(self.cap_seconds,
                  self.base_seconds * self.factor ** (failures - 1))
        rng = random.Random(f"{self.seed}:{job_id}:{failures}")
        return raw * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))

    def not_before(self, job_id: str, failures: int,
                   now: float | None = None) -> float:
        """Absolute eligibility time (unix seconds) for the next attempt."""
        return (time.time() if now is None else now) \
            + self.delay(job_id, failures)


class DiskGuard:
    """Low/high-water disk-free watchdog with hysteresis.

    Below ``low_water_bytes`` free the guard trips (``paused`` becomes
    True); it stays tripped until free space recovers past
    ``high_water_bytes``, so dispatch does not flap around the mark.
    ``probe`` is injectable for tests; the default asks
    :func:`shutil.disk_usage` about ``path``.
    """

    def __init__(self, path: str | os.PathLike, low_water_bytes: int,
                 high_water_bytes: int | None = None, *,
                 probe: Callable[[], int] | None = None):
        if low_water_bytes <= 0:
            raise ConfigError("disk guard low water must be positive")
        high = (2 * low_water_bytes if high_water_bytes is None
                else high_water_bytes)
        if high < low_water_bytes:
            raise ConfigError("disk guard high water must be >= low water")
        self.path = os.fspath(path)
        self.low_water_bytes = low_water_bytes
        self.high_water_bytes = high
        self._probe = probe if probe is not None else (
            lambda: shutil.disk_usage(self.path).free)
        self.paused = False
        self.free_bytes: int | None = None

    def poll(self) -> bool:
        """Re-probe free space; returns the (possibly new) paused state."""
        try:
            self.free_bytes = int(self._probe())
        except OSError:
            return self.paused     # unreadable mount: keep the last state
        if not self.paused and self.free_bytes < self.low_water_bytes:
            self.paused = True
        elif self.paused and self.free_bytes >= self.high_water_bytes:
            self.paused = False
        return self.paused


def rss_bytes(pid: int) -> int | None:
    """Resident set size of ``pid`` via ``/proc/<pid>/status``.

    Returns ``None`` when the proc file is unavailable (non-Linux hosts,
    or the process already exited) — callers must treat that as "guard
    not applicable", never as zero.
    """
    try:
        with open(f"/proc/{pid}/status", "r", encoding="ascii",
                  errors="replace") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        return None
    return None


@dataclass(frozen=True)
class SupervisorConfig:
    """Every supervision knob in one place (service, dispatcher, CLI).

    Attributes:
        stall_seconds: default per-attempt progress-stall bound; an
            attempt whose heartbeat has not *advanced* for this long is
            killed and requeued as interrupted (no retry-budget charge).
            ``None`` disables stall detection unless the spec sets its
            own bound.
        max_rss_bytes: default per-attempt resident-set ceiling; an
            over-budget attempt is terminated as a ``memory limit
            exceeded`` failure.  ``None`` disables the guard.
        crash_loop_threshold: abnormal attempt endings (crash without a
            report, stall kill) before a job is quarantined.  Distinct
            from the honest retry budget: reported failures consume
            ``max_retries``; crashes/stalls consume this.
        backoff: the requeue backoff policy; ``None`` restores the old
            hot-requeue behaviour (immediately eligible again).
        disk_low_water_bytes: free-space floor below which dispatch
            pauses, the result cache is evicted and the gateway refuses
            submissions with 503; ``None`` disables the disk guard.
        disk_high_water_bytes: free space required to resume dispatch
            (defaults to twice the low-water mark).
        disk_probe: injectable free-bytes probe for tests.
    """

    stall_seconds: float | None = None
    max_rss_bytes: int | None = None
    crash_loop_threshold: int = 3
    backoff: RetryBackoff | None = field(default_factory=RetryBackoff)
    disk_low_water_bytes: int | None = None
    disk_high_water_bytes: int | None = None
    disk_probe: Callable[[], int] | None = None

    def __post_init__(self) -> None:
        if self.stall_seconds is not None and self.stall_seconds <= 0:
            raise ConfigError("stall_seconds must be positive")
        if self.max_rss_bytes is not None and self.max_rss_bytes <= 0:
            raise ConfigError("max_rss_bytes must be positive")
        if self.crash_loop_threshold < 1:
            raise ConfigError("crash_loop_threshold must be positive")

    def make_disk_guard(self, path: str | os.PathLike) -> DiskGuard | None:
        if self.disk_low_water_bytes is None:
            return None
        return DiskGuard(path, self.disk_low_water_bytes,
                         self.disk_high_water_bytes, probe=self.disk_probe)


def write_diagnostics(workdir: str, record, attempt_log: list[dict],
                      *, checkpoint_row: int | None = None) -> str:
    """Write the quarantine triage bundle into ``workdir``.

    One plain-JSON file (``diagnostics.json``) carrying everything a
    human needs without the journal: the spec, every counter, the
    attempt-by-attempt error/traceback log (including each attempt's
    last heartbeat), and the checkpoint row the next process would
    resume from.  Returns the bundle path.
    """
    os.makedirs(workdir, exist_ok=True)
    path = os.path.join(workdir, DIAGNOSTICS_NAME)
    bundle = {
        "job_id": record.job_id,
        "state": record.state,
        "spec": record.spec.to_json(),
        "attempts": record.attempts,
        "failures": record.failures,
        "interruptions": record.interruptions,
        "crashes": record.crashes,
        "error": record.error,
        "submitted_unix": record.submitted_unix,
        "written_unix": time.time(),
        "checkpoint_row": checkpoint_row,
        "attempt_log": attempt_log,
        "manifest": os.path.join(workdir, "manifest.json"),
        "workdir": workdir,
    }
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(json_safe(bundle), handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    return path


def read_diagnostics(workdir: str) -> dict[str, Any]:
    """Load a bundle written by :func:`write_diagnostics` (FileNotFoundError
    when the job was never quarantined)."""
    with open(os.path.join(workdir, DIAGNOSTICS_NAME), "r",
              encoding="utf-8") as handle:
        return json.load(handle)
