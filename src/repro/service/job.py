"""Job model: what one schedulable alignment is.

A :class:`JobSpec` is the immutable submission — which two sequences
(FASTA paths or a catalog entry), the pipeline knobs that shape the
result, and the scheduling envelope (priority, per-attempt deadline,
retry budget).  A :class:`JobRecord` is the queue's mutable view of one
spec: state machine, attempt/failure counters, timestamps, and the
result payload once the job lands.

Specs round-trip through plain JSON (``to_json``/``from_json``) because
both the queue journal and the ``repro batch`` spec file speak JSON.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field, fields
from typing import Any

from repro.errors import ConfigError
from repro.align.scoring import PAPER_SCHEME, ScoringScheme
from repro.core.config import PipelineConfig, small_config
from repro.sequences.catalog import get_entry
from repro.sequences.fasta import read_fasta
from repro.sequences.sequence import Sequence


class JobState:
    """The job lifecycle (see docs/API.md for the diagram).

    PENDING -> RUNNING -> SUCCEEDED | FAILED
    PENDING -> CACHED                        (duplicate submission)
    RUNNING -> PENDING                       (failed attempt with retries
                                              left; resumes from checkpoint)
    PENDING | RUNNING -> CANCELLED           (explicit cancellation; a
                                              running attempt is terminated)
    RUNNING -> QUARANTINED                   (crash-loop: too many attempts
                                              ended abnormally — crash or
                                              stall — without reporting)
    """

    PENDING = "pending"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    CACHED = "cached"
    CANCELLED = "cancelled"
    QUARANTINED = "quarantined"

    TERMINAL = frozenset({SUCCEEDED, FAILED, CACHED, CANCELLED, QUARANTINED})


_AUTO_IDS = itertools.count(1)


@dataclass(frozen=True)
class JobSpec:
    """One alignment job: inputs, pipeline knobs, scheduling envelope.

    Inputs are either two FASTA paths (``seq0``/``seq1``) or one
    synthetic catalog entry (``catalog`` + ``scale`` + ``seed``) —
    exactly one of the two forms must be given.

    ``checkpoint_every_rows`` defaults on (64 rows) because retries
    resume Stage 1 from the latest checkpoint; set it to ``None`` to make
    every retry start over.

    ``kernel`` picks the in-process sweep backend by registry name
    (``rowscan`` / ``diagonal``); ``executor`` picks the execution model.
    Both route through :class:`~repro.core.config.PipelineConfig`, so
    the gateway and batch spec files can steer jobs per backend — all
    backends are bit-identical, the knob is purely performance.

    ``stall_seconds`` and ``max_rss_bytes`` override the service-wide
    supervision defaults per job (``None`` defers to the supervisor).

    ``inject_failure_row`` is a test/chaos hook: the *first* attempt
    raises once the Stage-1 sweep passes that row, exercising the
    checkpoint-retry path end to end.  ``inject_hang_row`` hangs the
    first attempt instead (before writing anything to the result pipe at
    row 0 — the stall detector's worst case), and
    ``inject_crash_attempts`` makes the first N attempts die via
    ``os._exit`` without reporting, exercising the crash-loop quarantine.
    """

    job_id: str = ""
    seq0: str | None = None
    seq1: str | None = None
    catalog: str | None = None
    scale: int = 8192
    seed: int = 0
    scheme: ScoringScheme = PAPER_SCHEME
    block_rows: int = 64
    sra_rows: int = 8
    max_partition_size: int = 32
    executor: str = "serial"
    kernel: str = "rowscan"
    workers: int = 1
    checkpoint_every_rows: int | None = 64
    priority: int = 0
    deadline_seconds: float | None = None
    max_retries: int = 2
    stall_seconds: float | None = None
    max_rss_bytes: int | None = None
    inject_failure_row: int | None = None
    inject_hang_row: int | None = None
    inject_crash_attempts: int = 0

    def __post_init__(self) -> None:
        if not self.job_id:
            object.__setattr__(self, "job_id", f"job-{next(_AUTO_IDS):04d}")
        paths = self.seq0 is not None or self.seq1 is not None
        if paths and (self.seq0 is None or self.seq1 is None):
            raise ConfigError(
                f"job {self.job_id!r}: seq0 and seq1 must be given together")
        if paths == (self.catalog is not None):
            raise ConfigError(
                f"job {self.job_id!r}: give either seq0/seq1 paths or a "
                f"catalog key, not both or neither")
        if self.max_retries < 0:
            raise ConfigError(
                f"job {self.job_id!r}: max_retries must be non-negative")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ConfigError(
                f"job {self.job_id!r}: deadline_seconds must be positive")
        if self.stall_seconds is not None and self.stall_seconds <= 0:
            raise ConfigError(
                f"job {self.job_id!r}: stall_seconds must be positive")
        if self.max_rss_bytes is not None and self.max_rss_bytes <= 0:
            raise ConfigError(
                f"job {self.job_id!r}: max_rss_bytes must be positive")
        if self.inject_crash_attempts < 0:
            raise ConfigError(
                f"job {self.job_id!r}: inject_crash_attempts must be "
                f"non-negative")
        # Pipeline-knob validation is PipelineConfig's job; probe it now so
        # a bad spec is rejected at submit time, not inside a worker.
        self.pipeline_config(n=max(4096, self.block_rows))

    def load_sequences(self) -> tuple[Sequence, Sequence]:
        """Materialize the input pair (reads FASTA or builds the catalog
        entry deterministically)."""
        if self.catalog is not None:
            return get_entry(self.catalog).build(scale=self.scale,
                                                 seed=self.seed)
        return read_fasta(self.seq0), read_fasta(self.seq1)

    def pipeline_config(self, n: int) -> PipelineConfig:
        """The scaled pipeline configuration for an ``n``-column run."""
        return small_config(
            block_rows=self.block_rows, n=n, sra_rows=self.sra_rows,
            max_partition_size=self.max_partition_size, scheme=self.scheme,
            executor=self.executor, kernel=self.kernel, workers=self.workers,
            checkpoint_every_rows=self.checkpoint_every_rows)

    # ------------------------------------------------------------- codecs
    def to_json(self) -> dict[str, Any]:
        out: dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "scheme":
                value = [value.match, value.mismatch,
                         value.gap_first, value.gap_ext]
            out[f.name] = value
        return out

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "JobSpec":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(
                f"unknown job spec fields: {sorted(unknown)}")
        kwargs = dict(data)
        scheme = kwargs.get("scheme")
        if isinstance(scheme, (list, tuple)):
            kwargs["scheme"] = ScoringScheme(*scheme)
        return cls(**kwargs)


@dataclass
class JobRecord:
    """The queue's mutable view of one submitted spec."""

    spec: JobSpec
    state: str = JobState.PENDING
    attempts: int = 0          # 'started' events (reporting)
    failures: int = 0          # failed attempts (the retry budget ledger)
    interruptions: int = 0     # attempts ended without charging the budget
    crashes: int = 0           # abnormal endings (the quarantine ledger)
    not_before: float | None = None   # backoff: earliest next dispatch
    submitted_unix: float = field(default_factory=time.time)
    started_unix: float | None = None
    finished_unix: float | None = None
    result: dict[str, Any] | None = None
    error: str | None = None
    cache_key: str | None = None
    cache_hit: bool = False
    diagnostics: str | None = None    # quarantine bundle path

    @property
    def job_id(self) -> str:
        return self.spec.job_id

    @property
    def done(self) -> bool:
        return self.state in JobState.TERMINAL

    @property
    def wall_seconds(self) -> float:
        if self.started_unix is None or self.finished_unix is None:
            return 0.0
        return self.finished_unix - self.started_unix

    def to_json(self) -> dict[str, Any]:
        return {
            "job_id": self.job_id,
            "spec": self.spec.to_json(),
            "state": self.state,
            "attempts": self.attempts,
            "failures": self.failures,
            "interruptions": self.interruptions,
            "crashes": self.crashes,
            "not_before": self.not_before,
            "submitted_unix": self.submitted_unix,
            "started_unix": self.started_unix,
            "finished_unix": self.finished_unix,
            "result": self.result,
            "error": self.error,
            "cache_key": self.cache_key,
            "cache_hit": self.cache_hit,
            "diagnostics": self.diagnostics,
        }
