"""Batch spec files: what ``repro batch`` reads.

Two equivalent formats, auto-detected:

* a JSON array of job-spec objects (``[{...}, {...}]``);
* JSON lines — one spec object per line (comments with ``#`` allowed).

Each object takes the :class:`~repro.service.job.JobSpec` fields
(``seq0``/``seq1`` paths or ``catalog``/``scale``/``seed``, plus
``priority``, ``deadline_seconds``, ``max_retries``, scoring and grid
knobs).  ``scheme`` is a 4-list ``[match, mismatch, gap_first,
gap_ext]``.  Missing ``job_id`` fields are assigned ``job-NNNN``.
"""

from __future__ import annotations

import json
import os

from repro.errors import ConfigError
from repro.service.job import JobSpec


def spec_from_payload(item: object, *, where: str = "job spec") -> JobSpec:
    """Validate one decoded JSON payload into a :class:`JobSpec`.

    The single schema gate shared by the ``repro batch`` spec file and
    the gateway's ``POST /v1/jobs`` body: the payload must be a JSON
    object whose fields are exactly the :class:`JobSpec` fields
    (``scheme`` as a 4-list); anything else raises :class:`ConfigError`
    with ``where`` naming the offending source.
    """
    if not isinstance(item, dict):
        raise ConfigError(f"{where}: expected a JSON object")
    try:
        return JobSpec.from_json(item)
    except ConfigError:
        raise
    except (TypeError, ValueError) as exc:
        raise ConfigError(f"{where}: {exc}") from exc


def load_specs(path: str | os.PathLike) -> list[JobSpec]:
    """Parse a spec file into :class:`JobSpec` objects (order preserved)."""
    path = os.fspath(path)
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    stripped = text.lstrip()
    if not stripped:
        raise ConfigError(f"spec file {path!r} is empty")
    if stripped.startswith("["):
        items = json.loads(text)
        if not isinstance(items, list):
            raise ConfigError(f"spec file {path!r}: expected a JSON array")
    else:
        items = []
        for lineno, raw in enumerate(text.splitlines(), start=1):
            raw = raw.strip()
            if not raw or raw.startswith("#"):
                continue
            try:
                items.append(json.loads(raw))
            except json.JSONDecodeError as exc:
                raise ConfigError(
                    f"spec file {path!r} line {lineno}: {exc}") from exc
    specs = []
    for index, item in enumerate(items):
        if not isinstance(item, dict):
            raise ConfigError(
                f"spec file {path!r} entry {index}: expected an object")
        specs.append(spec_from_payload(
            item, where=f"spec file {path!r} entry {index}"))
    return specs
