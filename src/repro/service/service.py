"""The batch alignment service: queue + cache + worker pool, end to end.

:class:`AlignmentService` owns one service root directory::

    root/
      journal.jsonl     append-only queue journal (JobQueue)
      cache/<key>.json  result cache entries (ResultCache)
      jobs/<job_id>/    per-job workdir: sra/, stage1.ckpt, manifest.json
      manifest.json     service-level manifest aggregating the run

``run()`` drives every submitted job to a terminal state: duplicates are
served from the :class:`~repro.service.cache.ResultCache` (identical
jobs already in flight are held back and served when their twin lands),
failed attempts are retried up to ``spec.max_retries`` times — resuming
Stage 1 from the job's on-disk checkpoint — and attempts that overrun
``spec.deadline_seconds`` are terminated and count as failures.

Everything is observable through the PR-1 telemetry machinery: the
service keeps ``service.queue_depth`` / ``service.jobs_inflight``
gauges, hit/miss/retry/timeout counters and a ``service.job_seconds``
histogram in a :class:`~repro.telemetry.MetricsRegistry`, emits one
``service.job`` span per finished attempt, and fans everything out to
caller-supplied sinks and :class:`~repro.telemetry.PipelineObserver`\\ s.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Iterable

from repro.errors import ConfigError, StorageError
from repro.core.checkpoint import checkpoint_row
from repro.service.cache import ResultCache, cache_key, config_fingerprint
from repro.service.job import JobRecord, JobSpec, JobState
from repro.service.queue import JOURNAL_NAME, JobQueue
from repro.service.supervision import SupervisorConfig, write_diagnostics
from repro.service.worker import WorkerPool, core_budget
from repro.telemetry.manifest import (MANIFEST_VERSION, json_safe,
                                      sequence_digest, write_manifest)
from repro.telemetry.observer import as_observer
from repro.telemetry.runtime import Telemetry
from repro.telemetry.sinks import InMemorySink


@dataclass(frozen=True)
class BatchConfig:
    """Micro-batcher policy: when queued small jobs coalesce.

    Small matrices pay more for process dispatch and per-row NumPy
    overhead than for the arithmetic itself — the cost a GPU amortizes
    by fusing many alignments per launch.  The service mirrors that
    host-side: pending jobs at or under ``max_cells`` DP cells are held
    back within a dispatch round and sent as *one* worker process whose
    Stage-1 sweeps run fused through the batched kernel
    (:func:`repro.align.batched.sweep_batched`).

    A job qualifies only when the fused sweep is exactly equivalent to
    its solo run: serial executor, no per-spec deadline/stall/RSS
    envelope, no chaos injections, and a first attempt (retries resume
    from their checkpoint, so they run solo).  Disqualified jobs
    dispatch normally and are counted under
    ``kernel.batch.fallback.<reason>``.

    Attributes:
        enabled: master switch (``False`` restores per-job dispatch).
        max_jobs: most members per coalesced dispatch.
        max_cells: a job qualifies when ``m * n`` is at or under this.
    """

    enabled: bool = True
    max_jobs: int = 16
    max_cells: int = 1 << 18

    def __post_init__(self) -> None:
        if self.max_jobs < 2:
            raise ConfigError("batch max_jobs must be at least 2")
        if self.max_cells < 1:
            raise ConfigError("batch max_cells must be positive")


class AlignmentService:
    """Accepts many alignment jobs and drives them to completion.

    Args:
        root: service root directory (created, parents included).
        workers: concurrent worker processes (>= 1, enforced by the same
            rule as ``PipelineConfig.workers``).
        resume: recover the queue from an existing journal instead of
            starting empty — unfinished jobs become pending again.
        observer: optional :class:`~repro.telemetry.PipelineObserver`
            receiving metric updates.
        sinks: extra telemetry sinks (e.g. a ``JsonLinesSink`` trace).
        poll_seconds: worker-pool polling cadence.
        cpu_count: host cores the pool may assume (defaults to
            ``os.cpu_count()``).  Each dispatched job gets an even share
            — ``max(1, cpu_count // workers)`` — as its cap on
            intra-pipeline workers, so J jobs x W pipeline workers never
            exceeds the machine; clamps are counted as
            ``service.cores_clamped``.
        supervisor: runtime supervision policy
            (:class:`~repro.service.supervision.SupervisorConfig`) —
            stall/RSS guards for the pool, crash-loop quarantine
            threshold, retry backoff and the disk-free watchdog.
            Defaults to backoff-only supervision.
        batching: micro-batcher policy (:class:`BatchConfig`) — when
            queued small jobs coalesce into one fused group dispatch.
            Defaults to coalescing up to 16 jobs of <= 2^18 cells.
    """

    def __init__(self, root: str | os.PathLike, *, workers: int = 1,
                 resume: bool = False, observer=None, sinks: tuple = (),
                 poll_seconds: float = 0.02, cpu_count: int | None = None,
                 supervisor: SupervisorConfig | None = None,
                 batching: BatchConfig | None = None):
        self.root = os.fspath(root)
        os.makedirs(self.root, exist_ok=True)
        # Telemetry first: queue recovery and the cache report corruption
        # incidents through it.
        observers = (as_observer(observer),) if observer is not None else ()
        self._memory = InMemorySink()
        self.telemetry = Telemetry(sinks=(self._memory,) + tuple(sinks),
                                   observers=observers)
        journal = os.path.join(self.root, JOURNAL_NAME)
        self.queue = (JobQueue.recover(journal) if resume
                      else JobQueue(journal))
        if self.queue.corrupt_records:
            self.telemetry.corruption(
                "journal-record", journal, action="requeued",
                count=self.queue.corrupt_records,
                detail="corrupt journal records skipped during recovery")
        self.cache = ResultCache(os.path.join(self.root, "cache"),
                                 telemetry=self.telemetry)
        self.supervisor = (supervisor if supervisor is not None
                           else SupervisorConfig())
        self.pool = WorkerPool(workers,
                               stall_seconds=self.supervisor.stall_seconds,
                               max_rss_bytes=self.supervisor.max_rss_bytes)
        self.disk_guard = self.supervisor.make_disk_guard(self.root)
        self.cpu_count = cpu_count if cpu_count is not None else (
            os.cpu_count() or 1)
        self.poll_seconds = poll_seconds
        self.batching = batching if batching is not None else BatchConfig()
        self._inflight_keys: dict[str, str] = {}   # cache key -> job_id
        self._cells: dict[str, int] = {}           # job_id -> m * n
        self._attempt_log: dict[str, list[dict[str, Any]]] = {}
        self._disk_evicted = False

    # ------------------------------------------------------------- submit
    def submit(self, spec: JobSpec) -> JobRecord:
        record = self.queue.submit(spec)
        self.telemetry.metrics.counter("service.jobs_submitted").add(1)
        self._gauges()
        return record

    def submit_many(self, specs: Iterable[JobSpec]) -> list[JobRecord]:
        return [self.submit(spec) for spec in specs]

    # -------------------------------------------------------------- run
    def run(self, max_jobs: int | None = None) -> dict[str, Any]:
        """Process the queue until drained (or ``max_jobs`` finished).

        With ``max_jobs``, dispatching stops once that many jobs reached
        a terminal state this call; in-flight attempts are drained, the
        rest stay pending in the journal for a later ``resume`` run.
        Returns the run summary (also embedded in the service manifest).
        """
        if max_jobs is not None and max_jobs < 1:
            raise ConfigError("max_jobs must be positive")
        tick = time.time()
        finished_this_run = 0
        while True:
            capped = max_jobs is not None and finished_this_run >= max_jobs
            if not capped:
                finished_this_run += self._dispatch_round()
                capped = max_jobs is not None and finished_this_run >= max_jobs
            if self.pool.in_flight == 0 and (capped or self.queue.depth == 0):
                break
            finished = self.pool.poll()
            if not finished:
                time.sleep(self.poll_seconds)
                continue
            for outcome in finished:
                finished_this_run += self._settle(outcome)
            self._gauges()
        self._gauges()
        summary = self._summary(time.time() - tick, finished_this_run)
        self.write_manifest(summary)
        return summary

    def step(self) -> int:
        """One non-blocking dispatch/poll/settle round.

        The incremental counterpart of :meth:`run` for callers that own
        the loop — the gateway's dispatcher thread pumps this between
        submissions.  Returns the number of jobs that reached a terminal
        state this round.
        """
        finished = self._dispatch_round()
        for outcome in self.pool.poll():
            finished += self._settle(outcome)
        self._gauges()
        return finished

    def cancel(self, job_id: str) -> bool:
        """Cancel a job: a pending one never runs, a running one is
        terminated (its attempt produces no outcome and charges no
        retry budget).  Returns ``False`` when the job is already
        terminal; raises :class:`ConfigError` for an unknown id.
        """
        record = self.queue.find(job_id)
        if record is None:
            raise ConfigError(f"unknown job id {job_id!r}")
        if record.done:
            return False
        if record.state == JobState.RUNNING:
            displaced = self.pool.cancel(job_id)
            if record.cache_key is not None:
                self._inflight_keys.pop(record.cache_key, None)
            for sibling in displaced:
                # Grouped siblings die with the cancelled job's process;
                # they were collateral, so requeue them without charging
                # any ledger (crash=False keeps quarantine honest).
                if sibling.cache_key is not None:
                    self._inflight_keys.pop(sibling.cache_key, None)
                self.queue.mark_interrupted(
                    sibling, "displaced: a grouped sibling was cancelled",
                    crash=False)
                self.telemetry.metrics.counter(
                    "kernel.batch.displaced").add(1)
        self.queue.mark_cancelled(record)
        self.telemetry.metrics.counter("service.jobs_cancelled").add(1)
        self._gauges()
        return True

    def close(self) -> None:
        self.pool.shutdown()
        self.telemetry.close()

    # ---------------------------------------------------------- internals
    @property
    def disk_paused(self) -> bool:
        """Is dispatch currently paused by the disk-free watchdog?"""
        return self.disk_guard is not None and self.disk_guard.paused

    def _disk_ok(self) -> bool:
        """Poll the disk guard; on a low-water trip, pause dispatch and
        evict the result cache once (derived data — the cheapest bytes
        to give back).  Running attempts keep running; only *new*
        dispatches stop until free space recovers past high water."""
        if self.disk_guard is None:
            return True
        was_paused = self.disk_guard.paused
        paused = self.disk_guard.poll()
        metrics = self.telemetry.metrics
        metrics.gauge("supervision.disk_paused").set(1 if paused else 0)
        if paused and not was_paused:
            metrics.counter("supervision.disk_pauses").add(1)
        if paused and not self._disk_evicted:
            metrics.counter("supervision.cache_evicted").add(
                self.cache.evict_all())
            self._disk_evicted = True
        elif not paused:
            self._disk_evicted = False
        return not paused

    def _dispatch_round(self) -> int:
        """Fill free worker slots; serve cache hits. Returns jobs finished
        instantly (cached).

        With batching enabled, qualified small jobs are held back while
        the round scans the queue and then dispatched as one coalesced
        group attempt (``kernel.batch.*`` telemetry).  A qualified job
        that finds no partner this round dispatches solo
        (``kernel.batch.fallback.alone``); a held batch that finds no
        free slot stays pending for the next round — holding back never
        changes queue state.
        """
        if not self._disk_ok():
            return 0
        finished = 0
        skip: set[str] = set()
        batch: list[tuple[JobRecord, str]] = []
        batch_keys: set[str] = set()
        while self.pool.free_slots > 0:
            record = self.queue.next_pending(skip)
            if record is None:
                break
            key = self._key_for(record)
            if key in self._inflight_keys or key in batch_keys:
                # An identical job is running (or held for this round's
                # batch): hold this one back and serve it from the cache
                # when the twin lands.
                skip.add(record.job_id)
                continue
            hit = self.cache.get(key)
            self.telemetry.metrics.counter(
                "service.cache_hits" if hit is not None
                else "service.cache_misses").add(1)
            if hit is not None:
                self.queue.mark_cached(record, hit, key)
                self.telemetry.metrics.counter("service.jobs_cached").add(1)
                finished += 1
                continue
            if self.batching.enabled:
                reason = self._batch_disqualifier(record)
                if reason is None:
                    batch.append((record, key))
                    batch_keys.add(key)
                    skip.add(record.job_id)
                    if len(batch) >= self.batching.max_jobs:
                        self._dispatch_group(batch)
                        batch, batch_keys = [], set()
                    continue
                self.telemetry.metrics.counter(
                    f"kernel.batch.fallback.{reason}").add(1)
            self._dispatch_one(record, key)
        if batch and self.pool.free_slots > 0:
            if len(batch) >= 2:
                self._dispatch_group(batch)
            else:
                self.telemetry.metrics.counter(
                    "kernel.batch.fallback.alone").add(1)
                self._dispatch_one(*batch[0])
        return finished

    def _dispatch_one(self, record: JobRecord, key: str) -> None:
        """Start one solo attempt (the classic one-process-per-job path)."""
        self.queue.mark_running(record)
        self._inflight_keys[key] = record.job_id
        budget = core_budget(self.cpu_count, self.pool.workers)
        if record.spec.workers > budget:
            self.telemetry.metrics.counter("service.cores_clamped").add(1)
        self.pool.dispatch(record, self.job_workdir(record.job_id),
                           core_budget=budget)
        self._gauges()

    def _dispatch_group(self, batch: list[tuple[JobRecord, str]]) -> None:
        """Dispatch held-back small jobs as one coalesced group attempt."""
        now = time.time()
        metrics = self.telemetry.metrics
        records = []
        for record, key in batch:
            self.queue.mark_running(record)
            self._inflight_keys[key] = record.job_id
            records.append(record)
            metrics.histogram("kernel.batch.coalesce_seconds").observe(
                max(0.0, now - record.submitted_unix))
        metrics.counter("kernel.batch.dispatches").add(1)
        metrics.counter("kernel.batch.jobs").add(len(records))
        metrics.histogram("kernel.batch.size").observe(len(records))
        self.pool.dispatch_group(
            records, [self.job_workdir(r.job_id) for r in records],
            core_budget=core_budget(self.cpu_count, self.pool.workers))
        self._gauges()

    def _batch_disqualifier(self, record: JobRecord) -> str | None:
        """Why this job cannot join a coalesced group (``None`` = it can).

        The gate is conservative: a grouped job must behave exactly like
        its solo run.  Per-spec supervision envelopes can't be enforced
        per member of one process; chaos injections arm per attempt and
        must stay solo; retries resume Stage 1 from their on-disk
        checkpoint, which the fused presweep would ignore.
        """
        spec = record.spec
        if spec.executor != "serial":
            return "executor"
        if (spec.deadline_seconds is not None
                or spec.stall_seconds is not None
                or spec.max_rss_bytes is not None):
            return "envelope"
        if (spec.inject_failure_row is not None
                or spec.inject_hang_row is not None
                or spec.inject_crash_attempts):
            return "chaos"
        if record.attempts > 0:
            return "retry"
        cells = self._cells.get(record.job_id)
        if cells is None:
            s0, s1 = spec.load_sequences()
            cells = len(s0) * len(s1)
            self._cells[record.job_id] = cells
        if cells > self.batching.max_cells:
            return "large"
        return None

    def _settle(self, outcome) -> int:
        """Fold one finished attempt into queue/cache/metrics.  Returns 1
        when the job reached a terminal state, 0 when it was requeued.

        Failure taxonomy: *honest* failures (a reported exception, a
        deadline overrun, a memory-limit kill) charge the retry budget
        and end in FAILED when it runs out.  *Abnormal* endings (a crash
        without a report, a stall kill) charge the crash-loop ledger
        instead — they requeue without burning retries until the
        supervisor's ``crash_loop_threshold``, then the job is
        QUARANTINED with an on-disk diagnostics bundle.  Both kinds of
        requeue carry a backoff ``not_before``.
        """
        record = outcome.record
        metrics = self.telemetry.metrics
        self._inflight_keys.pop(record.cache_key, None)
        if outcome.batch_stats:
            # The group's fused-presweep report rides on its first
            # outcome: honest padding accounting for the batch ledger.
            metrics.histogram("kernel.batch.padding_waste").observe(
                outcome.batch_stats.get("padding_waste", 0.0))
            metrics.counter("kernel.batch.fused_lanes").add(
                outcome.batch_stats.get("lanes", 0))
        kind = ("ok" if outcome.ok else
                "timeout" if outcome.timed_out else
                "stalled" if outcome.stalled else
                "memory" if outcome.memory_exceeded else
                "crashed" if outcome.crashed else "error")
        with self.telemetry.span(
                "service.job", job_id=record.job_id, attempt=record.attempts,
                outcome=kind):
            if outcome.ok:
                summary = outcome.summary
                self.cache.put(record.cache_key, summary)
                self.queue.mark_succeeded(record, summary)
                self._attempt_log.pop(record.job_id, None)
                metrics.counter("service.jobs_succeeded").add(1)
                metrics.histogram("service.job_seconds").observe(
                    summary["wall_seconds"])
                if summary.get("resumed_from_row"):
                    metrics.counter("service.resumed_jobs").add(1)
                return 1
            self._note_attempt(record, outcome, kind)
            if outcome.timed_out:
                metrics.counter("service.timeouts").add(1)
            if outcome.stalled:
                metrics.counter("supervision.stalls").add(1)
            if outcome.memory_exceeded:
                metrics.counter("supervision.memory_kills").add(1)
            if outcome.stalled or outcome.crashed:
                metrics.counter("supervision.interrupted").add(1)
                if record.crashes + 1 >= self.supervisor.crash_loop_threshold:
                    record.crashes += 1    # this crash tips the ledger
                    # Set the terminal state before the bundle snapshot so
                    # triage reads "quarantined", not the in-flight state.
                    record.state = JobState.QUARANTINED
                    diagnostics = self._write_diagnostics(record)
                    self.queue.mark_quarantined(record, outcome.error,
                                                diagnostics=diagnostics)
                    metrics.counter("supervision.quarantined").add(1)
                    return 1
                self.queue.mark_interrupted(
                    record, outcome.error,
                    not_before=self._backoff_for(record))
                return 0
            if record.failures < record.spec.max_retries:
                self.queue.mark_retry(record, outcome.error,
                                      not_before=self._backoff_for(record))
                metrics.counter("service.retries").add(1)
                return 0
            self.queue.mark_failed(record, outcome.error)
            metrics.counter("service.jobs_failed").add(1)
            return 1

    def _backoff_for(self, record: JobRecord) -> float | None:
        """The requeue hold for the failure that is about to be journaled
        (``None`` with backoff disabled)."""
        backoff = self.supervisor.backoff
        if backoff is None:
            return None
        count = record.failures + record.interruptions + 1
        delay = backoff.delay(record.job_id, count)
        self.telemetry.metrics.histogram(
            "supervision.retry_backoff_seconds").observe(delay)
        return time.time() + delay

    def _note_attempt(self, record: JobRecord, outcome, kind: str) -> None:
        """Append to the job's bounded attempt log (diagnostics fodder)."""
        log = self._attempt_log.setdefault(record.job_id, [])
        log.append({
            "attempt": record.attempts,
            "kind": kind,
            "error": outcome.error,
            "traceback": outcome.traceback,
            "last_heartbeat": (list(outcome.progress)
                               if outcome.progress else None),
            "time": time.time(),
        })
        del log[:-10]

    def _write_diagnostics(self, record: JobRecord) -> str | None:
        """Best-effort quarantine bundle (a failed write must not block
        the quarantine transition itself)."""
        workdir = self.job_workdir(record.job_id)
        row = None
        ckpt = os.path.join(workdir, "stage1.ckpt")
        if os.path.exists(ckpt):
            try:
                s0, s1 = record.spec.load_sequences()
                row = checkpoint_row(ckpt, len(s0), len(s1))
            except (StorageError, ConfigError, OSError):
                row = None
        try:
            return write_diagnostics(
                workdir, record, self._attempt_log.get(record.job_id, []),
                checkpoint_row=row)
        except OSError:
            return None

    def _key_for(self, record: JobRecord) -> str:
        """Compute (and memoize) the job's cache key.

        Loads the input pair in the service process — cheap next to the
        alignment itself, and what makes duplicates detectable *before*
        a worker is spent on them.
        """
        if record.cache_key is None:
            spec = record.spec
            s0, s1 = spec.load_sequences()
            self._cells[record.job_id] = len(s0) * len(s1)
            record.cache_key = cache_key(
                sequence_digest(s0.codes.tobytes()),
                sequence_digest(s1.codes.tobytes()),
                spec.scheme,
                config_fingerprint(spec.pipeline_config(n=len(s1))))
        return record.cache_key

    def _gauges(self) -> None:
        self.telemetry.metrics.gauge("service.queue_depth").set(
            self.queue.depth)
        self.telemetry.metrics.gauge("service.jobs_inflight").set(
            self.pool.in_flight)

    def job_workdir(self, job_id: str) -> str:
        return os.path.join(self.root, "jobs", job_id)

    # ----------------------------------------------------------- manifest
    def _summary(self, elapsed: float, finished_this_run: int
                 ) -> dict[str, Any]:
        records = self.queue.records()
        by_state = {state: sum(1 for r in records if r.state == state)
                    for state in (JobState.SUCCEEDED, JobState.CACHED,
                                  JobState.FAILED, JobState.CANCELLED,
                                  JobState.QUARANTINED, JobState.PENDING)}
        snapshot = self.telemetry.metrics.snapshot()
        return {
            "jobs": len(records),
            "finished_this_run": finished_this_run,
            "succeeded": by_state[JobState.SUCCEEDED],
            "cached": by_state[JobState.CACHED],
            "failed": by_state[JobState.FAILED],
            "cancelled": by_state[JobState.CANCELLED],
            "quarantined": by_state[JobState.QUARANTINED],
            "remaining": by_state[JobState.PENDING],
            "retries": snapshot.get("service.retries", 0),
            "timeouts": snapshot.get("service.timeouts", 0),
            "elapsed_seconds": elapsed,
            "jobs_per_second": (finished_this_run / elapsed if elapsed > 0
                                else 0.0),
            "cache": self.cache.stats(),
        }

    def write_manifest(self, summary: dict[str, Any] | None = None) -> str:
        """Write ``root/manifest.json``: job records (each pointing at its
        per-job ``manifest.json``), metrics snapshot, spans, cache stats."""
        manifest = {
            "version": MANIFEST_VERSION,
            "tool": "repro-service",
            "created_unix": time.time(),
            "root": self.root,
            "workers": self.pool.workers,
            "cpu_count": self.cpu_count,
            "summary": json_safe(summary or {}),
            "jobs": json_safe([r.to_json() for r in self.queue.records()]),
            "metrics": json_safe(self.telemetry.metrics.snapshot()),
            "cache": json_safe(self.cache.stats()),
            "spans": json_safe([s.to_record() for s in self._memory.spans]),
        }
        return write_manifest(os.path.join(self.root, "manifest.json"),
                              manifest)
