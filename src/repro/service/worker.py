"""Worker pool: jobs run in ``multiprocessing`` workers.

Each attempt is one child process executing the full six-stage pipeline
in the job's private workdir (``jobs/<job_id>/`` under the service
root).  Process isolation is what makes the envelope enforceable: a
deadline overrun is terminated from outside, and a crashed attempt
cannot corrupt the service.  Because the workdir persists across
attempts, a retry resumes Stage 1 from the last on-disk checkpoint
instead of re-sweeping from row 0 (the pipeline recovers the SRA rows
the dead attempt already flushed).

The child reports back over a one-shot pipe: throttled heartbeat
messages (``{"hb": True, "stage": ..., "fraction": ...}``) while it
works, then one final ``{"ok": True, "summary": ...}`` or ``{"ok":
False, "error": ..., "traceback": ...}``.  The parent supervises from
the outside on every :meth:`WorkerPool.poll`: a heartbeat that stops
*advancing* for ``stall_seconds`` gets the attempt killed as stalled, a
resident set over ``max_rss_bytes`` (read from ``/proc``) gets it killed
as a memory-limit failure, and both are independent of the wall-clock
deadline.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass, field, replace
from typing import Any

from repro.errors import ConfigError, StorageError
from repro.core.checkpoint import checkpoint_row
from repro.core.pipeline import CUDAlign
from repro.service.job import JobRecord, JobSpec
from repro.service.supervision import rss_bytes
from repro.telemetry.manifest import sequence_digest
from repro.telemetry.observer import PipelineObserver

#: Fork keeps worker startup cheap and needs no importable __main__;
#: platforms without it (Windows) fall back to spawn.
_CTX = multiprocessing.get_context(
    "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn")


class InjectedFailure(RuntimeError):
    """Raised by the chaos hook (``JobSpec.inject_failure_row``)."""


class FailureInjector(PipelineObserver):
    """Kills Stage 1 once its sweep passes a given row (chaos testing)."""

    def __init__(self, m: int, fail_at_row: int):
        self.m = m
        self.fail_at_row = fail_at_row

    def on_stage_progress(self, stage: str, fraction: float) -> None:
        if stage == "stage1" and fraction * self.m >= self.fail_at_row:
            raise InjectedFailure(
                f"injected failure at stage1 row >= {self.fail_at_row}")


class HangInjector(PipelineObserver):
    """Hangs Stage 1 forever once its sweep passes a given row.

    At row 0 the hang fires on stage *start*, before the attempt has
    produced a single heartbeat — the stall detector's worst case (a
    child blocked before ever writing to its result pipe).  Observers
    after this one in the chain never run once it trips, so the
    heartbeat sender goes silent exactly like a genuinely wedged worker.
    """

    def __init__(self, m: int, hang_at_row: int):
        self.m = m
        self.hang_at_row = hang_at_row

    def _hang(self) -> None:
        while True:             # killed from outside; nothing to clean up
            time.sleep(3600)

    def on_stage_start(self, stage: str) -> None:
        if stage == "stage1" and self.hang_at_row <= 0:
            self._hang()

    def on_stage_progress(self, stage: str, fraction: float) -> None:
        if stage == "stage1" and fraction * self.m >= self.hang_at_row:
            self._hang()


#: Minimum seconds between heartbeat sends (same stage); stage changes
#: always go out immediately.
HEARTBEAT_INTERVAL = 0.05


class HeartbeatSender(PipelineObserver):
    """Streams ``(stage, fraction)`` progress over the attempt's pipe.

    Throttled so a fast sweep doesn't flood the pipe, but a stage change
    always flushes — the parent's stall detector only resets its timer
    when the reported progress *advances*, so send rate does not matter
    for correctness, only for overhead.
    """

    def __init__(self, conn):
        self.conn = conn
        self._stage: str | None = None
        self._sent = 0.0

    def _send(self, stage: str, fraction: float) -> None:
        try:
            self.conn.send({"hb": True, "stage": stage,
                            "fraction": fraction})
        except (BrokenPipeError, OSError):
            pass    # parent gone; the attempt is being torn down anyway
        self._sent = time.monotonic()

    def on_stage_start(self, stage: str) -> None:
        self._stage = stage
        self._send(stage, 0.0)

    def on_stage_progress(self, stage: str, fraction: float) -> None:
        if (stage != self._stage or
                time.monotonic() - self._sent >= HEARTBEAT_INTERVAL):
            self._stage = stage
            self._send(stage, fraction)

    def on_stage_end(self, stage: str, result) -> None:
        self._send(stage, 1.0)


class _StagePrefix(PipelineObserver):
    """Prefixes stage names before an inner observer sees them.

    A group attempt runs several jobs through one heartbeat pipe; the
    prefix (``job 2/5 ``) keeps the parent's last-heartbeat diagnostics
    honest about *which* member was running, and guarantees the beat
    tuple advances across same-shaped member pipelines.
    """

    def __init__(self, inner: PipelineObserver, prefix: str):
        self.inner = inner
        self.prefix = prefix

    def on_stage_start(self, stage: str) -> None:
        self.inner.on_stage_start(self.prefix + stage)

    def on_stage_progress(self, stage: str, fraction: float) -> None:
        self.inner.on_stage_progress(self.prefix + stage, fraction)

    def on_stage_end(self, stage: str, result) -> None:
        self.inner.on_stage_end(self.prefix + stage, result)

    def on_metric(self, name: str, value) -> None:
        self.inner.on_metric(name, value)


class ObserverChain(PipelineObserver):
    """Fans each hook out to several observers, in order.

    Order matters for chaos tests: an injector placed *before* the
    heartbeat sender can hang or raise before any heartbeat escapes.
    """

    def __init__(self, observers):
        self.observers = [obs for obs in observers if obs is not None]

    def on_stage_start(self, stage: str) -> None:
        for obs in self.observers:
            obs.on_stage_start(stage)

    def on_stage_progress(self, stage: str, fraction: float) -> None:
        for obs in self.observers:
            obs.on_stage_progress(stage, fraction)

    def on_stage_end(self, stage: str, result) -> None:
        for obs in self.observers:
            obs.on_stage_end(stage, result)

    def on_metric(self, name: str, value) -> None:
        for obs in self.observers:
            obs.on_metric(name, value)


def core_budget(cpu_count: int, job_slots: int) -> int:
    """Per-job core allowance so J jobs x W workers never oversubscribe.

    The machine's cores are split evenly across the pool's job slots:
    ``max(1, cpu_count // job_slots)``.  A job asking for more pipeline
    workers than its share is clamped at dispatch (the service counts
    those clamps as ``service.cores_clamped``).
    """
    return max(1, cpu_count // max(1, job_slots))


def execute_job(spec: JobSpec, workdir: str, attempt: int,
                core_budget: int | None = None,
                observer: PipelineObserver | None = None,
                stage1_sweeper=None) -> dict[str, Any]:
    """Run one attempt of a job in-process; returns the result summary.

    This is the body every worker process runs, importable so tests and
    benchmarks can call it inline.  The chaos hooks only arm on the
    first attempt(s) — the retry must succeed to prove the resume path.

    ``core_budget`` caps the pipeline's intra-job parallelism (the
    ``workers`` knob) so concurrent jobs don't oversubscribe the host;
    ``None`` means uncapped (inline callers).  ``observer`` is chained
    *after* the chaos injectors (worker children pass the heartbeat
    sender here, so an injected hang silences the heartbeat too).
    ``stage1_sweeper`` hands the pipeline a pre-built (typically already
    completed) Stage-1 sweeper — the micro-batcher's fused presweep.
    """
    s0, s1 = spec.load_sequences()
    config = spec.pipeline_config(n=len(s1))
    if core_budget is not None and config.workers > core_budget:
        config = replace(config, workers=core_budget)
    chain: list[PipelineObserver] = []
    if spec.inject_failure_row is not None and attempt <= 1:
        chain.append(FailureInjector(len(s0), spec.inject_failure_row))
    if spec.inject_hang_row is not None and attempt <= 1:
        chain.append(HangInjector(len(s0), spec.inject_hang_row))
    if observer is not None:
        chain.append(observer)
    observer = ObserverChain(chain) if len(chain) > 1 else (
        chain[0] if chain else None)
    resumes_from = None
    ckpt = os.path.join(workdir, "stage1.ckpt")
    if os.path.exists(ckpt):
        try:
            resumes_from = checkpoint_row(ckpt, len(s0), len(s1))
        except StorageError:
            # Corrupt or foreign checkpoint: the pipeline quarantines it
            # and sweeps fresh — the peek must not burn the retry budget.
            resumes_from = None
    pipeline = CUDAlign(config, workdir=workdir, observer=observer,
                        stage1_sweeper=stage1_sweeper,
                        manifest_extra={"job_id": spec.job_id,
                                        "attempt": attempt,
                                        "resumes_from_row": resumes_from})
    result = pipeline.run(s0, s1, visualize=False)
    alignment = result.alignment
    return {
        "job_id": spec.job_id,
        "attempt": attempt,
        "best_score": result.best_score,
        "alignment_length": result.alignment_length,
        "start": list(alignment.start) if alignment is not None else None,
        "end": list(alignment.end) if alignment is not None else None,
        "m": result.m,
        "n": result.n,
        "wall_seconds": result.wall_seconds,
        "resumed_from_row": result.stage1.resumed_from_row,
        "digest0": sequence_digest(s0.codes.tobytes()),
        "digest1": sequence_digest(s1.codes.tobytes()),
        "manifest": os.path.join(workdir, "manifest.json"),
        "workdir": workdir,
    }


def prepare_group(specs) -> tuple[dict[str, Any], dict[str, Any]]:
    """Fused Stage-1 presweep for a coalesced group (child-process side).

    Builds one batched Stage-1 lane per spec — with exactly the save
    rows, tracking options and scheme Stage 1 itself would request (see
    :func:`~repro.core.stage1.stage1_sweep_plan`) — and runs every lane
    to completion through length-bucketed fused dispatches.  Returns
    ``(sweepers, stats)``: ``sweepers`` maps job id to its finished
    lane, ready for ``execute_job(..., stage1_sweeper=...)``; ``stats``
    is :func:`~repro.align.batched.sweep_batched`'s honest batch report
    (lanes, buckets, padding waste).
    """
    from repro.align.batched import BatchedRowSweeper, sweep_batched
    from repro.core.stage1 import stage1_sweep_plan
    sweepers: dict[str, Any] = {}
    for spec in specs:
        s0, s1 = spec.load_sequences()
        config = spec.pipeline_config(n=len(s1))
        _, rows = stage1_sweep_plan(len(s0), len(s1), config)
        sweepers[spec.job_id] = BatchedRowSweeper(
            s0.codes, s1.codes, config.scheme,
            local=True, track_best=True, save_rows=list(rows))
    stats = sweep_batched(list(sweepers.values()))
    return sweepers, stats


def _job_main(conn, spec_json: dict[str, Any], workdir: str,
              attempt: int, core_budget: int | None = None) -> None:
    """Child-process entry point: heartbeats while running, one final
    report, and the crash-loop chaos hook (dies without reporting)."""
    try:
        spec = JobSpec.from_json(spec_json)
        if attempt <= spec.inject_crash_attempts:
            os._exit(66)    # crash injection: no report, no cleanup
        summary = execute_job(spec, workdir, attempt,
                              core_budget=core_budget,
                              observer=HeartbeatSender(conn))
        conn.send({"ok": True, "summary": summary})
    except BaseException as exc:  # report everything; the parent decides
        conn.send({"ok": False,
                   "error": f"{type(exc).__name__}: {exc}",
                   "traceback": traceback.format_exc()})
    finally:
        conn.close()


def _group_main(conn, jobs: list[dict[str, Any]],
                core_budget: int | None = None) -> None:
    """Child entry for a coalesced group of jobs.

    One fused Stage-1 presweep across every member, then each member's
    pipeline in sequence.  Each job reports its own ``job_done`` message
    the moment it lands — so if the process dies mid-group, only the
    members that had not reported share the crash — followed by one
    final group report.  A member's failure never takes its siblings
    down; a failure of the group harness itself (the final ``ok: False``
    report) is settled per unreported member by the parent.
    """
    try:
        specs = [JobSpec.from_json(job["spec"]) for job in jobs]
        heartbeat = HeartbeatSender(conn)
        heartbeat.on_stage_start("batch:presweep")
        sweepers, stats = prepare_group(specs)
        heartbeat.on_stage_end("batch:presweep", None)
        try:
            conn.send({"batch_stats": stats})
        except (BrokenPipeError, OSError):
            pass
        for index, (spec, job) in enumerate(zip(specs, jobs)):
            prefix = f"job {index + 1}/{len(jobs)} "
            try:
                summary = execute_job(
                    spec, job["workdir"], job["attempt"],
                    core_budget=core_budget,
                    observer=_StagePrefix(heartbeat, prefix),
                    stage1_sweeper=sweepers[spec.job_id])
                conn.send({"job_done": True, "job_id": spec.job_id,
                           "ok": True, "summary": summary})
            except BaseException as exc:
                conn.send({"job_done": True, "job_id": spec.job_id,
                           "ok": False,
                           "error": f"{type(exc).__name__}: {exc}",
                           "traceback": traceback.format_exc()})
        conn.send({"ok": True, "group": True})
    except BaseException as exc:
        conn.send({"ok": False, "group": True,
                   "error": f"{type(exc).__name__}: {exc}",
                   "traceback": traceback.format_exc()})
    finally:
        conn.close()


@dataclass
class Attempt:
    """One in-flight child process (a single job, or a coalesced group)."""

    record: JobRecord
    process: Any
    conn: Any
    #: For group attempts: every member record (``record`` is the first).
    group: list[JobRecord] | None = None
    #: Per-member final reports received so far (group attempts).
    completed: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: The child's fused-presweep statistics, once reported.
    batch_stats: dict[str, Any] | None = None
    started: float = field(default_factory=time.monotonic)
    # Supervision state, maintained by WorkerPool.poll():
    progress: tuple[str, float] | None = None   # last *advanced* heartbeat
    last_beat: float = field(default_factory=time.monotonic)
    last_rss: int | None = None
    rss_checked: float = 0.0

    @property
    def deadline_exceeded(self) -> bool:
        deadline = self.record.spec.deadline_seconds
        return (deadline is not None and
                time.monotonic() - self.started > deadline)

    def stall_exceeded(self, default: float | None) -> bool:
        """Has progress stopped advancing past the stall bound?

        The per-spec bound wins; ``default`` is the pool-wide fallback;
        ``None`` for both disables stall detection for this attempt.
        The timer resets only when a heartbeat *advances* (stage change
        or larger fraction) — a child re-sending the same position is as
        stalled as a silent one.
        """
        bound = self.record.spec.stall_seconds
        if bound is None:
            bound = default
        return bound is not None and time.monotonic() - self.last_beat > bound

    def rss_limit(self, default: int | None) -> int | None:
        limit = self.record.spec.max_rss_bytes
        return default if limit is None else limit

    def note_heartbeat(self, stage: str, fraction: float) -> None:
        beat = (stage, fraction)
        if self.progress is None or beat != self.progress:
            self.progress = beat
            self.last_beat = time.monotonic()


@dataclass(frozen=True)
class Finished:
    """Outcome of one completed (or killed) attempt.

    Exactly one of the flags explains a failure: ``timed_out`` (deadline
    kill), ``stalled`` (heartbeat stopped advancing), ``memory_exceeded``
    (RSS ceiling kill) or ``crashed`` (died without reporting); a plain
    reported failure sets none of them.  ``progress`` is the attempt's
    last advanced heartbeat (diagnostics).  ``batch_stats`` rides on the
    first outcome of a coalesced group: the child's fused-presweep
    report (lanes, buckets, padding waste).
    """

    record: JobRecord
    ok: bool
    summary: dict[str, Any] | None = None
    error: str | None = None
    timed_out: bool = False
    stalled: bool = False
    crashed: bool = False
    memory_exceeded: bool = False
    traceback: str | None = None
    progress: tuple[str, float] | None = None
    batch_stats: dict[str, Any] | None = None


#: Seconds between /proc RSS probes per attempt (poll-side throttle).
RSS_POLL_INTERVAL = 0.1


class WorkerPool:
    """Up to ``workers`` concurrent job processes.

    ``stall_seconds`` and ``max_rss_bytes`` are pool-wide supervision
    defaults; a spec's own ``stall_seconds``/``max_rss_bytes`` override
    them per job.  ``None`` disables the respective guard.
    """

    def __init__(self, workers: int, stall_seconds: float | None = None,
                 max_rss_bytes: int | None = None):
        # Central worker-count policy: same rule as PipelineConfig.workers.
        if workers < 1:
            raise ConfigError("workers must be positive")
        self.workers = workers
        self.stall_seconds = stall_seconds
        self.max_rss_bytes = max_rss_bytes
        self._running: list[Attempt] = []

    @property
    def free_slots(self) -> int:
        return self.workers - len(self._running)

    @property
    def in_flight(self) -> int:
        return len(self._running)

    def dispatch(self, record: JobRecord, workdir: str,
                 core_budget: int | None = None) -> None:
        """Start one attempt of ``record`` in a fresh child process.

        ``core_budget`` is forwarded to :func:`execute_job` to cap the
        job's intra-pipeline workers.
        """
        if self.free_slots <= 0:
            raise ConfigError("dispatch() with no free worker slot")
        os.makedirs(workdir, exist_ok=True)
        parent_conn, child_conn = _CTX.Pipe(duplex=False)
        process = _CTX.Process(
            target=_job_main,
            args=(child_conn, record.spec.to_json(), workdir,
                  record.attempts, core_budget),
            name=f"repro-job-{record.job_id}")
        process.start()
        child_conn.close()
        self._running.append(Attempt(record=record, process=process,
                                     conn=parent_conn))

    def dispatch_group(self, records: list[JobRecord], workdirs: list[str],
                       core_budget: int | None = None) -> None:
        """Start ONE child attempt running several jobs (micro-batching).

        The group occupies a single worker slot — that is the point: K
        queued small jobs cost one process dispatch, and their Stage-1
        sweeps run fused inside the child (:func:`_group_main`).
        Pool-wide supervision (stall, RSS, liveness) covers the whole
        group; specs carrying their own envelope overrides should not be
        grouped (the service's qualification gate enforces that).
        """
        if self.free_slots <= 0:
            raise ConfigError("dispatch_group() with no free worker slot")
        if not records or len(records) != len(workdirs):
            raise ConfigError("dispatch_group() needs one workdir per record")
        jobs = []
        for record, workdir in zip(records, workdirs):
            os.makedirs(workdir, exist_ok=True)
            jobs.append({"spec": record.spec.to_json(), "workdir": workdir,
                         "attempt": record.attempts})
        parent_conn, child_conn = _CTX.Pipe(duplex=False)
        process = _CTX.Process(
            target=_group_main, args=(child_conn, jobs, core_budget),
            name=f"repro-group-{records[0].job_id}-x{len(records)}")
        process.start()
        child_conn.close()
        self._running.append(Attempt(record=records[0], process=process,
                                     conn=parent_conn, group=list(records)))

    @staticmethod
    def _kill(attempt: Attempt) -> None:
        """Terminate with escalation: TERM, a grace join, then KILL."""
        attempt.process.terminate()
        attempt.process.join(1.0)
        if attempt.process.is_alive():
            attempt.process.kill()
            attempt.process.join()

    @staticmethod
    def _drain(attempt: Attempt) -> tuple[dict[str, Any] | None, bool]:
        """Consume pipe messages: heartbeats update the attempt's
        supervision state, per-member ``job_done`` reports and presweep
        statistics accumulate on the attempt; returns
        ``(final_message, pipe_broken)``."""
        while True:
            try:
                if not attempt.conn.poll():
                    return None, False
                message = attempt.conn.recv()
            except (EOFError, OSError):
                # The child died between poll() and recv(), or closed the
                # pipe without a final report (os._exit, SIGKILL).
                return None, True
            if message.get("hb"):
                attempt.note_heartbeat(message["stage"], message["fraction"])
                continue
            if "batch_stats" in message:
                attempt.batch_stats = message["batch_stats"]
                continue
            if message.get("job_done"):
                attempt.completed[message["job_id"]] = message
                # A member landing is progress for the whole group.
                attempt.note_heartbeat(f"done:{message['job_id']}", 1.0)
                continue
            return message, False

    @staticmethod
    def _reported(record: JobRecord, message: dict[str, Any],
                  progress, batch_stats=None) -> Finished:
        """A Finished built from the child's own report for one job."""
        if message["ok"]:
            return Finished(record, True, summary=message["summary"],
                            progress=progress, batch_stats=batch_stats)
        return Finished(record, False, error=message["error"],
                        traceback=message.get("traceback"),
                        progress=progress, batch_stats=batch_stats)

    def _group_outcomes(self, attempt: Attempt,
                        final: dict[str, Any] | None, *,
                        error: str | None = None,
                        **flags) -> list[Finished]:
        """Per-member outcomes for a group attempt that just ended.

        Members that reported their own ``job_done`` settle on that
        report regardless of how the group ended; the rest share the
        group's fate — the final error report, or the kill reason in
        ``flags`` (crashed / timed_out / stalled / memory_exceeded).
        The fused-presweep statistics ride on the first outcome.
        """
        traceback_text = None
        if final is not None and not final.get("ok", False):
            error = final.get("error")
            traceback_text = final.get("traceback")
        out: list[Finished] = []
        for record in attempt.group:
            stats = attempt.batch_stats if not out else None
            message = attempt.completed.get(record.job_id)
            if message is not None:
                out.append(self._reported(record, message, attempt.progress,
                                          batch_stats=stats))
            else:
                out.append(Finished(
                    record, False,
                    error=error or "group attempt ended before this job ran",
                    traceback=traceback_text, progress=attempt.progress,
                    batch_stats=stats, **flags))
        return out

    def _finish(self, attempt: Attempt, final: dict[str, Any] | None, *,
                error: str | None = None, **flags) -> list[Finished]:
        """Outcome list for one ended attempt (single job or group)."""
        if attempt.group is not None:
            return self._group_outcomes(attempt, final, error=error, **flags)
        if final is not None:
            return [self._reported(attempt.record, final, attempt.progress)]
        return [Finished(attempt.record, False, error=error,
                         progress=attempt.progress, **flags)]

    def poll(self) -> list[Finished]:
        """Harvest finished attempts; kill any past their supervision
        envelope (deadline, stall bound, RSS ceiling)."""
        done: list[Finished] = []
        still: list[Attempt] = []
        now = time.monotonic()
        for attempt in self._running:
            message, broken = self._drain(attempt)
            if message is not None:
                attempt.process.join()
                attempt.conn.close()
                done.extend(self._finish(attempt, message))
            elif broken or not attempt.process.is_alive():
                # Died without reporting (e.g. SIGKILL, OOM, os._exit).
                attempt.process.join()
                attempt.conn.close()
                done.extend(self._finish(
                    attempt, None, crashed=True,
                    error=f"worker died with exit code "
                          f"{attempt.process.exitcode}"))
            elif attempt.deadline_exceeded:
                self._kill(attempt)
                attempt.conn.close()
                done.extend(self._finish(
                    attempt, None, timed_out=True,
                    error=f"deadline of "
                          f"{attempt.record.spec.deadline_seconds}s exceeded"))
            elif attempt.stall_exceeded(self.stall_seconds):
                self._kill(attempt)
                attempt.conn.close()
                at = (f"{attempt.progress[0]} {attempt.progress[1]:.3f}"
                      if attempt.progress else "before first heartbeat")
                done.extend(self._finish(
                    attempt, None, stalled=True,
                    error=f"stalled: no progress within "
                          f"{attempt.record.spec.stall_seconds or self.stall_seconds}s "
                          f"(last at {at})"))
            elif self._over_rss(attempt, now):
                self._kill(attempt)
                attempt.conn.close()
                done.extend(self._finish(
                    attempt, None, memory_exceeded=True,
                    error=f"memory limit exceeded: rss {attempt.last_rss} "
                          f"> {attempt.rss_limit(self.max_rss_bytes)} bytes"))
            else:
                still.append(attempt)
        self._running = still
        return done

    def _over_rss(self, attempt: Attempt, now: float) -> bool:
        """Probe /proc for the attempt's RSS, throttled; ``False`` when
        the guard is off or /proc is unavailable (non-Linux)."""
        limit = attempt.rss_limit(self.max_rss_bytes)
        if limit is None or now - attempt.rss_checked < RSS_POLL_INTERVAL:
            return False
        attempt.rss_checked = now
        rss = rss_bytes(attempt.process.pid)
        if rss is not None:
            attempt.last_rss = rss
        return rss is not None and rss > limit

    def cancel(self, job_id: str) -> list[JobRecord]:
        """Terminate the in-flight attempt carrying ``job_id``, if any.

        The attempt is removed from the pool without producing a
        :class:`Finished` outcome — cancellation is the caller's state
        transition, not a failed attempt — so it never charges the
        retry budget.  When the job was riding a coalesced group, the
        whole child dies with it; the *other* member records come back
        as the displaced list so the caller can requeue them (they were
        collateral, not failures).  An empty list means either a solo
        attempt was killed or no attempt carried the job.
        """
        for index, attempt in enumerate(self._running):
            members = attempt.group or [attempt.record]
            if all(record.job_id != job_id for record in members):
                continue
            if attempt.process.is_alive():
                attempt.process.terminate()
            attempt.process.join()
            attempt.conn.close()
            del self._running[index]
            return [record for record in members if record.job_id != job_id]
        return []

    def shutdown(self) -> None:
        """Terminate every in-flight attempt (service teardown)."""
        for attempt in self._running:
            if attempt.process.is_alive():
                attempt.process.terminate()
            attempt.process.join()
            attempt.conn.close()
        self._running = []
