"""Worker pool: jobs run in ``multiprocessing`` workers.

Each attempt is one child process executing the full six-stage pipeline
in the job's private workdir (``jobs/<job_id>/`` under the service
root).  Process isolation is what makes the envelope enforceable: a
deadline overrun is terminated from outside, and a crashed attempt
cannot corrupt the service.  Because the workdir persists across
attempts, a retry resumes Stage 1 from the last on-disk checkpoint
instead of re-sweeping from row 0 (the pipeline recovers the SRA rows
the dead attempt already flushed).

The child reports back over a one-shot pipe: ``{"ok": True, "summary":
...}`` or ``{"ok": False, "error": ..., "traceback": ...}``.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass, field, replace
from typing import Any

from repro.errors import ConfigError, StorageError
from repro.core.checkpoint import checkpoint_row
from repro.core.pipeline import CUDAlign
from repro.service.job import JobRecord, JobSpec
from repro.telemetry.manifest import sequence_digest
from repro.telemetry.observer import PipelineObserver

#: Fork keeps worker startup cheap and needs no importable __main__;
#: platforms without it (Windows) fall back to spawn.
_CTX = multiprocessing.get_context(
    "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn")


class InjectedFailure(RuntimeError):
    """Raised by the chaos hook (``JobSpec.inject_failure_row``)."""


class FailureInjector(PipelineObserver):
    """Kills Stage 1 once its sweep passes a given row (chaos testing)."""

    def __init__(self, m: int, fail_at_row: int):
        self.m = m
        self.fail_at_row = fail_at_row

    def on_stage_progress(self, stage: str, fraction: float) -> None:
        if stage == "stage1" and fraction * self.m >= self.fail_at_row:
            raise InjectedFailure(
                f"injected failure at stage1 row >= {self.fail_at_row}")


def core_budget(cpu_count: int, job_slots: int) -> int:
    """Per-job core allowance so J jobs x W workers never oversubscribe.

    The machine's cores are split evenly across the pool's job slots:
    ``max(1, cpu_count // job_slots)``.  A job asking for more pipeline
    workers than its share is clamped at dispatch (the service counts
    those clamps as ``service.cores_clamped``).
    """
    return max(1, cpu_count // max(1, job_slots))


def execute_job(spec: JobSpec, workdir: str, attempt: int,
                core_budget: int | None = None) -> dict[str, Any]:
    """Run one attempt of a job in-process; returns the result summary.

    This is the body every worker process runs, importable so tests and
    benchmarks can call it inline.  The failure hook only arms on the
    first attempt — the retry must succeed to prove the resume path.

    ``core_budget`` caps the pipeline's intra-job parallelism (the
    ``workers`` knob) so concurrent jobs don't oversubscribe the host;
    ``None`` means uncapped (inline callers).
    """
    s0, s1 = spec.load_sequences()
    config = spec.pipeline_config(n=len(s1))
    if core_budget is not None and config.workers > core_budget:
        config = replace(config, workers=core_budget)
    observer = None
    if spec.inject_failure_row is not None and attempt <= 1:
        observer = FailureInjector(len(s0), spec.inject_failure_row)
    resumes_from = None
    ckpt = os.path.join(workdir, "stage1.ckpt")
    if os.path.exists(ckpt):
        try:
            resumes_from = checkpoint_row(ckpt, len(s0), len(s1))
        except StorageError:
            # Corrupt or foreign checkpoint: the pipeline quarantines it
            # and sweeps fresh — the peek must not burn the retry budget.
            resumes_from = None
    pipeline = CUDAlign(config, workdir=workdir, observer=observer,
                        manifest_extra={"job_id": spec.job_id,
                                        "attempt": attempt,
                                        "resumes_from_row": resumes_from})
    result = pipeline.run(s0, s1, visualize=False)
    alignment = result.alignment
    return {
        "job_id": spec.job_id,
        "attempt": attempt,
        "best_score": result.best_score,
        "alignment_length": result.alignment_length,
        "start": list(alignment.start) if alignment is not None else None,
        "end": list(alignment.end) if alignment is not None else None,
        "m": result.m,
        "n": result.n,
        "wall_seconds": result.wall_seconds,
        "resumed_from_row": result.stage1.resumed_from_row,
        "digest0": sequence_digest(s0.codes.tobytes()),
        "digest1": sequence_digest(s1.codes.tobytes()),
        "manifest": os.path.join(workdir, "manifest.json"),
        "workdir": workdir,
    }


def _job_main(conn, spec_json: dict[str, Any], workdir: str,
              attempt: int, core_budget: int | None = None) -> None:
    """Child-process entry point."""
    try:
        summary = execute_job(JobSpec.from_json(spec_json), workdir, attempt,
                              core_budget=core_budget)
        conn.send({"ok": True, "summary": summary})
    except BaseException as exc:  # report everything; the parent decides
        conn.send({"ok": False,
                   "error": f"{type(exc).__name__}: {exc}",
                   "traceback": traceback.format_exc()})
    finally:
        conn.close()


@dataclass
class Attempt:
    """One in-flight child process."""

    record: JobRecord
    process: Any
    conn: Any
    started: float = field(default_factory=time.monotonic)

    @property
    def deadline_exceeded(self) -> bool:
        deadline = self.record.spec.deadline_seconds
        return (deadline is not None and
                time.monotonic() - self.started > deadline)


@dataclass(frozen=True)
class Finished:
    """Outcome of one completed (or killed) attempt."""

    record: JobRecord
    ok: bool
    summary: dict[str, Any] | None = None
    error: str | None = None
    timed_out: bool = False


class WorkerPool:
    """Up to ``workers`` concurrent job processes."""

    def __init__(self, workers: int):
        # Central worker-count policy: same rule as PipelineConfig.workers.
        if workers < 1:
            raise ConfigError("workers must be positive")
        self.workers = workers
        self._running: list[Attempt] = []

    @property
    def free_slots(self) -> int:
        return self.workers - len(self._running)

    @property
    def in_flight(self) -> int:
        return len(self._running)

    def dispatch(self, record: JobRecord, workdir: str,
                 core_budget: int | None = None) -> None:
        """Start one attempt of ``record`` in a fresh child process.

        ``core_budget`` is forwarded to :func:`execute_job` to cap the
        job's intra-pipeline workers.
        """
        if self.free_slots <= 0:
            raise ConfigError("dispatch() with no free worker slot")
        os.makedirs(workdir, exist_ok=True)
        parent_conn, child_conn = _CTX.Pipe(duplex=False)
        process = _CTX.Process(
            target=_job_main,
            args=(child_conn, record.spec.to_json(), workdir,
                  record.attempts, core_budget),
            name=f"repro-job-{record.job_id}")
        process.start()
        child_conn.close()
        self._running.append(Attempt(record=record, process=process,
                                     conn=parent_conn))

    def poll(self) -> list[Finished]:
        """Harvest finished attempts; kill any past their deadline."""
        done: list[Finished] = []
        still: list[Attempt] = []
        for attempt in self._running:
            if attempt.conn.poll():
                message = attempt.conn.recv()
                attempt.process.join()
                attempt.conn.close()
                if message["ok"]:
                    done.append(Finished(attempt.record, True,
                                         summary=message["summary"]))
                else:
                    done.append(Finished(attempt.record, False,
                                         error=message["error"]))
            elif not attempt.process.is_alive():
                # Died without reporting (e.g. SIGKILL, OOM).
                attempt.process.join()
                attempt.conn.close()
                done.append(Finished(
                    attempt.record, False,
                    error=f"worker died with exit code "
                          f"{attempt.process.exitcode}"))
            elif attempt.deadline_exceeded:
                attempt.process.terminate()
                attempt.process.join()
                attempt.conn.close()
                done.append(Finished(
                    attempt.record, False, timed_out=True,
                    error=f"deadline of "
                          f"{attempt.record.spec.deadline_seconds}s exceeded"))
            else:
                still.append(attempt)
        self._running = still
        return done

    def cancel(self, job_id: str) -> bool:
        """Terminate the in-flight attempt of ``job_id``, if any.

        The attempt is removed from the pool without producing a
        :class:`Finished` outcome — cancellation is the caller's state
        transition, not a failed attempt — so it never charges the
        retry budget.  Returns ``True`` when an attempt was killed.
        """
        for index, attempt in enumerate(self._running):
            if attempt.record.job_id != job_id:
                continue
            if attempt.process.is_alive():
                attempt.process.terminate()
            attempt.process.join()
            attempt.conn.close()
            del self._running[index]
            return True
        return False

    def shutdown(self) -> None:
        """Terminate every in-flight attempt (service teardown)."""
        for attempt in self._running:
            if attempt.process.is_alive():
                attempt.process.terminate()
            attempt.process.join()
            attempt.conn.close()
        self._running = []
