"""Result cache: duplicate submissions return instantly.

The cache key is a SHA-256 over three components:

* the **sequence digest pair** — ``telemetry.manifest.sequence_digest``
  of each input's encoded bytes (so two FASTA files with the same
  content, or a re-built catalog pair, hash identically);
* the **scoring scheme** — (match, mismatch, gap_first, gap_ext);
* the **config fingerprint** — the canonical JSON of the
  :class:`~repro.core.config.PipelineConfig` minus the knobs that cannot
  change the result: ``workers`` (thread count) and
  ``checkpoint_every_rows`` (crash-recovery cadence).

Entries are one JSON file per key under ``cache/`` in the service root,
written atomically inside a checksummed integrity envelope, so the cache
survives service restarts and is shared by every worker.  A corrupt or
truncated entry is never served: it is quarantined, counted, and treated
as a miss — the job recomputes and overwrites it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from typing import Any

from repro.align.scoring import ScoringScheme
from repro.core.config import PipelineConfig
from repro.errors import IntegrityError
from repro.integrity import codec
from repro.telemetry.manifest import json_safe

#: Config fields excluded from the fingerprint: execution-only knobs that
#: cannot change the alignment the pipeline produces.
NON_SEMANTIC_FIELDS = ("workers", "checkpoint_every_rows")


def config_fingerprint(config: PipelineConfig) -> str:
    """Stable digest of the result-shaping part of a pipeline config."""
    payload = json_safe(dataclasses.asdict(config))
    for name in NON_SEMANTIC_FIELDS:
        payload.pop(name, None)
    canon = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()


def cache_key(digest0: str, digest1: str, scheme: ScoringScheme,
              fingerprint: str) -> str:
    """The (sequence digest pair, scoring scheme, config) cache key."""
    canon = json.dumps(
        {"s0": digest0, "s1": digest1,
         "scheme": [scheme.match, scheme.mismatch,
                    scheme.gap_first, scheme.gap_ext],
         "config": fingerprint},
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()


class ResultCache:
    """Disk-persistent map from cache key to job result payload.

    ``telemetry`` (optional) receives corruption incidents; the cache
    also keeps its own :attr:`corrupt` counter so callers without a
    telemetry bundle can still see the damage in :meth:`stats`.
    """

    def __init__(self, directory: str | os.PathLike, *, telemetry=None):
        self.directory = os.fspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.telemetry = telemetry

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    def get(self, key: str) -> dict[str, Any] | None:
        """The cached payload, or ``None``; counts hit/miss.

        A corrupt entry (bad envelope, truncated file, flipped bit) is a
        *miss*: the file is quarantined so the caller recomputes and the
        rewrite repairs the cache in place.
        """
        path = self._path(key)
        try:
            payload = codec.open_json(
                codec.read_text(path),
                expect_kind=codec.KIND_CACHE_ENTRY, path=path)
        except FileNotFoundError:
            self.misses += 1
            return None
        except IntegrityError as exc:
            self.corrupt += 1
            self.misses += 1
            codec.quarantine_file(path, root=self.directory)
            if self.telemetry is not None:
                self.telemetry.metrics.counter("cache.corrupt").add()
                self.telemetry.corruption(
                    codec.KIND_CACHE_ENTRY, path, action="evicted",
                    detail=str(exc))
            return None
        self.hits += 1
        return payload

    def put(self, key: str, payload: dict[str, Any]) -> None:
        """Atomically persist a payload (last writer wins)."""
        text = codec.seal_json(json_safe(payload), codec.KIND_CACHE_ENTRY)
        codec.atomic_write_bytes(self._path(key), text.encode("utf-8"))

    def evict_all(self) -> int:
        """Delete every cache entry (disk-pressure relief); returns the
        number of entries removed.  Entries are derived data — any evicted
        result recomputes on the next duplicate submission."""
        evicted = 0
        for name in os.listdir(self.directory):
            if not name.endswith(".json"):
                continue
            try:
                os.remove(os.path.join(self.directory, name))
                evicted += 1
            except OSError:
                continue
        return evicted

    def __len__(self) -> int:
        return sum(1 for name in os.listdir(self.directory)
                   if name.endswith(".json"))

    def stats(self) -> dict[str, int | float]:
        total = self.hits + self.misses
        return {"entries": len(self), "hits": self.hits,
                "misses": self.misses, "corrupt": self.corrupt,
                "hit_rate": self.hits / total if total else 0.0}
