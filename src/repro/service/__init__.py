"""Batch alignment job service.

Turns the six-stage pipeline into a schedulable, cacheable, restartable
unit of work: submit many :class:`JobSpec`\\ s to an
:class:`AlignmentService` and it drives them to completion through a
journaled :class:`JobQueue` (kill the service, ``resume=True`` picks up
where it left off), a process-based :class:`WorkerPool` with per-job
workdirs, deadlines and checkpoint-resuming retries, and a
:class:`ResultCache` that serves duplicate submissions instantly.

Quick use::

    from repro.service import AlignmentService, JobSpec
    svc = AlignmentService("runs/batch1", workers=4)
    svc.submit(JobSpec(catalog="162Kx172K", scale=8192))
    svc.submit(JobSpec(seq0="a.fasta", seq1="b.fasta", priority=5))
    summary = svc.run()        # -> root/manifest.json + journal + cache

On the command line: ``repro batch specs.json --root runs/batch1`` and
``repro jobs --root runs/batch1``.
"""

from repro.service.cache import ResultCache, cache_key, config_fingerprint
from repro.service.job import JobRecord, JobSpec, JobState
from repro.service.queue import (JOURNAL_NAME, JobQueue, JournalReplay,
                                 replay_journal)
from repro.service.service import AlignmentService, BatchConfig
from repro.service.specfile import load_specs, spec_from_payload
from repro.service.supervision import (DiskGuard, RetryBackoff,
                                       SupervisorConfig, read_diagnostics,
                                       rss_bytes, write_diagnostics)
from repro.service.worker import (
    FailureInjector,
    HangInjector,
    InjectedFailure,
    WorkerPool,
    execute_job,
    prepare_group,
)

__all__ = [
    "AlignmentService", "BatchConfig",
    "JobSpec", "JobRecord", "JobState",
    "JobQueue", "replay_journal", "JournalReplay", "JOURNAL_NAME",
    "ResultCache", "cache_key", "config_fingerprint",
    "WorkerPool", "execute_job", "prepare_group", "FailureInjector",
    "HangInjector", "InjectedFailure",
    "SupervisorConfig", "RetryBackoff", "DiskGuard", "rss_bytes",
    "write_diagnostics", "read_diagnostics",
    "load_specs", "spec_from_payload",
]
