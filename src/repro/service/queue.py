"""Persistent job queue: a priority queue with a JSON-lines journal.

Every state transition appends one event line to ``journal.jsonl``
(``submitted`` events embed the full spec), so the journal alone
reconstructs the queue: :meth:`JobQueue.recover` replays it and returns
a queue in which finished jobs stay finished and interrupted ones —
submitted or mid-run when the service died — are pending again.  An
interrupted attempt does not consume retry budget; only a *failed*
attempt (``attempt_failed`` event) does.

Scheduling order is highest ``priority`` first, FIFO within a priority.
"""

from __future__ import annotations

import heapq
import os
import time
from typing import Any, Iterable, NamedTuple

from repro.errors import ConfigError, IntegrityError
from repro.integrity import codec
from repro.service.job import JobRecord, JobSpec, JobState

#: Journal file name inside a service root.
JOURNAL_NAME = "journal.jsonl"


class JournalReplay(NamedTuple):
    """What folding a journal yields: records, raw events, damage count."""

    records: list[JobRecord]
    events: list[dict[str, Any]]
    corrupt: int


class JobQueue:
    """In-memory priority queue mirrored to an append-only journal."""

    def __init__(self, journal_path: str | os.PathLike):
        self.journal_path = os.fspath(journal_path)
        parent = os.path.dirname(self.journal_path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._records: dict[str, JobRecord] = {}
        self._order: list[str] = []   # submission order (FIFO tiebreak)
        self._index: dict[str, int] = {}   # job_id -> submission index
        # Dispatch heap: (-priority, submission index, job_id).  Entries
        # are pushed whenever a job (re)enters PENDING and invalidated
        # lazily — a popped entry whose record is no longer pending is
        # dropped — so selection is O(log q) at any queue depth instead
        # of a linear scan.  The FIFO tiebreak is the *submission* index,
        # so a retried job keeps its original slot within its priority.
        self._heap: list[tuple[int, int, str]] = []
        #: Corrupt journal records skipped by the last :meth:`recover`.
        self.corrupt_records = 0

    # ------------------------------------------------------------ journal
    def _log(self, event: str, job_id: str, **payload: Any) -> None:
        # Sealed (per-line CRC) and torn-line safe; see
        # codec.append_journal_record for the crash-consistency details.
        codec.append_journal_record(
            self.journal_path,
            {"event": event, "job_id": job_id, "time": time.time(),
             **payload})

    # ------------------------------------------------------------- submit
    def submit(self, spec: JobSpec) -> JobRecord:
        if spec.job_id in self._records:
            raise ConfigError(f"job id {spec.job_id!r} already submitted")
        record = JobRecord(spec=spec)
        self._records[spec.job_id] = record
        self._index[spec.job_id] = len(self._order)
        self._order.append(spec.job_id)
        self._push(record)
        self._log("submitted", spec.job_id, spec=spec.to_json(),
                  priority=spec.priority)
        return record

    def submit_many(self, specs: Iterable[JobSpec]) -> list[JobRecord]:
        return [self.submit(spec) for spec in specs]

    # ---------------------------------------------------------- selection
    def _push(self, record: JobRecord) -> None:
        """Heap entry for a record that just became PENDING."""
        heapq.heappush(self._heap, (-record.spec.priority,
                                    self._index[record.job_id],
                                    record.job_id))

    def next_pending(self, skip: frozenset[str] | set[str] = frozenset(),
                     now: float | None = None) -> JobRecord | None:
        """Highest-priority pending record not in ``skip`` (FIFO within).

        A peek, not a pop: the chosen record stays pending (and in the
        heap) until a ``mark_*`` transition moves it on.  Records backed
        off past ``now`` (their ``not_before``) are skipped but kept —
        they become eligible again once the clock catches up, still in
        their original FIFO slot.
        """
        if now is None:
            now = time.time()
        popped: list[tuple[int, int, str]] = []
        found: JobRecord | None = None
        while self._heap:
            entry = heapq.heappop(self._heap)
            record = self._records.get(entry[2])
            if record is None or record.state != JobState.PENDING:
                continue        # stale entry: the job moved on
            popped.append(entry)
            if record.job_id in skip:
                continue
            if record.not_before is not None and record.not_before > now:
                continue        # backing off: eligible later
            found = record
            break
        for entry in popped:
            heapq.heappush(self._heap, entry)
        return found

    def next_not_before(self) -> float | None:
        """Earliest ``not_before`` among pending jobs (idle-wait hint)."""
        times = [r.not_before for r in self._records.values()
                 if r.state == JobState.PENDING and r.not_before is not None]
        return min(times) if times else None

    # -------------------------------------------------------- transitions
    def mark_running(self, record: JobRecord) -> None:
        record.state = JobState.RUNNING
        record.attempts += 1
        record.not_before = None
        if record.started_unix is None:
            record.started_unix = time.time()
        self._log("started", record.job_id, attempt=record.attempts)

    def mark_succeeded(self, record: JobRecord, result: dict[str, Any]) -> None:
        record.state = JobState.SUCCEEDED
        record.result = result
        record.finished_unix = time.time()
        self._log("succeeded", record.job_id, attempt=record.attempts,
                  result=_summary(result))

    def mark_cached(self, record: JobRecord, result: dict[str, Any],
                    cache_key: str) -> None:
        record.state = JobState.CACHED
        record.result = result
        record.cache_hit = True
        record.cache_key = cache_key
        if record.started_unix is None:
            record.started_unix = time.time()
        record.finished_unix = time.time()
        self._log("cached", record.job_id, cache_key=cache_key,
                  result=_summary(result))

    def mark_retry(self, record: JobRecord, error: str,
                   not_before: float | None = None) -> None:
        """One attempt failed; the job goes back to pending.

        ``not_before`` (unix seconds) is the retry-backoff hold: the
        record stays in its original FIFO slot but ``next_pending`` will
        not hand it out before then.  Journaled, so a replay restores the
        same hold instead of hot-requeueing.
        """
        record.state = JobState.PENDING
        record.failures += 1
        record.error = error
        record.not_before = not_before
        self._push(record)
        self._log("attempt_failed", record.job_id, attempt=record.attempts,
                  failures=record.failures, error=error,
                  not_before=not_before)

    def mark_interrupted(self, record: JobRecord, reason: str,
                         not_before: float | None = None,
                         crash: bool = True) -> None:
        """One attempt ended abnormally (crash, stall): requeue without
        charging the retry budget.

        ``crash`` attempts count toward the quarantine ledger
        (:attr:`JobRecord.crashes`); the service compares that ledger to
        its crash-loop threshold and quarantines instead when exceeded.
        """
        record.state = JobState.PENDING
        record.interruptions += 1
        if crash:
            record.crashes += 1
        record.error = reason
        record.not_before = not_before
        self._push(record)
        self._log("attempt_interrupted", record.job_id,
                  attempt=record.attempts, crashes=record.crashes,
                  interruptions=record.interruptions, reason=reason,
                  not_before=not_before, crash=crash)

    def mark_quarantined(self, record: JobRecord, error: str,
                         diagnostics: str | None = None) -> None:
        """Crash-loop terminal state: the job will not be retried.

        ``diagnostics`` is the on-disk triage bundle path
        (:func:`repro.service.supervision.write_diagnostics`)."""
        record.state = JobState.QUARANTINED
        record.error = error
        record.diagnostics = diagnostics
        record.finished_unix = time.time()
        self._log("quarantined", record.job_id, attempt=record.attempts,
                  crashes=record.crashes, error=error,
                  diagnostics=diagnostics)

    def mark_cancelled(self, record: JobRecord, reason: str = "") -> None:
        """Cancellation is terminal; callers terminate any running attempt
        first (:meth:`~repro.service.worker.WorkerPool.cancel`)."""
        if record.done:
            raise ConfigError(
                f"job {record.job_id!r} is already {record.state}")
        record.state = JobState.CANCELLED
        record.error = reason or "cancelled"
        record.finished_unix = time.time()
        self._log("cancelled", record.job_id, attempt=record.attempts,
                  reason=record.error)

    def mark_failed(self, record: JobRecord, error: str) -> None:
        record.state = JobState.FAILED
        record.failures += 1
        record.error = error
        record.finished_unix = time.time()
        self._log("failed", record.job_id, attempt=record.attempts,
                  failures=record.failures, error=error)

    # ------------------------------------------------------------- views
    def records(self) -> list[JobRecord]:
        return [self._records[job_id] for job_id in self._order]

    def get(self, job_id: str) -> JobRecord:
        return self._records[job_id]

    def find(self, job_id: str) -> JobRecord | None:
        """Like :meth:`get` but ``None`` for an unknown id (gateway 404s)."""
        return self._records.get(job_id)

    @property
    def depth(self) -> int:
        """Jobs waiting to run (the queue-depth gauge)."""
        return sum(1 for r in self._records.values()
                   if r.state == JobState.PENDING)

    @property
    def unfinished(self) -> int:
        return sum(1 for r in self._records.values() if not r.done)

    def __len__(self) -> int:
        return len(self._records)

    # ----------------------------------------------------------- recovery
    @classmethod
    def recover(cls, journal_path: str | os.PathLike) -> "JobQueue":
        """Rebuild a queue from its journal (missing file -> empty queue).

        Appends a ``recovered`` event so the journal itself records every
        service (re)start.  Corrupt journal records are skipped and
        counted in :attr:`corrupt_records`; a job whose completion event
        was the corrupt line simply replays as unfinished and runs again.
        """
        queue = cls(journal_path)
        records, _, corrupt = replay_journal(journal_path)
        queue.corrupt_records = corrupt
        for record in records:
            if record.state == JobState.RUNNING:
                # The service died mid-attempt: run it again.  The attempt
                # was interrupted, not failed, so the retry budget is
                # untouched; Stage 1 resumes from the on-disk checkpoint.
                record.state = JobState.PENDING
            queue._records[record.job_id] = record
            queue._index[record.job_id] = len(queue._order)
            queue._order.append(record.job_id)
            if record.state == JobState.PENDING:
                queue._push(record)
        if records:
            queue._log("recovered", "-", jobs=len(records),
                       unfinished=queue.unfinished, corrupt=corrupt)
        return queue


def replay_journal(journal_path: str | os.PathLike) -> JournalReplay:
    """Fold a journal into records (submission order) plus the raw events.

    Read-only: used by recovery, ``repro jobs`` and tests.  Every line is
    checksum-verified (:func:`repro.integrity.codec.verify_record`); a
    corrupt record *anywhere* in the journal — the torn final line of a
    killed process or a flipped bit in the middle — is skipped and
    counted in ``corrupt``, never silently folded into job state.
    """
    journal_path = os.fspath(journal_path)
    records: dict[str, JobRecord] = {}
    order: list[str] = []
    events: list[dict[str, Any]] = []
    corrupt = 0
    if not os.path.exists(journal_path):
        return JournalReplay([], [], 0)
    try:
        text = codec.read_text(journal_path)
    except FileNotFoundError:
        return JournalReplay([], [], 0)
    except IntegrityError:
        return JournalReplay([], [], 1)
    for lineno, raw in enumerate(text.splitlines(), start=1):
        raw = raw.strip()
        if not raw:
            continue
        try:
            event = codec.verify_record(raw, path=journal_path,
                                        lineno=lineno)
        except IntegrityError:
            corrupt += 1
            continue
        events.append(event)
        kind = event.get("event")
        job_id = event.get("job_id")
        if kind == "submitted":
            spec = JobSpec.from_json(event["spec"])
            record = JobRecord(spec=spec,
                               submitted_unix=event.get("time", 0.0))
            records[job_id] = record
            order.append(job_id)
            continue
        record = records.get(job_id)
        if record is None:
            continue
        if kind == "started":
            record.state = JobState.RUNNING
            record.attempts = event.get("attempt", record.attempts + 1)
            if record.started_unix is None:
                record.started_unix = event.get("time")
        elif kind == "attempt_failed":
            record.state = JobState.PENDING
            record.failures = event.get("failures", record.failures + 1)
            record.error = event.get("error")
            record.not_before = event.get("not_before")
        elif kind == "attempt_interrupted":
            record.state = JobState.PENDING
            record.interruptions = event.get("interruptions",
                                             record.interruptions + 1)
            record.crashes = event.get("crashes", record.crashes)
            record.error = event.get("reason")
            record.not_before = event.get("not_before")
        elif kind == "quarantined":
            record.state = JobState.QUARANTINED
            record.error = event.get("error")
            record.crashes = event.get("crashes", record.crashes)
            record.diagnostics = event.get("diagnostics")
            record.finished_unix = event.get("time")
        elif kind == "succeeded":
            record.state = JobState.SUCCEEDED
            record.result = event.get("result")
            record.finished_unix = event.get("time")
        elif kind == "cached":
            record.state = JobState.CACHED
            record.result = event.get("result")
            record.cache_hit = True
            record.cache_key = event.get("cache_key")
            record.finished_unix = event.get("time")
        elif kind == "failed":
            record.state = JobState.FAILED
            record.failures = event.get("failures", record.failures + 1)
            record.error = event.get("error")
            record.finished_unix = event.get("time")
        elif kind == "cancelled":
            record.state = JobState.CANCELLED
            record.error = event.get("reason", "cancelled")
            record.finished_unix = event.get("time")
    return JournalReplay([records[job_id] for job_id in order], events,
                         corrupt)


def _summary(result: dict[str, Any]) -> dict[str, Any]:
    """The compact slice of a result worth journaling."""
    keys = ("best_score", "alignment_length", "wall_seconds",
            "resumed_from_row", "manifest")
    return {k: result[k] for k in keys if k in result}
