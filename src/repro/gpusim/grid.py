"""Kernel grid geometry: blocks, threads, diagonals, buses (Section III-C).

CUDAlign divides the DP matrix into a grid where each block holds ``T``
threads and each thread processes ``alpha`` rows, so a *block row* is
``alpha * T`` matrix rows tall.  ``B`` blocks sweep the columns in
wavefront order; a diagonal of blocks is an *external diagonal*, a
diagonal of threads inside a block an *internal diagonal*.  With *cells
delegation* the wavefront never drains between external diagonals, so the
device stays saturated except at the very start and end.

The *minimum size requirement* — ``n >= 2 * B * T`` — guarantees blocks of
one external diagonal never race on the shared buses; when a partition is
too narrow, ``B`` must shrink (Section IV-D), preferably to a multiple of
the multiprocessor count.  Table VIII's B3 column (60, 30, 26, 14, 10) is
exactly :func:`effective_blocks` applied to its W_max column.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.constants import SPECIAL_CELL_BYTES
from repro.errors import ConfigError
from repro.gpusim.device import DeviceSpec


@dataclass(frozen=True)
class KernelGrid:
    """Launch geometry of one GPU stage."""

    blocks: int
    threads: int
    alpha: int = 4

    def __post_init__(self) -> None:
        if min(self.blocks, self.threads, self.alpha) <= 0:
            raise ConfigError("grid dimensions must be positive")

    @property
    def block_rows(self) -> int:
        """Matrix rows processed per block row: ``alpha * T``."""
        return self.alpha * self.threads

    @property
    def total_threads(self) -> int:
        return self.blocks * self.threads

    @property
    def minimum_width(self) -> int:
        """The minimum size requirement ``2 * B * T`` (Section III-C)."""
        return 2 * self.blocks * self.threads

    def shrink_to(self, width: int, device: DeviceSpec) -> "KernelGrid":
        """Reduce B until the minimum size requirement holds for ``width``."""
        return KernelGrid(effective_blocks(self.blocks, self.threads, width,
                                           device), self.threads, self.alpha)


def effective_blocks(blocks: int, threads: int, width: int,
                     device: DeviceSpec) -> int:
    """The runtime block count for a sweep of ``width`` columns.

    ``B_eff = min(B, floor(width / 2T))``, rounded down to a multiple of
    the multiprocessor count when that leaves at least one full multiple
    (the paper: "the number of blocks must be preferably a multiple of the
    number of multiprocessors").
    """
    if width <= 0:
        raise ConfigError("sweep width must be positive")
    b = min(blocks, width // (2 * threads))
    if b >= device.multiprocessors:
        b -= b % device.multiprocessors
    return max(1, b)


@dataclass(frozen=True)
class SweepGeometry:
    """Static schedule of one wavefront sweep over an ``m x n`` area."""

    m: int
    n: int
    grid: KernelGrid

    def __post_init__(self) -> None:
        if self.m <= 0 or self.n <= 0:
            raise ConfigError("sweep area must be positive")

    @property
    def block_row_count(self) -> int:
        """Grid height in block rows."""
        return math.ceil(self.m / self.grid.block_rows)

    @property
    def blocks_per_row(self) -> int:
        """Column segments per block row (each block covers ~n/B columns)."""
        return self.grid.blocks

    @property
    def external_diagonals(self) -> int:
        """Number of external diagonals executed.

        All B blocks run concurrently on each external diagonal; with cells
        delegation the wavefront advances one block row per diagonal once
        filled, so a sweep costs R + B - 1 diagonals (fill + steady state).
        This reproduces Table IV's ramp: e.g. the 162K x 172K sweep needs
        ~873 diagonals whose launch overhead explains the 19.8-vs-23.9
        GCUPS gap to the megabase rows.
        """
        return self.block_row_count + self.grid.blocks - 1

    @property
    def cells(self) -> int:
        return self.m * self.n

    # ------------------------------------------------------------------
    # bus traffic (Section III-C)
    # ------------------------------------------------------------------
    @property
    def horizontal_bus_bytes(self) -> int:
        """Global-memory bytes for the row handed to the block below: the
        last row of every block row, H and F per cell."""
        return self.block_row_count * (self.n + 1) * SPECIAL_CELL_BYTES

    @property
    def vertical_bus_bytes(self) -> int:
        """Bytes for the last column of every thread handed rightward:
        alpha cells (H and E) per thread per block step."""
        per_step = self.grid.total_threads * self.grid.alpha * SPECIAL_CELL_BYTES
        return self.external_diagonals * per_step
