"""Simulated CUDA device specifications.

The paper's numeric results come from a GeForce GTX 285 (30 SMs, 240
cores, 1 GB).  We reproduce the *execution model* (grid geometry, diagonal
scheduling, memory) exactly and the *wall-clock* through a small analytic
model whose three constants are calibrated against the paper's own
measurements (see :mod:`repro.gpusim.perf` and EXPERIMENTS.md):

* ``peak_gcups`` — the sustained cell-update rate of a saturated Stage-1
  wavefront (Table IV converges to ~23.9 GCUPS for megabase sequences);
* ``diag_overhead_us`` — fixed cost per external diagonal (kernel launch +
  synchronization), which reproduces the MCUPS ramp of Table IV's small
  rows;
* ``flush_s_per_gb`` — cost of writing special rows to disk ("~13 seconds
  ... for each additional GB stored", Section V-B).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DeviceError


@dataclass(frozen=True)
class DeviceSpec:
    """A CUDA-like accelerator for the performance model."""

    name: str
    multiprocessors: int
    cores: int
    clock_mhz: int
    vram_bytes: int
    peak_gcups: float
    diag_overhead_us: float
    flush_s_per_gb: float
    #: Resident threads needed to saturate the device; configurations with
    #: fewer threads are derated linearly (Stage 3's B3 collapse).  The
    #: paper's Stage-2 grid (B2=60, T2=128 = 7680 threads) already reaches
    #: ~24 GCUPS on the GTX 285 (Table VII/VIII: 3.83e13 cells in 1721 s
    #: at SRA=10GB), which pins this constant.
    saturation_threads: int
    #: Reading special rows back from disk (Stage 2 loads one full row per
    #: band); slightly cheaper than the write path's 13 s/GB.
    read_s_per_gb: float = 9.0
    #: Fixed cost of re-anchoring a sweep at a crosspoint (kernel relaunch
    #: + special-column handling); the constant behind Stage 3's runtime
    #: floor in Table VII.
    restart_s: float = 0.0146

    def __post_init__(self) -> None:
        if min(self.multiprocessors, self.cores, self.clock_mhz) <= 0:
            raise DeviceError("device geometry must be positive")
        if self.peak_gcups <= 0 or self.saturation_threads <= 0:
            raise DeviceError("performance constants must be positive")
        if self.read_s_per_gb < 0 or self.restart_s < 0:
            raise DeviceError("I/O constants must be non-negative")


#: The paper's board, with constants calibrated against Tables IV/V/VII.
GTX_285 = DeviceSpec(
    name="GeForce GTX 285",
    multiprocessors=30,
    cores=240,
    clock_mhz=1476,
    vram_bytes=1024 * 1024 * 1024,
    peak_gcups=23.95,
    diag_overhead_us=320.0,
    flush_s_per_gb=13.0,
    saturation_threads=60 * 128,  # B2*T2 already sustains ~24 GCUPS
)


#: A Fermi-generation board for the paper's "more powerful GPUs" future
#: work.  The constants follow the CUDAlign lineage's own follow-on
#: measurements (CUDAlign 2.1 reported ~50 GCUPS-class sustained rates on
#: a GTX 560 Ti); diagonal and flush costs scale with the era's faster
#: launches and disks.
GTX_560_TI = DeviceSpec(
    name="GeForce GTX 560 Ti (projection)",
    multiprocessors=8,
    cores=384,
    clock_mhz=1645,
    vram_bytes=1024 * 1024 * 1024,
    peak_gcups=47.0,
    diag_overhead_us=180.0,
    flush_s_per_gb=9.0,
    saturation_threads=384 * 48,
)


#: A host-CPU "device" used to model the CPU stages (4-6) at paper scale.
#: The paper's host was an Intel Pentium Dual-Core 3 GHz; ~55 MCUPS is the
#: per-core Gotoh rate implied by Table IX (e.g. iteration 1: ~4.4e10
#: cells in 250 s with 2 threads).
@dataclass(frozen=True)
class HostSpec:
    name: str
    cores: int
    mcups_per_core: float

    def __post_init__(self) -> None:
        if self.cores <= 0 or self.mcups_per_core <= 0:
            raise DeviceError("host constants must be positive")


PENTIUM_DUALCORE = HostSpec(name="Intel Pentium Dual-Core 3GHz", cores=2,
                            mcups_per_core=55.0)
