"""Multi-GPU execution — the paper's stated future work ("we intend ...
to extend the tests to even more powerful GPUs, including systems with
dual cards"; realized later in the CUDAlign lineage as multi-GPU
CUDAlign 2.1+).

The natural decomposition (and the one the follow-on work used) assigns
each device a vertical slice of columns; devices form a pipeline in which
device ``d`` streams its rightmost column (H and E, the vertical bus) to
device ``d + 1`` with a small lag.  Because the wavefront keeps every
device busy once filled, the steady-state speedup is nearly linear in the
device count, degraded only by the pipeline fill and the inter-device
transfer bandwidth.

Two faces, mirroring the rest of :mod:`repro.gpusim`:

* :func:`multi_gpu_sweep_score` — a *real* computation over
  :mod:`repro.align.tiled`, structured exactly as the device pipeline
  (one strip per device, row-band granularity), asserting bit-equality
  with the single-device kernel;
* :func:`multi_gpu_sweep_cost` — the calibrated time model, predicting
  Stage-1 runtimes for dual/quad GTX 285 systems.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError, DeviceError
from repro.align.scoring import ScoringScheme
from repro.align.tiled import tiled_local_sweep
from repro.gpusim.device import DeviceSpec
from repro.gpusim.grid import KernelGrid
from repro.gpusim.perf import sweep_cost
from repro.sequences.sequence import Sequence


@dataclass(frozen=True)
class MultiGpuSystem:
    """A pipeline of identical devices over column slices."""

    device: DeviceSpec
    count: int
    #: Host-mediated inter-device copy bandwidth (GTX-285-era PCIe x16).
    link_bytes_per_s: float = 5.0e9

    def __post_init__(self) -> None:
        if self.count < 1:
            raise DeviceError("a multi-GPU system needs at least one device")
        if self.link_bytes_per_s <= 0:
            raise DeviceError("link bandwidth must be positive")


@dataclass(frozen=True)
class MultiGpuCost:
    """Modeled cost of a multi-device Stage-1 sweep."""

    seconds: float
    per_device_seconds: float
    fill_seconds: float
    transfer_seconds: float
    speedup_vs_one: float
    efficiency: float


def multi_gpu_sweep_score(s0: Sequence, s1: Sequence, scheme: ScoringScheme,
                          system: MultiGpuSystem, *,
                          band_rows: int = 256) -> int:
    """Actually execute the sliced sweep (bit-identical to one device)."""
    if len(s1) < system.count:
        raise ConfigError("fewer columns than devices")
    strip = max(1, len(s1) // system.count)
    result = tiled_local_sweep(s0.codes, s1.codes, scheme,
                               band_rows=min(band_rows, len(s0)),
                               strip_cols=strip)
    return result.best


def multi_gpu_sweep_cost(m: int, n: int, grid: KernelGrid,
                         system: MultiGpuSystem, *,
                         band_rows: int | None = None) -> MultiGpuCost:
    """Model an ``m x n`` Stage-1 sweep on the device pipeline.

    Per-device compute covers an ``m x (n / D)`` slice; the pipeline fill
    adds ``(D - 1)`` band latencies; every band boundary moves one bus
    column (8 bytes per row of the band) across the link.
    """
    if m <= 0 or n <= 0:
        raise ConfigError("matrix dimensions must be positive")
    d = system.count
    band_rows = band_rows or grid.block_rows
    slice_n = max(1, n // d)
    per_device = sweep_cost(m, slice_n, grid, system.device).seconds
    single = sweep_cost(m, n, grid, system.device).seconds
    bands = max(1, m // band_rows)
    band_time = per_device / bands
    fill = (d - 1) * band_time
    transfer_bytes = (d - 1) * m * 8  # right-edge H and E, 4 bytes each
    transfer = transfer_bytes / system.link_bytes_per_s
    total = per_device + fill + transfer
    return MultiGpuCost(
        seconds=total,
        per_device_seconds=per_device,
        fill_seconds=fill,
        transfer_seconds=transfer,
        speedup_vs_one=single / total,
        efficiency=single / total / d,
    )


def stage4_gpu_estimate(cells: int, partitions: int, grid: KernelGrid,
                        device: DeviceSpec) -> float:
    """Estimated Stage-4 time if migrated to the GPU (future work,
    Section VI): one thread block per partition removes the minimum size
    requirement, so the device's occupancy — and thus its effective rate
    — is bounded by how many partitions are in flight."""
    if cells < 0 or partitions < 0:
        raise ConfigError("cells and partitions must be non-negative")
    if cells == 0:
        return 0.0
    in_flight = min(max(1, partitions), grid.blocks)
    occupancy = min(1.0, in_flight * grid.threads / device.saturation_threads)
    return cells / (device.peak_gcups * 1e9 * occupancy)
