"""Analytic paper-scale estimates for Stages 2-4 (Tables VII/VIII).

At paper scale (10^15 cells) the downstream stages cannot be executed in
Python, but their *work* follows from the geometry of the optimal
alignment and the storage budgets, through relations the paper's own
tables validate:

* Stage 1 saves a special row every ``y = 8mn / (alpha*T*|SRA|)`` rows
  (Section IV-B), creating ``~row_span / y`` bands over the alignment;
* Stage 2's orthogonal, goal-based sweep processes ~one band height per
  aligned column:  ``Cells_2 ~= y * col_span`` (Section IV-C says exactly
  this: "the area processed is the size of the flush interval multiplied
  by the size n").  Against Table VIII: predicted 3.9e13 / 8.1e12 vs
  published 3.83e13 / 8.10e12 at 10/50 GB — within 2%;
* Stage 2 saves special columns about every ``z`` columns; Table VIII's
  W_max column *is* z (the widest partition sits between adjacent saved
  columns), and it scales as ``z ~= c * y^2`` (each band stores a fixed
  byte budget, so fewer-but-taller bands store sparser columns);
  ``c`` is calibrated once from the 50 GB row;
* Stage 3 re-anchors at every crosspoint and sweeps ~diagonal squares of
  side z:  ``Cells_3 ~= 2 * z * row_span``;
* Stage 4's Myers-Miller rounds process ``Cells_4 ~= k4 * z * row_span``
  with ``k4 ~= 0.64`` calibrated from Table IX's 501 s / 110 MCUPS.

Times combine the cell counts with the device model: Stage 2 adds the
special-row *read* traffic (one full row per band); Stage 3's grid is
derated by the minimum size requirement at width z (the B3 collapse of
Table VIII) plus a per-crosspoint restart cost — which is precisely what
makes its runtime non-monotone in the SRA size, the paper's most
distinctive Table VII effect.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.gpusim.device import DeviceSpec, HostSpec
from repro.gpusim.grid import KernelGrid
from repro.gpusim.perf import grid_rate_gcups, host_seconds

#: z = C_Z * y^2: calibrated from Table VIII's 50 GB row
#: (y = 32.8e6/134 ~= 245k, W_max = 2624).
C_Z = 2624 / (245_000.0 ** 2)

#: Stage-4 work factor vs (row_span * z); Table IX: 5.5e10 cells at z=2624.
K4 = 0.64


@dataclass(frozen=True)
class AlignmentGeometry:
    """Paper-scale comparison geometry (Table III row)."""

    m: int
    n: int
    row_span: int   # i_end - i_start of the optimal alignment
    col_span: int   # j_end - j_start

    def __post_init__(self) -> None:
        if min(self.m, self.n) <= 0:
            raise ConfigError("matrix dimensions must be positive")
        if not 0 < self.row_span <= self.m or not 0 < self.col_span <= self.n:
            raise ConfigError("alignment span must fit inside the matrix")


#: The flagship human-chimp comparison (Table III, last row).
CHROMOSOME_GEOMETRY = AlignmentGeometry(
    m=32_799_110, n=46_944_323,
    row_span=32_718_231, col_span=46_919_080 - 13_841_680)


@dataclass(frozen=True)
class StageEstimates:
    """Analytic paper-scale workload + modeled seconds for one SRA size."""

    sra_bytes: int
    row_interval: float        # y
    column_interval: float     # z (~ Table VIII's W_max)
    bands: int                 # ~ |L_2| - 1
    crosspoints3: int          # ~ |L_3|
    cells2: float
    cells3: float
    cells4: float
    seconds2: float
    seconds3: float
    seconds4: float
    effective_b3: int


def estimate(geometry: AlignmentGeometry, sra_bytes: int, *,
             grid2: KernelGrid, grid3: KernelGrid, device: DeviceSpec,
             host: HostSpec, block_rows: int = 256) -> StageEstimates:
    """Paper-scale Stage 2-4 estimates for one SRA budget."""
    if sra_bytes <= 0:
        raise ConfigError("the estimate needs a positive SRA budget")
    row_bytes = 8 * (geometry.n + 1)
    saved_rows = max(1, sra_bytes // row_bytes)
    y = geometry.m / (saved_rows + 1)
    bands = max(1, math.ceil(geometry.row_span / y))
    z = max(float(block_rows), C_Z * y * y)
    crosspoints3 = max(1, int(geometry.col_span / z))

    cells2 = y * geometry.col_span
    cells3 = 2.0 * z * geometry.row_span
    cells4 = K4 * z * geometry.row_span

    rate2 = grid_rate_gcups(grid2.shrink_to(max(int(y), grid2.minimum_width),
                                            device), device) * 1e9
    read_bytes = bands * row_bytes
    seconds2 = cells2 / rate2 + read_bytes / 1e9 * device.read_s_per_gb

    g3 = grid3.shrink_to(max(int(z), 2 * grid3.threads), device)
    rate3 = grid_rate_gcups(g3, device) * 1e9
    seconds3 = cells3 / rate3 + crosspoints3 * device.restart_s

    seconds4 = host_seconds(int(cells4), host)
    return StageEstimates(
        sra_bytes=sra_bytes, row_interval=y, column_interval=z,
        bands=bands, crosspoints3=crosspoints3,
        cells2=cells2, cells3=cells3, cells4=cells4,
        seconds2=seconds2, seconds3=seconds3, seconds4=seconds4,
        effective_b3=g3.blocks)
