"""Simulated CUDA substrate: device specs, grid schedules, performance model."""

from repro.gpusim.device import (
    GTX_285,
    GTX_560_TI,
    PENTIUM_DUALCORE,
    DeviceSpec,
    HostSpec,
)
from repro.gpusim.grid import KernelGrid, SweepGeometry, effective_blocks
from repro.gpusim.perf import (
    SweepCost,
    grid_rate_gcups,
    host_seconds,
    stage1_vram_bytes,
    stage2_vram_bytes,
    stage3_vram_bytes,
    sweep_cost,
)
from repro.gpusim.blocksim import BlockSimResult, simulate_stage1
from repro.gpusim.multigpu import (
    MultiGpuCost,
    MultiGpuSystem,
    multi_gpu_sweep_cost,
    multi_gpu_sweep_score,
    stage4_gpu_estimate,
)

__all__ = [
    "GTX_285", "GTX_560_TI", "PENTIUM_DUALCORE", "DeviceSpec", "HostSpec",
    "KernelGrid", "SweepGeometry", "effective_blocks",
    "SweepCost", "grid_rate_gcups", "host_seconds", "sweep_cost",
    "stage1_vram_bytes", "stage2_vram_bytes", "stage3_vram_bytes",
    "MultiGpuCost", "MultiGpuSystem", "multi_gpu_sweep_cost",
    "multi_gpu_sweep_score", "stage4_gpu_estimate",
    "BlockSimResult", "simulate_stage1",
]
