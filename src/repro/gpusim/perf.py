"""Analytic performance model of the simulated device.

Stage sweep time is modeled as

    t = cells / rate(grid)  +  D * diag_overhead  +  flushed_gb * flush_cost

where ``rate(grid) = peak_gcups * min(1, total_threads / saturation)`` and
``D`` is the external-diagonal count of the sweep schedule.  The three
device constants are calibrated once against the paper's own tables (see
DeviceSpec); everything else (cells, diagonals, flush bytes, grid
shrinking) comes from the *actual* pipeline execution, so shape effects —
the MCUPS ramp, the ~1% flush overhead, Stage 3's non-monotone runtime —
emerge from the same mechanisms the paper describes rather than from
fitted curves.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DeviceError
from repro.gpusim.device import DeviceSpec, HostSpec
from repro.gpusim.grid import KernelGrid, SweepGeometry


def grid_rate_gcups(grid: KernelGrid, device: DeviceSpec) -> float:
    """Sustained cell rate of a grid on a device (derated when starved)."""
    occupancy = min(1.0, grid.total_threads / device.saturation_threads)
    return device.peak_gcups * occupancy


@dataclass(frozen=True)
class SweepCost:
    """Modeled cost of one wavefront sweep."""

    cells: int
    external_diagonals: int
    flushed_bytes: int
    seconds: float

    @property
    def gcups(self) -> float:
        if self.seconds <= 0:
            raise DeviceError("sweep cost has non-positive duration")
        return self.cells / self.seconds / 1e9

    @property
    def mcups(self) -> float:
        return self.gcups * 1e3


def sweep_cost(m: int, n: int, grid: KernelGrid, device: DeviceSpec,
               flushed_bytes: int = 0) -> SweepCost:
    """Model one ``m x n`` sweep with ``flushed_bytes`` of special lines."""
    grid = grid.shrink_to(n, device)
    geometry = SweepGeometry(m, n, grid)
    compute = geometry.cells / (grid_rate_gcups(grid, device) * 1e9)
    diagonals = geometry.external_diagonals * device.diag_overhead_us * 1e-6
    flush = flushed_bytes / 1e9 * device.flush_s_per_gb
    return SweepCost(cells=geometry.cells,
                     external_diagonals=geometry.external_diagonals,
                     flushed_bytes=flushed_bytes,
                     seconds=compute + diagonals + flush)


def host_seconds(cells: int, host: HostSpec, threads: int | None = None) -> float:
    """Modeled CPU time for ``cells`` DP updates on the host (Stages 4-5)."""
    if cells < 0:
        raise DeviceError("cell count must be non-negative")
    workers = min(threads or host.cores, host.cores)
    return cells / (host.mcups_per_core * 1e6 * workers)


# ----------------------------------------------------------------------
# VRAM accounting (Table VIII's VRAM_k rows)
# ----------------------------------------------------------------------

def stage1_vram_bytes(m: int, n: int, grid: KernelGrid) -> int:
    """Sequences + horizontal bus (H, F per column) + vertical bus."""
    sequences = m + n
    horizontal = 8 * (n + 1)
    vertical = 8 * grid.total_threads * grid.alpha
    return sequences + horizontal + vertical


def stage2_vram_bytes(m: int, n: int, grid: KernelGrid) -> int:
    """Stage 2 additionally holds one special row while matching.

    The sweep is transposed, so its horizontal bus spans the m axis.
    """
    sequences = m + n
    horizontal = 8 * (m + 1)
    special_row = 8 * (n + 1)
    vertical = 8 * grid.total_threads * grid.alpha
    return sequences + horizontal + special_row + vertical


def stage3_vram_bytes(m: int, n: int, grid: KernelGrid) -> int:
    """Stage 3 mirrors Stage 2 with a special column resident instead."""
    sequences = m + n
    horizontal = 8 * (n + 1)
    special_col = 8 * (m + 1)
    vertical = 8 * grid.total_threads * grid.alpha
    return sequences + horizontal + special_col + vertical
