"""Block-level execution of the CUDAlign kernel schedule (Section III-C).

While the pipeline's stages use the monolithic vectorized kernel for
speed, this module *executes* a sweep exactly as the GPU grid would, at
block granularity:

* the matrix is a grid of R block rows (``alpha * T`` matrix rows tall)
  by B column segments (one per block);
* on external diagonal ``d``, block ``k`` processes the tile
  ``(row = d - k, segment = k)`` — the cells-delegation schedule, under
  which the wavefront needs exactly ``R + B - 1`` diagonals and stays
  fully occupied except while filling and draining;
* each tile consumes the *horizontal bus* (the H/E/F bottom row of the
  block above) and the *vertical bus* (the H/E right edge of the block to
  its left), and emits both for its neighbours;
* inside a tile, the first T cells of each thread stripe belong to the
  *short phase*, the rest to the optimized *long phase*; the phase
  division's minimum size requirement ``n >= 2BT`` is enforced.

Every numeric value flows through :func:`repro.align.tiled.tile_sweep`,
so the simulation is bit-identical to the monolithic kernel (asserted in
tests); on top of the numbers it records the schedule's observables:
per-diagonal occupancy, bus traffic, phase split and special-row flushes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.constants import NEG_INF, SCORE_DTYPE, SPECIAL_CELL_BYTES
from repro.errors import ConfigError
from repro.align.scoring import ScoringScheme
from repro.align.tiled import TileEdges, tile_sweep
from repro.gpusim.device import DeviceSpec
from repro.gpusim.grid import KernelGrid
from repro.sequences.sequence import Sequence
from repro.storage.sra import special_row_positions


@dataclass
class BlockSimResult:
    """Everything a block-scheduled Stage-1 sweep observes."""

    best: int
    best_pos: tuple[int, int]
    cells: int
    external_diagonals: int
    grid_rows: int
    grid_cols: int
    occupancy: list[int] = field(default_factory=list)
    horizontal_bus_bytes: int = 0
    vertical_bus_bytes: int = 0
    short_phase_cells: int = 0
    long_phase_cells: int = 0
    special_rows: dict[int, tuple[np.ndarray, np.ndarray]] = field(
        default_factory=dict)
    pruned_tiles: int = 0
    total_tiles: int = 0

    @property
    def mean_occupancy(self) -> float:
        """Average active blocks per external diagonal; cells delegation
        keeps this near B except during fill and drain."""
        return sum(self.occupancy) / len(self.occupancy)

    @property
    def pruned_fraction(self) -> float:
        """Share of tiles skipped by block pruning (0 when disabled)."""
        return self.pruned_tiles / max(1, self.total_tiles)


def _fresh_bus(n: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    return (np.zeros(n + 1, dtype=SCORE_DTYPE),
            np.full(n + 1, NEG_INF, dtype=SCORE_DTYPE),
            np.full(n + 1, NEG_INF, dtype=SCORE_DTYPE))


def simulate_stage1(s0: Sequence, s1: Sequence, scheme: ScoringScheme,
                    grid: KernelGrid, device: DeviceSpec,
                    sra_bytes: int = 0, prune: bool = False) -> BlockSimResult:
    """Run a local SW sweep on the block schedule.

    Returns the same best score/position as the monolithic kernel plus
    the schedule statistics.  ``sra_bytes`` enables special-row flushing
    at the Section IV-B interval; flushed rows are assembled from the
    horizontal-bus segments exactly as the paper describes ("the bus
    contains data from different rows ... many iterations of external
    diagonals may be executed until a full special row is flushed").

    ``prune`` enables *block pruning* — the optimization the paper's
    conclusion gestures at and the CUDAlign lineage shipped next (Sandes &
    de Melo, CUDAlign 3.0): a tile is skipped when even its most
    optimistic continuation cannot beat the best score found so far,

        ub = max(boundary H, 0) + match * min(m - r0, n - c0) <= best.

    Pruned tiles emit the conservative boundary (H = 0, gaps = -inf):
    every real H is >= 0 in a local sweep, so downstream values are only
    ever *under*-estimated and the dominated paths stay dominated — the
    final best score is provably unchanged (and asserted in tests).
    Pruning is incompatible with special-row flushing (a pruned row would
    be incomplete), matching CUDAlign 3.0's stage-1-only use.
    """
    m, n = len(s0), len(s1)
    grid = grid.shrink_to(n, device)
    if n < grid.minimum_width:
        raise ConfigError(
            f"minimum size requirement violated even after shrinking: "
            f"n={n} < 2BT={grid.minimum_width}")
    if prune and sra_bytes:
        raise ConfigError("block pruning cannot flush special rows "
                          "(pruned segments would leave rows incomplete)")
    rows_per_block = grid.block_rows
    R = math.ceil(m / rows_per_block)
    B = grid.blocks
    seg = math.ceil(n / B)
    col_cuts = [min(n, k * seg) for k in range(B + 1)]
    row_cuts = [min(m, r * rows_per_block) for r in range(R + 1)]
    flush_rows = set(special_row_positions(m, n, rows_per_block, sra_bytes))

    result = BlockSimResult(best=0, best_pos=(0, 0), cells=0,
                            external_diagonals=R + B - 1,
                            grid_rows=R, grid_cols=B)

    # Horizontal buses: the bottom (H, E, F) row of each block row, filled
    # segment by segment as its tiles complete.  Vertical buses: the right
    # (H, E) edge of the last tile computed in each block row.
    zero_bus = _fresh_bus(n)
    buses: dict[int, tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
    right_edges: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    for d in range(R + B - 1):
        active = 0
        for k in range(B):
            r = d - k
            if not 0 <= r < R:
                continue
            r0, r1 = row_cuts[r], row_cuts[r + 1]
            c0, c1 = col_cuts[k], col_cuts[k + 1]
            if r0 >= r1 or c0 >= c1:
                continue
            h, w = r1 - r0, c1 - c0
            if k == 0:
                buses[r] = _fresh_bus(n)
                right_edges[r] = (np.zeros(h, dtype=SCORE_DTYPE),
                                  np.full(h, NEG_INF, dtype=SCORE_DTYPE))
            top_H, top_E, top_F = buses[r - 1] if r > 0 else zero_bus
            left_H, left_E = right_edges[r]
            result.total_tiles += 1
            if prune:
                boundary_max = max(int(top_H[c0:c1 + 1].max()),
                                   int(left_H.max()), 0)
                upper_bound = boundary_max + scheme.match * min(m - r0, n - c0)
                if upper_bound <= result.best:
                    # Dominated: emit the conservative boundary and skip.
                    result.pruned_tiles += 1
                    out_H, out_E, out_F = buses[r]
                    lo = c0 if k == 0 else c0 + 1
                    out_H[lo:c1 + 1] = 0
                    out_E[lo:c1 + 1] = NEG_INF
                    out_F[lo:c1 + 1] = NEG_INF
                    right_edges[r] = (np.zeros(h, dtype=SCORE_DTYPE),
                                      np.full(h, NEG_INF, dtype=SCORE_DTYPE))
                    continue
            active += 1
            tile = tile_sweep(
                s0.codes[r0:r1], s1.codes[c0:c1], scheme,
                TileEdges(top_H=top_H[c0:c1 + 1], top_E=top_E[c0:c1 + 1],
                          top_F=top_F[c0:c1 + 1], left_H=left_H,
                          left_E=left_E),
                local=True, track_best=True)
            out_H, out_E, out_F = buses[r]
            # Column c0 is the shared corner: for k > 0 it belongs to the
            # left neighbour's segment (whose F value is authoritative —
            # the tile pins its own F[0] to -inf as an unread slot).
            lo = c0 if k == 0 else c0 + 1
            out_H[lo:c1 + 1] = tile.bottom_H[lo - c0:]
            out_E[lo:c1 + 1] = tile.bottom_E[lo - c0:]
            out_F[lo:c1 + 1] = tile.bottom_F[lo - c0:]
            right_edges[r] = (tile.right_H, tile.right_E)

            result.cells += tile.cells
            result.horizontal_bus_bytes += SPECIAL_CELL_BYTES * (w + 1)
            result.vertical_bus_bytes += SPECIAL_CELL_BYTES * h
            short = min(w, grid.threads) * h
            result.short_phase_cells += short
            result.long_phase_cells += tile.cells - short
            if tile.best > result.best:
                result.best = tile.best
                result.best_pos = (r0 + tile.best_pos[0],
                                   c0 + tile.best_pos[1])
            # The last block of the row completes the special row.
            if k == B - 1 and r1 in flush_rows:
                out_F0 = out_F.copy()
                out_F0[0] = NEG_INF
                result.special_rows[r1] = (out_H.copy(), out_F0)
        result.occupancy.append(active)
        # A block row's bus is consumed once the row below has passed its
        # last segment; retire it to keep memory at O(B) buses.
        retired = [r for r in buses if r < d - B]
        for r in retired:
            del buses[r]
            right_edges.pop(r, None)
    return result
