"""Offline artifact audit: the engine behind ``repro fsck <workdir>``.

Walks a run or service directory, verifies every checksummed artifact it
recognises, and cross-references SRA index journals against their
payload files.  Artifacts are classified by *content*, not just by name:
any file opening with the ``RPIA`` magic is a binary frame (the frame
embeds its own kind), ``index.jsonl`` / ``journal.jsonl`` are sealed
record journals, and ``.json`` files carrying a ``repro-artifact``
envelope are verified against their embedded SHA-256.

``repair=True`` makes the scan converge instead of just report: corrupt
framed artifacts and cache entries are quarantined (preserved under
``quarantine/``, never deleted), and damaged journals are rewritten
keeping only their valid sealed records — exactly the records replay
would have honoured — with the original quarantined first.  Dropped SRA
index records mark their lines for recomputation; losing a special line
widens a partition, it never changes the alignment.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any

from repro.errors import IntegrityError
from repro.integrity import codec

#: Journal basenames whose every line must be a sealed record.
JOURNAL_NAMES = ("index.jsonl", "journal.jsonl")

#: Suffixes that must always hold a framed artifact.
FRAMED_SUFFIXES = (".bin", ".ckpt")


@dataclass(frozen=True)
class Finding:
    """One integrity defect located by the scan."""

    path: str            # file (":<lineno>" appended for journal lines)
    kind: str | None     # artifact kind, when the frame/record names one
    problem: str         # bad-frame | corrupt-record | bad-envelope |
                         # not-framed | missing-payload
    detail: str

    def to_json(self) -> dict[str, Any]:
        return {"path": self.path, "kind": self.kind,
                "problem": self.problem, "detail": self.detail}


@dataclass
class FsckReport:
    """Outcome of one :func:`fsck_tree` scan."""

    root: str
    scanned: int = 0
    verified: int = 0
    findings: list[Finding] = field(default_factory=list)
    repaired: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when no unrepaired damage remains."""
        return not self.findings

    def to_json(self) -> dict[str, Any]:
        return {"root": self.root, "scanned": self.scanned,
                "verified": self.verified, "clean": self.clean,
                "findings": [f.to_json() for f in self.findings],
                "repaired": list(self.repaired)}


def fsck_tree(root: str | os.PathLike, *, repair: bool = False) -> FsckReport:
    """Scan ``root`` recursively; optionally quarantine/repair damage.

    Returns a report whose ``findings`` list the damage still present
    after any repairs (so ``repair=True`` followed by a clean rescan is
    the expected fixed point).  Quarantined files and ``.tmp`` leftovers
    are never scanned.
    """
    root = os.fspath(root)
    report = FsckReport(root=root)
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames
                             if d != codec.QUARANTINE_DIR)
        for name in sorted(filenames):
            path = os.path.join(dirpath, name)
            if name.endswith(".tmp"):
                continue  # half-written temp file, never authoritative
            if name in JOURNAL_NAMES:
                report.scanned += 1
                _check_journal(path, report, repair=repair)
            elif _sniff_frame(path):
                report.scanned += 1
                _check_frame(path, report, repair=repair)
            elif name.endswith(FRAMED_SUFFIXES):
                report.scanned += 1
                _flag(report, path, None, "not-framed",
                      "expected a checksummed artifact frame",
                      repair=repair)
            elif name.endswith(".json"):
                _check_json(path, report, repair=repair)
    _cross_reference(root, report, repair=repair)
    return report


# ----------------------------------------------------------------- checks
def _sniff_frame(path: str) -> bool:
    try:
        with open(path, "rb") as handle:
            return handle.read(len(codec.MAGIC)) == codec.MAGIC
    except OSError:
        return False


def _flag(report: FsckReport, path: str, kind: str | None, problem: str,
          detail: str, *, repair: bool) -> None:
    """Record a file-level defect, quarantining it when repairing."""
    if repair:
        dest = codec.quarantine_file(path)
        if dest is not None:
            report.repaired.append(path)
            return
    report.findings.append(Finding(path, kind, problem, detail))


def _check_frame(report_path_hint: str, report: FsckReport, *,
                 repair: bool) -> None:
    path = report_path_hint
    try:
        kind, _ = codec.unframe(codec.read_bytes(path), path=path)
    except IntegrityError as exc:
        _flag(report, path, exc.kind, "bad-frame", str(exc), repair=repair)
        return
    report.verified += 1


def _check_journal(path: str, report: FsckReport, *, repair: bool) -> None:
    """Verify every sealed line; repairing rewrites the valid subset."""
    try:
        text = codec.read_text(path)
    except IntegrityError as exc:
        _flag(report, path, codec.KIND_JOURNAL_RECORD, "corrupt-record",
              str(exc), repair=repair)
        return
    good_lines: list[str] = []
    bad: list[Finding] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        if not raw.strip():
            continue
        try:
            codec.verify_record(raw, path=path, lineno=lineno)
        except IntegrityError as exc:
            bad.append(Finding(f"{path}:{lineno}", codec.KIND_JOURNAL_RECORD,
                               "corrupt-record", str(exc)))
            continue
        good_lines.append(raw.strip())
    if not bad:
        report.verified += 1
        return
    if repair:
        _rewrite_journal(path, good_lines)
        report.repaired.extend(f.path for f in bad)
        report.verified += 1
    else:
        report.findings.extend(bad)


def _rewrite_journal(path: str, good_lines: list[str]) -> None:
    """Quarantine the damaged journal, reinstate only its valid records."""
    codec.quarantine_file(path)
    blob = ("\n".join(good_lines) + "\n").encode("utf-8") if good_lines \
        else b""
    codec.atomic_write_bytes(path, blob)


def _check_json(path: str, report: FsckReport, *, repair: bool) -> None:
    """Verify ``repro-artifact`` envelopes; other JSON is out of scope."""
    try:
        text = codec.read_text(path)
        head = json.loads(text)
    except (IntegrityError, json.JSONDecodeError) as exc:
        if os.path.basename(os.path.dirname(path)) == "cache":
            report.scanned += 1
            _flag(report, path, codec.KIND_CACHE_ENTRY, "bad-envelope",
                  f"unreadable cache entry: {exc}", repair=repair)
        return
    if not (isinstance(head, dict) and head.get("format") == "repro-artifact"):
        return  # plain JSON (manifest.json etc.): not an integrity artifact
    report.scanned += 1
    try:
        codec.open_json(text, path=path)
    except IntegrityError as exc:
        _flag(report, path, head.get("kind"), "bad-envelope", str(exc),
              repair=repair)
        return
    report.verified += 1


def _cross_reference(root: str, report: FsckReport, *, repair: bool) -> None:
    """Check every valid SRA index record against its payload file.

    A record whose payload is gone (or was quarantined above) marks the
    line for recomputation; repair drops the dangling record from the
    index so the tree converges to clean.
    """
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames
                             if d != codec.QUARANTINE_DIR)
        if "index.jsonl" not in filenames:
            continue
        index = os.path.join(dirpath, "index.jsonl")
        try:
            text = codec.read_text(index)
        except (IntegrityError, FileNotFoundError):
            continue  # already reported (or repaired away) above
        entries: list[tuple[str, dict[str, Any]]] = []
        for raw in text.splitlines():
            if not raw.strip():
                continue
            try:
                entries.append((raw.strip(),
                                codec.verify_record(raw, path=index)))
            except IntegrityError:
                continue  # reported by _check_journal
        # Fold the journal: a save record promises a payload until a
        # ``released`` (whole namespace) or ``dropped`` (one quarantined
        # line) tombstone retires it.
        live: dict[tuple[str, int], str] = {}
        for _, rec in entries:
            ns = str(rec.get("ns"))
            if rec.get("released"):
                for key in [k for k in live if k[0] == ns]:
                    live.pop(key)
            elif rec.get("dropped"):
                live.pop((ns, rec["pos"]), None)
            else:
                live[(ns, rec["pos"])] = os.path.join(
                    dirpath, ns.replace("/", "_"), f"{rec['pos']}.bin")
        dangling_keys = {key for key, payload in live.items()
                         if not os.path.exists(payload)}
        if not dangling_keys:
            continue
        dangling = [Finding(
            live[(ns, pos)], codec.KIND_SPECIAL_LINE, "missing-payload",
            f"index {index} declares line ns={ns} pos={pos} but the "
            f"payload file is gone") for ns, pos in sorted(dangling_keys)]
        if repair:
            kept = [raw for raw, rec in entries
                    if (str(rec.get("ns")), rec.get("pos"))
                    not in dangling_keys]
            _rewrite_journal(index, kept)
            report.repaired.extend(f.path for f in dangling)
        else:
            report.findings.extend(dangling)
