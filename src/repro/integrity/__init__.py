"""Artifact integrity layer: checksummed codec, fault injection, fsck.

Everything the pipeline persists (special lines, checkpoints, cache
entries, journal records, binary alignments) flows through
:mod:`repro.integrity.codec`, so corruption is detected at read time as
a typed :class:`~repro.errors.IntegrityError` and every consumer can
degrade — recompute, widen, evict, requeue — instead of dying.
:mod:`repro.integrity.faults` injects deterministic storage faults at
the same interposition points; :mod:`repro.integrity.fsck` audits a
whole workdir offline.
"""

from repro.errors import IntegrityError
from repro.integrity.codec import (
    FRAME_VERSION,
    KIND_BINARY_ALIGNMENT,
    KIND_CACHE_ENTRY,
    KIND_CHECKPOINT,
    KIND_JOURNAL_RECORD,
    KIND_SPECIAL_LINE,
    KIND_SRA_INDEX,
    MAGIC,
    QUARANTINE_DIR,
    append_journal_record,
    frame,
    open_json,
    quarantine_file,
    read_artifact,
    seal_json,
    seal_record,
    unframe,
    verify_record,
    write_artifact,
)
from repro.integrity.faults import (
    FaultPlan,
    FaultSpec,
    InjectedFault,
    Injection,
    corrupt_file,
    inject,
    tamper_special_line,
)
from repro.integrity.fsck import Finding, FsckReport, fsck_tree

__all__ = [
    "IntegrityError",
    "MAGIC",
    "FRAME_VERSION",
    "KIND_SPECIAL_LINE",
    "KIND_SRA_INDEX",
    "KIND_CHECKPOINT",
    "KIND_CACHE_ENTRY",
    "KIND_JOURNAL_RECORD",
    "KIND_BINARY_ALIGNMENT",
    "QUARANTINE_DIR",
    "frame",
    "unframe",
    "seal_record",
    "verify_record",
    "seal_json",
    "open_json",
    "read_artifact",
    "write_artifact",
    "append_journal_record",
    "quarantine_file",
    "FaultPlan",
    "FaultSpec",
    "Injection",
    "InjectedFault",
    "inject",
    "corrupt_file",
    "tamper_special_line",
    "Finding",
    "FsckReport",
    "fsck_tree",
]
