"""Deterministic storage fault injection.

The chaos half of the integrity layer: a :class:`FaultPlan` interposes
on every artifact read/write/append the codec performs and injects
bit-flips, truncation, torn renames, missing files, ``ENOSPC`` and slow
I/O — chosen by *seed + site pattern*, so a failing chaos run replays
bit-for-bit.  This replaces the private-attribute surgery tests used to
do (``store._lines[...] = ...``) with a supported public surface.

Two complementary entry points:

* :func:`inject` — activate a plan for a ``with`` block; every matching
  I/O operation inside (including in forked worker processes) is
  faulted.  This exercises the *online* detection and recovery paths.
* :func:`corrupt_file` — damage an artifact already on disk.  This is
  what ``repro fsck`` smoke tests and kill-then-restart scenarios use,
  where the corruption happens while no process is running.

:func:`tamper_special_line` covers the third corruption class: damage
*past* the storage checksums (a flipped bit in device memory or on the
bus).  Checksums cannot see it, so the pipeline's goal-match invariants
must — the tests keep exercising that property through this hook.
"""

from __future__ import annotations

import errno
import fnmatch
import os
import random
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.errors import ConfigError

#: Fault kinds, by the operation they apply to.
READ_FAULTS = frozenset({"bitflip", "truncate", "missing", "slow"})
WRITE_FAULTS = frozenset({"bitflip", "truncate", "torn", "enospc", "slow"})
_OPS = ("read", "write", "append")


class InjectedFault(RuntimeError):
    """The simulated crash a torn write ends in (never a real error)."""


@dataclass(frozen=True)
class FaultSpec:
    """One fault site: which operation, where, what, and when.

    Attributes:
        site: ``fnmatch`` glob matched against the ``/``-normalized
            artifact path *and* its basename (``"*/sra/stage1_rows/*.bin"``
            or just ``"*.ckpt"``).
        fault: ``bitflip`` | ``truncate`` | ``missing`` | ``slow`` for
            reads; ``bitflip`` | ``truncate`` | ``torn`` | ``enospc`` |
            ``slow`` for writes/appends.
        op: ``read``, ``write`` or ``append``.
        skip: matching operations to let through before injecting.
        times: how many operations to fault once armed.
        fraction: surviving prefix for ``truncate``/``torn``.
    """

    site: str
    fault: str
    op: str = "read"
    skip: int = 0
    times: int = 1
    fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ConfigError(f"unknown fault op {self.op!r}")
        valid = READ_FAULTS if self.op == "read" else WRITE_FAULTS
        if self.fault not in valid:
            raise ConfigError(
                f"fault {self.fault!r} not valid for op {self.op!r} "
                f"(choose from {sorted(valid)})")
        if self.times < 1 or self.skip < 0:
            raise ConfigError("times must be >= 1 and skip >= 0")
        if not 0.0 <= self.fraction < 1.0:
            raise ConfigError("fraction must be in [0, 1)")


@dataclass(frozen=True)
class Injection:
    """Ledger entry: one fault actually delivered."""

    op: str
    fault: str
    path: str


class FaultPlan:
    """A set of :class:`FaultSpec` sites sharing one deterministic seed.

    The plan is stateful: each spec counts the operations it matched, so
    ``skip``/``times`` windows are exact, and every delivered fault is
    recorded in :attr:`injections` (what the chaos tests assert on).
    Thread-safe; state crosses ``fork`` into worker processes but does
    not flow back — worker-side assertions should use on-disk effects.
    """

    def __init__(self, *specs: FaultSpec, seed: int = 0,
                 slow_seconds: float = 0.005):
        self.specs = tuple(specs)
        self.seed = seed
        self.slow_seconds = slow_seconds
        self.injections: list[Injection] = []
        self._seen = [0] * len(self.specs)
        self._lock = threading.Lock()

    # ------------------------------------------------------------ matching
    def _armed_spec(self, op: str, path: str) -> FaultSpec | None:
        norm = path.replace(os.sep, "/")
        base = os.path.basename(norm)
        for idx, spec in enumerate(self.specs):
            if spec.op != op:
                continue
            if not (fnmatch.fnmatch(norm, spec.site)
                    or fnmatch.fnmatch(base, spec.site)):
                continue
            with self._lock:
                seen = self._seen[idx]
                self._seen[idx] += 1
            if spec.skip <= seen < spec.skip + spec.times:
                return spec
        return None

    def _rng(self, path: str) -> random.Random:
        with self._lock:
            salt = len(self.injections)
        return random.Random(f"{self.seed}:{path}:{salt}")

    def _record(self, op: str, spec: FaultSpec, path: str) -> None:
        with self._lock:
            self.injections.append(Injection(op, spec.fault, path))

    # --------------------------------------------------------------- hooks
    def on_read(self, path: str, data: bytes) -> bytes:
        spec = self._armed_spec("read", path)
        if spec is None:
            return data
        rng = self._rng(path)
        self._record("read", spec, path)
        if spec.fault == "missing":
            raise FileNotFoundError(
                errno.ENOENT, "injected missing file", path)
        if spec.fault == "slow":
            time.sleep(self.slow_seconds)
            return data
        if spec.fault == "truncate":
            return data[:int(len(data) * spec.fraction)]
        return flip_bit(data, rng)

    def _mutate_out(self, op: str, path: str, data: bytes
                    ) -> tuple[bytes, Exception | None]:
        spec = self._armed_spec(op, path)
        if spec is None:
            return data, None
        rng = self._rng(path)
        self._record(op, spec, path)
        if spec.fault == "enospc":
            raise OSError(errno.ENOSPC, "injected: no space left on device",
                          path)
        if spec.fault == "slow":
            time.sleep(self.slow_seconds)
            return data, None
        if spec.fault == "truncate":
            return data[:int(len(data) * spec.fraction)], None
        if spec.fault == "torn":
            return (data[:int(len(data) * spec.fraction)],
                    InjectedFault(f"injected torn write of {path}"))
        return flip_bit(data, rng), None

    def on_write(self, path: str, data: bytes
                 ) -> tuple[bytes, Exception | None]:
        return self._mutate_out("write", path, data)

    def on_append(self, path: str, data: bytes
                  ) -> tuple[bytes, Exception | None]:
        return self._mutate_out("append", path, data)


# ------------------------------------------------------------- activation
_ACTIVE: FaultPlan | None = None


def active_plan() -> FaultPlan | None:
    """The plan the codec's I/O helpers currently consult, if any."""
    return _ACTIVE


@contextmanager
def inject(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Activate ``plan`` for the duration of the ``with`` block."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = plan
    try:
        yield plan
    finally:
        _ACTIVE = previous


# -------------------------------------------------------- offline helpers
def flip_bit(data: bytes, rng: random.Random) -> bytes:
    """Flip one deterministic bit of ``data`` (no-op on empty input)."""
    if not data:
        return data
    pos = rng.randrange(len(data))
    mutated = bytearray(data)
    mutated[pos] ^= 1 << rng.randrange(8)
    return bytes(mutated)


def corrupt_file(path: str | os.PathLike, fault: str = "bitflip", *,
                 seed: int = 0, fraction: float = 0.5) -> None:
    """Damage an artifact already on disk (offline corruption).

    ``fault`` is ``bitflip`` (one seed-chosen bit), ``truncate`` (keep a
    prefix), ``garbage`` (replace the content with seed-chosen noise of
    the same length), ``empty`` (zero-length file) or ``delete``.
    """
    path = os.fspath(path)
    if fault == "delete":
        os.remove(path)
        return
    with open(path, "rb") as handle:
        data = handle.read()
    rng = random.Random(f"{seed}:{path}")
    if fault == "bitflip":
        data = flip_bit(data, rng)
    elif fault == "truncate":
        data = data[:int(len(data) * fraction)]
    elif fault == "garbage":
        data = bytes(rng.randrange(256) for _ in range(max(1, len(data))))
    elif fault == "empty":
        data = b""
    else:
        raise ConfigError(f"unknown offline fault {fault!r}")
    with open(path, "wb") as handle:
        handle.write(data)


@dataclass(frozen=True)
class _Tampered:
    """Bookkeeping for :func:`tamper_special_line` (test introspection)."""

    namespace: str
    position: int
    delta: int = field(default=0)


def tamper_special_line(store, namespace: str, position: int,
                        delta: int = -10_007) -> _Tampered:
    """Shift every value of an in-memory special line by ``delta``.

    Simulates corruption *past* the storage checksums — a bit flipped in
    device memory or on the bus after a verified read.  The store's
    codec cannot catch this by construction; the pipeline's goal-match
    invariants must.  Public chaos hook superseding the old test-only
    private-map surgery.
    """
    from repro.storage.sra import SavedLine

    line = store.load(namespace, position)
    store._lines[(namespace, position)] = SavedLine(
        axis=line.axis, position=line.position, lo=line.lo,
        H=line.H + np.int32(delta), G=line.G + np.int32(delta))
    return _Tampered(namespace, position, delta)
