"""Checksummed artifact codec: every byte the pipeline trusts is framed.

CUDAlign's design leans on disk-resident state surviving multi-hour runs
(special rows, Stage-1 checkpoints, the job journal, the result cache).
This module gives all of those artifacts one wire discipline so that a
flipped bit or a torn write is *detected at read time* instead of
surfacing as a wrong goal match three stages later or a raw
``zipfile``/``json`` traceback.

Three framings, one :class:`~repro.errors.IntegrityError` contract:

* **Binary artifacts** (:func:`frame` / :func:`unframe`) — a fixed
  header ``magic | version | kind | payload length | CRC32 | SHA-256``
  followed by the payload.  The CRC is the cheap first-line check, the
  SHA-256 the authoritative one.  Used for SRA line files, Stage-1
  ``.npz`` checkpoints and binary alignment files.
* **JSON-line records** (:func:`seal_record` / :func:`verify_record`) —
  appendable journals (``journal.jsonl``, ``index.jsonl``) carry a
  ``crc`` field per line, computed over the canonical JSON of the rest
  of the record.  A corrupt *middle* record is therefore distinguishable
  from a merely unknown one.
* **JSON envelopes** (:func:`seal_json` / :func:`open_json`) —
  human-readable artifacts (result-cache entries) stay readable: the
  payload is wrapped with its own SHA-256 over the canonical payload
  encoding.

File I/O goes through :func:`read_bytes` / :func:`atomic_write_bytes` /
:func:`append_journal_record`, which are the interposition points of the
deterministic fault harness (:mod:`repro.integrity.faults`).
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import zlib
from typing import Any

from repro.errors import IntegrityError
from repro.integrity import faults as _faults

#: Frame magic of every binary artifact ("RePro Integrity Artifact").
MAGIC = b"RPIA"
#: Binary frame format version.
FRAME_VERSION = 1
#: Envelope/record format version (JSON framings).
RECORD_VERSION = 1

# magic 4s | version u16 | kind length u16 | payload length u64 |
# CRC32 u32 | SHA-256 32s
_HEADER = struct.Struct("<4sHHQI32s")

# Canonical artifact kind names (the frame is self-describing, so fsck
# can classify any artifact from its header alone).
KIND_SPECIAL_LINE = "special-line"
KIND_SRA_INDEX = "sra-index"
KIND_CHECKPOINT = "checkpoint"
KIND_CACHE_ENTRY = "cache-entry"
KIND_JOURNAL_RECORD = "journal-record"
KIND_BINARY_ALIGNMENT = "binary-alignment"

#: Directory name corrupt artifacts are moved into by the recovery
#: policies and ``repro fsck --repair``.
QUARANTINE_DIR = "quarantine"


# ------------------------------------------------------------ binary frame
def frame(payload: bytes, kind: str) -> bytes:
    """Wrap ``payload`` in the checksummed binary frame.

    The digests cover the kind bytes *and* the payload, so a flipped bit
    anywhere after the header is caught; every header field is validated
    structurally on read.
    """
    kind_b = kind.encode("ascii")
    body = kind_b + payload
    head = _HEADER.pack(MAGIC, FRAME_VERSION, len(kind_b), len(payload),
                        zlib.crc32(body) & 0xFFFFFFFF,
                        hashlib.sha256(body).digest())
    return head + body


def unframe(blob: bytes, *, expect_kind: str | None = None,
            path: str = "<memory>") -> tuple[str, bytes]:
    """Verify a framed artifact; returns ``(kind, payload)``.

    Raises :class:`IntegrityError` for every way the frame can be wrong:
    truncation, bad magic, unsupported version, kind mismatch, CRC or
    SHA-256 mismatch.
    """
    if len(blob) < _HEADER.size:
        raise IntegrityError(
            f"artifact truncated: {len(blob)} bytes, header needs "
            f"{_HEADER.size}", kind=expect_kind, path=path)
    magic, version, kind_len, payload_len, crc, sha = \
        _HEADER.unpack_from(blob)
    if magic != MAGIC:
        raise IntegrityError("bad magic: not a checksummed artifact",
                             kind=expect_kind, path=path)
    if version != FRAME_VERSION:
        raise IntegrityError(f"unsupported artifact frame version {version}",
                             kind=expect_kind, path=path)
    need = _HEADER.size + kind_len + payload_len
    if len(blob) != need:
        raise IntegrityError(
            f"artifact truncated or padded: {len(blob)} bytes, frame "
            f"declares {need}", kind=expect_kind, path=path)
    kind = blob[_HEADER.size:_HEADER.size + kind_len].decode(
        "ascii", errors="replace")
    if expect_kind is not None and kind != expect_kind:
        raise IntegrityError(
            f"artifact kind mismatch: file holds {kind!r}",
            kind=expect_kind, path=path)
    body = blob[_HEADER.size:]
    payload = body[kind_len:]
    actual_crc = zlib.crc32(body) & 0xFFFFFFFF
    if actual_crc != crc:
        raise IntegrityError(
            "artifact CRC32 mismatch", kind=kind, path=path,
            expected=f"{crc:08x}", actual=f"{actual_crc:08x}")
    actual_sha = hashlib.sha256(body).digest()
    if actual_sha != sha:
        raise IntegrityError(
            "artifact SHA-256 mismatch", kind=kind, path=path,
            expected=sha.hex(), actual=actual_sha.hex())
    return kind, payload


# -------------------------------------------------------- JSON-line records
def _canonical(obj: Any) -> bytes:
    return json.dumps(obj, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def seal_record(record: dict[str, Any]) -> dict[str, Any]:
    """Return ``record`` plus a ``crc`` field over its canonical JSON."""
    crc = zlib.crc32(_canonical(record)) & 0xFFFFFFFF
    return {**record, "crc": f"{crc:08x}"}


def verify_record(raw: str, *, path: str = "<memory>",
                  lineno: int = 0) -> dict[str, Any]:
    """Parse and checksum-verify one sealed JSON line.

    Raises :class:`IntegrityError` when the line is not JSON, not an
    object, unsealed, or fails its CRC.
    """
    where = f"{path}:{lineno}" if lineno else path
    try:
        obj = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise IntegrityError(f"journal line is not JSON: {exc}",
                             kind=KIND_JOURNAL_RECORD, path=where) from exc
    if not isinstance(obj, dict) or "crc" not in obj:
        raise IntegrityError("journal line carries no checksum",
                             kind=KIND_JOURNAL_RECORD, path=where)
    stored = obj.pop("crc")
    actual = f"{zlib.crc32(_canonical(obj)) & 0xFFFFFFFF:08x}"
    if stored != actual:
        raise IntegrityError("journal record CRC mismatch",
                             kind=KIND_JOURNAL_RECORD, path=where,
                             expected=str(stored), actual=actual)
    return obj


# ----------------------------------------------------------- JSON envelope
def seal_json(payload: Any, kind: str) -> str:
    """Wrap a JSON-safe payload in a readable, checksummed envelope."""
    digest = hashlib.sha256(_canonical(payload)).hexdigest()
    return json.dumps({"format": "repro-artifact",
                       "version": RECORD_VERSION, "kind": kind,
                       "sha256": digest, "payload": payload},
                      indent=2, sort_keys=True) + "\n"


def open_json(text: str, *, expect_kind: str | None = None,
              path: str = "<memory>") -> Any:
    """Verify an envelope written by :func:`seal_json`; returns the payload."""
    try:
        obj = json.loads(text)
    except json.JSONDecodeError as exc:
        raise IntegrityError(f"artifact is not JSON: {exc}",
                             kind=expect_kind, path=path) from exc
    if (not isinstance(obj, dict) or obj.get("format") != "repro-artifact"
            or "payload" not in obj or "sha256" not in obj):
        raise IntegrityError("artifact carries no integrity envelope",
                             kind=expect_kind, path=path)
    kind = obj.get("kind")
    if expect_kind is not None and kind != expect_kind:
        raise IntegrityError(f"artifact kind mismatch: file holds {kind!r}",
                             kind=expect_kind, path=path)
    actual = hashlib.sha256(_canonical(obj["payload"])).hexdigest()
    if actual != obj["sha256"]:
        raise IntegrityError("artifact SHA-256 mismatch", kind=kind,
                             path=path, expected=obj["sha256"],
                             actual=actual)
    return obj["payload"]


# -------------------------------------------------------------- file I/O
def read_bytes(path: str | os.PathLike) -> bytes:
    """Read a whole file, through the fault-injection interposition."""
    path = os.fspath(path)
    with open(path, "rb") as handle:
        data = handle.read()
    plan = _faults.active_plan()
    if plan is not None:
        data = plan.on_read(path, data)
    return data


def atomic_write_bytes(path: str | os.PathLike, blob: bytes) -> None:
    """Write + fsync + rename, through the fault interposition.

    An injected torn write persists a prefix of ``blob`` and then raises
    (the simulated crash happens *after* the rename, exactly like a
    power cut between the rename and the next fsync barrier).
    """
    path = os.fspath(path)
    crash = None
    plan = _faults.active_plan()
    if plan is not None:
        blob, crash = plan.on_write(path, blob)
    tmp = f"{path}.tmp"
    with open(tmp, "wb") as handle:
        handle.write(blob)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    if crash is not None:
        raise crash


def read_artifact(path: str | os.PathLike,
                  expect_kind: str | None = None) -> bytes:
    """Read and verify a framed artifact file; returns the payload."""
    path = os.fspath(path)
    return unframe(read_bytes(path), expect_kind=expect_kind, path=path)[1]


def write_artifact(path: str | os.PathLike, payload: bytes,
                   kind: str) -> None:
    """Atomically write ``payload`` as a framed artifact."""
    atomic_write_bytes(path, frame(payload, kind))


def read_text(path: str | os.PathLike) -> str:
    """Read a text artifact; undecodable bytes are integrity damage."""
    path = os.fspath(path)
    try:
        return read_bytes(path).decode("utf-8")
    except UnicodeDecodeError as exc:
        raise IntegrityError(f"artifact is not UTF-8: {exc}",
                             path=path) from exc


def append_journal_record(path: str | os.PathLike,
                          record: dict[str, Any]) -> None:
    """Append one sealed record line to a JSON-lines journal.

    A killed process may have torn the journal's final line; the append
    first restores the newline terminator so the new record can never
    merge into (and corrupt) the torn one.
    """
    path = os.fspath(path)
    line = json.dumps(seal_record(record), separators=(",", ":"),
                      sort_keys=True)
    data = line.encode("utf-8") + b"\n"
    crash = None
    plan = _faults.active_plan()
    if plan is not None:
        data, crash = plan.on_append(path, data)
    with open(path, "a+b") as handle:
        handle.seek(0, os.SEEK_END)
        if handle.tell() > 0:
            handle.seek(-1, os.SEEK_END)
            if handle.read(1) != b"\n":
                handle.write(b"\n")
        handle.write(data)
    if crash is not None:
        raise crash


# ------------------------------------------------------------- quarantine
def quarantine_file(path: str | os.PathLike, *,
                    root: str | os.PathLike | None = None,
                    label: str | None = None) -> str | None:
    """Move a damaged file into a sibling ``quarantine/`` directory.

    The file is preserved for post-mortem inspection rather than
    deleted; the caller's read path then sees it as absent and falls
    back to recomputation.  ``root`` overrides where the quarantine
    directory lives (defaults to the file's own directory); ``label``
    overrides the quarantined name.  Returns the destination, or
    ``None`` when the file was already gone.
    """
    path = os.fspath(path)
    if not os.path.exists(path):
        return None
    base = os.fspath(root) if root is not None else os.path.dirname(path)
    qdir = os.path.join(base, QUARANTINE_DIR)
    os.makedirs(qdir, exist_ok=True)
    name = label if label is not None else os.path.basename(path)
    dest = os.path.join(qdir, name)
    serial = 0
    while os.path.exists(dest):
        serial += 1
        dest = os.path.join(qdir, f"{name}.{serial}")
    os.replace(path, dest)
    return dest
