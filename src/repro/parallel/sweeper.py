"""A drop-in :class:`~repro.align.rowscan.RowSweeper` that sweeps in tiles.

:class:`ParallelRowSweeper` subclasses the serial kernel and overrides
exactly one method — ``_advance`` — replacing the row loop with a
(band x strip) tile grid scheduled along external diagonals.  Everything
the stages rely on is inherited unchanged: boundary seeding, row-0
artifacts, ``state_dict``/``load_state`` (so Stage-1 checkpoints are the
same bytes), ``saved``/``tap_H``/``watch_hit``/``best`` surfaces, and
the ``advance(nrows)`` striping contract.

Bit-identity with the serial kernel is engineered, not hoped for:

* the tile decomposition itself is exact (:mod:`repro.align.tiled`'s
  boundary-exchange algebra, property-tested against the monolith);
* strip 0 receives the sweep's own boundary column in closed form
  (:func:`~repro.parallel.wavefront.boundary_column`), including the E
  seed that makes the in-tile scan reproduce the serial seed exactly;
* ``best``/``watch_hit`` fold per *band row in row order* with the same
  strictly-greater / first-hit rules the serial row loop applies, so
  tie-breaking positions agree cell for cell;
* observed rows (special-row snapshots, the post-window H/E/F state)
  are band cuts, captured from the horizontal bus eagerly at each
  tile's barrier — before the next diagonal overwrites the bus slot.

Between ``advance`` windows the full row state lives in the inherited
``H``/``E``/``F`` arrays, which is also what makes ``load_state`` work
for free: every window re-seeds the bus from them.
"""

from __future__ import annotations

import numpy as np

from repro.constants import NEG_INF, SCORE_DTYPE, TYPE_MATCH
from repro.errors import ConfigError
from repro.align.kernels import (KernelBackend, get_backend, register_backend,
                                 serial_kernel_names)
from repro.align.rowscan import RowSweeper
from repro.align.scoring import ScoringScheme
from repro.parallel.wavefront import (WavefrontExecutor, boundary_column,
                                      compute_tile, plan_strip_cols)

#: Below this matrix size the sweep is not worth a process round-trip per
#: diagonal; :func:`make_sweeper` falls back to the serial kernel.
MIN_PARALLEL_CELLS = 1 << 15


class ParallelRowSweeper(RowSweeper):
    """Tile-grid sweep behind the serial sweeper's exact interface.

    Args (beyond :class:`RowSweeper`'s):
        executor: a :class:`~repro.parallel.wavefront.WavefrontExecutor`,
            or ``None`` to compute every tile inline (same schedule, no
            processes — the mode the equivalence tests exercise).
        strip_cols: column-strip width; defaults to a width that feeds
            the pool (:func:`~repro.parallel.wavefront.plan_strip_cols`).
        band_rows: band height within one ``advance`` window; defaults
            to a height that puts ~2 bands per worker in flight.
        metrics: optional :class:`~repro.telemetry.metrics.MetricsRegistry`
            receiving ``wavefront.*`` occupancy / tile-time / bus-traffic
            instruments.

    Only final-column taps are supported (``tap_columns == [n]``, which
    is every tap the pipeline performs — the goal-matching stages read
    the orthogonal edge); anything else raises ``ConfigError``.
    """

    def __init__(self, codes0: np.ndarray, codes1: np.ndarray,
                 scheme: ScoringScheme, *, local: bool = False,
                 start_gap: int = TYPE_MATCH, forced: bool = False,
                 executor: WavefrontExecutor | None = None,
                 strip_cols: int | None = None,
                 band_rows: int | None = None,
                 metrics=None, **kwargs) -> None:
        super().__init__(codes0, codes1, scheme, local=local,
                         start_gap=start_gap, forced=forced, **kwargs)
        if self._taps is not None and (
                len(self._taps) != 1 or int(self._taps[0]) != self.n):
            raise ConfigError("parallel sweeps only tap the final column")
        self._executor = executor
        self._metrics = metrics if metrics is not None else (
            executor.metrics if executor is not None else None)
        workers = executor.workers if executor is not None else 1
        self._workers = workers
        strip = int(strip_cols) if strip_cols else plan_strip_cols(self.n, workers)
        if strip < 1:
            raise ConfigError("strip width must be positive")
        self._col_cuts = list(range(0, self.n, strip)) + [self.n]
        self._strips = len(self._col_cuts) - 1
        self._band_rows = int(band_rows) if band_rows else None
        self._boundary_H, self._boundary_E, self._boundary_X = boundary_column(
            self.m, scheme, local=local, start_gap=start_gap, forced=forced)

        wmax = max(self._col_cuts[s + 1] - self._col_cuts[s]
                   for s in range(self._strips))
        self._owned: list = []
        if executor is not None:
            codes0_sh = executor.share(self.codes0)
            codes1_sh = executor.share(self.codes1)
            hbus = [executor.alloc((self._strips, wmax + 1), SCORE_DTYPE)
                    for _ in range(3)]
            self._owned = [codes0_sh, codes1_sh, *hbus]
            self._refs = {"codes0": codes0_sh.ref, "codes1": codes1_sh.ref,
                          "hbus_H": hbus[0].ref, "hbus_E": hbus[1].ref,
                          "hbus_F": hbus[2].ref}
            self._arrays = {"codes0": codes0_sh.array,
                            "codes1": codes1_sh.array,
                            "hbus_H": hbus[0].array, "hbus_E": hbus[1].array,
                            "hbus_F": hbus[2].array}
        else:
            self._refs = {}
            self._arrays = {"codes0": self.codes0, "codes1": self.codes1,
                            "hbus_H": np.empty((self._strips, wmax + 1), SCORE_DTYPE),
                            "hbus_E": np.empty((self._strips, wmax + 1), SCORE_DTYPE),
                            "hbus_F": np.empty((self._strips, wmax + 1), SCORE_DTYPE)}
        self._closed = False

    # ------------------------------------------------------------------
    def _advance(self, nrows: int) -> int:
        i0, stop = self.i, self.i + nrows
        col_cuts, strips = self._col_cuts, self._strips
        n = self.n
        bt = self._band_rows or max(1, -(-nrows // max(2, 2 * self._workers)))
        cuts = set(range(i0 + bt, stop, bt))
        cuts.update(r for r in self._save_rows if i0 < r < stop)
        cuts.add(stop)
        row_cuts = [i0] + sorted(cuts)
        bands = len(row_cuts) - 1
        hmax = max(row_cuts[b + 1] - row_cuts[b] for b in range(bands))
        observed = {r for r in row_cuts[1:] if r in self._save_rows}
        observed.add(stop)
        staging = {r: (np.empty(n + 1, SCORE_DTYPE),
                       np.empty(n + 1, SCORE_DTYPE),
                       np.empty(n + 1, SCORE_DTYPE)) for r in observed}

        # Seed the horizontal bus with the current row state; the bus
        # ends the window holding the new state.
        hH, hE, hF = (self._arrays["hbus_H"], self._arrays["hbus_E"],
                      self._arrays["hbus_F"])
        for s in range(strips):
            c0, c1 = col_cuts[s], col_cuts[s + 1]
            hH[s, :c1 - c0 + 1] = self.H[c0:c1 + 1]
            hE[s, :c1 - c0 + 1] = self.E[c0:c1 + 1]
            hF[s, :c1 - c0 + 1] = self.F[c0:c1 + 1]

        executor = self._executor
        vbus_owned: list = []
        if executor is not None:
            vbus = [executor.alloc((bands, hmax), SCORE_DTYPE) for _ in range(2)]
            vbus_owned = vbus
            vH, vE = vbus[0].array, vbus[1].array
            refs = dict(self._refs)
            refs["vbus_H"] = vbus[0].ref
            refs["vbus_E"] = vbus[1].ref
        else:
            vH = np.empty((bands, hmax), SCORE_DTYPE)
            vE = np.empty((bands, hmax), SCORE_DTYPE)
            refs = None
        arrays = dict(self._arrays)
        arrays["vbus_H"] = vH
        arrays["vbus_E"] = vE

        met = self._metrics
        try:
            outcomes: dict[int, list] = {}
            for d in range(bands + strips - 1):
                coords = [(b, d - b)
                          for b in range(max(0, d - strips + 1),
                                         min(bands, d + 1))]
                tasks = []
                for b, s in coords:
                    r0, r1 = row_cuts[b], row_cuts[b + 1]
                    task = {"s": s, "b": b, "r0": r0, "r1": r1,
                            "c0": col_cuts[s], "c1": col_cuts[s + 1],
                            "local": self.local,
                            "track_best": self.track_best,
                            "watch": (self.watch_value
                                      if self.watch_hit is None else None),
                            "scheme": self.scheme,
                            "lH": self._boundary_H[r0:r1] if s == 0 else None,
                            "lE": self._boundary_E[r0:r1] if s == 0 else None,
                            "lX": self._boundary_X[r0:r1] if s == 0 else None}
                    if refs is not None:
                        task["refs"] = refs
                    tasks.append(task)
                if executor is not None:
                    if met is not None:
                        with met.histogram("wavefront.diagonal_seconds").time():
                            results = executor.run_tiles(tasks)
                    else:
                        results = executor.run_tiles(tasks)
                else:
                    results = [compute_tile(task, arrays) for task in tasks]
                if met is not None:
                    met.histogram("wavefront.occupancy").observe(
                        len(coords) / self._workers)
                for (b, s), res in zip(coords, results):
                    outcomes.setdefault(b, [None] * strips)[s] = res
                    r1 = row_cuts[b + 1]
                    c0, c1 = col_cuts[s], col_cuts[s + 1]
                    if met is not None:
                        met.counter("wavefront.tiles").add(1)
                        met.histogram("wavefront.tile_seconds").observe(
                            res["seconds"])
                        met.counter("wavefront.hbus_bytes").add(12 * (c1 - c0 + 1))
                        met.counter("wavefront.vbus_bytes").add(
                            8 * (r1 - row_cuts[b]))
                    if r1 in observed:
                        # Eager capture: this bus slot is overwritten by
                        # the next diagonal's tile in the same strip.
                        bufH, bufE, bufF = staging[r1]
                        lo = c0 if s == 0 else c0 + 1
                        bufH[lo:c1 + 1] = hH[s, lo - c0:c1 - c0 + 1]
                        bufE[lo:c1 + 1] = hE[s, lo - c0:c1 - c0 + 1]
                        bufF[lo:c1 + 1] = hF[s, lo - c0:c1 - c0 + 1]
                # Rows finish strictly in order: band b completes once
                # its final strip (diagonal b + strips - 1) lands.
                b_done = d - (strips - 1)
                if 0 <= b_done < bands:
                    self._fold_band(b_done, row_cuts,
                                    outcomes.pop(b_done), vH, vE)
        finally:
            if executor is not None:
                executor.release(vbus_owned)

        for r in sorted(observed):
            bufH, bufE, bufF = staging[r]
            if r in self._save_rows:
                self.saved[r] = (bufH if r != stop else bufH.copy(),
                                 bufF if r != stop else bufF.copy())
        bufH, bufE, bufF = staging[stop]
        self.H[:] = bufH
        self.E[:] = bufE
        self.F[:] = bufF
        self.E[0] = NEG_INF  # the serial kernel pins E(i, 0) every row
        self.i = stop
        self.cells += nrows * self.n
        if self.i >= self.m:
            self.close()
        return nrows

    def _fold_band(self, b: int, row_cuts: list[int], results: list,
                   vH: np.ndarray, vE: np.ndarray) -> None:
        """Merge one completed band row, in row order, exactly as the
        serial loop would have: strictly-greater best updates with
        row-major tie-breaks, first watch hit wins, final-column taps."""
        r0, r1 = row_cuts[b], row_cuts[b + 1]
        h = r1 - r0
        if self._taps is not None:
            self.tap_H[r0 + 1:r1 + 1, 0] = vH[b, :h]
            self.tap_E[r0 + 1:r1 + 1, 0] = vE[b, :h]
        if self.track_best:
            # Column 0 is no tile's cell; its best candidate is the
            # boundary ramp's first (largest) row.
            candidates = [(int(self._boundary_H[r0]), r0 + 1, 0)]
            for s, res in enumerate(results):
                if res["best_pos"] != (0, 0):
                    bi, bj = res["best_pos"]
                    candidates.append((res["best"], r0 + bi,
                                       self._col_cuts[s] + bj))
            top = max(c[0] for c in candidates)
            if top > self.best:
                self.best, *pos = min(
                    (c for c in candidates if c[0] == top),
                    key=lambda c: (c[1], c[2]))
                self.best_pos = tuple(pos)
        if self.watch_value is not None and self.watch_hit is None:
            hits = []
            bound = np.flatnonzero(
                self._boundary_H[r0:r1] == self.watch_value)
            if bound.size:
                hits.append((r0 + 1 + int(bound[0]), 0))
            for s, res in enumerate(results):
                if res["watch_hit"] is not None:
                    hi, hj = res["watch_hit"]
                    hits.append((r0 + hi, self._col_cuts[s] + hj))
            if hits:
                self.watch_hit = min(hits)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Unlink this sweep's shared segments (idempotent; automatic
        once the sweep completes)."""
        if self._closed:
            return
        self._closed = True
        if self._executor is not None and self._owned:
            self._executor.release(self._owned)
            self._owned = []

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass


register_backend(KernelBackend(
    name="wavefront",
    factory=ParallelRowSweeper,
    serial=False,
    interior_taps=False,
    description="tile-grid sweep scheduled along external diagonals on a "
                "process pool (inline without an executor)"))


def make_sweeper(codes0: np.ndarray, codes1: np.ndarray,
                 scheme: ScoringScheme, *, kernel: str = "rowscan",
                 executor: WavefrontExecutor | None = None,
                 metrics=None, strip_cols: int | None = None,
                 **kwargs) -> RowSweeper:
    """Build the right sweeper for a sweep: the ``wavefront`` backend
    when an executor is attached and the matrix is worth the dispatch,
    the configured in-process ``kernel`` otherwise.

    The fallbacks are exact, not approximate — every registered backend
    is bit-identical — so callers never need to care which one they got.
    They do get a *signal*, though: when an executor was requested but
    the sweep falls back to the serial kernel, the ``kernel.fallback``
    counter (plus ``kernel.fallback.<reason>``) ticks on ``metrics``.
    """
    inner = get_backend(kernel)
    if not inner.serial:
        raise ConfigError(
            f"kernel {kernel!r} is not an in-process backend; pick one of "
            f"{list(serial_kernel_names())} (the wavefront grid is reached "
            f"by attaching an executor)")
    if executor is not None:
        m = int(np.asarray(codes0).size)
        n = int(np.asarray(codes1).size)
        taps = kwargs.get("tap_columns")
        flat = None if taps is None else np.asarray(taps).ravel()
        taps_ok = flat is None or (flat.size == 1 and int(flat[0]) == n)
        reason = None
        if m * n < MIN_PARALLEL_CELLS:
            reason = "small_matrix"
        elif not taps_ok:
            reason = "interior_taps"
        if reason is None:
            return get_backend("wavefront").make(
                codes0, codes1, scheme, executor=executor, metrics=metrics,
                strip_cols=strip_cols, **kwargs)
        if metrics is not None:
            metrics.counter("kernel.fallback").add(1)
            metrics.counter(f"kernel.fallback.{reason}").add(1)
    return inner.make(codes0, codes1, scheme, **kwargs)
