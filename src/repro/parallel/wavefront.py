"""Process-pool wavefront executor (the paper's external-diagonal schedule).

CUDAlign runs the grid of (band x strip) blocks along *external
diagonals*: every block on diagonal ``d = band + strip`` depends only on
diagonal ``d - 1`` (its top edge through the horizontal bus, its left
edge through the vertical bus), so all of diagonal ``d`` computes
concurrently.  :class:`WavefrontExecutor` reproduces that schedule with
OS processes instead of thread blocks:

* sequence codes and both buses live in named shared memory —
  :mod:`repro.parallel.shm` — so a tile task on the wire is a dozen
  integers plus array *names*, never the arrays;
* each worker owns one duplex pipe; the parent dispatches a diagonal,
  waits for the barrier, harvests the tiles' scalar results (best /
  watch-hit / cells / wall time) and the bus side effects are already
  in place for diagonal ``d + 1``.

Within one diagonal, tiles touch distinct strips and distinct bands, so
the single-buffered buses are race-free by construction; between
diagonals the barrier orders every write before every read.  That is the
whole synchronisation story — no locks, no ring arithmetic.

The same executor doubles as a plain task pool for the
partition-parallel stages (4 and 5), dispatching registered task-body
names from :mod:`repro.parallel.tasks` largest-first so one oversized
partition cannot serialise the tail of the schedule.
"""

from __future__ import annotations

import time
from multiprocessing import connection, get_context

import numpy as np

from repro.errors import ConfigError, ReproError
from repro.align.tiled import TileEdges, tile_sweep
from repro.parallel.shm import ArrayRef, SegmentCache, SharedArray
from repro.parallel.tasks import TASK_REGISTRY

# Fork keeps worker start cheap and inherits the imported numpy; fall
# back to the platform default where fork does not exist.
try:
    _CTX = get_context("fork")
except ValueError:  # pragma: no cover - non-POSIX platforms
    _CTX = get_context()


# boundary_column moved to the align layer (the diagonal backend needs
# it too); re-exported here because strip-0 tiles are its first client.
from repro.align.kernels import boundary_column  # noqa: E402,F401


def plan_strip_cols(n: int, workers: int) -> int:
    """Default strip width: enough strips to feed the pool, tiles not
    so narrow that boundary exchange dominates the O(h*w) sweep."""
    target = -(-n // max(2, 2 * workers))  # ceil
    return max(1, min(n, max(32, target)))


def compute_tile(task: dict, arrays: dict) -> dict:
    """Compute one tile against the mapped buses (runs in a worker,
    or inline in the parent when no executor is attached).

    Reads the top edge from the horizontal bus and the left edge from
    the vertical bus (strip 0 carries its boundary column in the task),
    writes the outgoing edges back in place, and returns only scalars.
    """
    r0, r1, c0, c1 = task["r0"], task["r1"], task["c0"], task["c1"]
    s, b = task["s"], task["b"]
    h, w = r1 - r0, c1 - c0
    hbus_H, hbus_E, hbus_F = arrays["hbus_H"], arrays["hbus_E"], arrays["hbus_F"]
    if s == 0:
        left_H, left_E, left_X = task["lH"], task["lE"], task["lX"]
    else:
        left_H = arrays["vbus_H"][b, :h]
        left_E = arrays["vbus_E"][b, :h]
        left_X = None
    edges = TileEdges(top_H=hbus_H[s, :w + 1], top_E=hbus_E[s, :w + 1],
                      top_F=hbus_F[s, :w + 1], left_H=left_H, left_E=left_E,
                      left_X=left_X)
    start = time.perf_counter()
    tile = tile_sweep(arrays["codes0"][r0:r1], arrays["codes1"][c0:c1],
                      task["scheme"], edges, local=task["local"],
                      track_best=task["track_best"],
                      watch_value=task["watch"])
    seconds = time.perf_counter() - start
    hbus_H[s, :w + 1] = tile.bottom_H
    hbus_E[s, :w + 1] = tile.bottom_E
    hbus_F[s, :w + 1] = tile.bottom_F
    arrays["vbus_H"][b, :h] = tile.right_H
    arrays["vbus_E"][b, :h] = tile.right_E
    return {"best": tile.best, "best_pos": tile.best_pos,
            "watch_hit": tile.watch_hit, "cells": tile.cells,
            "seconds": seconds}


def _worker_main(conn) -> None:
    """Worker loop: map segments on demand, answer one request at a time.

    Exits on an explicit ``exit`` message or on pipe EOF — so workers
    orphaned by a SIGKILLed parent drain out instead of lingering.
    """
    cache = SegmentCache()
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            kind = msg[0]
            if kind == "exit":
                break
            if kind == "forget":
                cache.forget(msg[1])
                continue
            try:
                if kind == "tile":
                    task = msg[1]
                    arrays = {key: cache.get(ref)
                              for key, ref in task["refs"].items()}
                    reply = ("ok", compute_tile(task, arrays))
                elif kind == "call":
                    _, name, payload, refs = msg
                    arrays = {key: cache.get(ref) for key, ref in refs.items()}
                    reply = ("ok", TASK_REGISTRY[name](payload, arrays))
                else:
                    reply = ("err", "ValueError", f"unknown message {kind!r}")
            except Exception as exc:  # noqa: BLE001 - forwarded to parent
                reply = ("err", type(exc).__name__, str(exc))
            try:
                conn.send(reply)
            except (BrokenPipeError, OSError):
                break
    finally:
        cache.close()
        conn.close()


def _rebuild_error(name: str, message: str) -> Exception:
    """Map a worker-side exception back onto the library hierarchy."""
    import builtins

    import repro.errors as errors_mod

    cls = getattr(errors_mod, name, None) or getattr(builtins, name, None)
    if isinstance(cls, type) and issubclass(cls, Exception):
        try:
            return cls(message)
        except TypeError:
            pass
    return ReproError(f"worker {name}: {message}")


class WavefrontExecutor:
    """A pool of sweep workers plus the shared segments they map.

    One executor serves a whole pipeline run: stages 1-3 drive it with
    tile diagonals (:meth:`run_tiles`), stages 4/5 with independent
    partition tasks (:meth:`map_calls`).  All segments handed out via
    :meth:`share`/:meth:`alloc` are tracked and unlinked at
    :meth:`close`, so an early-terminating stage cannot leak memory past
    the run.
    """

    def __init__(self, workers: int = 1, *, metrics=None) -> None:
        if workers < 1:
            raise ConfigError("wavefront executor needs at least one worker")
        self.workers = int(workers)
        self.metrics = metrics
        self._segments: dict[str, SharedArray] = {}
        self._procs = []
        self._conns = []
        for _ in range(self.workers):
            parent_conn, child_conn = _CTX.Pipe(duplex=True)
            proc = _CTX.Process(target=_worker_main, args=(child_conn,),
                                daemon=True)
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)
        self._closed = False

    # ------------------------------------------------------------- memory
    def share(self, source: np.ndarray) -> SharedArray:
        """Copy an array into a tracked shared segment."""
        shared = SharedArray.from_array(np.ascontiguousarray(source))
        self._segments[shared.ref.name] = shared
        return shared

    def alloc(self, shape: tuple[int, ...], dtype) -> SharedArray:
        """Allocate an uninitialised tracked shared segment."""
        shared = SharedArray(shape, dtype)
        self._segments[shared.ref.name] = shared
        return shared

    def release(self, shared_arrays) -> None:
        """Unlink segments and tell every worker to drop its mappings."""
        names = []
        for shared in shared_arrays:
            if self._segments.pop(shared.ref.name, None) is not None:
                names.append(shared.ref.name)
                shared.close()
        if names and not self._closed:
            self._broadcast(("forget", names))

    # ----------------------------------------------------------- dispatch
    def run_tiles(self, tasks: list[dict]) -> list[dict]:
        """Run one diagonal of tiles; returns results in task order."""
        return self._dispatch([("tile", task) for task in tasks])

    def map_calls(self, name: str, payloads: list[dict],
                  refs: dict[str, ArrayRef],
                  sizes: list[int] | None = None) -> list:
        """Fan registered task bodies across the pool, largest first.

        Results come back in *input* order; ``sizes`` only reorders the
        dispatch so the biggest unit starts earliest (SaLoBa's lesson:
        workload balance, not raw worker count, bounds the makespan).
        """
        jobs = [("call", name, payload, refs) for payload in payloads]
        if sizes is not None:
            order = sorted(range(len(jobs)), key=lambda k: -sizes[k])
        else:
            order = list(range(len(jobs)))
        return self._dispatch(jobs, order=order)

    def _dispatch(self, jobs: list[tuple], order: list[int] | None = None):
        if self._closed:
            raise ConfigError("executor is closed")
        if not jobs:
            return []
        pending = list(order) if order is not None else list(range(len(jobs)))
        pending.reverse()  # pop() takes the front of the chosen order
        results: list = [None] * len(jobs)
        idle = list(range(len(self._conns)))
        busy: dict[int, int] = {}  # worker index -> job index
        failure: Exception | None = None
        while pending or busy:
            while pending and idle and failure is None:
                worker = idle.pop()
                job = pending.pop()
                self._conns[worker].send(jobs[job])
                busy[worker] = job
            if failure is not None and not busy:
                break
            ready = connection.wait([self._conns[w] for w in busy])
            for conn in ready:
                worker = self._conns.index(conn)
                job = busy.pop(worker)
                try:
                    reply = conn.recv()
                except (EOFError, OSError):
                    raise ReproError(
                        f"wavefront worker {worker} died mid-task") from None
                idle.append(worker)
                if reply[0] == "ok":
                    results[job] = reply[1]
                elif failure is None:
                    failure = _rebuild_error(reply[1], reply[2])
        if failure is not None:
            raise failure
        return results

    # ------------------------------------------------------------ teardown
    def _broadcast(self, msg: tuple) -> None:
        for conn in self._conns:
            try:
                conn.send(msg)
            except (BrokenPipeError, OSError):
                pass

    def close(self) -> None:
        if self._closed:
            return
        self._broadcast(("exit",))
        self._closed = True
        for conn in self._conns:
            conn.close()
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=1)
        for shared in list(self._segments.values()):
            shared.close()
        self._segments.clear()

    def __enter__(self) -> "WavefrontExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass
