"""Worker-side task bodies for the partition-parallel stages.

Stages 4 and 5 fan *independent* units of work across the pool: every
Myers-Miller split and every base-case alignment depends only on its own
partition, so the unit of exchange is one small frozen dataclass in and
one small frozen dataclass out.  The heavy inputs — the sequence codes —
arrive as :class:`~repro.parallel.shm.ArrayRef` descriptors and are
mapped, not pickled.

The registry maps wire names to callables so the parent never pickles
functions (and a worker can only run what is registered here).
"""

from __future__ import annotations

from types import SimpleNamespace


def _sequences(payload, arrays):
    """Rebuild the ``(s0, s1)`` duck-typed views a stage function expects.

    The stage kernels only touch ``.codes``, so a namespace around the
    mapped array is a full stand-in for :class:`repro.sequences.Sequence`.
    """
    return (SimpleNamespace(codes=arrays["codes0"]),
            SimpleNamespace(codes=arrays["codes1"]))


def run_split(payload: dict, arrays: dict) -> tuple:
    """One Stage-4 Myers-Miller split: partition in, crosspoint out."""
    from repro.align.myers_miller import MMStats
    from repro.core.stage4 import split_partition

    s0, s1 = _sequences(payload, arrays)
    config = SimpleNamespace(scheme=payload["scheme"])
    stats = MMStats()
    point = split_partition(s0, s1, payload["partition"], config,
                            payload["mm_config"], stats)
    return point, stats


def run_align(payload: dict, arrays: dict) -> tuple:
    """One Stage-5 base case: partition in, full alignment path out."""
    from repro.core.stage5 import align_partition

    s0, s1 = _sequences(payload, arrays)
    config = SimpleNamespace(scheme=payload["scheme"])
    return align_partition(s0, s1, payload["partition"], config)


TASK_REGISTRY = {
    "split": run_split,
    "align": run_align,
}
