"""Process-pool wavefront execution (Section IV-A's external diagonals).

The package turns the monolithic row-sweep kernel into a grid of
column-strip tiles scheduled along external diagonals on a pool of
worker processes, plus a partition-parallel fan-out for the Myers-Miller
stages.  Everything here is bit-identical to the serial kernels: the
executor is a performance knob, never a semantics knob.

* :mod:`repro.parallel.shm` — shared-memory segments and the
  :class:`ArrayRef` descriptors workers map instead of unpickling.
* :mod:`repro.parallel.wavefront` — the worker pool, the tile kernel
  driver, and the diagonal dispatch protocol.
* :mod:`repro.parallel.sweeper` — :class:`ParallelRowSweeper`, a
  drop-in :class:`~repro.align.rowscan.RowSweeper` whose ``advance``
  windows run as tile diagonals.
* :mod:`repro.parallel.tasks` — worker-side bodies for the
  partition-parallel stages (4 and 5).
"""

from repro.parallel.shm import ArrayRef, SegmentCache, SharedArray, attach_array
from repro.parallel.sweeper import (MIN_PARALLEL_CELLS, ParallelRowSweeper,
                                    make_sweeper)
from repro.parallel.wavefront import (WavefrontExecutor, boundary_column,
                                      compute_tile, plan_strip_cols)

__all__ = [
    "ArrayRef",
    "MIN_PARALLEL_CELLS",
    "ParallelRowSweeper",
    "SegmentCache",
    "SharedArray",
    "WavefrontExecutor",
    "attach_array",
    "boundary_column",
    "compute_tile",
    "make_sweeper",
    "plan_strip_cols",
]
