"""Shared-memory plumbing of the wavefront executor.

Sequence codes and the tile edge buses live in named
``multiprocessing.shared_memory`` segments so workers exchange *names*,
never megabase arrays: a tile task is a handful of integers plus six
:class:`ArrayRef` descriptors, and every boundary value crosses process
boundaries through the mapped buses exactly once.

Python < 3.13 registers *attached* segments with the resource tracker as
if the attaching process owned them, which makes the tracker try (and
warn about) a second unlink at exit.  :func:`attach_array` undoes that
registration — the creating process is the sole owner and unlinker.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np


@dataclass(frozen=True)
class ArrayRef:
    """Name + layout of a numpy array living in a shared segment."""

    name: str
    shape: tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) * np.dtype(self.dtype).itemsize


class SharedArray:
    """An owned numpy array backed by named shared memory."""

    def __init__(self, shape: tuple[int, ...], dtype) -> None:
        dtype = np.dtype(dtype)
        nbytes = max(1, int(np.prod(shape, dtype=np.int64)) * dtype.itemsize)
        self.shm = shared_memory.SharedMemory(create=True, size=nbytes)
        self.array = np.ndarray(shape, dtype=dtype, buffer=self.shm.buf)
        self.ref = ArrayRef(self.shm.name, tuple(shape), dtype.str)

    @classmethod
    def from_array(cls, source: np.ndarray) -> "SharedArray":
        shared = cls(source.shape, source.dtype)
        shared.array[...] = source
        return shared

    def close(self) -> None:
        """Release the mapping and unlink the segment (owner only)."""
        self.array = None
        try:
            self.shm.close()
            self.shm.unlink()
        except FileNotFoundError:
            pass


def attach_array(ref: ArrayRef) -> tuple[shared_memory.SharedMemory, np.ndarray]:
    """Map an existing segment read-write without claiming ownership."""
    shm = shared_memory.SharedMemory(name=ref.name, create=False)
    try:
        # Undo the attach-side tracker registration (see module docstring);
        # private API, so tolerate its absence on future Pythons.
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass
    return shm, np.ndarray(ref.shape, dtype=np.dtype(ref.dtype), buffer=shm.buf)


class SegmentCache:
    """Worker-side cache of attached segments, keyed by name.

    A sweep's segments are attached on first use and dropped when the
    parent broadcasts a ``forget`` after unlinking them (the mapping
    stays valid until closed; the memory is freed once every process
    lets go).
    """

    def __init__(self) -> None:
        self._segments: dict[str, tuple[shared_memory.SharedMemory, np.ndarray]] = {}

    def get(self, ref: ArrayRef) -> np.ndarray:
        entry = self._segments.get(ref.name)
        if entry is None:
            entry = self._segments[ref.name] = attach_array(ref)
        return entry[1]

    def forget(self, names) -> None:
        for name in names:
            entry = self._segments.pop(name, None)
            if entry is not None:
                try:
                    entry[0].close()
                except OSError:
                    pass

    def close(self) -> None:
        self.forget(list(self._segments))
