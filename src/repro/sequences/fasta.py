"""Minimal FASTA reader/writer.

CUDAlign reads its two input chromosomes from FASTA files; this module
provides the same front door.  Only the features the pipeline needs are
implemented: multi-record files, arbitrary line wrapping, comments, and
case-insensitive bases.
"""

from __future__ import annotations

import io
import os
from typing import Iterator

import numpy as np

from repro.errors import SequenceError
from repro.sequences.sequence import Sequence, encode


def iter_fasta(path: str | os.PathLike | io.TextIOBase) -> Iterator[Sequence]:
    """Yield :class:`Sequence` objects from a FASTA file or text handle."""
    if isinstance(path, io.TextIOBase):
        yield from _parse(path)
    else:
        with open(path, "r", encoding="ascii") as handle:
            yield from _parse(handle)


def _parse(handle) -> Iterator[Sequence]:
    name: str | None = None
    accession = ""
    chunks: list[np.ndarray] = []
    for raw in handle:
        line = raw.strip()
        if not line or line.startswith(";"):
            continue
        if line.startswith(">"):
            if name is not None:
                yield _emit(name, accession, chunks)
            header = line[1:].strip()
            if not header:
                raise SequenceError("FASTA record with empty header")
            accession = header.split()[0]
            name = header
            chunks = []
        else:
            if name is None:
                raise SequenceError("FASTA data before the first '>' header")
            chunks.append(encode(line))
    if name is not None:
        yield _emit(name, accession, chunks)


def _emit(name: str, accession: str, chunks: list[np.ndarray]) -> Sequence:
    if not chunks:
        raise SequenceError(f"FASTA record {name!r} has no sequence data")
    return Sequence(np.concatenate(chunks), name=name, accession=accession)


def read_fasta(path: str | os.PathLike) -> Sequence:
    """Read the first record of a FASTA file (the common single-chromosome case)."""
    for seq in iter_fasta(path):
        return seq
    raise SequenceError(f"{path}: no FASTA records found")


def write_fasta(path: str | os.PathLike, *sequences: Sequence, width: int = 70) -> None:
    """Write sequences to ``path`` in FASTA format with ``width``-column wrapping."""
    if width <= 0:
        raise SequenceError("FASTA line width must be positive")
    with open(path, "w", encoding="ascii") as handle:
        for seq in sequences:
            handle.write(f">{seq.name}\n")
            text = str(seq)
            for start in range(0, len(text), width):
                handle.write(text[start:start + width])
                handle.write("\n")
