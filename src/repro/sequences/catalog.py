"""Scaled synthetic counterpart of the paper's sequence catalog (Table II).

Each entry mirrors one row of Table II/III: the pair of paper sequences,
their real sizes, and the *regime* of their optimal local alignment
(near-identical genomes, partially homologous genomes, or unrelated
sequences sharing a short conserved core).  ``build`` generates a
deterministic synthetic pair at ``1/scale`` of the paper size that lives in
the same regime, so every downstream experiment (Tables III-X, Figures
11-12) exercises the same code paths the paper did.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import SequenceError
from repro.sequences.sequence import Sequence
from repro.sequences.synth import (
    MutationProfile,
    embedded_core_pair,
    homologous_pair,
    mutate,
    random_dna,
)

#: Smallest sequence the scaled catalog will emit; below this the pipeline
#: degenerates (no room for even one special row).
MIN_SCALED_LENGTH = 384


@dataclass(frozen=True)
class CatalogEntry:
    """One comparison of Table II with its Table III ground-truth context."""

    key: str
    name0: str
    name1: str
    accession0: str
    accession1: str
    paper_size0: int
    paper_size1: int
    paper_score: int
    paper_length: int
    paper_gaps: int
    regime: str
    _builder: Callable[[int, int, np.random.Generator], tuple[Sequence, Sequence]]

    def scaled_sizes(self, scale: int) -> tuple[int, int]:
        """Sequence sizes at ``1/scale`` of the paper, floored at MIN_SCALED_LENGTH."""
        if scale <= 0:
            raise SequenceError("scale must be positive")
        return (max(MIN_SCALED_LENGTH, self.paper_size0 // scale),
                max(MIN_SCALED_LENGTH, self.paper_size1 // scale))

    def build(self, scale: int = 1024, seed: int = 0) -> tuple[Sequence, Sequence]:
        """Generate the deterministic synthetic pair for this entry.

        The per-entry seed component is a stable digest of the key — not
        ``hash()``, whose per-process salt would make "deterministic"
        hold only within one interpreter.  Cross-process reproducibility
        is what lets the job service cache catalog jobs by content digest
        and resume them from checkpoints in fresh worker processes.
        """
        m, n = self.scaled_sizes(scale)
        key_seed = zlib.crc32(self.key.encode("ascii"))
        rng = np.random.default_rng([seed, key_seed])
        s0, s1 = self._builder(m, n, rng)
        return (Sequence(s0.codes, name=self.name0, accession=self.accession0),
                Sequence(s1.codes, name=self.name1, accession=self.accession1))


def _core_builder(core_frac: float, profile: MutationProfile):
    """Unrelated flanks with a conserved core covering ``core_frac`` of S0."""

    def build(m: int, n: int, rng: np.random.Generator):
        core = max(32, int(min(m, n) * core_frac))
        return embedded_core_pair(m, n, core, rng, profile=profile)

    return build


def _homologous_builder(profile: MutationProfile):
    """Two descendants of one ancestor; alignment spans ~the whole matrix."""

    def build(m: int, n: int, rng: np.random.Generator):
        s0, s1 = homologous_pair(min(m, n), rng, profile=profile)
        return s0, s1

    return build


def _prefix_homolog_builder(prefix_frac: float, profile: MutationProfile):
    """S1 = unrelated prefix + homolog of S0 (the human/chimp chr21-chr22 shape:
    chimp chr22 aligns into the tail of human chr21, Table III start (0, 13.8M))."""

    def build(m: int, n: int, rng: np.random.Generator):
        prefix = int(n * prefix_frac)
        ancestor = random_dna(max(32, min(m, n - prefix)), rng, name="ancestor")
        s0 = mutate(ancestor, profile, rng)
        tail = mutate(ancestor, profile, rng)
        head = random_dna(max(1, prefix), rng)
        s1 = Sequence(np.concatenate([head.codes, tail.codes]))
        return s0, s1

    return build


# Mutation profiles per regime, tuned so the scaled pairs land near the
# paper's identity levels (Table III / Table X):
#  - near-identical genomes (Bacillus Ames vs Sterne): ~99.9% identity
_NEAR_IDENTICAL = MutationProfile(substitution=0.0005, insertion=0.0002,
                                  deletion=0.0002, indel_mean_len=2.0)
#  - diverged homologs (human/chimp, Table X: 94.4% match, 1.5% mismatch,
#    0.2% gap opens, 3.9% gap extensions => mean run ~20)
_DIVERGED = MutationProfile(substitution=0.008, insertion=0.0005,
                            deletion=0.0005, indel_mean_len=20.0)
#  - partial homology with heavy divergence (Chlamydia pair: score/len ~ 0.19)
_HEAVY = MutationProfile(substitution=0.10, insertion=0.006,
                         deletion=0.006, indel_mean_len=3.0)
#  - conserved cores inside unrelated DNA
_CORE = MutationProfile(substitution=0.04, insertion=0.002,
                        deletion=0.002, indel_mean_len=2.0)

CATALOG: tuple[CatalogEntry, ...] = (
    CatalogEntry("162Kx172K", "Human herpesvirus 6B", "Human herpesvirus 4",
                 "NC_000898.1", "NC_007605.1", 162_114, 171_823,
                 18, 18, 0, "short-hit", _core_builder(0.04, _CORE)),
    CatalogEntry("543Kx536K", "Agrobacterium tumefaciens", "Rhizobium sp.",
                 "NC_003064.2", "NC_000914.1", 542_868, 536_165,
                 48, 92, 0, "short-hit", _core_builder(0.05, _CORE)),
    CatalogEntry("1044Kx1073K", "Chlamydia trachomatis", "Chlamydia muridarum",
                 "CP000051.1", "AE002160.2", 1_044_459, 1_072_950,
                 88_353, 471_858, 14_021, "partial-homology",
                 _core_builder(0.45, _HEAVY)),
    CatalogEntry("3147Kx3283K", "Corynebacterium efficiens", "Corynebacterium glutamicum",
                 "BA000035.2", "BX927147.1", 3_147_090, 3_282_708,
                 4_226, 14_554, 891, "short-hit", _core_builder(0.006, _CORE)),
    CatalogEntry("5227Kx5229K", "Bacillus anthracis Ames", "Bacillus anthracis Sterne",
                 "AE016879.1", "AE017225.1", 5_227_293, 5_228_663,
                 5_220_960, 5_229_192, 2_430, "near-identical",
                 _homologous_builder(_NEAR_IDENTICAL)),
    CatalogEntry("7146Kx5227K", "Rhodopirellula baltica SH 1", "Bacillus anthracis Ames",
                 "NC_005027.1", "NC_003997.3", 7_145_576, 5_227_293,
                 172, 565, 18, "short-hit", _core_builder(0.0015, _CORE)),
    CatalogEntry("23012Kx24544K", "D. melanogaster chr 2L", "D. melanogaster chr 3L",
                 "NT_033779.4", "NT_037436.3", 23_011_544, 24_543_557,
                 9_063, 9_107, 6, "short-hit", _core_builder(0.0008, _CORE)),
    CatalogEntry("32799Kx46944K", "Pan troglodytes chr 22", "Homo sapiens chr 21",
                 "BA000046.3", "NC_000021.7", 32_799_110, 46_944_323,
                 27_206_434, 33_583_457, 1_371_283, "prefix-homology",
                 _prefix_homolog_builder(0.295, _DIVERGED)),
)

_BY_KEY = {entry.key: entry for entry in CATALOG}


def get_entry(key: str) -> CatalogEntry:
    """Look an entry up by its Table II key (e.g. ``"5227Kx5229K"``)."""
    try:
        return _BY_KEY[key]
    except KeyError:
        raise SequenceError(
            f"unknown catalog entry {key!r}; known: {sorted(_BY_KEY)}") from None
