"""DNA sequence container.

Sequences are stored as contiguous ``uint8`` NumPy arrays holding the
*encoded* alphabet (A=0, C=1, G=2, T=3, N=4).  Keeping the encoded form
contiguous lets every DP kernel compare characters with a single
vectorized ``==`` on integer arrays, which is the hot operation of the
whole system.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SequenceError

#: Canonical alphabet order.  ``N`` (unknown base) never matches anything,
#: including another ``N`` — mirroring how CUDAlign treats masked bases.
ALPHABET = "ACGTN"

_ENCODE = np.full(256, 255, dtype=np.uint8)
for _i, _c in enumerate(ALPHABET):
    _ENCODE[ord(_c)] = _i
    _ENCODE[ord(_c.lower())] = _i

_DECODE = np.frombuffer(ALPHABET.encode(), dtype=np.uint8)

#: Code for the never-matching unknown base.
N_CODE = ALPHABET.index("N")


def encode(text: str | bytes) -> np.ndarray:
    """Encode an ASCII DNA string into the internal uint8 code array.

    Raises :class:`SequenceError` on characters outside ``ACGTNacgtn``.
    """
    if isinstance(text, str):
        raw = np.frombuffer(text.encode("ascii", errors="strict"), dtype=np.uint8)
    else:
        raw = np.frombuffer(bytes(text), dtype=np.uint8)
    codes = _ENCODE[raw]
    if codes.size and codes.max(initial=0) == 255:
        bad = chr(int(raw[np.argmax(codes == 255)]))
        raise SequenceError(f"invalid DNA character {bad!r}")
    return codes


def decode(codes: np.ndarray) -> str:
    """Decode an internal code array back to an ASCII string."""
    codes = np.asarray(codes, dtype=np.uint8)
    if codes.size and codes.max(initial=0) >= len(ALPHABET):
        raise SequenceError("code array contains out-of-alphabet values")
    return _DECODE[codes].tobytes().decode("ascii")


@dataclass(frozen=True)
class Sequence:
    """An immutable DNA sequence with an optional name.

    ``codes`` uses the encoding of :data:`ALPHABET`; slicing returns views,
    never copies, so sub-problems over huge sequences stay O(1) in memory.
    """

    codes: np.ndarray
    name: str = "seq"
    accession: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        codes = np.ascontiguousarray(self.codes, dtype=np.uint8)
        if codes.ndim != 1:
            raise SequenceError("sequence codes must be one-dimensional")
        if codes.size == 0:
            raise SequenceError("empty sequences cannot be aligned")
        if codes.max(initial=0) >= len(ALPHABET):
            raise SequenceError("code array contains out-of-alphabet values")
        codes.setflags(write=False)
        object.__setattr__(self, "codes", codes)

    @classmethod
    def from_text(cls, text: str, name: str = "seq", accession: str = "") -> "Sequence":
        """Build a sequence from an ASCII string of bases."""
        return cls(encode(text), name=name, accession=accession)

    def __len__(self) -> int:
        return int(self.codes.size)

    def __getitem__(self, item: slice) -> "Sequence":
        if not isinstance(item, slice):
            raise TypeError("Sequence supports slice indexing only; use .codes for scalars")
        view = self.codes[item]
        if view.size == 0:
            raise SequenceError("slice produced an empty sequence")
        return Sequence(view, name=self.name, accession=self.accession)

    def __str__(self) -> str:
        return decode(self.codes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        head = decode(self.codes[:24])
        tail = "..." if len(self) > 24 else ""
        return f"Sequence({self.name!r}, {len(self)} bp, {head}{tail})"

    def reversed(self) -> "Sequence":
        """Return the reversed (not complemented) sequence.

        The reverse sweeps of Stages 2 and 4 operate on reversed
        subsequences; complementation is not involved in the algorithm.
        """
        return Sequence(np.ascontiguousarray(self.codes[::-1]), name=self.name + "(rev)",
                        accession=self.accession)
