"""Deterministic synthetic DNA generators.

The paper evaluates on real NCBI chromosomes (Table II), which are not
available offline and whose 10^15-cell matrices are not computable in
Python.  These generators produce scaled-down pairs that exercise the same
regimes:

* ``homologous_pair`` — a common ancestor mutated twice (SNPs + indels),
  giving megabase-style comparisons whose optimal local alignment spans
  almost the whole matrix (the 5M x 5M and human-chimp rows of Table III,
  where the alignment covers ~100% of the shorter sequence).
* ``embedded_core_pair`` — two unrelated sequences sharing one conserved
  core, giving the short-local-hit regime (the 162K x 172K and 7146K x
  5227K rows, whose alignments are tiny relative to the matrix).

All randomness flows through an explicit ``numpy.random.Generator`` so the
catalog (and therefore every test and benchmark) is reproducible bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SequenceError
from repro.sequences.sequence import Sequence


def random_dna(length: int, rng: np.random.Generator, name: str = "random") -> Sequence:
    """Uniform random DNA of ``length`` bases over ACGT."""
    if length <= 0:
        raise SequenceError("sequence length must be positive")
    return Sequence(rng.integers(0, 4, size=length, dtype=np.uint8), name=name)


@dataclass(frozen=True)
class MutationProfile:
    """Per-base mutation rates applied by :func:`mutate`.

    ``substitution`` is the per-base SNP probability; ``insertion`` and
    ``deletion`` are per-base probabilities of *opening* an indel whose
    length is geometric with mean ``indel_mean_len`` (gaps cluster, which
    is exactly why the affine model exists — Section II).
    """

    substitution: float = 0.02
    insertion: float = 0.001
    deletion: float = 0.001
    indel_mean_len: float = 3.0

    def __post_init__(self) -> None:
        for field_name in ("substitution", "insertion", "deletion"):
            value = getattr(self, field_name)
            if not 0.0 <= value < 1.0:
                raise SequenceError(f"{field_name} rate must be in [0, 1)")
        if self.indel_mean_len < 1.0:
            raise SequenceError("indel_mean_len must be >= 1")


def mutate(seq: Sequence, profile: MutationProfile, rng: np.random.Generator,
           name: str | None = None) -> Sequence:
    """Apply SNPs and clustered indels to ``seq``; fully vectorized."""
    codes = seq.codes.copy()
    n = codes.size

    # SNPs: pick positions, then shift each base by 1..3 mod 4 so the new
    # base is always different from the old one.
    snp_mask = rng.random(n) < profile.substitution
    shifts = rng.integers(1, 4, size=int(snp_mask.sum()), dtype=np.uint8)
    codes[snp_mask] = (codes[snp_mask] + shifts) % 4

    # Indels: choose opening positions, then splice.  Done with one pass of
    # np.split-free concatenation to stay O(n).
    p_gap = profile.insertion + profile.deletion
    if p_gap > 0.0:
        opens = np.flatnonzero(rng.random(n) < p_gap)
        if opens.size:
            is_ins = rng.random(opens.size) < (profile.insertion / p_gap)
            lengths = rng.geometric(1.0 / profile.indel_mean_len, size=opens.size)
            pieces: list[np.ndarray] = []
            cursor = 0
            for pos, ins, length in zip(opens.tolist(), is_ins.tolist(), lengths.tolist()):
                if pos < cursor:
                    continue  # swallowed by a previous deletion
                pieces.append(codes[cursor:pos])
                if ins:
                    pieces.append(rng.integers(0, 4, size=length, dtype=np.uint8))
                    cursor = pos
                else:
                    cursor = min(n, pos + length)
            pieces.append(codes[cursor:])
            codes = np.concatenate(pieces) if len(pieces) > 1 else pieces[0]

    if codes.size == 0:
        raise SequenceError("mutation profile deleted the entire sequence")
    return Sequence(codes, name=name or (seq.name + "(mut)"))


def homologous_pair(length: int, rng: np.random.Generator,
                    profile: MutationProfile | None = None,
                    names: tuple[str, str] = ("S0", "S1")) -> tuple[Sequence, Sequence]:
    """Two descendants of a common random ancestor of ``length`` bases.

    The optimal local alignment between them spans nearly the full matrix,
    reproducing the 'huge alignment' regime of the chromosome comparisons.
    """
    if profile is None:
        profile = MutationProfile()
    ancestor = random_dna(length, rng, name="ancestor")
    s0 = mutate(ancestor, profile, rng, name=names[0])
    s1 = mutate(ancestor, profile, rng, name=names[1])
    return s0, s1


def embedded_core_pair(length0: int, length1: int, core_length: int,
                       rng: np.random.Generator,
                       profile: MutationProfile | None = None,
                       names: tuple[str, str] = ("S0", "S1")) -> tuple[Sequence, Sequence]:
    """Unrelated sequences sharing one mutated conserved core.

    Reproduces the short-hit regime: the best local alignment is the core,
    a sliver of the DP matrix (e.g. the herpesvirus and Rhodopirellula
    rows of Table III).
    """
    if core_length <= 0 or core_length > min(length0, length1):
        raise SequenceError("core must be positive and fit inside both sequences")
    if profile is None:
        profile = MutationProfile(substitution=0.05, insertion=0.002, deletion=0.002)
    core = random_dna(core_length, rng, name="core")

    def build(total: int, name: str) -> Sequence:
        variant = mutate(core, profile, rng)
        flank_total = total - len(variant)
        if flank_total < 0:
            variant = variant[:total]
            flank_total = 0
        left = flank_total // 2
        right = flank_total - left
        parts = []
        if left:
            parts.append(rng.integers(0, 4, size=left, dtype=np.uint8))
        parts.append(variant.codes)
        if right:
            parts.append(rng.integers(0, 4, size=right, dtype=np.uint8))
        return Sequence(np.concatenate(parts) if len(parts) > 1 else parts[0], name=name)

    return build(length0, names[0]), build(length1, names[1])
