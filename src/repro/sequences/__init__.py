"""Sequence substrate: containers, FASTA I/O, synthetic generators, catalog."""

from repro.sequences.sequence import ALPHABET, N_CODE, Sequence, decode, encode
from repro.sequences.fasta import iter_fasta, read_fasta, write_fasta
from repro.sequences.synth import (
    MutationProfile,
    embedded_core_pair,
    homologous_pair,
    mutate,
    random_dna,
)
from repro.sequences.catalog import CATALOG, CatalogEntry, get_entry
from repro.sequences.bigseq import open_packed, pack_fasta

__all__ = [
    "open_packed", "pack_fasta",
    "ALPHABET", "N_CODE", "Sequence", "decode", "encode",
    "iter_fasta", "read_fasta", "write_fasta",
    "MutationProfile", "embedded_core_pair", "homologous_pair", "mutate", "random_dna",
    "CATALOG", "CatalogEntry", "get_entry",
]
