"""Memory-mapped sequence support for genuinely huge inputs.

The paper's inputs reach 47 MBP; chromosome-scale FASTA files are cheap,
but holding many of them (plus DP state) resident is not always.  This
module converts FASTA to a packed binary code file once and then opens it
as a read-only ``numpy.memmap``, so a :class:`repro.sequences.Sequence`
view over a multi-hundred-MBP chromosome costs no RAM until rows are
touched — and the row-sweep kernels only ever touch O(n) of it.

Format (``.seq``): magic ``CSEQ`` + u32 version + u64 length + raw uint8
codes.  The header keeps the mapping self-describing and guards against
feeding arbitrary files to the aligner.
"""

from __future__ import annotations

import os
import struct

import numpy as np

from repro.errors import SequenceError
from repro.sequences.fasta import iter_fasta
from repro.sequences.sequence import ALPHABET, Sequence

_MAGIC = b"CSEQ"
_VERSION = 1
_HEADER = struct.Struct("<4sIQ")


def pack_fasta(fasta_path: str | os.PathLike, out_path: str | os.PathLike,
               record: int = 0) -> int:
    """Convert one FASTA record to the packed binary code format.

    Returns the sequence length.  Streaming would be needed for inputs
    beyond RAM; FASTA parsing is already incremental per line, so peak
    memory here is one code array.
    """
    for index, seq in enumerate(iter_fasta(fasta_path)):
        if index == record:
            with open(out_path, "wb") as handle:
                handle.write(_HEADER.pack(_MAGIC, _VERSION, len(seq)))
                handle.write(seq.codes.tobytes())
            return len(seq)
    raise SequenceError(f"{fasta_path}: record {record} not found")


def open_packed(path: str | os.PathLike, name: str | None = None) -> Sequence:
    """Open a packed sequence as a zero-copy memory map."""
    size = os.path.getsize(path)
    if size < _HEADER.size:
        raise SequenceError(f"{path}: not a packed sequence (too small)")
    with open(path, "rb") as handle:
        magic, version, length = _HEADER.unpack(handle.read(_HEADER.size))
    if magic != _MAGIC:
        raise SequenceError(f"{path}: bad magic, not a packed sequence")
    if version != _VERSION:
        raise SequenceError(f"{path}: unsupported packed version {version}")
    if size != _HEADER.size + length:
        raise SequenceError(
            f"{path}: truncated ({size} bytes for length {length})")
    codes = np.memmap(path, dtype=np.uint8, mode="r",
                      offset=_HEADER.size, shape=(length,))
    if length and int(codes.max()) >= len(ALPHABET):
        raise SequenceError(f"{path}: contains out-of-alphabet codes")
    return Sequence(codes, name=name or os.path.basename(os.fspath(path)))
