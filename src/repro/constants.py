"""Shared numeric constants.

Scores are kept in ``int32`` throughout: the paper's largest comparison
(33 MBP x 47 MBP with match = +1) tops out below 2**31, and 4-byte cells
match the paper's special-row format (two 4-byte values per cell,
Section IV-B).
"""

from __future__ import annotations

import numpy as np

#: dtype used for every DP score array.
SCORE_DTYPE = np.int32

#: "Minus infinity" sentinel for the affine-gap matrices.  It is chosen so
#: that subtracting any realistic gap penalty can never wrap around the
#: int32 range (|NEG_INF| + 60e6 * 5 << 2**31).
NEG_INF = np.int32(-(2**30))

#: Bytes stored per special-row/column cell: one H value and one gap-matrix
#: value (F for rows, E for columns), 4 bytes each — Section IV-B.
SPECIAL_CELL_BYTES = 8

#: Crosspoint ``type`` values (Section IV-A).
TYPE_MATCH = 0   # match or mismatch: path crosses the cell diagonally / in H
TYPE_GAP_S0 = 1  # gap in S0 (horizontal move, E matrix)
TYPE_GAP_S1 = 2  # gap in S1 (vertical move, F matrix)


def swap_gap_type(state: int) -> int:
    """Transpose a boundary/crosspoint type: gap in S0 <-> gap in S1.

    Used wherever a sub-problem is solved on swapped sequences (balanced
    splitting, orthogonal column sweeps, multi-GPU slicing).
    """
    return state ^ 3 if state != TYPE_MATCH else TYPE_MATCH
