"""Dotplot of the alignment path (the paper's Figure 12).

Two renderers over the same binning: an ASCII grid (terminal friendly)
and an SVG polyline (file output), both plotting the optimal alignment's
trajectory through the DP matrix.  No plotting dependencies required.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AlignmentError
from repro.align.alignment import Alignment


def _path_points(alignment: Alignment, stride: int = 1) -> np.ndarray:
    """(K, 2) array of (i, j) samples along the path, endpoints included."""
    ops = alignment.ops
    di = (ops != 1).astype(np.int64)
    dj = (ops != 2).astype(np.int64)
    ii = np.concatenate(([alignment.i0], alignment.i0 + np.cumsum(di)))
    jj = np.concatenate(([alignment.j0], alignment.j0 + np.cumsum(dj)))
    pts = np.stack([ii, jj], axis=1)
    if stride > 1:
        keep = np.arange(0, pts.shape[0], stride)
        if keep[-1] != pts.shape[0] - 1:
            keep = np.concatenate((keep, [pts.shape[0] - 1]))
        pts = pts[keep]
    return pts


def ascii_dotplot(alignment: Alignment, m: int, n: int, size: int = 48) -> str:
    """An ASCII dotplot: '*' cells are crossed by the alignment path.

    The full m x n matrix is binned to at most ``size`` columns (rows scale
    by the aspect ratio), like Figure 12's chromosome-scale overview.
    """
    if size < 2:
        raise AlignmentError("dotplot size must be at least 2")
    if m <= 0 or n <= 0:
        raise AlignmentError("matrix dimensions must be positive")
    cols = min(size, n)
    rows = max(2, min(size, m, round(cols * m / n) or 2))
    grid = np.full((rows, cols), ord("."), dtype=np.uint8)
    pts = _path_points(alignment)
    r = np.minimum((pts[:, 0] * rows) // max(1, m), rows - 1)
    c = np.minimum((pts[:, 1] * cols) // max(1, n), cols - 1)
    grid[r, c] = ord("*")
    header = f"S1 (1..{n}) ->"
    body = "\n".join(grid[k].tobytes().decode() for k in range(rows))
    return f"{header}\n{body}"


def svg_dotplot(alignment: Alignment, m: int, n: int, *, width: int = 640,
                height: int = 640, stride: int | None = None) -> str:
    """An SVG rendering of the alignment path (Figure 12 analogue)."""
    if m <= 0 or n <= 0:
        raise AlignmentError("matrix dimensions must be positive")
    if stride is None:
        stride = max(1, len(alignment) // 4096)
    pts = _path_points(alignment, stride=stride)
    xs = pts[:, 1] / n * (width - 20) + 10
    ys = pts[:, 0] / m * (height - 20) + 10
    coords = " ".join(f"{x:.1f},{y:.1f}" for x, y in zip(xs, ys))
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">\n'
        f'  <rect width="{width}" height="{height}" fill="white" '
        f'stroke="black"/>\n'
        f'  <text x="{width // 2}" y="{height - 2}" font-size="10" '
        f'text-anchor="middle">S1 (1..{n})</text>\n'
        f'  <text x="10" y="{height // 2}" font-size="10" '
        f'transform="rotate(-90 10 {height // 2})" '
        f'text-anchor="middle">S0 (1..{m})</text>\n'
        f'  <polyline points="{coords}" fill="none" stroke="crimson" '
        f'stroke-width="1.5"/>\n'
        f"</svg>\n"
    )
