"""Stage-6 visualization: text rendering and dotplots."""

from repro.viz.dotplot import ascii_dotplot, svg_dotplot
from repro.viz.text_render import render_alignment_text

__all__ = ["ascii_dotplot", "svg_dotplot", "render_alignment_text"]
