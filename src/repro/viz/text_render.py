"""Textual alignment rendering (the Stage-6 text output).

Renders the classic three-row blocks::

    S0      1 ACTTCC--AGA
              |.||||  ||
    S1      1 AGTTCCGGAGG

with coordinates in DP-matrix convention (first consumed base of each
block, 1-based like the paper's tables).
"""

from __future__ import annotations

from repro.errors import AlignmentError
from repro.align.alignment import Alignment
from repro.sequences.sequence import Sequence


def render_alignment_text(alignment: Alignment, s0: Sequence, s1: Sequence,
                          width: int = 60) -> str:
    """Full textual rendering, wrapped at ``width`` columns."""
    if width < 1:
        raise AlignmentError("render width must be positive")
    top, marker, bottom = alignment.render_rows(s0, s1)
    n = len(top)
    label0 = (s0.name or "S0")[:10]
    label1 = (s1.name or "S1")[:10]
    pad = max(len(label0), len(label1))
    coord_width = len(str(max(alignment.end)))
    lines: list[str] = [
        f"Alignment of {s0.name} x {s1.name}",
        f"start=({alignment.i0}, {alignment.j0}) "
        f"end={alignment.end} length={len(alignment)}",
        "",
    ]
    i, j = alignment.i0, alignment.j0
    for block in range(0, n, width):
        t = top[block:block + width]
        mk = marker[block:block + width]
        b = bottom[block:block + width]
        lines.append(f"{label0:<{pad}} {i + 1:>{coord_width}} {t}")
        lines.append(f"{'':<{pad}} {'':>{coord_width}} {mk}")
        lines.append(f"{label1:<{pad}} {j + 1:>{coord_width}} {b}")
        lines.append("")
        i += sum(1 for c in t if c != "-")
        j += sum(1 for c in b if c != "-")
    return "\n".join(lines)
