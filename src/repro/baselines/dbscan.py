"""Database-scan baseline (the CUDASW++ / SW-CUDA work regime of Table I).

Most GPU Smith-Waterman systems before CUDAlign solved a different
problem: scoring one *query* against millions of short *database*
subjects (inter-task parallelism), which is why their maximum query sizes
in Table I are so small.  This module implements that regime with the
same vectorization idea those systems use on the GPU: all subjects are
padded into one (batch x width) array and a single row sweep advances
every subject's DP simultaneously — one thread per subject, here one
SIMD lane per subject.

The contrast with the pipeline is the point of Table I: a database scan
cannot produce a 33-MBP alignment, and CUDAlign cannot be beaten by it on
one huge pair.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import NEG_INF, SCORE_DTYPE
from repro.errors import ConfigError
from repro.align.scoring import ScoringScheme
from repro.sequences.sequence import N_CODE, Sequence


@dataclass(frozen=True)
class ScanHit:
    """One database subject's best local score."""

    index: int
    name: str
    score: int


@dataclass(frozen=True)
class ScanResult:
    """Ranked database-scan outcome."""

    hits: tuple[ScanHit, ...]
    cells: int
    wall_seconds: float

    @property
    def best(self) -> ScanHit:
        return self.hits[0]

    @property
    def mcups(self) -> float:
        return self.cells / max(self.wall_seconds, 1e-12) / 1e6


def _pad_batch(subjects: list[Sequence]) -> tuple[np.ndarray, np.ndarray]:
    """Pack subjects into a (batch, width) code array padded with N.

    N never matches, so padding cells only ever lose score and cannot
    create spurious hits; each subject's true length masks its columns.
    """
    width = max(len(s) for s in subjects)
    batch = np.full((len(subjects), width), N_CODE, dtype=np.uint8)
    lengths = np.empty(len(subjects), dtype=np.int64)
    for k, subject in enumerate(subjects):
        batch[k, :len(subject)] = subject.codes
        lengths[k] = len(subject)
    return batch, lengths


def scan_database(query: Sequence, subjects: list[Sequence],
                  scheme: ScoringScheme, top: int = 10) -> ScanResult:
    """Score ``query`` against every subject; returns the top hits.

    The DP state is (batch, width)-shaped; each query base advances all
    subjects at once.  The in-row E recurrence uses the same
    ``maximum.accumulate`` scan as the pairwise kernel, applied along the
    width axis of the whole batch.
    """
    import time
    if not subjects:
        raise ConfigError("the database is empty")
    if top < 1:
        raise ConfigError("top must be positive")
    tick = time.perf_counter()
    batch, lengths = _pad_batch(subjects)
    nsub, width = batch.shape
    gext = SCORE_DTYPE(scheme.gap_ext)
    gfirst = SCORE_DTYPE(scheme.gap_first)
    ext_ramp = np.arange(width + 1, dtype=SCORE_DTYPE) * gext

    # Substitution lookup per query base against the whole batch.
    H = np.zeros((nsub, width + 1), dtype=SCORE_DTYPE)
    E = np.full((nsub, width + 1), NEG_INF, dtype=SCORE_DTYPE)
    F = np.full((nsub, width + 1), NEG_INF, dtype=SCORE_DTYPE)
    best = np.zeros(nsub, dtype=SCORE_DTYPE)
    X = np.empty((nsub, width + 1), dtype=SCORE_DTYPE)
    T = np.empty((nsub, width + 1), dtype=SCORE_DTYPE)

    match = SCORE_DTYPE(scheme.match)
    mismatch = SCORE_DTYPE(scheme.mismatch)
    for code in query.codes:
        np.maximum(F - gext, H - gfirst, out=F)
        if code == N_CODE:
            sub = np.full((nsub, width), mismatch, dtype=SCORE_DTYPE)
        else:
            sub = np.where((batch == code), match, mismatch)
        np.add(H[:, :-1], sub, out=X[:, 1:])
        np.maximum(X[:, 1:], F[:, 1:], out=X[:, 1:])
        X[:, 0] = 0
        F[:, 0] = NEG_INF
        np.maximum(X, 0, out=X)
        np.add(X, ext_ramp, out=T)
        np.maximum.accumulate(T, axis=1, out=T)
        E[:, 1:] = T[:, :-1]
        E[:, 1:] -= gfirst + ext_ramp[:-1]
        E[:, 0] = NEG_INF
        np.maximum(X, E, out=H)
        np.maximum(best, H.max(axis=1), out=best)

    wall = time.perf_counter() - tick
    order = np.argsort(-best.astype(np.int64), kind="stable")[:top]
    hits = tuple(ScanHit(int(k), subjects[int(k)].name, int(best[int(k)]))
                 for k in order)
    cells = int(len(query) * lengths.sum())
    return ScanResult(hits=hits, cells=cells, wall_seconds=wall)
