"""Related-work context (the paper's Table I).

The GPU Smith-Waterman landscape the paper positions itself against:
whether each system retrieves the alignment, its maximum query size, its
reported GCUPS, and the board used.  Exposed as structured data so the
Table I benchmark can print the table and annotate it with this
reproduction's own measured rates.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GpuSWEntry:
    """One row of Table I."""

    name: str
    reference: str
    provides_alignment: bool
    max_query: int
    gcups: float
    gpu: str


TABLE_I: tuple[GpuSWEntry, ...] = (
    GpuSWEntry("DASW", "[6]", True, 16_384, 0.2, "7800 GTX"),
    GpuSWEntry("Weiguo Liu", "[7]", False, 4_095, 0.6, "7800 GTX"),
    GpuSWEntry("SW-CUDA", "[8]", False, 567, 3.4, "8800 GTX"),
    GpuSWEntry("CUDASW++ 1.0", "[9]", False, 5_478, 16.1, "GTX 295"),
    GpuSWEntry("Ligowski", "[10]", False, 1_000, 14.5, "9800 GX2"),
    GpuSWEntry("CUDASW++ 2.0", "[11]", False, 5_478, 29.7, "GTX 295"),
    GpuSWEntry("CUDA-SSCA#1", "[12]", True, 1_024, 1.0, "GTX 295"),
    GpuSWEntry("CUDAlign 1.0", "[13]", False, 32_799_110, 20.3, "GTX 285"),
)


def format_table_i(extra: GpuSWEntry | None = None) -> str:
    """Render Table I, optionally appending this reproduction's row."""
    rows = list(TABLE_I)
    if extra is not None:
        rows.append(extra)
    header = f"{'Paper':<16} {'Align':<6} {'Max. Query':>12} {'GCUPS':>7}  GPU"
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.name:<16} {'yes' if row.provides_alignment else 'no':<6} "
            f"{row.max_query:>12,} {row.gcups:>7.1f}  {row.gpu}")
    return "\n".join(lines)
