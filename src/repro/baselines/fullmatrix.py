"""Naive quadratic-space baseline.

The memory wall that motivates the whole paper: retrieving an alignment by
storing the complete DP matrices needs O(mn) bytes — "to compare two 30
MBP sequences, we would need at least 3.6 PB" (Section I).  This module
wraps the exact full-matrix aligner with a memory guard and exposes the
accounting used by the examples and DESIGN narrative.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.align.alignment import Alignment
from repro.align.full_matrix import local_align
from repro.align.scoring import ScoringScheme
from repro.sequences.sequence import Sequence

#: Bytes per DP cell when H, E and F are materialized as int32.
BYTES_PER_CELL = 12


def quadratic_memory_bytes(m: int, n: int) -> int:
    """Memory demand of the naive approach for an ``m x n`` comparison."""
    if m <= 0 or n <= 0:
        raise ConfigError("matrix dimensions must be positive")
    return (m + 1) * (n + 1) * BYTES_PER_CELL


@dataclass(frozen=True)
class FullMatrixResult:
    alignment: Alignment
    score: int
    memory_bytes: int


def full_matrix_align(s0: Sequence, s1: Sequence, scheme: ScoringScheme,
                      *, memory_limit_bytes: int = 4 * 10**9
                      ) -> FullMatrixResult:
    """Exact local alignment with the quadratic-space method.

    Refuses comparisons whose matrices exceed ``memory_limit_bytes`` —
    which is precisely why CUDAlign 2.0 exists.
    """
    need = quadratic_memory_bytes(len(s0), len(s1))
    if need > memory_limit_bytes:
        raise MemoryError(
            f"full-matrix alignment of {len(s0)} x {len(s1)} needs "
            f"{need / 1e9:.1f} GB (> limit {memory_limit_bytes / 1e9:.1f} GB); "
            f"use the linear-space pipeline instead")
    path, score = local_align(s0, s1, scheme)
    return FullMatrixResult(alignment=path, score=score, memory_bytes=need)
