"""Z-align cluster baseline (Boukerche et al. [19], the paper's Table VI).

Z-align is the CPU-cluster comparator: an exact pairwise aligner
distributing the DP matrix over ``P`` processors as column strips with
wavefront (band-by-band) boundary exchange.  We reproduce it with:

* a **real strip-parallel computation** over :mod:`repro.align.tiled` —
  numerically identical to Smith-Waterman, structured exactly as the
  cluster would execute it (the tests assert score equality and count the
  exchanged boundary traffic);
* a **calibrated time model** for the paper-scale rows of Table VI.  The
  single-core rate (~35 MCUPS) is implied by Z-align's own published
  numbers (3M/1-core = 294,000 s); parallel runs pay a wavefront
  fill/drain plus a per-step boundary exchange and a measured parallel
  efficiency (Table VI's 64-core rows imply ~0.55-0.65).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.align.scoring import ScoringScheme
from repro.align.tiled import TiledSweepResult, tiled_local_sweep
from repro.sequences.sequence import Sequence


@dataclass(frozen=True)
class ZAlignCluster:
    """A simulated Z-align deployment.

    ``mcups_per_core`` and ``parallel_efficiency`` are calibrated against
    Table VI (see EXPERIMENTS.md); ``band_rows`` and ``step_latency_s``
    shape the wavefront's communication cost.
    """

    cores: int = 64
    mcups_per_core: float = 35.1
    parallel_efficiency: float = 0.60
    band_rows: int = 2048
    step_latency_s: float = 0.05
    serial_startup_cells: float = 1.1e10  # rate ramp of the 1-core rows

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ConfigError("cluster needs at least one core")
        if not 0 < self.parallel_efficiency <= 1:
            raise ConfigError("parallel efficiency must be in (0, 1]")
        if self.mcups_per_core <= 0 or self.band_rows <= 0:
            raise ConfigError("cluster constants must be positive")

    # ------------------------------------------------------------------
    # real computation (strip-parallel wavefront)
    # ------------------------------------------------------------------
    def align_score(self, s0: Sequence, s1: Sequence,
                    scheme: ScoringScheme) -> tuple[int, TiledSweepResult]:
        """Run the strip-decomposed sweep; returns (best score, stats)."""
        strip_cols = max(1, len(s1) // self.cores)
        band = min(self.band_rows, len(s0))
        stats = tiled_local_sweep(s0.codes, s1.codes, scheme,
                                  band_rows=band, strip_cols=strip_cols)
        return stats.best, stats

    # ------------------------------------------------------------------
    # calibrated paper-scale time model
    # ------------------------------------------------------------------
    def modeled_seconds(self, m: int, n: int) -> float:
        """Wall-clock model for an ``m x n`` comparison on this cluster."""
        if m <= 0 or n <= 0:
            raise ConfigError("matrix dimensions must be positive")
        cells = m * n
        rate = self.mcups_per_core * 1e6
        if self.cores == 1:
            # The published 1-core rows show the rate ramping with size.
            efficiency = cells / (cells + self.serial_startup_cells)
            return cells / (rate * efficiency)
        compute = cells / (rate * self.cores * self.parallel_efficiency)
        steps = m / self.band_rows + self.cores - 1
        return compute + steps * self.step_latency_s
