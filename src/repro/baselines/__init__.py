"""Baselines: the Z-align cluster, the quadratic-space aligner, Table I."""

from repro.baselines.fullmatrix import (
    BYTES_PER_CELL,
    FullMatrixResult,
    full_matrix_align,
    quadratic_memory_bytes,
)
from repro.baselines.related_work import TABLE_I, GpuSWEntry, format_table_i
from repro.baselines.zalign import ZAlignCluster
from repro.baselines.dbscan import ScanHit, ScanResult, scan_database

__all__ = [
    "ScanHit", "ScanResult", "scan_database",
    "BYTES_PER_CELL", "FullMatrixResult", "full_matrix_align",
    "quadratic_memory_bytes",
    "TABLE_I", "GpuSWEntry", "format_table_i",
    "ZAlignCluster",
]
