"""Command-line interface.

``cudalign`` mirrors the original tool's workflow:

* ``cudalign align A.fasta B.fasta`` — run the six-stage pipeline and
  report the score, positions, per-stage times and statistics;
* ``cudalign view alignment.bin A.fasta B.fasta`` — Stage 6: reconstruct
  and render a saved binary alignment;
* ``cudalign catalog`` — list the synthetic Table-II catalog;
* ``cudalign synth`` — generate a synthetic pair as FASTA files;
* ``cudalign batch jobs.json --root DIR`` — run a file of alignment jobs
  through the job service (queue, worker pool, result cache, retries);
* ``cudalign jobs --root DIR`` — inspect a service root's queue journal
  (``jobs cancel JOB_ID`` journals a cancellation);
* ``cudalign serve --root DIR`` — the HTTP gateway: job submission,
  server-sent-event progress streams, per-tenant quotas, backpressure;
* ``cudalign fsck DIR`` — verify every checksummed artifact under a run
  or service directory, optionally quarantining/repairing damage.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ConfigError, StorageError
from repro.align.kernels import serial_kernel_names
from repro.align.scoring import ScoringScheme
from repro.core.config import PipelineConfig, small_config
from repro.core.pipeline import CUDAlign
from repro.sequences.catalog import CATALOG, get_entry
from repro.sequences.fasta import read_fasta, write_fasta
from repro.storage.binary_alignment import (BinaryAlignment,
                                            read_binary_alignment,
                                            write_binary_alignment)
from repro.telemetry import JsonLinesSink, ProgressRenderer
from repro.viz.dotplot import svg_dotplot
from repro.viz.text_render import render_alignment_text


def _add_scoring_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--match", type=int, default=1)
    parser.add_argument("--mismatch", type=int, default=-3)
    parser.add_argument("--gap-first", type=int, default=5)
    parser.add_argument("--gap-ext", type=int, default=2)


def _scheme(args: argparse.Namespace) -> ScoringScheme:
    return ScoringScheme(match=args.match, mismatch=args.mismatch,
                         gap_first=args.gap_first, gap_ext=args.gap_ext)


def _add_supervision_args(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("supervision")
    group.add_argument("--stall-seconds", type=float, default=None,
                       help="kill attempts whose progress heartbeat stops "
                            "advancing for this long (requeued without "
                            "charging retries; default: disabled)")
    group.add_argument("--max-rss-mb", type=int, default=None,
                       help="per-attempt resident-set ceiling in MiB "
                            "(over-budget attempts fail as 'memory limit "
                            "exceeded'; Linux only, default: disabled)")
    group.add_argument("--crash-loop-threshold", type=int, default=3,
                       help="abnormal attempt endings (crash/stall) before "
                            "a job is quarantined")
    group.add_argument("--retry-backoff-base", type=float, default=0.05,
                       metavar="SECONDS",
                       help="base of the exponential retry backoff "
                            "(0 disables backoff: hot requeue)")
    group.add_argument("--disk-low-water-mb", type=int, default=None,
                       help="pause dispatch + evict cache when the root's "
                            "filesystem has less than this many MiB free")
    group.add_argument("--disk-high-water-mb", type=int, default=None,
                       help="resume dispatch above this free-space mark "
                            "(default: twice the low-water mark)")


def _add_batching_args(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("micro-batching")
    group.add_argument("--batch-max-jobs", type=int, default=16,
                       help="most queued small jobs coalesced into one "
                            "fused worker dispatch (default: 16; "
                            "0 disables coalescing)")
    group.add_argument("--batch-max-cells", type=int, default=1 << 18,
                       help="a job joins a coalesced dispatch only when its "
                            "DP matrix is at or under this many cells "
                            "(default: 262144)")


def _batching(args: argparse.Namespace):
    """Build the BatchConfig shared by ``batch`` and ``serve``."""
    from repro.service import BatchConfig

    if args.batch_max_jobs == 0:
        return BatchConfig(enabled=False)
    return BatchConfig(max_jobs=args.batch_max_jobs,
                       max_cells=args.batch_max_cells)


def cmd_align(args: argparse.Namespace) -> int:
    s0 = read_fasta(args.seq0)
    s1 = read_fasta(args.seq1)
    if args.paper_grids:
        config = PipelineConfig(scheme=_scheme(args), sra_bytes=args.sra_bytes,
                                max_partition_size=args.max_partition_size,
                                executor=args.executor, kernel=args.kernel,
                                workers=args.workers,
                                checkpoint_every_rows=args.checkpoint_every)
    else:
        config = small_config(
            block_rows=args.block_rows, n=len(s1), sra_rows=args.sra_rows,
            max_partition_size=args.max_partition_size,
            scheme=_scheme(args), executor=args.executor,
            kernel=args.kernel, workers=args.workers,
            checkpoint_every_rows=args.checkpoint_every)

    observer = ProgressRenderer(sys.stderr) if args.progress else None
    trace_sink = JsonLinesSink(args.trace) if args.trace else None
    sinks = (trace_sink,) if trace_sink is not None else ()
    try:
        result = CUDAlign(config, workdir=args.workdir, observer=observer,
                          sinks=sinks).run(s0, s1)
    finally:
        if trace_sink is not None:
            trace_sink.close()
    out = sys.stdout
    print(f"comparison: {len(s0):,} x {len(s1):,} "
          f"({result.matrix_cells:.2e} cells)", file=out)
    print(f"best score: {result.best_score}", file=out)
    if result.alignment is None:
        print("no positive-score alignment exists", file=out)
        return 0
    print(f"start: {result.alignment.start}  end: {result.alignment.end}",
          file=out)
    print(f"length: {result.alignment_length:,}  "
          f"gaps: {result.gap_columns:,}", file=out)
    comp = result.composition
    print(f"matches: {comp.matches:,}  mismatches: {comp.mismatches:,}  "
          f"gap opens: {comp.gap_opens:,}  gap exts: {comp.gap_extensions:,}",
          file=out)
    print("stage walls (s): " + "  ".join(
        f"{k}:{v:.3f}" for k, v in result.stage_wall_seconds().items()),
        file=out)
    print(f"crosspoints: {result.crosspoint_counts}", file=out)
    if args.trace:
        print(f"trace written to {args.trace}", file=out)
    if args.metrics:
        print("metrics:", file=out)
        for name, value in sorted((result.metrics or {}).items()):
            print(f"  {name}: {value}", file=out)
    if args.binary_out:
        write_binary_alignment(args.binary_out, result.binary)
        print(f"binary alignment written to {args.binary_out} "
              f"({result.binary.nbytes} bytes)", file=out)
    if args.svg_out and result.alignment is not None:
        with open(args.svg_out, "w") as handle:
            handle.write(svg_dotplot(result.alignment, len(s0), len(s1)))
        print(f"dotplot written to {args.svg_out}", file=out)
    return 0


def cmd_view(args: argparse.Namespace) -> int:
    from repro.integrity import MAGIC

    with open(args.binary, "rb") as handle:
        head = handle.read(len(MAGIC))
    if head == MAGIC:
        binary = read_binary_alignment(args.binary)
    else:
        # Pre-integrity file: the bare wire format, unchecksummed.
        with open(args.binary, "rb") as handle:
            binary = BinaryAlignment.decode(handle.read())
    s0 = read_fasta(args.seq0)
    s1 = read_fasta(args.seq1)
    alignment = binary.reconstruct()
    print(render_alignment_text(alignment, s0, s1, width=args.width))
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.report import ReportOptions, generate_report
    report = generate_report(ReportOptions(scale=args.scale, seed=args.seed,
                                           sra_rows=args.sra_rows))
    print(report)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report)
    return 0


def cmd_catalog(args: argparse.Namespace) -> int:
    print(f"{'key':<16} {'paper sizes':>24} {'scaled':>16} "
          f"{'paper score':>12}  regime")
    for entry in CATALOG:
        m, n = entry.scaled_sizes(args.scale)
        print(f"{entry.key:<16} "
              f"{entry.paper_size0:>11,} x{entry.paper_size1:>11,} "
              f"{m:>7,} x{n:>7,} {entry.paper_score:>12,}  {entry.regime}")
    return 0


def cmd_scan(args: argparse.Namespace) -> int:
    from repro.baselines.dbscan import scan_database
    from repro.sequences.fasta import iter_fasta
    query = read_fasta(args.query)
    subjects = list(iter_fasta(args.database))
    result = scan_database(query, subjects, _scheme(args), top=args.top)
    print(f"query {query.name} ({len(query):,} bp) vs {len(subjects)} "
          f"subjects ({result.cells:,} cells, {result.mcups:,.0f} MCUPS)")
    for hit in result.hits:
        print(f"  {hit.score:>8,}  {hit.name}")
    return 0


def cmd_pack(args: argparse.Namespace) -> int:
    from repro.sequences.bigseq import pack_fasta
    length = pack_fasta(args.fasta, args.out, record=args.record)
    print(f"packed {length:,} bp into {args.out} (open with "
          f"repro.sequences.open_packed)")
    return 0


def _supervisor(args: argparse.Namespace):
    """Build the SupervisorConfig shared by ``batch`` and ``serve``."""
    from repro.service import RetryBackoff, SupervisorConfig

    backoff = None
    if args.retry_backoff_base > 0:
        backoff = RetryBackoff(base_seconds=args.retry_backoff_base)
    return SupervisorConfig(
        stall_seconds=args.stall_seconds,
        max_rss_bytes=(args.max_rss_mb * 1024 * 1024
                       if args.max_rss_mb else None),
        crash_loop_threshold=args.crash_loop_threshold,
        backoff=backoff,
        disk_low_water_bytes=(args.disk_low_water_mb * 1024 * 1024
                              if args.disk_low_water_mb else None),
        disk_high_water_bytes=(args.disk_high_water_mb * 1024 * 1024
                               if args.disk_high_water_mb else None))


def cmd_batch(args: argparse.Namespace) -> int:
    from repro.report import render_batch_table
    from repro.service import AlignmentService, load_specs
    from repro.telemetry import JsonLinesSink

    if args.specs is None and not args.resume:
        print("error: give a spec file, or --resume to continue a journal",
              file=sys.stderr)
        return 2
    trace_sink = JsonLinesSink(args.trace) if args.trace else None
    sinks = (trace_sink,) if trace_sink is not None else ()
    service = AlignmentService(args.root, workers=args.workers,
                               resume=args.resume, sinks=sinks,
                               supervisor=_supervisor(args),
                               batching=_batching(args))
    try:
        if args.specs is not None:
            service.submit_many(load_specs(args.specs))
        summary = service.run(max_jobs=args.max_jobs)
    finally:
        service.close()
    print(render_batch_table(service.queue.records(), summary), end="")
    print(f"service manifest: {args.root}/manifest.json")
    if summary["remaining"]:
        print(f"{summary['remaining']} job(s) still pending — continue with "
              f"`batch --resume --root {args.root}`")
    if summary["quarantined"]:
        print(f"{summary['quarantined']} job(s) quarantined — triage with "
              f"`jobs diagnose JOB_ID --root {args.root}`")
    if summary["failed"] or summary["quarantined"]:
        return 1
    return 0


def cmd_jobs(args: argparse.Namespace) -> int:
    import os

    from repro.report import render_jobs_table
    from repro.service import JOURNAL_NAME, JobQueue, replay_journal

    journal = os.path.join(args.root, JOURNAL_NAME)
    if args.action == "cancel":
        if not args.job_id:
            print("error: `jobs cancel` needs a job id", file=sys.stderr)
            return 2
        queue = JobQueue.recover(journal)
        if len(queue) == 0:
            print(f"no journal at {journal}", file=sys.stderr)
            return 1
        record = queue.find(args.job_id)
        if record is None:
            print(f"error: unknown job {args.job_id!r}", file=sys.stderr)
            return 2
        if record.done:
            print(f"error: job {args.job_id!r} is already {record.state}",
                  file=sys.stderr)
            return 1
        queue.mark_cancelled(record, reason="cancelled via CLI")
        print(f"cancelled {args.job_id} (journaled; a live gateway is "
              f"cancelled through DELETE /v1/jobs/{args.job_id})")
        return 0
    if args.action == "diagnose":
        if not args.job_id:
            print("error: `jobs diagnose` needs a job id", file=sys.stderr)
            return 2
        return _diagnose(args.root, args.job_id)
    records, events, corrupt = replay_journal(journal)
    if not events:
        print(f"no journal at {journal}", file=sys.stderr)
        return 1
    print(render_jobs_table(records, events), end="")
    if corrupt:
        print(f"warning: {corrupt} corrupt journal record(s) skipped "
              f"(run `fsck {args.root}` for details)", file=sys.stderr)
    return 0


def _diagnose(root: str, job_id: str) -> int:
    """Render a quarantined job's diagnostics bundle for triage."""
    import os

    from repro.service import read_diagnostics

    workdir = os.path.join(root, "jobs", job_id)
    try:
        bundle = read_diagnostics(workdir)
    except FileNotFoundError:
        print(f"error: no diagnostics bundle under {workdir} — only "
              f"quarantined jobs leave one (see `jobs --root {root}`)",
              file=sys.stderr)
        return 1
    print(f"job {bundle['job_id']}: {bundle['state']}")
    print(f"  error:         {bundle.get('error')}")
    print(f"  attempts:      {bundle.get('attempts')} "
          f"(failures: {bundle.get('failures')}, "
          f"crashes: {bundle.get('crashes')}, "
          f"interruptions: {bundle.get('interruptions')})")
    print(f"  checkpoint:    row {bundle.get('checkpoint_row')}")
    print(f"  workdir:       {bundle.get('workdir')}")
    print(f"  manifest:      {bundle.get('manifest')}")
    log = bundle.get("attempt_log") or []
    if log:
        print("  attempt log (most recent last):")
        for entry in log:
            beat = entry.get("last_heartbeat")
            at = (f" at {beat[0]} {beat[1]:.3f}" if beat else "")
            print(f"    #{entry.get('attempt')} [{entry.get('kind')}]"
                  f"{at}: {entry.get('error')}")
        last_tb = next((e.get("traceback") for e in reversed(log)
                        if e.get("traceback")), None)
        if last_tb:
            print("  last traceback:")
            for line in last_tb.rstrip().splitlines():
                print(f"    {line}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.gateway import Gateway, GatewayPolicy, ServiceDispatcher
    from repro.gateway import serve as serve_gateway
    from repro.telemetry import JsonLinesSink

    trace_sink = JsonLinesSink(args.trace) if args.trace else None
    sinks = (trace_sink,) if trace_sink is not None else ()
    dispatcher = ServiceDispatcher(args.root, workers=args.workers,
                                   resume=args.resume, sinks=sinks,
                                   supervisor=_supervisor(args),
                                   batching=_batching(args))
    policy = GatewayPolicy(
        max_active_per_tenant=args.tenant_max_active,
        rate_per_tenant=args.tenant_rate,
        burst_per_tenant=args.tenant_burst,
        max_queue_depth=args.max_queue_depth)
    gateway = Gateway(dispatcher, policy, host=args.host, port=args.port,
                      max_body=args.max_body)

    def on_start(gw: Gateway) -> None:
        print(f"gateway listening on http://{gw.host}:{gw.port} "
              f"(root: {args.root}, workers: {args.workers})", flush=True)
        if args.port_file:
            with open(args.port_file, "w", encoding="utf-8") as handle:
                handle.write(f"{gw.port}\n")

    async def _main() -> None:
        shutdown = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(signum, shutdown.set)
        await serve_gateway(gateway, shutdown, on_start)

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:  # pragma: no cover - signal handler races
        pass
    finally:
        dispatcher.close()
    print("gateway stopped; journal + cache live under "
          f"{args.root} (resume with `serve --resume`)")
    return 0


def cmd_fsck(args: argparse.Namespace) -> int:
    import json

    from repro.integrity import fsck_tree

    report = fsck_tree(args.root, repair=args.repair)
    if args.json:
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        print(f"fsck {report.root}: {report.scanned} artifact(s) scanned, "
              f"{report.verified} verified, {len(report.findings)} "
              f"problem(s), {len(report.repaired)} repaired")
        for finding in report.findings:
            print(f"  [{finding.problem}] {finding.path}"
                  + (f" ({finding.kind})" if finding.kind else ""))
            print(f"      {finding.detail}")
        for path in report.repaired:
            print(f"  repaired: {path}")
    return 0 if report.clean else 1


def cmd_synth(args: argparse.Namespace) -> int:
    entry = get_entry(args.key)
    s0, s1 = entry.build(scale=args.scale, seed=args.seed)
    write_fasta(args.out0, s0)
    write_fasta(args.out1, s1)
    print(f"wrote {args.out0} ({len(s0):,} bp) and {args.out1} ({len(s1):,} bp)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="cudalign",
        description="CUDAlign 2.0 reproduction: huge-sequence Smith-Waterman "
                    "alignment in linear space")
    sub = parser.add_subparsers(dest="command", required=True)

    p_align = sub.add_parser("align", help="run the six-stage pipeline")
    p_align.add_argument("seq0")
    p_align.add_argument("seq1")
    _add_scoring_args(p_align)
    p_align.add_argument("--block-rows", type=int, default=64,
                         help="special-row granularity (alpha * T)")
    p_align.add_argument("--sra-rows", type=int, default=8,
                         help="SRA budget in special rows")
    p_align.add_argument("--sra-bytes", type=int, default=50 * 10**9,
                         help="raw SRA byte budget (with --paper-grids)")
    p_align.add_argument("--max-partition-size", type=int, default=32)
    p_align.add_argument("--executor", choices=("serial", "wavefront"),
                         default="serial",
                         help="execution model: the in-process sweep or the "
                              "process-pool wavefront tile grid "
                              "(bit-identical; size the pool with --workers)")
    p_align.add_argument("--kernel", choices=serial_kernel_names(),
                         default="rowscan",
                         help="in-process sweep kernel backend "
                              "(bit-identical; rowscan is the per-row "
                              "reference, diagonal the anti-diagonal "
                              "vectorization)")
    p_align.add_argument("--workers", type=int, default=1)
    p_align.add_argument("--workdir", default=None,
                         help="directory for the disk-backed SRA")
    p_align.add_argument("--checkpoint-every", type=int, default=None,
                         help="Stage-1 checkpoint interval in rows "
                              "(needs --workdir; resumes automatically)")
    p_align.add_argument("--progress", action="store_true",
                         help="print live per-stage progress to stderr")
    p_align.add_argument("--trace", default=None, metavar="FILE",
                         help="write a JSON-lines span/metric trace here")
    p_align.add_argument("--metrics", action="store_true",
                         help="print the run's metrics snapshot")
    p_align.add_argument("--paper-grids", action="store_true",
                         help="use the paper's GTX 285 grid constants")
    p_align.add_argument("--binary-out", default=None)
    p_align.add_argument("--svg-out", default=None)
    p_align.set_defaults(func=cmd_align)

    p_view = sub.add_parser("view", help="render a binary alignment (Stage 6)")
    p_view.add_argument("binary")
    p_view.add_argument("seq0")
    p_view.add_argument("seq1")
    p_view.add_argument("--width", type=int, default=60)
    p_view.set_defaults(func=cmd_view)

    p_cat = sub.add_parser("catalog", help="list the synthetic Table-II catalog")
    p_cat.add_argument("--scale", type=int, default=1024)
    p_cat.set_defaults(func=cmd_catalog)

    p_report = sub.add_parser(
        "report", help="run the scaled evaluation and print the full report")
    p_report.add_argument("--scale", type=int, default=8192)
    p_report.add_argument("--seed", type=int, default=0)
    p_report.add_argument("--sra-rows", type=int, default=8)
    p_report.add_argument("--out", default=None,
                          help="also write the report to this file")
    p_report.set_defaults(func=cmd_report)

    p_scan = sub.add_parser(
        "scan", help="score a query against a FASTA database (batch kernel)")
    p_scan.add_argument("query")
    p_scan.add_argument("database")
    p_scan.add_argument("--top", type=int, default=10)
    _add_scoring_args(p_scan)
    p_scan.set_defaults(func=cmd_scan)

    p_pack = sub.add_parser(
        "pack", help="convert FASTA to the memory-mappable packed format")
    p_pack.add_argument("fasta")
    p_pack.add_argument("out")
    p_pack.add_argument("--record", type=int, default=0)
    p_pack.set_defaults(func=cmd_pack)

    p_batch = sub.add_parser(
        "batch", help="run a file of alignment jobs through the job service")
    p_batch.add_argument("specs", nargs="?", default=None,
                         help="job spec file (JSON array or JSON lines); "
                              "optional with --resume")
    p_batch.add_argument("--root", required=True,
                         help="service root (journal, cache, per-job "
                              "workdirs, manifest)")
    p_batch.add_argument("--workers", type=int, default=1,
                         help="concurrent worker processes")
    p_batch.add_argument("--max-jobs", type=int, default=None,
                         help="stop after this many jobs finish (the rest "
                              "stay pending in the journal)")
    p_batch.add_argument("--resume", action="store_true",
                         help="recover the queue from the root's journal "
                              "before submitting anything")
    p_batch.add_argument("--trace", default=None, metavar="FILE",
                         help="write a JSON-lines service trace here")
    _add_supervision_args(p_batch)
    _add_batching_args(p_batch)
    p_batch.set_defaults(func=cmd_batch)

    p_jobs = sub.add_parser(
        "jobs", help="inspect a service root's queue journal")
    p_jobs.add_argument("action", nargs="?", default="list",
                        choices=("list", "cancel", "diagnose"),
                        help="'list' (default) renders the journal; "
                             "'cancel JOB_ID' journals a cancellation of "
                             "a pending job; 'diagnose JOB_ID' renders a "
                             "quarantined job's diagnostics bundle")
    p_jobs.add_argument("job_id", nargs="?", default=None,
                        help="job id for 'cancel' / 'diagnose'")
    p_jobs.add_argument("--root", required=True)
    p_jobs.set_defaults(func=cmd_jobs)

    p_serve = sub.add_parser(
        "serve", help="HTTP gateway: submission, SSE progress, quotas")
    p_serve.add_argument("--root", required=True,
                         help="service root (journal, cache, per-job "
                              "workdirs); a 201 submission survives a "
                              "gateway kill via the journal")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8650,
                         help="listen port (0 picks an ephemeral one)")
    p_serve.add_argument("--port-file", default=None, metavar="FILE",
                         help="write the bound port here once listening "
                              "(for scripts using --port 0)")
    p_serve.add_argument("--workers", type=int, default=1,
                         help="concurrent alignment worker processes")
    p_serve.add_argument("--resume", action="store_true",
                         help="recover the root's journal before serving")
    p_serve.add_argument("--max-body", type=int, default=1 << 20,
                         help="request body byte limit (413 beyond it)")
    p_serve.add_argument("--tenant-max-active", type=int, default=8,
                         help="per-tenant concurrent (non-terminal) job "
                              "quota")
    p_serve.add_argument("--tenant-rate", type=float, default=50.0,
                         help="per-tenant sustained submissions/sec")
    p_serve.add_argument("--tenant-burst", type=float, default=20.0,
                         help="per-tenant submission burst size")
    p_serve.add_argument("--max-queue-depth", type=int, default=256,
                         help="global pending-job ceiling (429 beyond it)")
    p_serve.add_argument("--trace", default=None, metavar="FILE",
                         help="write a JSON-lines service trace here")
    _add_supervision_args(p_serve)
    _add_batching_args(p_serve)
    p_serve.set_defaults(func=cmd_serve)

    p_fsck = sub.add_parser(
        "fsck", help="verify every checksummed artifact under a directory")
    p_fsck.add_argument("root",
                        help="run workdir or service root to scan")
    p_fsck.add_argument("--repair", action="store_true",
                        help="quarantine corrupt artifacts and rewrite "
                             "damaged journals keeping their valid records")
    p_fsck.add_argument("--json", action="store_true",
                        help="print the report as JSON")
    p_fsck.set_defaults(func=cmd_fsck)

    p_synth = sub.add_parser("synth", help="generate a catalog pair as FASTA")
    p_synth.add_argument("key")
    p_synth.add_argument("out0")
    p_synth.add_argument("out1")
    p_synth.add_argument("--scale", type=int, default=1024)
    p_synth.add_argument("--seed", type=int, default=0)
    p_synth.set_defaults(func=cmd_synth)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:  # e.g. `cudalign catalog | head`
        return 0
    except ConfigError as exc:
        # Bad knobs (--workers 0, malformed job specs, ...) are user
        # errors: one clean line, not a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except StorageError as exc:
        # Corrupt or unreadable artifacts (e.g. `view` on a damaged
        # binary alignment): report cleanly and point at fsck.
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
