"""Exception hierarchy for the CUDAlign 2.0 reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class SequenceError(ReproError):
    """Invalid sequence data (bad alphabet, empty sequence, bad FASTA)."""


class ScoringError(ReproError):
    """Invalid scoring parameters (e.g. gap-open smaller than gap-extend)."""


class ConfigError(ReproError):
    """Invalid pipeline or kernel-grid configuration."""


class StorageError(ReproError):
    """Special Rows Area misuse: over-capacity writes, missing rows, bad codec."""


class MatchingError(ReproError):
    """The goal-based matching procedure failed to locate the goal score.

    This indicates either corrupted special rows/columns or an internal
    inconsistency between the forward and reverse sweeps; it should never
    happen for well-formed inputs and is always a bug when raised.
    """


class PartitionError(ReproError):
    """A partition's crosspoints are inconsistent (non-monotone, bad types)."""


class DeviceError(ReproError):
    """Simulated GPU device misuse (VRAM exhausted, bad grid geometry)."""


class AlignmentError(ReproError):
    """An alignment object is internally inconsistent (path/score mismatch)."""
