"""Exception hierarchy for the CUDAlign 2.0 reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class SequenceError(ReproError):
    """Invalid sequence data (bad alphabet, empty sequence, bad FASTA)."""


class ScoringError(ReproError):
    """Invalid scoring parameters (e.g. gap-open smaller than gap-extend)."""


class ConfigError(ReproError):
    """Invalid pipeline or kernel-grid configuration."""


class StorageError(ReproError):
    """Special Rows Area misuse: over-capacity writes, missing rows, bad codec."""


class IntegrityError(StorageError):
    """An on-disk artifact failed its checksum or framing check.

    Raised by :mod:`repro.integrity.codec` when a read-back artifact is
    corrupt — flipped bits, truncation, a torn write, the wrong artifact
    kind, or a missing payload.  Carries enough context for telemetry and
    ``repro fsck`` to report the damage precisely; every raise site has a
    slower-but-correct recovery (recompute, widen, evict, requeue), so
    catching this error and degrading is always sound.

    Attributes:
        kind: artifact kind (``"special-line"``, ``"checkpoint"``, ...),
            or ``None`` when the frame was too damaged to tell.
        path: file the artifact was read from (``"<memory>"`` for
            in-memory decodes).
        expected / actual: the mismatching digests, when the failure was
            a checksum mismatch (``None`` for structural damage).
    """

    def __init__(self, message: str, *, kind: str | None = None,
                 path: str | None = None, expected: str | None = None,
                 actual: str | None = None):
        detail = []
        if kind is not None:
            detail.append(f"kind={kind}")
        if path is not None:
            detail.append(f"path={path}")
        if expected is not None:
            detail.append(f"expected={expected}")
        if actual is not None:
            detail.append(f"actual={actual}")
        super().__init__(
            message + (f" [{', '.join(detail)}]" if detail else ""))
        self.kind = kind
        self.path = path
        self.expected = expected
        self.actual = actual


class MatchingError(ReproError):
    """The goal-based matching procedure failed to locate the goal score.

    This indicates either corrupted special rows/columns or an internal
    inconsistency between the forward and reverse sweeps; it should never
    happen for well-formed inputs and is always a bug when raised.
    """


class PartitionError(ReproError):
    """A partition's crosspoints are inconsistent (non-monotone, bad types)."""


class DeviceError(ReproError):
    """Simulated GPU device misuse (VRAM exhausted, bad grid geometry)."""


class AlignmentError(ReproError):
    """An alignment object is internally inconsistent (path/score mismatch)."""
