"""Alignment representation: edit path, rescoring, gap runs, composition.

An alignment is a start coordinate plus a column-wise edit path.  Path
operations use the paper's crosspoint ``type`` codes (Section IV-A):

* ``0`` — match/mismatch column (consumes one base of each sequence),
* ``1`` — gap in S0 (consumes one base of S1; horizontal move, E matrix),
* ``2`` — gap in S1 (consumes one base of S0; vertical move, F matrix).

Coordinates follow the paper's DP-matrix convention: position ``(i, j)``
means prefixes ``S0[1..i]`` / ``S1[1..j]`` have been consumed, so an
alignment spans ``(i0, j0)`` (exclusive) to ``(i1, j1)`` (inclusive) and
covers Python slices ``codes0[i0:i1]`` / ``codes1[j0:j1]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constants import TYPE_GAP_S0, TYPE_GAP_S1, TYPE_MATCH
from repro.errors import AlignmentError
from repro.align.scoring import ScoringScheme
from repro.sequences.sequence import N_CODE, Sequence, decode


@dataclass(frozen=True)
class Composition:
    """Column-type census of an alignment (the rows of Table X)."""

    matches: int
    mismatches: int
    gap_opens: int
    gap_extensions: int
    score: int

    @property
    def length(self) -> int:
        """Total alignment columns; matches Table X's 'Total occurrences'."""
        return self.matches + self.mismatches + self.gap_opens + self.gap_extensions


@dataclass(frozen=True)
class GapRun:
    """A maximal run of gaps: ``(i, j)`` is the position *before* the run
    (paper Section IV-F stores the gap-open position and the run length)."""

    i: int
    j: int
    length: int
    kind: int  # TYPE_GAP_S0 or TYPE_GAP_S1


@dataclass(frozen=True)
class Alignment:
    """An edit path anchored at ``(i0, j0)``.

    The path is immutable; all derived quantities (end position, score,
    composition) are computed on demand with vectorized passes.
    """

    i0: int
    j0: int
    ops: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        ops = np.ascontiguousarray(self.ops, dtype=np.uint8)
        if ops.ndim != 1:
            raise AlignmentError("ops must be one-dimensional")
        if ops.size and int(ops.max()) > TYPE_GAP_S1:
            raise AlignmentError("ops contains invalid codes (allowed: 0, 1, 2)")
        if self.i0 < 0 or self.j0 < 0:
            raise AlignmentError("alignment start coordinates must be non-negative")
        ops.setflags(write=False)
        object.__setattr__(self, "ops", ops)

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.ops.size)

    @property
    def span0(self) -> int:
        """Bases of S0 consumed (diagonal + vertical columns)."""
        return int(np.count_nonzero(self.ops != TYPE_GAP_S0))

    @property
    def span1(self) -> int:
        """Bases of S1 consumed (diagonal + horizontal columns)."""
        return int(np.count_nonzero(self.ops != TYPE_GAP_S1))

    @property
    def end(self) -> tuple[int, int]:
        """End position ``(i1, j1)`` in DP-matrix coordinates."""
        return (self.i0 + self.span0, self.j0 + self.span1)

    @property
    def start(self) -> tuple[int, int]:
        return (self.i0, self.j0)

    # ------------------------------------------------------------------
    # scoring
    # ------------------------------------------------------------------
    def _column_indices(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-column (i, j) coordinates *after* the column is consumed."""
        di = (self.ops != TYPE_GAP_S0).astype(np.int64)
        dj = (self.ops != TYPE_GAP_S1).astype(np.int64)
        return self.i0 + np.cumsum(di), self.j0 + np.cumsum(dj)

    def composition(self, s0: Sequence, s1: Sequence,
                    scheme: ScoringScheme) -> Composition:
        """Census + exact score of the alignment against the sequences.

        A gap run of length L contributes one opening (penalty
        ``gap_first``) and L-1 extensions (``gap_ext`` each), exactly as
        Table X counts them.
        """
        i1, j1 = self.end
        if i1 > len(s0) or j1 > len(s1):
            raise AlignmentError("alignment extends past the end of the sequences")
        ops = self.ops
        if ops.size == 0:
            return Composition(0, 0, 0, 0, 0)
        ii, jj = self._column_indices()
        diag = ops == TYPE_MATCH
        a = s0.codes[ii[diag] - 1]
        b = s1.codes[jj[diag] - 1]
        eq = (a == b) & (a != N_CODE)
        matches = int(np.count_nonzero(eq))
        mismatches = int(np.count_nonzero(diag)) - matches

        gap = ops != TYPE_MATCH
        # A gap column opens a run when the previous column is not a gap of
        # the same kind.
        opens_mask = gap.copy()
        opens_mask[1:] &= ops[1:] != ops[:-1]
        gap_opens = int(np.count_nonzero(opens_mask))
        gap_exts = int(np.count_nonzero(gap)) - gap_opens

        score = (matches * scheme.match + mismatches * scheme.mismatch
                 - gap_opens * scheme.gap_first - gap_exts * scheme.gap_ext)
        return Composition(matches, mismatches, gap_opens, gap_exts, score)

    def score(self, s0: Sequence, s1: Sequence, scheme: ScoringScheme) -> int:
        """Exact score of this alignment under ``scheme``."""
        return self.composition(s0, s1, scheme).score

    def identity(self, s0: Sequence, s1: Sequence) -> float:
        """Fraction of alignment columns that are exact matches.

        The headline similarity number of comparative analyses (the paper
        reports "the number of matches ... was 96.6% of the size of the
        chimpanzee chromosome").
        """
        if len(self) == 0:
            return 0.0
        comp = self.composition(s0, s1, ScoringScheme())
        return comp.matches / comp.length

    def coverage(self, s0: Sequence, s1: Sequence) -> tuple[float, float]:
        """Fraction of each sequence covered by the alignment span."""
        return (self.span0 / len(s0), self.span1 / len(s1))

    # ------------------------------------------------------------------
    # gap runs (Stage 5 binary representation)
    # ------------------------------------------------------------------
    def gap_runs(self) -> tuple[list[GapRun], list[GapRun]]:
        """The paper's ``GAP_1`` / ``GAP_2`` lists (Section IV-F).

        Each tuple records the position where a gap run opens and its
        length; together with start/end/score they reconstruct the full
        alignment (Stage 6).
        """
        ops = self.ops
        gap1: list[GapRun] = []
        gap2: list[GapRun] = []
        if ops.size == 0:
            return gap1, gap2
        ii, jj = self._column_indices()
        boundaries = np.flatnonzero(np.concatenate(([True], ops[1:] != ops[:-1])))
        run_ends = np.concatenate((boundaries[1:], [ops.size]))
        for startc, endc in zip(boundaries.tolist(), run_ends.tolist()):
            kind = int(ops[startc])
            if kind == TYPE_MATCH:
                continue
            # Position before the run: coordinates after column startc-1.
            if startc == 0:
                pos = (self.i0, self.j0)
            else:
                pos = (int(ii[startc - 1]), int(jj[startc - 1]))
            run = GapRun(pos[0], pos[1], endc - startc, kind)
            (gap1 if kind == TYPE_GAP_S0 else gap2).append(run)
        return gap1, gap2

    # ------------------------------------------------------------------
    # composition of alignments
    # ------------------------------------------------------------------
    def concat(self, other: "Alignment") -> "Alignment":
        """Join two alignments end-to-start (Stage 5 concatenation)."""
        if self.end != other.start:
            raise AlignmentError(
                f"cannot concatenate: {self.end} != {other.start}")
        return Alignment(self.i0, self.j0, np.concatenate([self.ops, other.ops]))

    @staticmethod
    def concat_all(parts: list["Alignment"]) -> "Alignment":
        """Concatenate a partition chain in order."""
        if not parts:
            raise AlignmentError("cannot concatenate an empty partition list")
        out = parts[0]
        for part in parts[1:]:
            out = out.concat(part)
        return out

    def transposed(self) -> "Alignment":
        """Swap the roles of S0 and S1 (gap types 1 <-> 2).

        Used by balanced splitting, which transposes a partition to halve
        its largest dimension (Section IV-E).
        """
        ops = self.ops.copy()
        swap = ops != TYPE_MATCH
        ops[swap] ^= 3  # 1 <-> 2
        return Alignment(self.j0, self.i0, ops)

    def offset(self, di: int, dj: int) -> "Alignment":
        """Translate the alignment (sub-problem coordinates -> global)."""
        return Alignment(self.i0 + di, self.j0 + dj, self.ops)

    def reversed_path(self, total_i: int, total_j: int) -> "Alignment":
        """Map an alignment computed on reversed sequences back.

        ``total_i``/``total_j`` are the lengths of the (sub)sequences the
        reversed alignment was computed on.
        """
        i1, j1 = self.end
        return Alignment(total_i - i1, total_j - j1,
                         np.ascontiguousarray(self.ops[::-1]))

    # ------------------------------------------------------------------
    # rendering (Stage 6 textual representation)
    # ------------------------------------------------------------------
    def render_rows(self, s0: Sequence, s1: Sequence) -> tuple[str, str, str]:
        """Return the three text rows (S0 line, marker line, S1 line)."""
        ops = self.ops
        ii, jj = self._column_indices()
        row0 = np.full(ops.size, ord("-"), dtype=np.uint8)
        row1 = np.full(ops.size, ord("-"), dtype=np.uint8)
        consume0 = ops != TYPE_GAP_S0
        consume1 = ops != TYPE_GAP_S1
        row0[consume0] = np.frombuffer(
            decode(s0.codes[self.i0:self.end[0]]).encode(), dtype=np.uint8)
        row1[consume1] = np.frombuffer(
            decode(s1.codes[self.j0:self.end[1]]).encode(), dtype=np.uint8)
        marker = np.full(ops.size, ord(" "), dtype=np.uint8)
        both = consume0 & consume1
        eq = row0 == row1
        marker[both & eq] = ord("|")
        marker[both & ~eq] = ord(".")
        del ii, jj
        return (row0.tobytes().decode(), marker.tobytes().decode(),
                row1.tobytes().decode())
