"""Batched row sweep: K independent pairs per NumPy dispatch.

The tracked ledger is blunt about host-side kernel economics: per-call
dispatch overhead dominates small matrices, which is exactly the cost a
GPU grid amortizes by fusing many alignments into one launch (AnySeq/GPU)
and balancing ragged lengths so no lane idles (SaLoBa).  This module
applies both ideas to host NumPy.  :func:`sweep_lanes` advances K
independent :class:`~repro.align.rowscan.RowSweeper` lanes through
*one* set of row operations with a leading batch axis — a ``(K, N+1)``
vector op costs barely more than a ``(N+1,)`` one, so the per-pair
dispatch count drops by a factor of K.

Bit-identity per lane is engineered the same way the serial kernel's
padding-free algebra composes:

* lanes are packed into a ``(K, N+1)`` state padded to the widest lane;
  padded columns evolve by the same recurrence over sentinel values and
  can never contaminate the real region, because information flows
  strictly left-to-right within a row (the prefix-max E scan) and
  top-to-bottom across rows;
* lanes shorter than the deepest lane go *inactive* once their rows run
  out: lanes are packed deepest-first, so the active set at any step is
  a contiguous prefix of the batch and every row operation runs on a
  plain ``[:kact]`` slice — rows past the prefix are simply never
  written, freezing each lane at its own final row while the rest of
  the batch keeps sweeping (the "all-padding tail rows" case), with
  none of the masked-ufunc (``where=``) overhead;
* per-lane boundary regimes need no special cases — local/global/forced
  boundaries live entirely in each lane's packed H/E/F state, so one
  batch can mix them (only the Smith-Waterman zero floor is a per-row
  branch, applied through a per-lane ``local`` mask);
* best/watch/saved-rows/taps fold per lane with the serial kernel's
  exact tie-break rules, reading only the lane's real columns.

:func:`plan_buckets` bounds padding waste SaLoBa-style: lanes sorted by
descending remaining work are greedily grouped while the padded-cell
overhead stays under a budget, so one huge pair cannot drag a swarm of
tiny ones through its padding.

:class:`BatchedRowSweeper` is the single-pair facade registered as the
``batched`` kernel backend (a K=1 lane through the same fused code
path), which is what lets the registry-wide conformance suite hold the
batched arithmetic to the bit-identity contract on every boundary
regime the serial kernel accepts.
"""

from __future__ import annotations

import numpy as np

from repro.constants import NEG_INF, SCORE_DTYPE
from repro.errors import ConfigError
from repro.align.kernels import KernelBackend, register_backend
from repro.align.rowscan import RowSweeper


def sweep_lanes(lanes, nrows: int | None = None) -> int:
    """Advance every lane by up to ``nrows`` rows (all remaining rows
    when ``None``) in one fused batch of row dispatches.

    Every lane must share one scoring scheme (the row operations use its
    penalties as scalars); boundary regimes, lengths, and tracking
    options may differ per lane.  Updates each lane in place — H/E/F,
    ``i``/``cells``, best/watch, saved rows, taps — exactly as that many
    ``advance`` calls on the serial kernel would have.  Returns the
    total rows processed across lanes.
    """
    if not lanes:
        return 0
    scheme = lanes[0].scheme
    for lane in lanes[1:]:
        if lane.scheme != scheme:
            raise ConfigError(
                "batched lanes must share one scoring scheme; bucket by "
                "scheme first (plan_buckets does)")
    todo = [lane.m - lane.i for lane in lanes]
    if nrows is not None:
        if nrows < 0:
            raise ConfigError("nrows must be non-negative")
        todo = [min(nrows, t) for t in todo]
    steps = np.array(todo, dtype=np.int64)
    S = int(steps.max())
    if S <= 0:
        return 0
    # Deepest lanes first: the active set at any step is then a prefix
    # of the batch, so "only active lanes advance" is a contiguous
    # ``[:kact]`` slice instead of a boolean ``where=`` mask on every
    # persistent-state write — same freeze semantics, none of the
    # masked-ufunc overhead.  Packing order is invisible per lane.
    order = np.argsort(-steps, kind="stable")
    lanes = [lanes[int(j)] for j in order]
    steps = steps[order]
    K = len(lanes)
    n_vec = np.array([lane.n for lane in lanes], dtype=np.int64)
    N = int(n_vec.max())
    i0 = [lane.i for lane in lanes]
    # Active lanes at step s (1-based): the first kact_per[s - 1].
    kact_per = np.searchsorted(-steps, -np.arange(1, S + 1), side="right")

    gext = SCORE_DTYPE(scheme.gap_ext)
    gfirst = SCORE_DTYPE(scheme.gap_first)
    ext_ramp = np.arange(N + 1, dtype=SCORE_DTYPE) * gext
    egap = gfirst + ext_ramp[:-1]

    # Packed batch state.  Lane k owns columns 0..n_k; padded columns
    # start at the sentinel and evolve harmlessly (see module docstring).
    Hb = np.full((K, N + 1), NEG_INF, dtype=SCORE_DTYPE)
    Eb = np.full((K, N + 1), NEG_INF, dtype=SCORE_DTYPE)
    Fb = np.full((K, N + 1), NEG_INF, dtype=SCORE_DTYPE)
    # Query profiles stacked flat so one np.take per row gathers every
    # lane's substitution vector: row 5*k + c scores base c on lane k.
    lut = np.full((K * 5, N), SCORE_DTYPE(scheme.mismatch),
                  dtype=SCORE_DTYPE)
    flat_codes = np.zeros((K, S), dtype=np.intp)
    local_vec = np.zeros(K, dtype=bool)
    for k, lane in enumerate(lanes):
        w = lane.n + 1
        Hb[k, :w] = lane.H
        Eb[k, :w] = lane.E
        Fb[k, :w] = lane.F
        lut[5 * k:5 * k + 5, :lane.n] = lane._sub_lut
        sk = int(steps[k])
        if sk:
            flat_codes[k, :sk] = (
                lane.codes0[lane.i:lane.i + sk].astype(np.intp) + 5 * k)
        local_vec[k] = lane.local

    track_vec = np.array([lane.track_best for lane in lanes], dtype=bool)
    watch_pend = np.array([lane.watch_value is not None
                           and lane.watch_hit is None for lane in lanes],
                          dtype=bool)
    need_rowmax = bool(track_vec.any() or watch_pend.any())
    if need_rowmax:
        cols = np.arange(N + 1, dtype=np.int64)
        colmask = cols[None, :] <= n_vec[:, None]
        colmask_full = bool(colmask.all())
        best_vec = np.array([lane.best for lane in lanes], dtype=np.int64)
        watch_vec = np.array([-1 if lane.watch_value is None
                              else lane.watch_value for lane in lanes],
                             dtype=np.int64)
        Mb = np.empty((K, N + 1), dtype=SCORE_DTYPE)
        rowmax = np.empty(K, dtype=SCORE_DTYPE)

    save_plan: dict[int, list[tuple[int, int]]] = {}
    for k, lane in enumerate(lanes):
        for r in lane._save_rows:
            off = r - i0[k]
            if 1 <= off <= steps[k]:
                save_plan.setdefault(int(off), []).append((k, int(r)))
    tap_lanes = [(k, lane) for k, lane in enumerate(lanes)
                 if lane._taps is not None]

    Xb = np.empty((K, N + 1), dtype=SCORE_DTYPE)
    Tb = np.empty((K, N + 1), dtype=SCORE_DTYPE)
    sub = np.empty((K, N), dtype=SCORE_DTYPE)
    all_local = bool(local_vec.all())
    any_local = bool(local_vec.any())
    for s in range(1, S + 1):
        kact = int(kact_per[s - 1])
        # Views over the active prefix; everything below row kact stays
        # frozen at its own final state.
        Hs, Es, Fs = Hb[:kact], Eb[:kact], Fb[:kact]
        Xs, Ts = Xb[:kact], Tb[:kact]
        # F (vertical) update.
        np.subtract(Fs, gext, out=Xs)
        np.subtract(Hs, gfirst, out=Ts)
        np.maximum(Xs, Ts, out=Fs)
        # X: every non-E source of H, all lanes in one gather + two ops.
        np.take(lut, flat_codes[:kact, s - 1], axis=0, out=sub[:kact])
        np.add(Hs[:, :-1], sub[:kact], out=Xs[:, 1:])
        np.maximum(Xs[:, 1:], Fs[:, 1:], out=Xs[:, 1:])
        if all_local:
            Xs[:, 0] = 0
            Fs[:, 0] = NEG_INF
            np.maximum(Xs, 0, out=Xs)
        elif any_local:
            loc = local_vec[:kact]
            Xs[:, 0] = np.where(loc, 0, Fs[:, 0])
            Fs[:, 0] = np.where(loc, NEG_INF, Fs[:, 0])
            np.maximum(Xs, 0, out=Xs, where=loc[:, None])
        else:
            Xs[:, 0] = Fs[:, 0]
        # E via the prefix-max scan, batched along axis 1.
        np.add(Xs, ext_ramp, out=Ts)
        np.maximum.accumulate(Ts, axis=1, out=Ts)
        np.subtract(Ts[:, :-1], egap, out=Es[:, 1:])
        Es[:, 0] = NEG_INF
        np.maximum(Xs, Es, out=Hs)

        if need_rowmax:
            # Per-lane row maximum (padded columns excluded).
            if colmask_full:
                Hs.max(axis=1, out=rowmax[:kact])
            else:
                Ms = Mb[:kact]
                Ms.fill(NEG_INF)
                np.copyto(Ms, Hs, where=colmask[:kact])
                Ms.max(axis=1, out=rowmax[:kact])
            improved = np.flatnonzero(
                track_vec[:kact] & (rowmax[:kact] > best_vec[:kact]))
            for k in improved:
                lane = lanes[k]
                lane.best = int(rowmax[k])
                best_vec[k] = lane.best
                lane.best_pos = (i0[k] + s,
                                 int(np.argmax(Hb[k, :lane.n + 1])))
            maybe_hit = np.flatnonzero(
                watch_pend[:kact] & (rowmax[:kact] >= watch_vec[:kact]))
            for k in maybe_hit:
                lane = lanes[k]
                hits = np.flatnonzero(
                    Hb[k, :lane.n + 1] == lane.watch_value)
                if hits.size:
                    lane.watch_hit = (i0[k] + s, int(hits[0]))
                    watch_pend[k] = False
        for k, lane in tap_lanes:
            if k < kact:
                row = i0[k] + s
                lane.tap_H[row] = Hb[k, lane._taps]
                lane.tap_E[row] = Eb[k, lane._taps]
        for k, r in save_plan.get(s, ()):
            lane = lanes[k]
            w = lane.n + 1
            lane.saved[r] = (Hb[k, :w].copy(), Fb[k, :w].copy())

    for k, lane in enumerate(lanes):
        sk = int(steps[k])
        if sk <= 0:
            continue
        w = lane.n + 1
        lane.H[:] = Hb[k, :w]
        lane.E[:] = Eb[k, :w]
        lane.F[:] = Fb[k, :w]
        lane.i += sk
        lane.cells += sk * lane.n
    return int(steps.sum())


def plan_buckets(lanes, *, max_lanes: int = 64,
                 max_waste: float = 0.5) -> list[list[int]]:
    """Group lane indices into padding-bounded batches (SaLoBa-style).

    Lanes are sorted by descending remaining rows (then columns) and
    greedily packed while the bucket's padding waste — the fraction of
    padded cells that are not real work — stays at or under
    ``max_waste`` and the bucket holds at most ``max_lanes`` lanes.
    Lanes with different scoring schemes never share a bucket; finished
    lanes are skipped.  Deterministic for a given lane list.
    """
    if max_lanes < 1:
        raise ConfigError("max_lanes must be positive")
    if not 0.0 <= max_waste < 1.0:
        raise ConfigError("max_waste must be in [0, 1)")
    order = sorted(range(len(lanes)),
                   key=lambda k: (-(lanes[k].m - lanes[k].i),
                                  -lanes[k].n, k))
    buckets: list[list[int]] = []
    cur: list[int] = []
    smax = nmax = cells = 0
    cur_scheme = None
    for k in order:
        lane = lanes[k]
        s = lane.m - lane.i
        if s <= 0:
            continue
        if cur and len(cur) < max_lanes and lane.scheme == cur_scheme:
            new_nmax = max(nmax, lane.n)
            new_cells = cells + s * lane.n
            padded = (len(cur) + 1) * smax * new_nmax
            if 1.0 - new_cells / padded <= max_waste:
                cur.append(k)
                nmax, cells = new_nmax, new_cells
                continue
        if cur:
            buckets.append(cur)
        cur = [k]
        smax, nmax, cells = s, lane.n, s * lane.n
        cur_scheme = lane.scheme
    if cur:
        buckets.append(cur)
    return buckets


def sweep_batched(lanes, *, max_lanes: int = 64, max_waste: float = 0.5,
                  metrics=None) -> dict:
    """Run every lane to completion through length-bucketed fused sweeps.

    The one-call form the service micro-batcher and the benchmark use:
    plan buckets, sweep each, and (optionally) publish ``kernel.batch.*``
    telemetry.  Returns honest batch statistics::

        {"lanes", "buckets", "cells", "padded_cells", "padding_waste"}
    """
    buckets = plan_buckets(lanes, max_lanes=max_lanes, max_waste=max_waste)
    real = padded = 0
    for bucket in buckets:
        group = [lanes[k] for k in bucket]
        depth = max(lane.m - lane.i for lane in group)
        width = max(lane.n for lane in group)
        real += sum((lane.m - lane.i) * lane.n for lane in group)
        padded += len(group) * depth * width
        if metrics is not None:
            metrics.histogram("kernel.batch.size").observe(len(group))
        sweep_lanes(group)
    waste = 1.0 - real / padded if padded else 0.0
    if metrics is not None:
        metrics.counter("kernel.batch.dispatches").add(len(buckets))
        metrics.counter("kernel.batch.lanes").add(
            sum(len(b) for b in buckets))
        metrics.histogram("kernel.batch.padding_waste").observe(waste)
    return {"lanes": sum(len(b) for b in buckets), "buckets": len(buckets),
            "cells": real, "padded_cells": padded, "padding_waste": waste}


class BatchedRowSweeper(RowSweeper):
    """Single-pair facade of the batched kernel (one K=1 lane).

    Accepts everything :class:`RowSweeper` accepts and produces
    bit-identical observables through the fused batch code path — the
    degenerate batch the conformance suite pins, and the lane type the
    registry hands out for ``--kernel batched``.  Multi-lane throughput
    comes from :func:`sweep_lanes` / :func:`sweep_batched` over many
    constructed lanes (plain ``RowSweeper`` lanes work too).
    """

    def _advance(self, nrows: int) -> int:
        sweep_lanes([self], nrows)
        return nrows


register_backend(KernelBackend(
    name="batched",
    factory=BatchedRowSweeper,
    serial=True,
    interior_taps=True,
    batch=True,
    description="rowscan with a leading batch axis: K pairs per NumPy "
                "dispatch (sweep_batched fuses many lanes; the registered "
                "factory is the single-pair facade)"))
