"""Linear-space vectorized row sweep (the hot kernel of every stage).

One object, :class:`RowSweeper`, implements the forward Gotoh recurrence
row by row in O(n) memory with **no Python loop over cells**: per row, the
F update and the diagonal contribution are element-wise, and the in-row E
recurrence — the only true serial dependency — is resolved with a running
``maximum.accumulate`` scan:

    E(i,j) = max_{k<j} ( X(i,k) - G_first - (j-1-k) * G_ext )
           = max_{k<j} ( X(i,k) + k*G_ext )  -  G_first - (j-1)*G_ext

where ``X`` collects every non-E source of H (diagonal, F, the local-zero
floor, and the column-0 boundary).  Replacing H by X inside the scan is
valid because opening a new gap *inside* an existing gap never wins when
``G_first >= G_ext`` (asserted by :class:`ScoringScheme`).

Every sweep the pipeline performs maps onto this kernel:

* Stage 1 is a local forward sweep (rows = S0).
* Reverse sweeps (Stages 2 and 4) are forward sweeps over reversed
  sequences.
* Column-major ("orthogonal", Sections IV-C/D) sweeps are forward sweeps
  of the transposed problem, where the roles of E and F swap.

The sweeper exposes exactly the artifacts the stages need: the running
H/E/F rows, best-score tracking (Stage 1), special-row snapshots of (H, F)
(the SRA format, Section IV-B), per-row column taps of (H, E) (goal-based
matching against an orthogonal special line), and a watch value (Stage 2's
start-point detection).  Callers drive it in strips via :meth:`advance`,
which is what makes goal-based early termination a *real* saving rather
than bookkeeping.
"""

from __future__ import annotations

import numpy as np

from repro.constants import NEG_INF, SCORE_DTYPE, TYPE_GAP_S0, TYPE_GAP_S1, TYPE_MATCH
from repro.errors import ConfigError
from repro.align.profile import query_profile
from repro.align.scoring import ScoringScheme


class RowSweeper:
    """Incremental linear-space forward DP sweep.

    Args:
        codes0: encoded bases laid along the rows (one row per base).
        codes1: encoded bases laid along the columns.
        scheme: affine scoring parameters.
        local: use the Smith-Waterman zero floor and zero boundaries;
            otherwise the global (Needleman-Wunsch) boundary is used.
        start_gap: boundary gap state for global sweeps — TYPE_GAP_S0
            waives the opening of a horizontal gap continuing through
            (0, 0), TYPE_GAP_S1 of a vertical one (Section IV-A's
            "gap opening must not be computed twice").
        forced: require the path to *begin* with the ``start_gap`` run
            (H(0,0) is seeded to -inf so only gap-continuing paths are
            finite).  Reverse sweeps of partitions whose end crosspoint is
            typed use this to exclude tails that would end in the wrong
            state; the resulting values are uniformly ``true + G_open``.
        track_best: maintain the running best score and position (Stage 1).
        watch_value: if set, :attr:`watch_hit` records the first cell whose
            H equals this value (Stage 2's start-point detection).
        tap_columns: column indices whose (H, E) values are recorded after
            every row (matching against an orthogonal special line).
        save_rows: absolute row indices whose (H, F) rows are snapshotted
            (the special rows flushed to the SRA).
        tracer: optional :class:`repro.telemetry.Tracer`; when set, every
            :meth:`advance` call is wrapped in a ``sweep.advance`` span
            (rows/cells attributes).  ``None`` (the default) keeps the
            hot path free of telemetry branches beyond one ``is None``.
    """

    def __init__(self, codes0: np.ndarray, codes1: np.ndarray,
                 scheme: ScoringScheme, *, local: bool = False,
                 start_gap: int = TYPE_MATCH, forced: bool = False,
                 track_best: bool = False,
                 watch_value: int | None = None,
                 tap_columns: np.ndarray | None = None,
                 save_rows: np.ndarray | None = None,
                 tracer=None) -> None:
        self.tracer = tracer
        self.codes0 = np.ascontiguousarray(codes0, dtype=np.uint8)
        self.codes1 = np.ascontiguousarray(codes1, dtype=np.uint8)
        if self.codes0.size == 0 or self.codes1.size == 0:
            raise ConfigError("cannot sweep empty sequences")
        self.scheme = scheme
        self.local = bool(local)
        if start_gap not in (TYPE_MATCH, TYPE_GAP_S0, TYPE_GAP_S1):
            raise ConfigError(f"invalid start_gap {start_gap!r}")
        if local and start_gap != TYPE_MATCH:
            raise ConfigError("local sweeps cannot carry a boundary gap state")
        if forced and start_gap == TYPE_MATCH:
            raise ConfigError("forced sweeps need a gap-typed start_gap")
        self.start_gap = start_gap
        self.forced = bool(forced)
        self.m = int(self.codes0.size)
        self.n = int(self.codes1.size)
        self.i = 0  # rows completed (0 = only the boundary row exists)
        self.cells = 0

        gext = scheme.gap_ext
        gfirst = scheme.gap_first
        n = self.n
        self._idx = np.arange(n + 1, dtype=SCORE_DTYPE)
        self._ext_ramp = self._idx * SCORE_DTYPE(gext)

        # Row 0 boundary.
        self.H = np.empty(n + 1, dtype=SCORE_DTYPE)
        self.E = np.full(n + 1, NEG_INF, dtype=SCORE_DTYPE)
        self.F = np.full(n + 1, NEG_INF, dtype=SCORE_DTYPE)
        if self.local:
            self.H[:] = 0
        else:
            self.H[0] = NEG_INF if forced else 0
            if start_gap == TYPE_GAP_S0:
                # E(0,0) seeded: the boundary run extends at G_ext only.
                self.E[0] = 0
                self.E[1:] = -self._ext_ramp[1:]
            elif forced:
                # Only the seeded F(0,0) is finite; row 0 is unreachable.
                self.E[1:] = NEG_INF
            else:
                self.E[1:] = -(SCORE_DTYPE(gfirst) + self._ext_ramp[:-1])
            self.H[1:] = self.E[1:]
            if start_gap == TYPE_GAP_S1:
                self.F[0] = 0
        self._col0_F = self.F[0]
        self._col0_H = self.H[0]

        self.track_best = bool(track_best)
        self.best = int(self.H.max()) if track_best else 0
        self.best_pos: tuple[int, int] = (0, int(np.argmax(self.H))) if track_best else (0, 0)

        self.watch_value = watch_value
        self.watch_hit: tuple[int, int] | None = None
        if watch_value is not None:
            hits = np.flatnonzero(self.H == watch_value)
            if hits.size:
                self.watch_hit = (0, int(hits[0]))

        self._taps = (np.ascontiguousarray(tap_columns, dtype=np.int64)
                      if tap_columns is not None and len(tap_columns) else None)
        if self._taps is not None:
            if self._taps.min() < 0 or self._taps.max() > n:
                raise ConfigError("tap columns out of range")
            self.tap_H = np.empty((self.m + 1, self._taps.size), dtype=SCORE_DTYPE)
            self.tap_E = np.empty((self.m + 1, self._taps.size), dtype=SCORE_DTYPE)
            self.tap_H[0] = self.H[self._taps]
            self.tap_E[0] = self.E[self._taps]

        save = (np.unique(np.asarray(save_rows, dtype=np.int64))
                if save_rows is not None and len(save_rows) else np.empty(0, np.int64))
        if save.size and (save.min() < 1 or save.max() > self.m):
            raise ConfigError("save rows out of range [1, m]")
        self._save_rows = set(save.tolist())
        self.saved: dict[int, tuple[np.ndarray, np.ndarray]] = {}

        # Per-row scratch buffers, allocated once.  _advance reuses X and
        # T for the F update too, so the hot loop allocates nothing.
        self._X = np.empty(n + 1, dtype=SCORE_DTYPE)
        self._T = np.empty(n + 1, dtype=SCORE_DTYPE)
        self._egap = SCORE_DTYPE(gfirst) + self._ext_ramp[:-1]

        # Substitution scores as a per-base lookup: row i uses the vector
        # for codes0[i], so each row costs one fancy-index, not a compare.
        # Shared across sweepers over the same (scheme, columns) — see
        # repro.align.profile — and therefore read-only.
        self._sub_lut = query_profile(scheme, self.codes1)

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        return self.i >= self.m

    def advance(self, nrows: int | None = None) -> int:
        """Process up to ``nrows`` further rows; returns the count processed.

        The per-row body is 8 vectorized O(n) operations; see module
        docstring for the scan derivation.
        """
        if nrows is None:
            nrows = self.m - self.i
        nrows = min(nrows, self.m - self.i)
        if nrows <= 0:
            return 0
        if self.tracer is not None:
            with self.tracer.span("sweep.advance", rows=nrows,
                                  from_row=self.i, n=self.n) as span:
                done = self._advance(nrows)
                span.set(cells=done * self.n)
            return done
        return self._advance(nrows)

    def _advance(self, nrows: int) -> int:
        scheme = self.scheme
        gext = SCORE_DTYPE(scheme.gap_ext)
        gfirst = SCORE_DTYPE(scheme.gap_first)
        H, E, F = self.H, self.E, self.F
        ext_ramp = self._ext_ramp
        egap = self._egap
        X, T = self._X, self._T
        local = self.local
        stop = self.i + nrows
        while self.i < stop:
            i = self.i + 1
            sub = self._sub_lut[self.codes0[i - 1]]
            # F (vertical) update — purely element-wise, includes column 0.
            # X/T are free at this point, so the update runs entirely in
            # the preallocated scratch (no per-row temporaries).
            np.subtract(F, gext, out=X)
            np.subtract(H, gfirst, out=T)
            np.maximum(X, T, out=F)
            # X: every non-E source of H.
            np.add(H[:-1], sub, out=X[1:])
            np.maximum(X[1:], F[1:], out=X[1:])
            if local:
                X[0] = 0
                F[0] = NEG_INF
                np.maximum(X, 0, out=X)
            else:
                X[0] = F[0]
            # E via the prefix-max scan.
            np.add(X, ext_ramp, out=T)
            np.maximum.accumulate(T, out=T)
            np.subtract(T[:-1], egap, out=E[1:])
            E[0] = NEG_INF
            np.maximum(X, E, out=H)
            self.i = i

            if self.track_best or self.watch_value is not None:
                row_max = int(H.max())
                if self.track_best and row_max > self.best:
                    self.best = row_max
                    self.best_pos = (i, int(np.argmax(H)))
                if (self.watch_value is not None and self.watch_hit is None
                        and row_max >= self.watch_value):
                    hits = np.flatnonzero(H == self.watch_value)
                    if hits.size:
                        self.watch_hit = (i, int(hits[0]))
            if self._taps is not None:
                self.tap_H[i] = H[self._taps]
                self.tap_E[i] = E[self._taps]
            if i in self._save_rows:
                self.saved[i] = (H.copy(), F.copy())
        self.cells += nrows * self.n
        return nrows

    def run(self) -> "RowSweeper":
        """Process all remaining rows and return self (convenience)."""
        self.advance()
        return self

    # ------------------------------------------------------------------
    # checkpointing (Stage 1 runs for hours at paper scale; Section V's
    # 18.5-hour run motivates crash recovery)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Serializable snapshot of the sweep's linear-space state."""
        return {
            "i": self.i, "cells": self.cells,
            "H": self.H.copy(), "E": self.E.copy(), "F": self.F.copy(),
            "best": self.best, "best_i": self.best_pos[0],
            "best_j": self.best_pos[1],
        }

    def load_state(self, state: dict) -> None:
        """Resume from a snapshot taken by :meth:`state_dict`.

        Only valid on a freshly-constructed sweeper over the same
        sequences, scheme and options; saved-row snapshots taken before
        the checkpoint are the caller's responsibility (Stage 1 flushes
        them to the durable SRA as they appear).
        """
        i = int(state["i"])
        if not 0 <= i <= self.m:
            raise ConfigError(f"checkpoint row {i} outside [0, {self.m}]")
        for name in ("H", "E", "F"):
            arr = np.asarray(state[name], dtype=SCORE_DTYPE)
            if arr.shape != self.H.shape:
                raise ConfigError("checkpoint row width does not match")
            getattr(self, name)[:] = arr
        self.i = i
        self.cells = int(state["cells"])
        self.best = int(state["best"])
        self.best_pos = (int(state["best_i"]), int(state["best_j"]))
