"""Scoring scheme for Smith-Waterman with Gotoh affine gaps.

The paper's recurrences (Section II-A) use a penalty for the *first* gap
(``G_first``) and one for each *extension* (``G_ext``); the gap *opening*
penalty is their difference (``G_open = G_first - G_ext``).  A gap run of
length L therefore costs ``G_first + (L-1) * G_ext``.

Penalties are stored as positive magnitudes and subtracted by the kernels,
matching the paper's notation.  The experimental defaults are the paper's:
match +1, mismatch -3, first gap -5, extension -2 (Section V).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import SCORE_DTYPE
from repro.errors import ScoringError
from repro.sequences.sequence import N_CODE


@dataclass(frozen=True)
class ScoringScheme:
    """Affine-gap scoring parameters.

    Attributes:
        match: score added for identical bases (> 0).
        mismatch: score added for differing bases (<= 0, stored signed).
        gap_first: penalty magnitude of the first gap in a run (> 0).
        gap_ext: penalty magnitude of each further gap (> 0).
    """

    match: int = 1
    mismatch: int = -3
    gap_first: int = 5
    gap_ext: int = 2

    def __post_init__(self) -> None:
        if self.match <= 0:
            raise ScoringError("match score must be positive")
        if self.mismatch > 0:
            raise ScoringError("mismatch score must be <= 0")
        if self.gap_ext <= 0:
            raise ScoringError("gap extension penalty must be positive")
        # The scan-based row kernel (align.rowscan) assumes opening a new
        # gap inside an existing one never wins, which requires
        # gap_first >= gap_ext; this also matches the affine model's intent.
        if self.gap_first < self.gap_ext:
            raise ScoringError("gap_first must be >= gap_ext (affine model)")

    @property
    def gap_open(self) -> int:
        """Opening component ``G_open = G_first - G_ext`` (Section II)."""
        return self.gap_first - self.gap_ext

    def gap_cost(self, length: int) -> int:
        """Total penalty magnitude of a gap run of ``length`` columns."""
        if length <= 0:
            raise ScoringError("gap run length must be positive")
        return self.gap_first + (length - 1) * self.gap_ext

    def substitution_row(self, code: int, other: np.ndarray) -> np.ndarray:
        """Vector of substitution scores of one base against a code array.

        ``N`` never matches anything (including ``N``), as CUDAlign treats
        masked bases.
        """
        if code == N_CODE:
            eq = np.zeros(other.shape, dtype=bool)
        else:
            eq = other == code
        return np.where(eq, SCORE_DTYPE(self.match), SCORE_DTYPE(self.mismatch))

    def substitution_matrix(self, codes0: np.ndarray, codes1: np.ndarray) -> np.ndarray:
        """Outer substitution-score matrix (m x n); used by reference kernels only."""
        eq = codes0[:, None] == codes1[None, :]
        eq &= (codes0 != N_CODE)[:, None]
        return np.where(eq, SCORE_DTYPE(self.match), SCORE_DTYPE(self.mismatch))


#: The exact parameters used in the paper's experiments (Section V).
PAPER_SCHEME = ScoringScheme(match=1, mismatch=-3, gap_first=5, gap_ext=2)
