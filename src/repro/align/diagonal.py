"""Anti-diagonal vectorized sweep (the GPU schedule on host arrays).

:class:`DiagonalSweeper` subclasses the serial kernel and overrides
exactly one method — ``_advance`` — replacing the row loop with the
wavefront order GPU kernels use: every cell on anti-diagonal
``t = i + j`` depends only on diagonals ``t - 1`` (left, up) and
``t - 2`` (the substitution diagonal), so all of diagonal ``t`` computes
as one vector operation.  Memory stays linear: two H diagonals, one F
diagonal, and one carried prefix-max per window row.

Bit-identity with ``rowscan`` is engineered around the E recurrence.
The serial kernel does *not* compute the textbook
``E(i,j) = max(E(i,j-1) - G_ext, H(i,j-1) - G_first)``; it computes the
prefix-max scan

    E(i,j) = max_{k<j} ( X(i,k) + k*G_ext )  -  G_first - (j-1)*G_ext

over ``X`` (every non-E source of H), which differs **bitwise** from the
textbook form in sentinel (-inf) regions — e.g. a forced sweep's row
boundary, where the scan yields ``F(i,0) - G_first`` while the textbook
recurrence would ramp ``-inf - G_ext`` down.  The diagonal schedule
therefore carries, per window row ``i``, the running scan maximum
``T(i) = max_{k<=c} (X(i,k) + k*G_ext)`` across diagonals, reading it
*before* folding in the current column — exactly the serial scan's
prefix semantics, in the same int32 arithmetic (modular identities make
the regrouped subtraction bit-equal).

Column-0 boundary values come from :func:`~repro.align.kernels.
boundary_column` in closed form, including the unclamped ``X`` ramp that
seeds the scan.  Query-profile precomputation is inherited: the per-base
substitution LUT built once by :class:`RowSweeper` is gathered per
diagonal, never rebuilt per row.

Everything else the stages rely on is inherited unchanged —
``state_dict``/``load_state`` (checkpoints are executor- and
kernel-agnostic), ``saved``/``tap_H``/``tap_E``/``watch_hit``/``best``
surfaces, and the ``advance(nrows)`` striping contract.  Best/watch
folds replicate the serial row loop's tie-breaks: strictly-greater best
updates in row-major order with argmax-first columns, first watch hit in
(row, column) order.
"""

from __future__ import annotations

import numpy as np

from repro.constants import NEG_INF, SCORE_DTYPE
from repro.align.kernels import KernelBackend, boundary_column, register_backend
from repro.align.rowscan import RowSweeper


class DiagonalSweeper(RowSweeper):
    """Anti-diagonal schedule behind the serial sweeper's exact interface.

    Accepts everything :class:`RowSweeper` accepts — all boundary
    regimes, interior taps, saved rows, best/watch tracking — and
    produces bit-identical observables.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # Closed-form column-0 boundary for rows 1..m: clamped H for the
        # diagonal term and tracking, unclamped X to seed the E scan,
        # and the stored F (the serial kernel pins F(i,0) to -inf on
        # local sweeps, keeps the unclamped ramp otherwise).
        bnd_H, _bnd_E, bnd_X = boundary_column(
            self.m, self.scheme, local=self.local,
            start_gap=self.start_gap, forced=self.forced)
        self._bnd_H = bnd_H
        self._bnd_X = bnd_X
        self._bnd_F = (np.full(self.m, NEG_INF, dtype=SCORE_DTYPE)
                       if self.local else bnd_X)

    # ------------------------------------------------------------------
    def _advance(self, nrows: int) -> int:
        i0, stop = self.i, self.i + nrows
        R, n = nrows, self.n
        scheme = self.scheme
        gext = SCORE_DTYPE(scheme.gap_ext)
        gfirst = SCORE_DTYPE(scheme.gap_first)
        ext_ramp = self._ext_ramp
        local = self.local

        # Window boundaries: row i0's state feeds slot 0; the column-0
        # closed form feeds slot t.  (self.H/E/F are only rewritten after
        # the diagonal loop, so plain references are safe here.)
        top_H, top_F = self.H, self.F
        bH = self._bnd_H[i0:stop]
        bX = self._bnd_X[i0:stop]
        bF = self._bnd_F[i0:stop]
        cw = self.codes0[i0:stop]
        sub_lut = self._sub_lut

        # Rotating diagonal buffers, indexed by window row offset r
        # (1..R); slot 0 carries the window-top row along the diagonal.
        # H needs two diagonals back (same parity → two buffers rotate);
        # F needs one (updated in place after its reads materialize).
        Hm2 = np.full(R + 1, NEG_INF, dtype=SCORE_DTYPE)
        Hm1 = np.full(R + 1, NEG_INF, dtype=SCORE_DTYPE)
        Fm1 = np.full(R + 1, NEG_INF, dtype=SCORE_DTYPE)
        Hm2[0] = top_H[0]
        Hm1[0] = top_H[1]
        Fm1[0] = top_F[1]
        Hm1[1] = bH[0]
        Fm1[1] = bF[0]
        # Carried E-scan state: T[r] = max_{k<=c}(X(r,k) + k*G_ext) so
        # far; seeded with the boundary X (column 0, ramp term zero).
        T = np.empty(R + 1, dtype=SCORE_DTYPE)
        T[1:] = bX

        track = self.track_best
        wval = self.watch_value if self.watch_hit is None else None
        if track or wval is not None:
            row_best = np.empty(R + 1, dtype=np.int64)
            row_best[1:] = bH.astype(np.int64)
            row_argcol = np.zeros(R + 1, dtype=np.int64)
            row_hitcol = np.full(R + 1, -1, dtype=np.int64)
            if wval is not None:
                row_hitcol[1:][bH == wval] = 0

        # Scatter targets: the window's final row (H, E, F — it becomes
        # self.H/E/F) and every saved row inside the window (H, F).
        final_H = np.empty(n + 1, dtype=SCORE_DTYPE)
        final_E = np.empty(n + 1, dtype=SCORE_DTYPE)
        final_F = np.empty(n + 1, dtype=SCORE_DTYPE)
        final_H[0] = bH[R - 1]
        final_E[0] = NEG_INF  # the serial kernel pins E(i, 0) every row
        final_F[0] = bF[R - 1]
        captures: list[tuple[int, np.ndarray, np.ndarray | None,
                             np.ndarray | None]] = [
            (R, final_H, final_F, final_E)]
        for r_abs in sorted(self._save_rows):
            if i0 < r_abs < stop:
                h_buf = np.empty(n + 1, dtype=SCORE_DTYPE)
                f_buf = np.empty(n + 1, dtype=SCORE_DTYPE)
                h_buf[0] = bH[r_abs - i0 - 1]
                f_buf[0] = bF[r_abs - i0 - 1]
                captures.append((r_abs - i0, h_buf, f_buf, None))

        taps = [] if self._taps is None else list(enumerate(self._taps.tolist()))
        for k, ct in taps:
            if ct == 0:  # column 0 never lies on a computed diagonal
                self.tap_H[i0 + 1:stop + 1, k] = bH
                self.tap_E[i0 + 1:stop + 1, k] = NEG_INF
        taps = [(k, ct) for k, ct in taps if ct >= 1]

        r_all = np.arange(R + 1, dtype=np.int64)
        for t in range(2, R + n + 1):
            lo = t - n if t - n > 1 else 1
            hi = R if t - 1 > R else t - 1
            sl = slice(lo, hi + 1)
            slm = slice(lo - 1, hi)
            r_vec = r_all[sl]
            col_idx = (t - 1) - r_vec          # = c - 1 per active row

            Fd = np.maximum(Fm1[slm] - gext, Hm1[slm] - gfirst)
            X = Hm2[slm] + sub_lut[cw[lo - 1:hi], col_idx]
            np.maximum(X, Fd, out=X)
            if local:
                np.maximum(X, 0, out=X)
            Tr = T[sl]
            # E reads the scan *before* this column's X folds in; the
            # reversed ramp slices are views of ext_ramp at c-1 / c.
            Ed = Tr - gfirst - ext_ramp[t - 1 - hi:t - lo][::-1]
            Hd = np.maximum(X, Ed)
            np.maximum(Tr, X + ext_ramp[t - hi:t - lo + 1][::-1], out=Tr)

            if track or wval is not None:
                cvec = col_idx + 1
                if track:
                    rb = row_best[sl]
                    mask = Hd > rb
                    if mask.any():
                        rb[mask] = Hd[mask]
                        row_argcol[sl][mask] = cvec[mask]
                if wval is not None:
                    wmask = (row_hitcol[sl] < 0) & (Hd == wval)
                    if wmask.any():
                        row_hitcol[sl][wmask] = cvec[wmask]

            for r_off, h_buf, f_buf, e_buf in captures:
                if lo <= r_off <= hi:
                    c = t - r_off
                    h_buf[c] = Hd[r_off - lo]
                    if f_buf is not None:
                        f_buf[c] = Fd[r_off - lo]
                    if e_buf is not None:
                        e_buf[c] = Ed[r_off - lo]
            for k, ct in taps:
                r_off = t - ct
                if lo <= r_off <= hi:
                    self.tap_H[i0 + r_off, k] = Hd[r_off - lo]
                    self.tap_E[i0 + r_off, k] = Ed[r_off - lo]

            # Rotate: the written buffer becomes diagonal t, old Hm1
            # becomes the two-back diagonal; feed the boundary slots.
            Hnew = Hm2
            Hnew[sl] = Hd
            Fm1[sl] = Fd
            if t <= R:
                Hnew[t] = bH[t - 1]
                Fm1[t] = bF[t - 1]
            if t <= n:
                Hnew[0] = top_H[t]
                Fm1[0] = top_F[t]
            Hm2, Hm1 = Hm1, Hnew

        # Fold per-row results in row-major order, exactly as the serial
        # loop would have: strictly-greater best updates (so the first
        # improving row wins and argmax-first columns are preserved),
        # first watch hit in (row, column) order.
        if track:
            rb = row_best[1:]
            prior = np.empty(R, dtype=np.int64)
            prior[0] = self.best
            if R > 1:
                np.maximum(np.maximum.accumulate(rb[:-1]), self.best,
                           out=prior[1:])
            improved = np.flatnonzero(rb > prior)
            if improved.size:
                last = int(improved[-1])
                self.best = int(rb[last])
                self.best_pos = (i0 + last + 1, int(row_argcol[last + 1]))
        if wval is not None:
            hit_rows = np.flatnonzero(row_hitcol[1:] >= 0)
            if hit_rows.size:
                r_off = int(hit_rows[0]) + 1
                self.watch_hit = (i0 + r_off, int(row_hitcol[r_off]))

        for r_off, h_buf, f_buf, _e_buf in captures:
            r_abs = i0 + r_off
            if r_abs in self._save_rows:
                # The final row's buffers become self.H/F below; saved
                # rows own their copies, as the serial kernel's do.
                if r_off == R:
                    self.saved[r_abs] = (h_buf.copy(), f_buf.copy())
                else:
                    self.saved[r_abs] = (h_buf, f_buf)
        self.H[:] = final_H
        self.E[:] = final_E
        self.F[:] = final_F
        self.i = stop
        self.cells += nrows * self.n
        return nrows


register_backend(KernelBackend(
    name="diagonal",
    factory=DiagonalSweeper,
    serial=True,
    interior_taps=True,
    description="anti-diagonal vectorization of the same recurrence "
                "(the GPU wavefront schedule on host arrays)"))

