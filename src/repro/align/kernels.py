"""Kernel backend registry: one interface for every sweep kernel.

Every stage of the pipeline performs the same abstract operation — sweep
rows ``i..j`` of the DP matrix given boundary state, producing H/E/F
rows, taps, saved rows and best/watch observables — and
:class:`~repro.align.rowscan.RowSweeper` defines that interface.  This
module hoists the *choice* of implementation out of the call sites: a
backend is a named factory producing a RowSweeper-compatible object, and
executors (:func:`repro.parallel.sweeper.make_sweeper`) compose with
inner kernels through the registry instead of hard-coding one class.

Built-in backends:

* ``rowscan`` — the serial reference: per-row vectorization with the
  prefix-max E scan (:class:`~repro.align.rowscan.RowSweeper`).
* ``diagonal`` — NumPy anti-diagonal vectorization of the same
  recurrence (:class:`~repro.align.diagonal.DiagonalSweeper`), the
  GPU-shaped schedule on host arrays.
* ``batched`` — rowscan with a leading batch axis
  (:class:`~repro.align.batched.BatchedRowSweeper`): K independent
  pairs per NumPy dispatch, the AnySeq/SaLoBa many-alignments-per-launch
  schedule on host arrays.  Registered as the single-pair facade; the
  multi-lane entry points are ``sweep_lanes``/``sweep_batched``.
* ``wavefront`` — the tile-grid process-pool sweep
  (:class:`~repro.parallel.sweeper.ParallelRowSweeper`); not a serial
  kernel — it needs (or simulates) an executor.

The contract every backend must honour is **bit-identity**: identical
H/E/F rows, ``best``/``best_pos``, ``watch_hit``, saved rows, taps,
``cells`` and ``state_dict`` checkpoints for every input the serial
kernel accepts (capability flags below narrow the input space a backend
supports — e.g. the wavefront grid only taps the final column).  The
conformance suite (``tests/test_kernel_backends.py``) enforces this for
every registered backend; see docs/API.md "Kernel backends".

Builtins load lazily so the layering stays acyclic: this module lives in
the align layer and never imports :mod:`repro.parallel`; the wavefront
backend registers itself when its module is first imported.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.constants import NEG_INF, SCORE_DTYPE, TYPE_GAP_S1, TYPE_MATCH
from repro.errors import ConfigError
from repro.align.rowscan import RowSweeper
from repro.align.scoring import ScoringScheme


def boundary_column(m: int, scheme: ScoringScheme, *, local: bool,
                    start_gap: int = TYPE_MATCH, forced: bool = False
                    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Column-0 boundary ``(H, E, X)`` for rows ``1..m``, in closed form.

    Tiled and diagonal backends need the sweep's own boundary column
    without running the serial row loop.  For local sweeps that is the
    zero floor.  For global sweeps the serial kernel evolves the column
    as::

        F(i, 0) = max(F(i-1, 0) - G_ext, H(i-1, 0) - G_first)
        H(i, 0) = max(F(i, 0), -inf)        # E(i, 0) is pinned to -inf

    Because ``G_first >= G_ext`` this collapses to the arithmetic ramp
    ``F(1, 0) - (i - 1) * G_ext`` floored at ``-inf - G_first`` (the
    floor binds only when a forced boundary drives F below -inf, where
    re-opening from the clamped H beats extending the sinking run), with
    H the ramp clamped at -inf.

    Three arrays come back because the serial kernel uses *different*
    column-0 values for different roles, and bit-identity requires each:
    ``H`` (clamped) is what the diagonal term and best/watch tracking
    see; ``X`` (the unclamped F) seeds the in-row E scan; ``E`` is
    ``X - G_open`` so the tile seed ``max(X, E + G_open)`` stays exactly
    ``X`` — the serial seed.
    """
    if local:
        zeros = np.zeros(m, dtype=SCORE_DTYPE)
        return zeros, np.full(m, NEG_INF, dtype=SCORE_DTYPE), zeros
    h_init = int(NEG_INF) if forced else 0
    f_init = 0 if start_gap == TYPE_GAP_S1 else int(NEG_INF)
    f_row1 = max(f_init - scheme.gap_ext, h_init - scheme.gap_first)
    ramp = np.arange(m, dtype=np.int64) * scheme.gap_ext
    left_X = np.maximum(f_row1 - ramp,
                        int(NEG_INF) - scheme.gap_first).astype(SCORE_DTYPE)
    left_H = np.maximum(left_X, NEG_INF)
    left_E = left_X - SCORE_DTYPE(scheme.gap_open)
    return left_H, left_E, left_X


@dataclass(frozen=True)
class KernelBackend:
    """One registered sweep kernel.

    Attributes:
        name: registry key (``--kernel`` / ``PipelineConfig.kernel``).
        factory: callable with :class:`RowSweeper`'s signature returning
            a RowSweeper-compatible sweeper.  Non-serial backends also
            accept ``executor`` / ``metrics`` / ``strip_cols``.
        serial: the backend runs in-process with no executor attached,
            making it eligible as the pipeline's inner kernel
            (``PipelineConfig.kernel``); non-serial backends are reached
            through ``make_sweeper``'s executor routing instead.
        interior_taps: the backend supports ``tap_columns`` other than
            ``[n]`` (the wavefront grid only reads the final column).
        batch: the backend's module exposes multi-lane fused sweeps
            (``sweep_lanes``/``sweep_batched``) that advance many
            independent sweepers per dispatch; consumers such as the
            service micro-batcher select batch-capable kernels by this
            flag rather than by name.
        description: one line for ``--help`` and the benchmark ledger.
    """

    name: str
    factory: Callable[..., RowSweeper]
    serial: bool = True
    interior_taps: bool = True
    batch: bool = False
    description: str = ""

    def make(self, codes0: np.ndarray, codes1: np.ndarray,
             scheme: ScoringScheme, *, executor=None, metrics=None,
             strip_cols=None, **kwargs) -> RowSweeper:
        """Build a sweeper; executor plumbing only reaches backends that
        take it, so serial kernels keep the plain RowSweeper signature."""
        if self.serial:
            return self.factory(codes0, codes1, scheme, **kwargs)
        return self.factory(codes0, codes1, scheme, executor=executor,
                            metrics=metrics, strip_cols=strip_cols, **kwargs)


_REGISTRY: dict[str, KernelBackend] = {}

#: Builtins resolve lazily: importing the named module registers the
#: backend.  Keeps repro.align free of any repro.parallel import.
_BUILTIN_MODULES = {
    "rowscan": "repro.align.kernels",
    "diagonal": "repro.align.diagonal",
    "batched": "repro.align.batched",
    "wavefront": "repro.parallel.sweeper",
}


def register_backend(backend: KernelBackend) -> KernelBackend:
    """Add a backend to the registry (duplicate names are an error)."""
    if backend.name in _REGISTRY:
        raise ConfigError(f"kernel backend {backend.name!r} already registered")
    _REGISTRY[backend.name] = backend
    return backend


def _load_builtins() -> None:
    for name, module in _BUILTIN_MODULES.items():
        if name not in _REGISTRY:
            importlib.import_module(module)


def get_backend(name: str) -> KernelBackend:
    """Look up a backend by name, importing a builtin on first use."""
    if name not in _REGISTRY and name in _BUILTIN_MODULES:
        importlib.import_module(_BUILTIN_MODULES[name])
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown kernel backend {name!r}; registered backends: "
            f"{list(backend_names())}") from None


def backend_names() -> tuple[str, ...]:
    """Every registered backend name (builtins included), sorted."""
    _load_builtins()
    return tuple(sorted(_REGISTRY))


def serial_kernel_names() -> tuple[str, ...]:
    """Backends eligible as the in-process kernel (``--kernel``)."""
    _load_builtins()
    return tuple(sorted(n for n, b in _REGISTRY.items() if b.serial))


register_backend(KernelBackend(
    name="rowscan",
    factory=RowSweeper,
    serial=True,
    interior_taps=True,
    description="per-row vectorization with the prefix-max E scan "
                "(the serial reference kernel)"))
