"""Tiled DP sweeps with explicit boundary exchange.

The distributed substrate under two systems of this repo:

* the **Z-align baseline** (Boukerche et al. [19]) divides the matrix into
  column strips owned by cluster processors; each wavefront step a
  processor computes one (band x strip) tile and sends its right edge to
  the neighbour — exactly this module's :func:`tile_sweep`;
* the **bus cross-validation** of the CUDAlign grid: the horizontal bus is
  a tile's bottom row (H, E, F), the vertical bus its right edge (H, E),
  and :func:`tiled_local_sweep` proves that the decomposed computation is
  bit-identical to the monolithic kernel.

The per-row recurrence is the same scan-resolved body as
:mod:`repro.align.rowscan`; the only addition is the left boundary: an
incoming horizontal-gap value ``E_in`` enters the in-row scan as a virtual
source of value ``E_in + G_open`` at the boundary column (extending the
run costs ``G_ext`` per column; re-deriving the scan's closed form with
that term folds exactly into ``max(X[0], E_in + G_open)``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import NEG_INF, SCORE_DTYPE
from repro.errors import ConfigError
from repro.align.scoring import ScoringScheme
from repro.sequences.sequence import N_CODE


@dataclass(frozen=True)
class TileEdges:
    """Boundary values entering a tile.

    ``top_*`` cover the tile's columns *including* the left-corner column
    (length w + 1); ``left_*`` cover the tile's rows (length h), i.e. the
    H/E values on the boundary column for each interior row.

    ``left_X`` optionally overrides the in-row scan's H-source seed at
    the boundary column (default: ``left_H``).  A sweep's own column-0
    boundary needs it: the monolithic kernel seeds the scan with the
    *unclamped* ``F(i, 0)`` while exposing ``H(i, 0) = max(F, -inf)`` to
    the diagonal term, and once a forced boundary pushes ``F`` below the
    -inf floor those two values differ.
    """

    top_H: np.ndarray
    top_E: np.ndarray
    top_F: np.ndarray
    left_H: np.ndarray
    left_E: np.ndarray
    left_X: np.ndarray | None = None


@dataclass(frozen=True)
class TileResult:
    """A computed tile: outgoing edges plus local statistics."""

    bottom_H: np.ndarray
    bottom_E: np.ndarray
    bottom_F: np.ndarray
    right_H: np.ndarray
    right_E: np.ndarray
    best: int
    best_pos: tuple[int, int]  # tile-relative (row 1.., col 1..)
    cells: int
    #: First tile cell (row-major, columns 1..w) whose H equals the
    #: watched value, tile-relative — None when no watch was requested
    #: or nothing matched.
    watch_hit: tuple[int, int] | None = None


def zero_edges(h: int, w: int, local: bool = True) -> TileEdges:
    """Boundary for a top-left tile of a local sweep (zero H, -inf gaps)."""
    if h <= 0 or w <= 0:
        raise ConfigError("tile dimensions must be positive")
    fill = SCORE_DTYPE(0) if local else NEG_INF
    return TileEdges(
        top_H=np.full(w + 1, fill, dtype=SCORE_DTYPE),
        top_E=np.full(w + 1, NEG_INF, dtype=SCORE_DTYPE),
        top_F=np.full(w + 1, NEG_INF, dtype=SCORE_DTYPE),
        left_H=np.full(h, fill, dtype=SCORE_DTYPE),
        left_E=np.full(h, NEG_INF, dtype=SCORE_DTYPE),
    )


def tile_sweep(codes0: np.ndarray, codes1: np.ndarray, scheme: ScoringScheme,
               edges: TileEdges, *, local: bool = True,
               track_best: bool = False,
               watch_value: int | None = None) -> TileResult:
    """Compute one tile given its boundary edges.

    ``codes0`` are the tile's rows, ``codes1`` its columns.  Returns the
    outgoing edges (bottom row with H/E/F — the horizontal bus; right
    column with H/E — the vertical bus).  ``watch_value`` records the
    first own cell whose H equals it (the boundary column belongs to the
    left neighbour and is checked by the caller).
    """
    codes0 = np.ascontiguousarray(codes0, dtype=np.uint8)
    codes1 = np.ascontiguousarray(codes1, dtype=np.uint8)
    h, w = codes0.size, codes1.size
    if h == 0 or w == 0:
        raise ConfigError("cannot sweep an empty tile")
    if edges.top_H.size != w + 1 or edges.left_H.size != h:
        raise ConfigError("boundary edge sizes do not match the tile")
    gext = SCORE_DTYPE(scheme.gap_ext)
    gfirst = SCORE_DTYPE(scheme.gap_first)
    gopen = SCORE_DTYPE(scheme.gap_open)
    ext_ramp = np.arange(w + 1, dtype=SCORE_DTYPE) * gext

    sub_lut = np.full((5, w), SCORE_DTYPE(scheme.mismatch), dtype=SCORE_DTYPE)
    for code in range(4):
        sub_lut[code, codes1 == code] = SCORE_DTYPE(scheme.match)
    sub_lut[N_CODE, :] = SCORE_DTYPE(scheme.mismatch)

    H = edges.top_H.astype(SCORE_DTYPE, copy=True)
    E = edges.top_E.astype(SCORE_DTYPE, copy=True)
    F = edges.top_F.astype(SCORE_DTYPE, copy=True)
    right_H = np.empty(h, dtype=SCORE_DTYPE)
    right_E = np.empty(h, dtype=SCORE_DTYPE)
    best = 0 if local else int(NEG_INF)
    best_pos = (0, 0)
    watch_hit: tuple[int, int] | None = None
    X = np.empty(w + 1, dtype=SCORE_DTYPE)
    T = np.empty(w + 1, dtype=SCORE_DTYPE)

    for i in range(1, h + 1):
        sub = sub_lut[codes0[i - 1]]
        np.maximum(F - gext, H - gfirst, out=F)
        np.add(H[:-1], sub, out=X[1:])
        np.maximum(X[1:], F[1:], out=X[1:])
        X[0] = (edges.left_H if edges.left_X is None else edges.left_X)[i - 1]
        if local:
            # Column 0 belongs to the left neighbour: its F slot is never
            # read downstream (pinned like the monolithic kernel) and the
            # local zero floor applies only to this tile's own cells —
            # restarts at the boundary column are the neighbour's to take.
            F[0] = NEG_INF
            np.maximum(X[1:], 0, out=X[1:])
        # In-row E scan, seeded with the incoming horizontal run.
        np.add(X, ext_ramp, out=T)
        T[0] = max(T[0], SCORE_DTYPE(edges.left_E[i - 1]) + gopen)
        np.maximum.accumulate(T, out=T)
        E[1:] = T[:-1]
        E[1:] -= gfirst + ext_ramp[:-1]
        E[0] = edges.left_E[i - 1]
        np.maximum(X, E, out=H)
        H[0] = edges.left_H[i - 1]
        right_H[i - 1] = H[w]
        right_E[i - 1] = E[w]
        if track_best:
            row_max = int(H[1:].max())
            if row_max > best:
                best = row_max
                best_pos = (i, 1 + int(np.argmax(H[1:])))
        if watch_value is not None and watch_hit is None:
            hits = np.flatnonzero(H[1:] == watch_value)
            if hits.size:
                watch_hit = (i, 1 + int(hits[0]))
    return TileResult(bottom_H=H, bottom_E=E, bottom_F=F,
                      right_H=right_H, right_E=right_E,
                      best=best, best_pos=best_pos, cells=h * w,
                      watch_hit=watch_hit)


@dataclass(frozen=True)
class TiledSweepResult:
    """Outcome of a full tiled local sweep."""

    best: int
    best_pos: tuple[int, int]
    cells: int
    tiles: int
    horizontal_bus_bytes: int
    vertical_bus_bytes: int
    wavefront_steps: int


def tiled_local_sweep(codes0: np.ndarray, codes1: np.ndarray,
                      scheme: ScoringScheme, *, band_rows: int,
                      strip_cols: int) -> TiledSweepResult:
    """Full local SW sweep as a (band x strip) tile wavefront.

    Numerically identical to one monolithic sweep; additionally accounts
    the bus traffic the decomposition exchanges and the wavefront step
    count (tiles on the longest anti-diagonal path).
    """
    codes0 = np.ascontiguousarray(codes0, dtype=np.uint8)
    codes1 = np.ascontiguousarray(codes1, dtype=np.uint8)
    m, n = codes0.size, codes1.size
    if band_rows <= 0 or strip_cols <= 0:
        raise ConfigError("tile dimensions must be positive")
    row_cuts = list(range(0, m, band_rows)) + [m]
    col_cuts = list(range(0, n, strip_cols)) + [n]
    bands = len(row_cuts) - 1
    strips = len(col_cuts) - 1

    best, best_pos = 0, (0, 0)
    cells = 0
    hbus = 0
    vbus = 0
    # Left edges per band, updated as the sweep advances strip by strip.
    left = [(np.zeros(row_cuts[b + 1] - row_cuts[b], dtype=SCORE_DTYPE),
             np.full(row_cuts[b + 1] - row_cuts[b], NEG_INF, dtype=SCORE_DTYPE))
            for b in range(bands)]
    for s in range(strips):
        c0, c1 = col_cuts[s], col_cuts[s + 1]
        w = c1 - c0
        top_H = np.zeros(w + 1, dtype=SCORE_DTYPE)
        top_E = np.full(w + 1, NEG_INF, dtype=SCORE_DTYPE)
        top_F = np.full(w + 1, NEG_INF, dtype=SCORE_DTYPE)
        for b in range(bands):
            r0, r1 = row_cuts[b], row_cuts[b + 1]
            left_H, left_E = left[b]
            edges = TileEdges(top_H, top_E, top_F, left_H, left_E)
            tile = tile_sweep(codes0[r0:r1], codes1[c0:c1], scheme, edges,
                              local=True, track_best=True)
            cells += tile.cells
            hbus += 8 * (w + 1)
            vbus += 8 * (r1 - r0)
            if tile.best > best:
                best = tile.best
                best_pos = (r0 + tile.best_pos[0], c0 + tile.best_pos[1])
            # Corner rule: the next band's top row starts at this band's
            # bottom; the next strip's left edge is this tile's right edge.
            left[b] = (tile.right_H, tile.right_E)
            top_H, top_E, top_F = tile.bottom_H, tile.bottom_E, tile.bottom_F
    return TiledSweepResult(best=best, best_pos=best_pos, cells=cells,
                            tiles=bands * strips,
                            horizontal_bus_bytes=hbus,
                            vertical_bus_bytes=vbus,
                            wavefront_steps=bands + strips - 1)
