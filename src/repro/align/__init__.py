"""Alignment engine family: scoring, reference DP, vectorized kernels,
full-matrix traceback, Myers-Miller linear-space alignment."""

from repro.align.scoring import PAPER_SCHEME, ScoringScheme
from repro.align.alignment import Alignment, Composition, GapRun
from repro.align.rowscan import RowSweeper
from repro.align.kernels import (KernelBackend, backend_names, boundary_column,
                                 get_backend, register_backend,
                                 serial_kernel_names)
from repro.align.diagonal import DiagonalSweeper
from repro.align import reference
from repro.align.full_matrix import dp_matrices, global_align, local_align
from repro.align.myers_miller import MMConfig, MMStats, find_midpoint, mm_align, mm_score
from repro.align.semiglobal import SemiGlobalResult, semiglobal_align, semiglobal_score
from repro.align.tiled import TileEdges, TileResult, tile_sweep, tiled_local_sweep

__all__ = [
    "PAPER_SCHEME", "ScoringScheme",
    "Alignment", "Composition", "GapRun",
    "RowSweeper", "DiagonalSweeper", "reference",
    "KernelBackend", "backend_names", "boundary_column", "get_backend",
    "register_backend", "serial_kernel_names",
    "dp_matrices", "global_align", "local_align",
    "MMConfig", "MMStats", "find_midpoint", "mm_align", "mm_score",
    "SemiGlobalResult", "semiglobal_align", "semiglobal_score",
    "TileEdges", "TileResult", "tile_sweep", "tiled_local_sweep",
]
