"""Myers-Miller linear-space global alignment over Gotoh (Section II-B),
with the paper's Stage-4 optimizations: balanced splitting and orthogonal
(goal-based) execution (Section IV-E).

Matching procedure
------------------
A partition is split at row ``r``.  The forward sweep yields ``CC`` (H
values) and ``DD`` (F values) on row ``r``; the reverse sweep yields the
adjusted tail vectors ``RR``/``SS``.  The split column maximizes

    max( CC(j) + RR(j),  DD(j) + SS(j) + G_open )

the second arm re-crediting the double-charged opening of a vertical gap
run that crosses the row (the paper's Formula 4, in maximization form).

Boundary conventions (shared with the whole pipeline):

* a partition whose *start* crosspoint is gap-typed runs its forward sweep
  with a *seeded* boundary (the continuing run pays extensions only — the
  opening was paid upstream);
* a partition whose *end* crosspoint is gap-typed runs its reverse sweep
  *forced* (only tails that end inside that run are finite); forced+seeded
  values are uniformly ``true + G_open``, which :func:`_tail_vectors`
  subtracts back out.

Orthogonal execution
--------------------
When the partition's score is already known (always true inside the
pipeline: crosspoint scores bracket every partition), the reverse half is
processed as *column strips from the right* (a row sweep of the transposed
problem), matching against CC/DD after every strip and stopping at the
first hit.  Only the columns right of the split point are ever computed —
on average half of the bottom half, the paper's expected 25% total saving
(Section IV-E, Table IX).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import TYPE_GAP_S0, TYPE_GAP_S1, TYPE_MATCH, swap_gap_type
from repro.errors import ConfigError, MatchingError
from repro.align import full_matrix
from repro.align.alignment import Alignment
from repro.align.kernels import get_backend
from repro.align.rowscan import RowSweeper
from repro.align.scoring import ScoringScheme


@dataclass
class MMStats:
    """Work accounting for one :func:`mm_align` call tree."""

    cells_forward: int = 0
    cells_reverse: int = 0
    splits: int = 0
    base_cases: int = 0
    base_cells: int = 0
    max_depth: int = 0

    @property
    def cells(self) -> int:
        return self.cells_forward + self.cells_reverse + self.base_cells


@dataclass
class MMConfig:
    """Tunables of the divide-and-conquer (Stage 4 knobs).

    ``base_max_cells`` is the paper's *maximum partition size* squared in
    spirit: sub-problems at most this many cells are solved by the
    full-matrix aligner.  ``balanced`` halves the largest dimension
    (Figure 10); ``orthogonal`` enables the goal-based reverse half
    (Figure 7); ``strip`` is the column-strip width of the orthogonal
    reverse sweep.
    """

    base_max_cells: int = 4096
    balanced: bool = True
    orthogonal: bool = True
    strip: int = 64
    kernel: str = "rowscan"

    def __post_init__(self) -> None:
        if self.base_max_cells < 4:
            raise ConfigError("base_max_cells must be at least 4")
        if self.strip < 1:
            raise ConfigError("strip width must be positive")
        if not get_backend(self.kernel).serial:
            raise ConfigError(
                f"kernel {self.kernel!r} is not an in-process backend")


def degenerate_alignment(m: int, n: int) -> Alignment:
    """The only path through an empty-sided partition: one pure gap run."""
    if m and n:
        raise MatchingError("degenerate_alignment requires an empty side")
    ops = np.full(m + n, TYPE_GAP_S0 if n else TYPE_GAP_S1, dtype=np.uint8)
    return Alignment(0, 0, ops)


def _sweep(kernel: str, codes0, codes1, scheme, **kwargs) -> RowSweeper:
    """A serial sweep on the configured kernel backend."""
    return get_backend(kernel).make(codes0, codes1, scheme, **kwargs)


def _forward_vectors(codes0, codes1, scheme, start_gap, stats,
                     kernel: str = "rowscan") -> tuple[np.ndarray, np.ndarray]:
    """CC (H) and DD (F) on the last row of the top half."""
    sweep = _sweep(kernel, codes0, codes1, scheme, start_gap=start_gap).run()
    stats.cells_forward += sweep.cells
    return sweep.H.astype(np.int64), sweep.F.astype(np.int64)


def _tail_vectors(codes0, codes1, scheme, end_gap, stats,
                  kernel: str = "rowscan") -> tuple[np.ndarray, np.ndarray]:
    """Adjusted RR (H) and SS (F) tail vectors, indexed by original column.

    Computed as a forward sweep over reversed sequences; forced when the
    end state is gap-typed, then de-biased by G_open.
    """
    sweep = _sweep(kernel, codes0[::-1], codes1[::-1], scheme,
                   start_gap=end_gap, forced=end_gap != TYPE_MATCH).run()
    stats.cells_reverse += sweep.cells
    bias = scheme.gap_open if end_gap != TYPE_MATCH else 0
    rr = sweep.H[::-1].astype(np.int64) - bias
    ss = sweep.F[::-1].astype(np.int64) - bias
    return rr, ss


def _match_full(cc, dd, rr, ss, gopen, goal=None) -> tuple[int, int, int]:
    """Full matching: best split column, its join type, and the top value."""
    h_join = cc + rr
    f_join = dd + ss + gopen
    best = int(max(h_join.max(), f_join.max()))
    if goal is not None and best != goal:
        raise MatchingError(f"midpoint matching reached {best}, expected {goal}")
    hits = np.flatnonzero(h_join == best)
    if hits.size:
        j = int(hits[0])
        return j, TYPE_MATCH, int(cc[j])
    j = int(np.flatnonzero(f_join == best)[0])
    return j, TYPE_GAP_S1, int(dd[j])


def _match_orthogonal(codes0_bottom, codes1, scheme, end_gap, cc, dd, goal,
                      config, stats) -> tuple[int, int, int]:
    """Goal-based reverse half: transposed column strips from the right.

    Returns (split column, join type, top value).  Stops as soon as the
    goal score is matched, leaving the columns left of the split point
    uncomputed (the gray area of Figure 7).
    """
    h = codes0_bottom.size
    n = codes1.size
    gopen = scheme.gap_open
    bias = gopen if end_gap != TYPE_MATCH else 0
    # Transposed frame: rows = reversed S1 columns, columns = reversed
    # bottom rows; original F becomes the sweep's E, so the tap records
    # exactly (H, F-original) at the partition's split row.
    sweep = _sweep(config.kernel, codes1[::-1], codes0_bottom[::-1], scheme,
                   start_gap=swap_gap_type(end_gap),
                   forced=end_gap != TYPE_MATCH,
                   tap_columns=np.array([h]))
    # Transposed row p corresponds to original column n - p; row 0 is the
    # boundary (original column n) and is matched before any strip runs.
    next_row = 0
    while True:
        rows = np.arange(next_row, sweep.i + 1)
        next_row = sweep.i + 1
        if rows.size:
            cols = n - rows
            rr = sweep.tap_H[rows, 0].astype(np.int64) - bias
            ss = sweep.tap_E[rows, 0].astype(np.int64) - bias
            h_hits = np.flatnonzero(cc[cols] + rr == goal)
            f_hits = np.flatnonzero(dd[cols] + ss + gopen == goal)
            if h_hits.size or f_hits.size:
                stats.cells_reverse += sweep.cells
                if h_hits.size:
                    j = int(cols[h_hits[0]])
                    return j, TYPE_MATCH, int(cc[j])
                j = int(cols[f_hits[0]])
                return j, TYPE_GAP_S1, int(dd[j])
        if sweep.done:
            stats.cells_reverse += sweep.cells
            raise MatchingError(
                f"orthogonal matching exhausted all columns without goal {goal}")
        sweep.advance(config.strip)


def find_midpoint(codes0: np.ndarray, codes1: np.ndarray,
                  scheme: ScoringScheme, *, start_gap: int = TYPE_MATCH,
                  end_gap: int = TYPE_MATCH, goal: int | None = None,
                  config: MMConfig | None = None,
                  stats: MMStats | None = None,
                  tracer=None) -> tuple[int, int, int, int]:
    """One Myers-Miller split at the middle row.

    Returns ``(r, j, join_type, top_value)``: the optimal path crosses row
    ``r = m // 2`` at column ``j`` with the given join type (H or F), and
    the top sub-problem's value is ``top_value``.  Stage 4 drives its
    iterative refinement through this entry point; ``mm_align`` recurses on
    it.  Requires ``m >= 2`` so both halves are non-empty.  With a
    ``tracer``, the split is wrapped in an ``mm.find_midpoint`` span.
    """
    config = config or MMConfig()
    stats = stats if stats is not None else MMStats()
    codes0 = np.asarray(codes0, dtype=np.uint8)
    codes1 = np.asarray(codes1, dtype=np.uint8)
    if codes0.size < 2 or codes1.size < 1:
        raise MatchingError("find_midpoint needs m >= 2 and n >= 1")
    if tracer is not None:
        with tracer.span("mm.find_midpoint", m=int(codes0.size),
                         n=int(codes1.size), goal=goal) as span:
            cells_before = stats.cells_forward + stats.cells_reverse
            out = _find_midpoint(codes0, codes1, scheme, start_gap, end_gap,
                                 goal, config, stats)
            span.set(row=out[0], column=out[1],
                     cells=stats.cells_forward + stats.cells_reverse
                           - cells_before)
            return out
    return _find_midpoint(codes0, codes1, scheme, start_gap, end_gap, goal,
                          config, stats)


def _find_midpoint(codes0, codes1, scheme, start_gap, end_gap, goal, config,
                   stats) -> tuple[int, int, int, int]:
    r = codes0.size // 2
    cc, dd = _forward_vectors(codes0[:r], codes1, scheme, start_gap, stats,
                              config.kernel)
    if config.orthogonal and goal is not None:
        j, join, top_value = _match_orthogonal(
            codes0[r:], codes1, scheme, end_gap, cc, dd, goal, config, stats)
    else:
        rr, ss = _tail_vectors(codes0[r:], codes1, scheme, end_gap, stats,
                               config.kernel)
        j, join, top_value = _match_full(cc, dd, rr, ss, scheme.gap_open, goal)
    return r, j, join, top_value


def mm_align(codes0: np.ndarray, codes1: np.ndarray, scheme: ScoringScheme,
             *, start_gap: int = TYPE_MATCH, end_gap: int = TYPE_MATCH,
             goal: int | None = None, config: MMConfig | None = None,
             stats: MMStats | None = None, tracer=None,
             _depth: int = 0) -> tuple[Alignment, int]:
    """Linear-space optimal global alignment (Myers-Miller over Gotoh).

    Args:
        codes0 / codes1: encoded subsequences of the partition.
        start_gap / end_gap: boundary gap states (crosspoint types).
        goal: the partition's known score; enables orthogonal execution
            and is verified at every split.
        config: divide-and-conquer tunables.
        stats: work accounting accumulator (mutated in place).
        tracer: optional telemetry tracer; each recursion level emits an
            ``mm.align`` span (m/n/depth attributes).

    Returns:
        ``(alignment, score)`` — the alignment covers the full rectangle
        and rescores (under the boundary conventions) to ``score``.
    """
    config = config or MMConfig()
    stats = stats if stats is not None else MMStats()
    stats.max_depth = max(stats.max_depth, _depth)
    codes0 = np.asarray(codes0, dtype=np.uint8)
    codes1 = np.asarray(codes1, dtype=np.uint8)
    m, n = codes0.size, codes1.size
    if tracer is not None:
        with tracer.span("mm.align", m=int(m), n=int(n), depth=_depth):
            return _mm_align(codes0, codes1, scheme, start_gap, end_gap,
                             goal, config, stats, tracer, _depth)
    return _mm_align(codes0, codes1, scheme, start_gap, end_gap, goal,
                     config, stats, None, _depth)


def _mm_align(codes0, codes1, scheme, start_gap, end_gap, goal, config,
              stats, tracer, _depth) -> tuple[Alignment, int]:
    m, n = codes0.size, codes1.size

    if m == 0 or n == 0:
        path = degenerate_alignment(m, n)
        run = m + n
        if run == 0:
            return path, 0
        kind = TYPE_GAP_S0 if n else TYPE_GAP_S1
        waived = start_gap == kind
        # The run's cost; if it also continues past the end we read the
        # "gap matrix" value, which is the same number (no further columns).
        score = -(run * scheme.gap_ext if waived else scheme.gap_cost(run))
        if end_gap != TYPE_MATCH and end_gap != kind:
            raise MatchingError("degenerate partition cannot end in the "
                                "orthogonal gap state")
        return path, score

    if m * n <= config.base_max_cells or m < 2 or n < 2:
        stats.base_cases += 1
        stats.base_cells += m * n
        return full_matrix.global_align(codes0, codes1, scheme,
                                        start_gap=start_gap, end_gap=end_gap)

    if config.balanced and n > m:
        # Halve the largest dimension (Figure 10): transpose, solve, map back.
        path, score = mm_align(codes1, codes0, scheme,
                               start_gap=swap_gap_type(start_gap),
                               end_gap=swap_gap_type(end_gap), goal=goal,
                               config=config, stats=stats, tracer=tracer,
                               _depth=_depth)
        return path.transposed(), score

    stats.splits += 1
    if goal is None:
        # One unguided split also reveals the optimum.
        r = m // 2
        cc, dd = _forward_vectors(codes0[:r], codes1, scheme, start_gap, stats,
                                  config.kernel)
        rr, ss = _tail_vectors(codes0[r:], codes1, scheme, end_gap, stats,
                               config.kernel)
        j_star, join, top_value = _match_full(cc, dd, rr, ss,
                                              scheme.gap_open, None)
        goal = int(max((cc + rr).max(), (dd + ss + scheme.gap_open).max()))
    else:
        r, j_star, join, top_value = find_midpoint(
            codes0, codes1, scheme, start_gap=start_gap, end_gap=end_gap,
            goal=goal, config=config, stats=stats, tracer=tracer)

    top, top_score = mm_align(codes0[:r], codes1[:j_star], scheme,
                              start_gap=start_gap, end_gap=join,
                              goal=top_value, config=config, stats=stats,
                              tracer=tracer, _depth=_depth + 1)
    bottom, bottom_score = mm_align(codes0[r:], codes1[j_star:], scheme,
                                    start_gap=join, end_gap=end_gap,
                                    goal=goal - top_value, config=config,
                                    stats=stats, tracer=tracer,
                                    _depth=_depth + 1)
    if top_score + bottom_score != goal:
        raise MatchingError(
            f"split scores {top_score}+{bottom_score} != goal {goal}")
    path = top.concat(bottom.offset(r, j_star))
    return path, goal


def mm_score(codes0: np.ndarray, codes1: np.ndarray,
             scheme: ScoringScheme, *, kernel: str = "rowscan") -> int:
    """Global alignment score in linear space (one forward sweep)."""
    sweep = _sweep(kernel, np.asarray(codes0, np.uint8),
                   np.asarray(codes1, np.uint8), scheme).run()
    return int(sweep.H[-1])
