"""Semi-global (overlap) alignment — the third alignment class of
Section II ("composed of prefixes or suffixes ... where leading/trailing
gaps are ignored").

Leading gaps are free on both sequences (the path may start anywhere on
the top row or left column at score 0) and trailing gaps are free (the
score is the maximum over the bottom row and right column).  Used to
anchor one sequence inside another without local alignment's interior
zero-resets — e.g. placing a contig against a chromosome.

Built on the same vectorized machinery as everything else: a
:class:`RowSweeper`-style full-matrix pass with free boundaries and the
shared affine traceback.

Convention: the *empty overlap* — both sequences consumed entirely by
free leading/trailing gaps — is a valid semi-global alignment of score 0,
so the score never drops below zero (the standard overlap-alignment
convention).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import NEG_INF, SCORE_DTYPE, TYPE_MATCH
from repro.errors import AlignmentError
from repro.align.alignment import Alignment
from repro.align.full_matrix import _sub_matrix
from repro.align.reference import DPMatrices, _traceback
from repro.align.scoring import ScoringScheme
from repro.sequences.sequence import N_CODE, Sequence


@dataclass(frozen=True)
class SemiGlobalResult:
    """An overlap alignment with its free-end coordinates."""

    alignment: Alignment
    score: int

    @property
    def start(self) -> tuple[int, int]:
        return self.alignment.start

    @property
    def end(self) -> tuple[int, int]:
        return self.alignment.end


def _semiglobal_matrices(codes0: np.ndarray, codes1: np.ndarray,
                         scheme: ScoringScheme) -> DPMatrices:
    """Full H/E/F with free start boundaries (H = 0 on row 0 / column 0)."""
    m, n = codes0.size, codes1.size
    gext = SCORE_DTYPE(scheme.gap_ext)
    gfirst = SCORE_DTYPE(scheme.gap_first)
    ext_ramp = np.arange(n + 1, dtype=SCORE_DTYPE) * gext
    H = np.empty((m + 1, n + 1), dtype=SCORE_DTYPE)
    E = np.empty((m + 1, n + 1), dtype=SCORE_DTYPE)
    F = np.empty((m + 1, n + 1), dtype=SCORE_DTYPE)
    H[0] = 0
    E[0] = NEG_INF
    F[0] = NEG_INF

    sub_lut = np.full((5, n), SCORE_DTYPE(scheme.mismatch), dtype=SCORE_DTYPE)
    for code in range(4):
        sub_lut[code, codes1 == code] = SCORE_DTYPE(scheme.match)
    sub_lut[N_CODE, :] = SCORE_DTYPE(scheme.mismatch)

    X = np.empty(n + 1, dtype=SCORE_DTYPE)
    T = np.empty(n + 1, dtype=SCORE_DTYPE)
    for i in range(1, m + 1):
        sub = sub_lut[codes0[i - 1]]
        np.maximum(F[i - 1] - gext, H[i - 1] - gfirst, out=F[i])
        np.add(H[i - 1, :-1], sub, out=X[1:])
        np.maximum(X[1:], F[i, 1:], out=X[1:])
        X[0] = 0          # free start on the left column
        F[i, 0] = NEG_INF
        np.add(X, ext_ramp, out=T)
        np.maximum.accumulate(T, out=T)
        E[i, 1:] = T[:-1]
        E[i, 1:] -= gfirst + ext_ramp[:-1]
        E[i, 0] = NEG_INF
        np.maximum(X, E[i], out=H[i])
        H[i, 0] = 0
    return DPMatrices(H, E, F)


def semiglobal_align(s0: Sequence | np.ndarray, s1: Sequence | np.ndarray,
                     scheme: ScoringScheme) -> SemiGlobalResult:
    """Optimal semi-global alignment (free leading and trailing gaps)."""
    codes0 = s0.codes if isinstance(s0, Sequence) else np.asarray(s0, np.uint8)
    codes1 = s1.codes if isinstance(s1, Sequence) else np.asarray(s1, np.uint8)
    m, n = codes0.size, codes1.size
    if m == 0 or n == 0:
        raise AlignmentError("cannot align empty sequences")
    mats = _semiglobal_matrices(codes0, codes1, scheme)
    # Free end: best cell on the bottom row or right column.
    bottom_j = int(np.argmax(mats.H[m]))
    right_i = int(np.argmax(mats.H[:, n]))
    if mats.H[m, bottom_j] >= mats.H[right_i, n]:
        i, j = m, bottom_j
    else:
        i, j = right_i, n
    score = int(mats.H[i, j])
    sub = _sub_matrix(codes0, codes1, scheme)
    path = _traceback(mats, sub, scheme, i, j, TYPE_MATCH, local=False,
                      free_start=True)
    return SemiGlobalResult(alignment=path, score=score)


def semiglobal_score(s0: Sequence | np.ndarray, s1: Sequence | np.ndarray,
                     scheme: ScoringScheme) -> int:
    """Semi-global score only (no traceback)."""
    return semiglobal_align(s0, s1, scheme).score
