"""Reference (per-cell) DP implementations.

These are deliberately written as plain doubly-nested loops translating the
paper's Equations 1-3 verbatim.  They are quadratic in time *and* space and
only used as ground truth in the test suite: every optimized kernel
(`rowscan`, `wavefront`, `myers_miller`, the pipeline itself) is
cross-checked against them on small inputs.

Boundary gap states
-------------------
Global alignments of *partitions* (Sections IV-A, IV-E, IV-F) carry a gap
state at each edge.  ``start_gap`` waives the gap-opening penalty of a gap
that continues from the previous partition (implemented by seeding
``E[0,0]`` / ``F[0,0]`` with 0 so the boundary run extends instead of
reopening); ``end_gap`` selects which DP matrix the partition's score is
read from (H, E or F), because the next partition will continue that gap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import (
    NEG_INF,
    SCORE_DTYPE,
    TYPE_GAP_S0,
    TYPE_GAP_S1,
    TYPE_MATCH,
)
from repro.errors import AlignmentError
from repro.align.alignment import Alignment
from repro.align.scoring import ScoringScheme
from repro.sequences.sequence import Sequence

#: Boundary gap states reuse the crosspoint type codes: TYPE_MATCH means
#: "no gap crosses this edge".
GapState = int


@dataclass(frozen=True)
class DPMatrices:
    """Full H/E/F matrices, shape (m+1, n+1)."""

    H: np.ndarray
    E: np.ndarray
    F: np.ndarray

    @property
    def shape(self) -> tuple[int, int]:
        return self.H.shape


def sw_matrices(s0: Sequence, s1: Sequence, scheme: ScoringScheme) -> DPMatrices:
    """Local (Smith-Waterman/Gotoh) matrices per Equations 1-3."""
    m, n = len(s0), len(s1)
    H = np.zeros((m + 1, n + 1), dtype=SCORE_DTYPE)
    E = np.full((m + 1, n + 1), NEG_INF, dtype=SCORE_DTYPE)
    F = np.full((m + 1, n + 1), NEG_INF, dtype=SCORE_DTYPE)
    sub = scheme.substitution_matrix(s0.codes, s1.codes)
    for i in range(1, m + 1):
        for j in range(1, n + 1):
            E[i, j] = max(E[i, j - 1] - scheme.gap_ext,
                          H[i, j - 1] - scheme.gap_first)
            F[i, j] = max(F[i - 1, j] - scheme.gap_ext,
                          H[i - 1, j] - scheme.gap_first)
            H[i, j] = max(0, E[i, j], F[i, j],
                          H[i - 1, j - 1] + sub[i - 1, j - 1])
    return DPMatrices(H, E, F)


def global_matrices(s0: Sequence, s1: Sequence, scheme: ScoringScheme,
                    start_gap: GapState = TYPE_MATCH) -> DPMatrices:
    """Global (Needleman-Wunsch/Gotoh) matrices with boundary gap state."""
    m, n = len(s0), len(s1)
    H = np.full((m + 1, n + 1), NEG_INF, dtype=SCORE_DTYPE)
    E = np.full((m + 1, n + 1), NEG_INF, dtype=SCORE_DTYPE)
    F = np.full((m + 1, n + 1), NEG_INF, dtype=SCORE_DTYPE)
    H[0, 0] = 0
    if start_gap == TYPE_GAP_S0:
        E[0, 0] = 0
    elif start_gap == TYPE_GAP_S1:
        F[0, 0] = 0
    elif start_gap != TYPE_MATCH:
        raise AlignmentError(f"invalid start_gap {start_gap!r}")
    for j in range(1, n + 1):
        E[0, j] = max(E[0, j - 1] - scheme.gap_ext,
                      H[0, j - 1] - scheme.gap_first)
        H[0, j] = E[0, j]
    for i in range(1, m + 1):
        F[i, 0] = max(F[i - 1, 0] - scheme.gap_ext,
                      H[i - 1, 0] - scheme.gap_first)
        H[i, 0] = F[i, 0]
    sub = scheme.substitution_matrix(s0.codes, s1.codes)
    for i in range(1, m + 1):
        for j in range(1, n + 1):
            E[i, j] = max(E[i, j - 1] - scheme.gap_ext,
                          H[i, j - 1] - scheme.gap_first)
            F[i, j] = max(F[i - 1, j] - scheme.gap_ext,
                          H[i - 1, j] - scheme.gap_first)
            H[i, j] = max(E[i, j], F[i, j],
                          H[i - 1, j - 1] + sub[i - 1, j - 1])
    return DPMatrices(H, E, F)


def best_cell(H: np.ndarray) -> tuple[int, tuple[int, int]]:
    """Best score and its (first, row-major) position — Stage 1's output."""
    pos = int(np.argmax(H))
    i, j = divmod(pos, H.shape[1])
    return int(H[i, j]), (i, j)


def sw_score(s0: Sequence, s1: Sequence, scheme: ScoringScheme) -> int:
    """Optimal local alignment score (reference)."""
    return best_cell(sw_matrices(s0, s1, scheme).H)[0]


def global_score(s0: Sequence, s1: Sequence, scheme: ScoringScheme,
                 start_gap: GapState = TYPE_MATCH,
                 end_gap: GapState = TYPE_MATCH) -> int:
    """Optimal global score with boundary gap states (reference)."""
    mats = global_matrices(s0, s1, scheme, start_gap=start_gap)
    m, n = len(s0), len(s1)
    if end_gap == TYPE_MATCH:
        return int(mats.H[m, n])
    if end_gap == TYPE_GAP_S0:
        return int(mats.E[m, n])
    if end_gap == TYPE_GAP_S1:
        return int(mats.F[m, n])
    raise AlignmentError(f"invalid end_gap {end_gap!r}")


def _traceback(mats: DPMatrices, sub: np.ndarray, scheme: ScoringScheme,
               i: int, j: int, state: GapState, local: bool,
               free_start: bool = False) -> Alignment:
    """Shared affine traceback; walks H/E/F states back to the start.

    ``free_start`` stops at any boundary cell (semi-global alignment,
    where row 0 and column 0 carry free zero scores).
    """
    H, E, F = mats.H, mats.E, mats.F
    ops: list[int] = []
    while True:
        if state == TYPE_MATCH:
            if local and H[i, j] == 0:
                break
            if free_start and (i == 0 or j == 0):
                break
            if i == 0 and j == 0:
                break
            if (i > 0 and j > 0
                    and H[i, j] == H[i - 1, j - 1] + sub[i - 1, j - 1]):
                ops.append(TYPE_MATCH)
                i -= 1
                j -= 1
            elif H[i, j] == E[i, j]:
                state = TYPE_GAP_S0
            elif H[i, j] == F[i, j]:
                state = TYPE_GAP_S1
            else:  # pragma: no cover - matrix corruption guard
                raise AlignmentError(f"traceback stuck in H at ({i}, {j})")
        elif state == TYPE_GAP_S0:
            if j == 0:
                break  # boundary gap continues into the previous partition
            ops.append(TYPE_GAP_S0)
            if E[i, j] == H[i, j - 1] - scheme.gap_first:
                state = TYPE_MATCH
            elif E[i, j] != E[i, j - 1] - scheme.gap_ext:  # pragma: no cover
                raise AlignmentError(f"traceback stuck in E at ({i}, {j})")
            j -= 1
            if j == 0 and state == TYPE_GAP_S0 and E[i, 0] == NEG_INF:
                raise AlignmentError("E-gap run reached an unseeded boundary")
        elif state == TYPE_GAP_S1:
            if i == 0:
                break
            ops.append(TYPE_GAP_S1)
            if F[i, j] == H[i - 1, j] - scheme.gap_first:
                state = TYPE_MATCH
            elif F[i, j] != F[i - 1, j] - scheme.gap_ext:  # pragma: no cover
                raise AlignmentError(f"traceback stuck in F at ({i}, {j})")
            i -= 1
            if i == 0 and state == TYPE_GAP_S1 and F[0, j] == NEG_INF:
                raise AlignmentError("F-gap run reached an unseeded boundary")
        else:
            raise AlignmentError(f"invalid traceback state {state!r}")
    ops.reverse()
    return Alignment(i, j, np.asarray(ops, dtype=np.uint8))


def sw_align(s0: Sequence, s1: Sequence, scheme: ScoringScheme) -> Alignment:
    """Optimal local alignment with traceback (reference, quadratic space)."""
    mats = sw_matrices(s0, s1, scheme)
    _, (i, j) = best_cell(mats.H)
    sub = scheme.substitution_matrix(s0.codes, s1.codes)
    return _traceback(mats, sub, scheme, i, j, TYPE_MATCH, local=True)


def global_align(s0: Sequence, s1: Sequence, scheme: ScoringScheme,
                 start_gap: GapState = TYPE_MATCH,
                 end_gap: GapState = TYPE_MATCH) -> Alignment:
    """Optimal global alignment with boundary gap states (reference)."""
    mats = global_matrices(s0, s1, scheme, start_gap=start_gap)
    sub = scheme.substitution_matrix(s0.codes, s1.codes)
    return _traceback(mats, sub, scheme, len(s0), len(s1), end_gap, local=False)
