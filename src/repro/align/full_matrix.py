"""Vectorized full-matrix aligner with traceback.

This is the *base case* engine: Stage 5 partitions and the Myers-Miller
recursion bottom out here once a sub-problem fits comfortably in memory
(partitions are bounded by ``max_partition_size``, Section IV-F, so this
stays O(1) memory per partition and O(m+n) overall).

It runs the same scan-resolved row recurrence as :mod:`repro.align.rowscan`
but materializes all H/E/F rows, then recovers the path with the exact
affine traceback shared with the reference implementation.
"""

from __future__ import annotations

import numpy as np

from repro.constants import NEG_INF, SCORE_DTYPE, TYPE_GAP_S0, TYPE_GAP_S1, TYPE_MATCH
from repro.errors import AlignmentError
from repro.align.alignment import Alignment
from repro.align.reference import DPMatrices, _traceback, best_cell
from repro.align.scoring import ScoringScheme
from repro.sequences.sequence import N_CODE, Sequence


def dp_matrices(codes0: np.ndarray, codes1: np.ndarray, scheme: ScoringScheme,
                *, local: bool, start_gap: int = TYPE_MATCH) -> DPMatrices:
    """Full H/E/F matrices via vectorized rows (row loop only, no cell loop)."""
    codes0 = np.ascontiguousarray(codes0, dtype=np.uint8)
    codes1 = np.ascontiguousarray(codes1, dtype=np.uint8)
    m, n = codes0.size, codes1.size
    if m == 0 or n == 0:
        raise AlignmentError("cannot align empty sequences")
    gext = SCORE_DTYPE(scheme.gap_ext)
    gfirst = SCORE_DTYPE(scheme.gap_first)
    ext_ramp = np.arange(n + 1, dtype=SCORE_DTYPE) * gext

    H = np.empty((m + 1, n + 1), dtype=SCORE_DTYPE)
    E = np.empty((m + 1, n + 1), dtype=SCORE_DTYPE)
    F = np.empty((m + 1, n + 1), dtype=SCORE_DTYPE)
    E[0] = NEG_INF
    F[0] = NEG_INF
    if local:
        H[0] = 0
    else:
        H[0, 0] = 0
        if start_gap == TYPE_GAP_S0:
            E[0, 0] = 0
            E[0, 1:] = -ext_ramp[1:]
        else:
            E[0, 1:] = -(gfirst + ext_ramp[:-1])
        H[0, 1:] = E[0, 1:]
        if start_gap == TYPE_GAP_S1:
            F[0, 0] = 0

    sub_lut = np.full((5, n), SCORE_DTYPE(scheme.mismatch), dtype=SCORE_DTYPE)
    for code in range(4):
        sub_lut[code, codes1 == code] = SCORE_DTYPE(scheme.match)
    sub_lut[N_CODE, :] = SCORE_DTYPE(scheme.mismatch)

    X = np.empty(n + 1, dtype=SCORE_DTYPE)
    T = np.empty(n + 1, dtype=SCORE_DTYPE)
    for i in range(1, m + 1):
        sub = sub_lut[codes0[i - 1]]
        np.maximum(F[i - 1] - gext, H[i - 1] - gfirst, out=F[i])
        np.add(H[i - 1, :-1], sub, out=X[1:])
        np.maximum(X[1:], F[i, 1:], out=X[1:])
        if local:
            X[0] = 0
            F[i, 0] = NEG_INF
            np.maximum(X, 0, out=X)
        else:
            X[0] = F[i, 0]
        np.add(X, ext_ramp, out=T)
        np.maximum.accumulate(T, out=T)
        E[i, 1:] = T[:-1]
        E[i, 1:] -= gfirst + ext_ramp[:-1]
        E[i, 0] = NEG_INF
        np.maximum(X, E[i], out=H[i])
    return DPMatrices(H, E, F)


def _sub_matrix(codes0: np.ndarray, codes1: np.ndarray,
                scheme: ScoringScheme) -> np.ndarray:
    eq = codes0[:, None] == codes1[None, :]
    eq &= (codes0 != N_CODE)[:, None]
    return np.where(eq, SCORE_DTYPE(scheme.match), SCORE_DTYPE(scheme.mismatch))


def local_align(s0: Sequence | np.ndarray, s1: Sequence | np.ndarray,
                scheme: ScoringScheme) -> tuple[Alignment, int]:
    """Optimal local alignment and its score (vectorized full matrix)."""
    codes0 = s0.codes if isinstance(s0, Sequence) else np.asarray(s0, np.uint8)
    codes1 = s1.codes if isinstance(s1, Sequence) else np.asarray(s1, np.uint8)
    mats = dp_matrices(codes0, codes1, scheme, local=True)
    score, (i, j) = best_cell(mats.H)
    sub = _sub_matrix(codes0, codes1, scheme)
    return _traceback(mats, sub, scheme, i, j, TYPE_MATCH, local=True), score


def global_align(s0: Sequence | np.ndarray, s1: Sequence | np.ndarray,
                 scheme: ScoringScheme, *, start_gap: int = TYPE_MATCH,
                 end_gap: int = TYPE_MATCH) -> tuple[Alignment, int]:
    """Optimal global alignment with boundary gap states; returns (path, score).

    The score is read from H, E, or F at (m, n) according to ``end_gap``
    (the gap continues into the next partition, which waives its opening).
    """
    codes0 = s0.codes if isinstance(s0, Sequence) else np.asarray(s0, np.uint8)
    codes1 = s1.codes if isinstance(s1, Sequence) else np.asarray(s1, np.uint8)
    mats = dp_matrices(codes0, codes1, scheme, local=False, start_gap=start_gap)
    m, n = codes0.size, codes1.size
    if end_gap == TYPE_MATCH:
        score = int(mats.H[m, n])
    elif end_gap == TYPE_GAP_S0:
        score = int(mats.E[m, n])
    elif end_gap == TYPE_GAP_S1:
        score = int(mats.F[m, n])
    else:
        raise AlignmentError(f"invalid end_gap {end_gap!r}")
    sub = _sub_matrix(codes0, codes1, scheme)
    path = _traceback(mats, sub, scheme, m, n, end_gap, local=False)
    return path, score
