"""Query-profile substitution LUT, built once per (scheme, query).

Every sweep kernel scores row ``i`` by gathering a per-base vector from
a ``(5, n)`` lookup table over the column sequence — the classic *query
profile* (one row per alphabet code, one column per query base).  The
table depends only on the scoring scheme and the column codes, yet the
pipeline constructs many sweepers over the same pair within one run:
Stage 1 forward, Stage 2 reverse, Myers-Miller forward/reverse halves,
and every kernel-backend comparison.  Rebuilding the profile per
construction is pure waste, so this module memoizes it.

The cache is a small LRU keyed on ``(scheme, codes.tobytes())`` —
content-addressed, so a reversed sequence or a sub-slice hashes to its
own entry while repeated constructions over the same bytes share one
table.  Cached arrays are frozen (``writeable=False``): sharing is only
sound because every kernel treats the profile as read-only.

Very long queries are built directly instead of cached: hashing tens of
megabytes per construction is cheap next to the sweep, but pinning
several ``20 * n``-byte tables in an LRU is not.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np

from repro.constants import SCORE_DTYPE
from repro.sequences.sequence import N_CODE

#: Entries kept in the LRU (each is ``5 * n * 4`` bytes).
MAX_CACHE_ENTRIES = 16

#: Queries longer than this bypass the cache entirely.
MAX_CACHED_COLS = 1 << 20

_CACHE: OrderedDict[tuple, np.ndarray] = OrderedDict()
_LOCK = threading.Lock()
_HITS = 0
_MISSES = 0


def build_profile(scheme, codes1: np.ndarray) -> np.ndarray:
    """The ``(5, n)`` substitution LUT: row ``c`` scores base ``c``
    against every column; the N row never matches (CUDAlign masking)."""
    n = int(codes1.size)
    lut = np.full((5, n), SCORE_DTYPE(scheme.mismatch), dtype=SCORE_DTYPE)
    for code in range(4):
        lut[code, codes1 == code] = SCORE_DTYPE(scheme.match)
    lut[N_CODE, :] = SCORE_DTYPE(scheme.mismatch)
    return lut


def query_profile(scheme, codes1: np.ndarray) -> np.ndarray:
    """A (possibly shared) read-only query profile for this scheme/query.

    Callers must not write through the returned array; cached entries
    are marked non-writeable to make violations loud.
    """
    global _HITS, _MISSES
    if codes1.size > MAX_CACHED_COLS:
        return build_profile(scheme, codes1)
    key = (scheme, codes1.tobytes())
    with _LOCK:
        cached = _CACHE.get(key)
        if cached is not None:
            _CACHE.move_to_end(key)
            _HITS += 1
            return cached
    lut = build_profile(scheme, codes1)
    lut.flags.writeable = False
    with _LOCK:
        _MISSES += 1
        _CACHE[key] = lut
        _CACHE.move_to_end(key)
        while len(_CACHE) > MAX_CACHE_ENTRIES:
            _CACHE.popitem(last=False)
    return lut


def profile_cache_stats() -> dict[str, int]:
    """Hit/miss/size counters (tests and telemetry)."""
    with _LOCK:
        return {"hits": _HITS, "misses": _MISSES, "entries": len(_CACHE)}


def clear_profile_cache() -> None:
    """Drop every cached profile and reset the counters (tests)."""
    global _HITS, _MISSES
    with _LOCK:
        _CACHE.clear()
        _HITS = 0
        _MISSES = 0
