"""The alignment service's network front door (pure-stdlib asyncio).

``repro.gateway`` puts an HTTP/1.1 API in front of
:class:`~repro.service.AlignmentService`: job submission validated by
the same schema as ``repro batch`` spec files, status snapshots,
server-sent-event progress streams fed from the service's telemetry,
checksummed result retrieval, cancellation, and multi-tenant admission
control (token-bucket rates, concurrency quotas, queue-depth
backpressure with 429 + Retry-After).

Quick use::

    from repro.gateway import GatewayPolicy, GatewayRunner, ServiceDispatcher

    dispatcher = ServiceDispatcher("runs/gateway", workers=4)
    runner = GatewayRunner(dispatcher, GatewayPolicy(), port=8650).start()
    ...                      # POST http://127.0.0.1:8650/v1/jobs
    runner.stop()

On the command line: ``repro serve --root runs/gateway --port 8650``
(``--resume`` recovers the journal of a killed gateway — no accepted
job is lost).
"""

from repro.gateway.dispatcher import ServiceDispatcher
from repro.gateway.events import SERVICE_STREAM, EventBroker
from repro.gateway.http import (DEFAULT_MAX_BODY, HttpError, Request,
                                Response, SseStream, read_request)
from repro.gateway.policy import (DEFAULT_TENANT, PRIORITY_CLASSES,
                                  Admission, GatewayPolicy, TokenBucket,
                                  map_priority_class)
from repro.gateway.server import Gateway, GatewayRunner, serve

__all__ = [
    "Gateway", "GatewayRunner", "serve",
    "ServiceDispatcher",
    "GatewayPolicy", "TokenBucket", "Admission",
    "PRIORITY_CLASSES", "DEFAULT_TENANT", "map_priority_class",
    "EventBroker", "SERVICE_STREAM",
    "HttpError", "Request", "Response", "SseStream", "read_request",
    "DEFAULT_MAX_BODY",
]
