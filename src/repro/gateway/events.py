"""Event broker: the thread-to-asyncio bridge behind SSE streams.

The dispatcher's pump thread publishes job lifecycle events (and the
telemetry records drained from the service's
:class:`~repro.telemetry.QueueSink`); asyncio handlers subscribe per
job — or to the service-wide stream — and receive a bounded backlog
plus live events through an :class:`asyncio.Queue` fed with
``loop.call_soon_threadsafe``.

Every event is a plain JSON-safe dict::

    {"seq": 17, "stream": "<job_id>|service", "event": "running",
     "time": 1699.0, "data": {...}, "final": false}

``final`` marks a terminal lifecycle event; SSE handlers close the
stream after relaying it.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
import time
from typing import Any

#: Key of the service-wide stream (metrics, span completions).
SERVICE_STREAM = "service"

#: Backlog bound per stream; late subscribers replay at most this many.
MAX_HISTORY = 512


class EventBroker:
    """Publish from any thread; subscribe from the event loop."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._seq = itertools.count(1)
        self._history: dict[str, list[dict[str, Any]]] = {}
        self._subscribers: dict[
            str, list[tuple[asyncio.AbstractEventLoop,
                            "asyncio.Queue[dict[str, Any]]"]]] = {}

    # ------------------------------------------------------------ publish
    def publish(self, stream: str, event: str, data: Any = None, *,
                final: bool = False) -> dict[str, Any]:
        """Append one event to ``stream`` and wake its subscribers.

        Thread-safe; called from the dispatcher pump thread and from
        request handlers alike.
        """
        record = {"seq": next(self._seq), "stream": stream, "event": event,
                  "time": time.time(), "data": data, "final": final}
        with self._lock:
            history = self._history.setdefault(stream, [])
            history.append(record)
            del history[:-MAX_HISTORY]
            targets = list(self._subscribers.get(stream, ()))
        for loop, queue in targets:
            try:
                loop.call_soon_threadsafe(queue.put_nowait, record)
            except RuntimeError:    # loop already closed mid-shutdown
                pass
        return record

    # ---------------------------------------------------------- subscribe
    def subscribe(self, stream: str
                  ) -> tuple[list[dict[str, Any]],
                             "asyncio.Queue[dict[str, Any]]"]:
        """Join ``stream`` from the running event loop.

        Returns the backlog so far (oldest first) and the live queue;
        events published after this call appear only on the queue, so a
        consumer that relays backlog-then-queue sees every event exactly
        once, in ``seq`` order.
        """
        loop = asyncio.get_running_loop()
        queue: "asyncio.Queue[dict[str, Any]]" = asyncio.Queue()
        with self._lock:
            backlog = list(self._history.get(stream, ()))
            self._subscribers.setdefault(stream, []).append((loop, queue))
        return backlog, queue

    def unsubscribe(self, stream: str,
                    queue: "asyncio.Queue[dict[str, Any]]") -> None:
        with self._lock:
            subs = self._subscribers.get(stream, [])
            self._subscribers[stream] = [
                (loop, q) for loop, q in subs if q is not queue]

    # -------------------------------------------------------------- views
    def history(self, stream: str) -> list[dict[str, Any]]:
        with self._lock:
            return list(self._history.get(stream, ()))
