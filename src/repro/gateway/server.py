"""``repro.gateway``'s front door: the asyncio HTTP server.

Endpoints (all JSON unless noted):

====== ============================ ===========================================
Method Path                         Purpose
====== ============================ ===========================================
POST   /v1/jobs                     submit one JobSpec payload -> 201
GET    /v1/jobs                     list jobs (``?tenant=`` filters)
GET    /v1/jobs/{id}                job status snapshot
GET    /v1/jobs/{id}/events         server-sent events progress stream
GET    /v1/jobs/{id}/result         final result (checksummed, see below)
DELETE /v1/jobs/{id}                cancel (running attempts terminated)
GET    /v1/healthz                  health: ok|degraded|unhealthy (503)
GET    /v1/metrics                  service metrics snapshot
====== ============================ ===========================================

Tenancy is declared per request with the ``X-Repro-Tenant`` header
(``anonymous`` when absent).  Submissions pass the
:class:`~repro.gateway.policy.GatewayPolicy` gate — token-bucket rate,
per-tenant concurrency, global queue depth — and a refusal is an HTTP
429 whose ``Retry-After`` header says when to try again.  A submission
accepted with 201 is already journaled: kill the gateway and a restart
with ``--resume`` finishes the job.

``/result`` responses carry an ``X-Repro-Digest`` header — the SHA-256
of the exact response body — so clients can verify the payload they
received end to end (the artifacts behind it are themselves checksummed
on disk by the integrity layer).
"""

from __future__ import annotations

import asyncio
import hashlib
import math
import threading
from typing import Any, Callable

from repro.errors import ConfigError
from repro.gateway.dispatcher import ServiceDispatcher
from repro.gateway.events import SERVICE_STREAM
from repro.gateway.http import (DEFAULT_MAX_BODY, HttpError, Request,
                                Response, SseStream, read_request)
from repro.gateway.policy import (DEFAULT_TENANT, GatewayPolicy,
                                  map_priority_class)
from repro.service.job import JobState
from repro.service.specfile import spec_from_payload

#: Seconds between SSE heartbeat comments on an idle stream.
SSE_HEARTBEAT_SECONDS = 15.0


class Gateway:
    """One HTTP front door over one :class:`ServiceDispatcher`."""

    def __init__(self, dispatcher: ServiceDispatcher,
                 policy: GatewayPolicy | None = None, *,
                 host: str = "127.0.0.1", port: int = 0,
                 max_body: int = DEFAULT_MAX_BODY):
        self.dispatcher = dispatcher
        self.policy = policy if policy is not None else GatewayPolicy()
        self.host = host
        self.requested_port = port
        self.max_body = max_body
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.Task] = set()

    # ----------------------------------------------------------- lifecycle
    @property
    def port(self) -> int:
        """The bound port (meaningful after :meth:`start`)."""
        if self._server is None:
            return self.requested_port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        self.dispatcher.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.requested_port)

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._connections):   # idle keep-alives linger
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections,
                                 return_exceptions=True)
            self._connections.clear()

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    # ---------------------------------------------------------- connection
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            while True:
                try:
                    request = await read_request(reader, self.max_body)
                except HttpError as exc:
                    writer.write(Response.error(
                        exc.status, exc.message,
                        headers=exc.headers).encode(keep_alive=False))
                    await writer.drain()
                    return
                if request is None:
                    return
                route = self._route(request.path)
                if request.method == "GET" and route is not None \
                        and route[0] == "events":
                    await self._serve_events(request, writer)
                    return          # SSE owns the connection to its end
                response = self._dispatch(request)
                writer.write(response.encode(keep_alive=request.keep_alive))
                await writer.drain()
                if not request.keep_alive:
                    return
        except (ConnectionError, asyncio.IncompleteReadError):
            pass                    # client went away; nothing to answer
        except asyncio.CancelledError:
            pass                    # gateway stopping; close out quietly
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    # ------------------------------------------------------------- routing
    @staticmethod
    def _route(path: str) -> tuple[str, str | None] | None:
        """Map a path to (route name, job_id or None); None = no route."""
        parts = [p for p in path.split("/") if p]
        if not parts or parts[0] != "v1":
            return None
        if parts[1:] == ["healthz"]:
            return ("healthz", None)
        if parts[1:] == ["metrics"]:
            return ("metrics", None)
        if parts[1:] == ["events"]:
            return ("events", SERVICE_STREAM)
        if len(parts) >= 2 and parts[1] == "jobs":
            if len(parts) == 2:
                return ("jobs", None)
            if len(parts) == 3:
                return ("job", parts[2])
            if len(parts) == 4 and parts[3] == "events":
                return ("events", parts[2])
            if len(parts) == 4 and parts[3] == "result":
                return ("result", parts[2])
        return None

    def _dispatch(self, request: Request) -> Response:
        route = self._route(request.path)
        if route is None:
            return Response.error(404, f"no route for {request.path!r}")
        name, job_id = route
        handlers: dict[tuple[str, str],
                       Callable[[Request, str | None], Response]] = {
            ("healthz", "GET"): self._get_healthz,
            ("metrics", "GET"): self._get_metrics,
            ("jobs", "GET"): self._list_jobs,
            ("jobs", "POST"): self._post_job,
            ("job", "GET"): self._get_job,
            ("job", "DELETE"): self._delete_job,
            ("result", "GET"): self._get_result,
        }
        handler = handlers.get((name, request.method))
        if handler is None:
            return Response.error(
                405, f"{request.method} not allowed on {request.path!r}")
        try:
            return handler(request, job_id)
        except HttpError as exc:
            return Response.error(exc.status, exc.message,
                                  headers=exc.headers)
        except ConfigError as exc:
            return Response.error(400, str(exc))
        except Exception as exc:    # never leak a traceback as a hang
            return Response.error(500, f"{type(exc).__name__}: {exc}")

    # ------------------------------------------------------------ handlers
    @staticmethod
    def _tenant(request: Request) -> str:
        return request.header("x-repro-tenant", DEFAULT_TENANT) \
            or DEFAULT_TENANT

    def _get_healthz(self, request: Request, job_id: str | None) -> Response:
        """``ok`` and ``degraded`` answer 200 (the gateway still serves);
        ``unhealthy`` answers 503 + Retry-After so load balancers and
        benchmarks fail fast instead of queueing into a dead pump."""
        health = self.dispatcher.health()
        if health["status"] == "unhealthy":
            return Response.json(health, status=503,
                                 headers={"Retry-After": "5"})
        return Response.json(health)

    def _get_metrics(self, request: Request, job_id: str | None) -> Response:
        return Response.json({"metrics": self.dispatcher.metrics(),
                              "tenants": self.policy.stats()})

    def _list_jobs(self, request: Request, job_id: str | None) -> Response:
        tenant = request.query.get("tenant")
        return Response.json({"jobs": self.dispatcher.jobs(tenant)})

    def _post_job(self, request: Request, job_id: str | None) -> Response:
        tenant = self._tenant(request)
        payload = request.json()
        if not isinstance(payload, dict):
            raise HttpError(400, "submission body must be a JSON object")
        payload = dict(payload)
        priority_class = payload.pop("priority_class", None)
        if priority_class is not None and "priority" not in payload:
            payload["priority"] = map_priority_class(priority_class)

        if self.dispatcher.disk_paused:
            # Disk-guard backpressure: accepting a job means journaling
            # it onto the very disk that is out of space.
            raise HttpError(503, "service paused: disk free space below "
                                 "low-water mark",
                            headers={"Retry-After": "10"})
        admission = self.policy.admit(
            tenant, tenant_active=self.dispatcher.tenant_active(tenant),
            queue_depth=self.dispatcher.queue_depth)
        if not admission:
            retry = max(1, math.ceil(admission.retry_after))
            raise HttpError(429, admission.reason,
                            headers={"Retry-After": str(retry)})

        try:
            spec = spec_from_payload(payload, where="submission")
        except ConfigError as exc:
            raise HttpError(400, str(exc)) from exc
        try:
            snapshot = self.dispatcher.submit(spec, tenant)
        except ConfigError as exc:   # duplicate job id
            raise HttpError(409, str(exc)) from exc
        return Response.json(
            {"job_id": spec.job_id, "tenant": tenant,
             "state": snapshot["state"], "priority": spec.priority},
            status=201,
            headers={"Location": f"/v1/jobs/{spec.job_id}"})

    def _get_job(self, request: Request, job_id: str | None) -> Response:
        snapshot = self.dispatcher.snapshot(job_id)
        if snapshot is None:
            raise HttpError(404, f"unknown job {job_id!r}")
        return Response.json(snapshot)

    def _delete_job(self, request: Request, job_id: str | None) -> Response:
        snapshot = self.dispatcher.snapshot(job_id)
        if snapshot is None:
            raise HttpError(404, f"unknown job {job_id!r}")
        owner = snapshot.get("tenant")
        tenant = self._tenant(request)
        if owner is not None and owner != tenant:
            raise HttpError(403,
                            f"job {job_id!r} belongs to tenant {owner!r}")
        if not self.dispatcher.cancel(job_id):
            raise HttpError(
                409, f"job {job_id!r} is already {snapshot['state']}")
        return Response.json({"job_id": job_id, "state": "cancelled"})

    def _get_result(self, request: Request, job_id: str | None) -> Response:
        snapshot = self.dispatcher.snapshot(job_id)
        if snapshot is None:
            raise HttpError(404, f"unknown job {job_id!r}")
        state = snapshot["state"]
        if state in (JobState.FAILED, JobState.CANCELLED,
                     JobState.QUARANTINED):
            raise HttpError(410, f"job {job_id!r} {state}: "
                                 f"{snapshot.get('error') or 'no result'}")
        if state not in (JobState.SUCCEEDED, JobState.CACHED):
            raise HttpError(409, f"job {job_id!r} is {state}; result not "
                                 f"ready", headers={"Retry-After": "1"})
        response = Response.json({"job_id": job_id, "state": state,
                                  "cache_hit": snapshot["cache_hit"],
                                  "result": snapshot["result"]})
        digest = hashlib.sha256(response.body).hexdigest()
        response.headers["X-Repro-Digest"] = f"sha256:{digest}"
        return response

    # ----------------------------------------------------------------- SSE
    async def _serve_events(self, request: Request,
                            writer: asyncio.StreamWriter) -> None:
        stream_key = self._route(request.path)[1]
        if stream_key != SERVICE_STREAM and \
                self.dispatcher.snapshot(stream_key) is None:
            writer.write(Response.error(
                404, f"unknown job {stream_key!r}").encode(keep_alive=False))
            await writer.drain()
            return
        backlog, queue = self.dispatcher.broker.subscribe(stream_key)
        stream = SseStream(writer)
        try:
            await stream.start({"X-Repro-Stream": stream_key})
            for record in backlog:
                await self._send_event(stream, record)
                if record.get("final"):
                    return
            while True:
                try:
                    record = await asyncio.wait_for(
                        queue.get(), timeout=SSE_HEARTBEAT_SECONDS)
                except asyncio.TimeoutError:
                    await stream.comment()
                    continue
                await self._send_event(stream, record)
                if record.get("final"):
                    return
        except (ConnectionError, asyncio.CancelledError):
            pass                    # subscriber went away
        finally:
            self.dispatcher.broker.unsubscribe(stream_key, queue)

    @staticmethod
    async def _send_event(stream: SseStream, record: dict[str, Any]) -> None:
        await stream.send(record["event"],
                          {"stream": record["stream"],
                           "time": record["time"],
                           "data": record["data"],
                           "final": record["final"]},
                          event_id=record["seq"])


class GatewayRunner:
    """Run a :class:`Gateway` on a background thread with its own loop.

    The embedding surface tests, benchmarks and notebooks use::

        runner = GatewayRunner(dispatcher, policy, port=0)
        runner.start()                 # returns once the socket is bound
        ...HTTP against 127.0.0.1:runner.port...
        runner.stop()                  # stops serving + closes the service
    """

    def __init__(self, dispatcher: ServiceDispatcher,
                 policy: GatewayPolicy | None = None, *,
                 host: str = "127.0.0.1", port: int = 0,
                 max_body: int = DEFAULT_MAX_BODY):
        self.gateway = Gateway(dispatcher, policy, host=host, port=port,
                               max_body=max_body)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()

    @property
    def port(self) -> int:
        return self.gateway.port

    @property
    def dispatcher(self) -> ServiceDispatcher:
        return self.gateway.dispatcher

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        self._loop.run_until_complete(self.gateway.start())
        self._ready.set()
        try:
            self._loop.run_forever()
        finally:
            self._loop.run_until_complete(self.gateway.stop())
            self._loop.close()

    def start(self, timeout: float = 10.0) -> "GatewayRunner":
        self._thread = threading.Thread(target=self._run,
                                        name="repro-gateway", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout):  # pragma: no cover
            raise RuntimeError("gateway did not come up")
        return self

    def stop(self) -> None:
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self.gateway.dispatcher.close()


async def serve(gateway: Gateway,
                shutdown: "asyncio.Event | None" = None,
                on_start: Callable[[Gateway], Any] | None = None) -> None:
    """Start ``gateway`` and serve until ``shutdown`` is set (the CLI's
    run-forever body; signal handlers set the event)."""
    await gateway.start()
    if on_start is not None:
        on_start(gateway)
    if shutdown is None:
        shutdown = asyncio.Event()
    serve_task = asyncio.ensure_future(gateway.serve_forever())
    stop_task = asyncio.ensure_future(shutdown.wait())
    try:
        await asyncio.wait({serve_task, stop_task},
                           return_when=asyncio.FIRST_COMPLETED)
    finally:
        for task in (serve_task, stop_task):
            task.cancel()
        await gateway.stop()
