"""Multi-tenant admission policy: quotas, rate limits, backpressure.

Pure decision logic, no I/O and an injectable clock, so every rule is
unit-testable without a server.  The gateway consults
:meth:`GatewayPolicy.admit` once per submission; a refusal carries the
HTTP status (always 429 here) and a ``Retry-After`` hint computed from
the limiting resource — token-bucket refill time for rate limits, a
queue-drain estimate for depth backpressure.

Priority classes map client-facing names onto the numeric
``JobSpec.priority`` scale (higher runs first): ``interactive`` >
``normal`` > ``batch``.  A numeric ``priority`` in the submission wins
over the class mapping — power users keep the full scale.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ConfigError

#: Client-facing priority classes -> JobSpec.priority.
PRIORITY_CLASSES = {"batch": 0, "normal": 10, "interactive": 20}

#: Tenant id used when the X-Repro-Tenant header is absent.
DEFAULT_TENANT = "anonymous"


def map_priority_class(name: str) -> int:
    """Numeric priority for a class name (ConfigError on unknown)."""
    try:
        return PRIORITY_CLASSES[name]
    except KeyError:
        raise ConfigError(
            f"unknown priority class {name!r}; expected one of "
            f"{sorted(PRIORITY_CLASSES)}") from None


@dataclass
class Admission:
    """The outcome of one admission check."""

    allowed: bool
    reason: str = ""
    retry_after: float = 0.0       # seconds (rounded up into the header)

    def __bool__(self) -> bool:
        return self.allowed


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/sec, ``burst`` capacity."""

    def __init__(self, rate: float, burst: float,
                 clock: Callable[[], float] = time.monotonic):
        if rate <= 0 or burst <= 0:
            raise ConfigError("token bucket rate and burst must be positive")
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._tokens = burst
        self._stamp = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(self.burst,
                           self._tokens + (now - self._stamp) * self.rate)
        self._stamp = now

    def take(self) -> float:
        """Consume one token; returns 0.0 on success, else the seconds
        until one becomes available (and consumes nothing)."""
        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return 0.0
        return (1.0 - self._tokens) / self.rate


@dataclass
class TenantState:
    """Per-tenant book-keeping the policy accumulates."""

    bucket: TokenBucket
    submitted: int = 0
    rejected: int = 0


@dataclass
class GatewayPolicy:
    """Admission rules for one gateway instance.

    Args:
        max_active_per_tenant: concurrent non-terminal jobs one tenant
            may hold (pending + running); the per-tenant concurrency
            quota.
        rate_per_tenant: sustained submissions/sec per tenant.
        burst_per_tenant: token-bucket burst size.
        max_queue_depth: global pending-job ceiling — the explicit
            backpressure valve; beyond it every tenant gets 429.
        drain_seconds_per_job: Retry-After scale for depth backpressure
            (a rough time-per-job estimate; the header is a hint, not a
            promise).
        clock: injectable monotonic clock for tests.
    """

    max_active_per_tenant: int = 8
    rate_per_tenant: float = 50.0
    burst_per_tenant: float = 20.0
    max_queue_depth: int = 256
    drain_seconds_per_job: float = 1.0
    clock: Callable[[], float] = time.monotonic
    tenants: dict[str, TenantState] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.max_active_per_tenant < 1:
            raise ConfigError("max_active_per_tenant must be positive")
        if self.max_queue_depth < 1:
            raise ConfigError("max_queue_depth must be positive")

    def _tenant(self, tenant: str) -> TenantState:
        state = self.tenants.get(tenant)
        if state is None:
            state = TenantState(TokenBucket(
                self.rate_per_tenant, self.burst_per_tenant, self.clock))
            self.tenants[tenant] = state
        return state

    def admit(self, tenant: str, *, tenant_active: int,
              queue_depth: int) -> Admission:
        """May ``tenant`` submit one more job right now?

        ``tenant_active`` is the tenant's current non-terminal job count
        and ``queue_depth`` the service-wide pending count — the caller
        (the gateway) owns those observations; the policy owns the rules.
        """
        state = self._tenant(tenant)
        if queue_depth >= self.max_queue_depth:
            state.rejected += 1
            return Admission(
                False,
                f"queue depth {queue_depth} at capacity "
                f"({self.max_queue_depth})",
                retry_after=max(1.0, (queue_depth - self.max_queue_depth + 1)
                                * self.drain_seconds_per_job))
        if tenant_active >= self.max_active_per_tenant:
            state.rejected += 1
            return Admission(
                False,
                f"tenant {tenant!r} has {tenant_active} active jobs "
                f"(limit {self.max_active_per_tenant})",
                retry_after=self.drain_seconds_per_job)
        wait = state.bucket.take()
        if wait > 0:
            state.rejected += 1
            return Admission(
                False,
                f"tenant {tenant!r} over submission rate "
                f"({self.rate_per_tenant}/s)",
                retry_after=wait)
        state.submitted += 1
        return Admission(True)

    def stats(self) -> dict[str, dict[str, int]]:
        return {tenant: {"submitted": state.submitted,
                         "rejected": state.rejected}
                for tenant, state in sorted(self.tenants.items())}
