"""Minimal HTTP/1.1 plumbing over asyncio streams (pure stdlib).

Just enough protocol for the gateway: request parsing with hard limits
(request-line length, header count/size, body size), JSON response
helpers, and a server-sent-events writer.  Anything outside the strict
subset — bad framing, oversized anything, unsupported transfer codings —
is rejected with a typed :class:`HttpError` that maps onto a 4xx
response, never an exception escaping into the connection handler.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any
from urllib.parse import parse_qs, unquote, urlsplit

#: Protocol limits (bytes / counts); the body cap is per-gateway.
MAX_REQUEST_LINE = 8192
MAX_HEADER_BYTES = 16384
MAX_HEADERS = 64
DEFAULT_MAX_BODY = 1 << 20

_REASONS = {
    200: "OK", 201: "Created", 202: "Accepted", 204: "No Content",
    400: "Bad Request", 403: "Forbidden", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout", 409: "Conflict",
    410: "Gone", 413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 501: "Not Implemented",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A request the gateway refuses; becomes a JSON error response."""

    def __init__(self, status: int, message: str,
                 headers: dict[str, str] | None = None):
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = headers or {}


@dataclass
class Request:
    """One parsed request."""

    method: str
    path: str                       # decoded path, no query string
    query: dict[str, str]           # first value per key
    headers: dict[str, str]         # lower-cased names
    body: bytes = b""
    keep_alive: bool = True

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)

    def json(self) -> Any:
        """Decode the body as JSON (400 on failure)."""
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"malformed JSON body: {exc}") from exc


async def read_request(reader: asyncio.StreamReader,
                       max_body: int = DEFAULT_MAX_BODY) -> Request | None:
    """Parse one request off the stream; ``None`` on a clean EOF.

    Raises :class:`HttpError` for protocol violations — the caller sends
    the error response and closes the connection.
    """
    try:
        line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None            # clean close between requests
        raise HttpError(400, "truncated request line") from exc
    except asyncio.LimitOverrunError as exc:
        raise HttpError(400, "request line too long") from exc
    if len(line) > MAX_REQUEST_LINE:
        raise HttpError(400, "request line too long")
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise HttpError(400, "malformed request line")
    method, target, version = parts
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise HttpError(400, f"unsupported protocol {version!r}")

    headers: dict[str, str] = {}
    header_bytes = 0
    while True:
        try:
            raw = await reader.readuntil(b"\r\n")
        except (asyncio.IncompleteReadError,
                asyncio.LimitOverrunError) as exc:
            raise HttpError(400, "truncated headers") from exc
        if raw in (b"\r\n", b"\n"):
            break
        header_bytes += len(raw)
        if header_bytes > MAX_HEADER_BYTES or len(headers) >= MAX_HEADERS:
            raise HttpError(400, "headers too large")
        text = raw.decode("latin-1").rstrip("\r\n")
        name, sep, value = text.partition(":")
        if not sep or not name.strip():
            raise HttpError(400, f"malformed header line {text!r}")
        headers[name.strip().lower()] = value.strip()

    if headers.get("transfer-encoding"):
        raise HttpError(501, "chunked transfer encoding not supported")
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError as exc:
            raise HttpError(400, "bad Content-Length") from exc
        if length < 0:
            raise HttpError(400, "bad Content-Length")
        if length > max_body:
            raise HttpError(413, f"body exceeds {max_body} byte limit")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise HttpError(400, "truncated body") from exc

    split = urlsplit(target)
    query = {key: values[0]
             for key, values in parse_qs(split.query).items()}
    connection = headers.get("connection", "").lower()
    keep_alive = (version == "HTTP/1.1" and connection != "close") or \
                 (version == "HTTP/1.0" and connection == "keep-alive")
    return Request(method=method.upper(), path=unquote(split.path),
                   query=query, headers=headers, body=body,
                   keep_alive=keep_alive)


@dataclass
class Response:
    """One response to serialize; JSON bodies via :meth:`json`."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: dict[str, str] = field(default_factory=dict)

    @classmethod
    def json(cls, payload: Any, status: int = 200,
             headers: dict[str, str] | None = None) -> "Response":
        body = json.dumps(payload, indent=2, sort_keys=True,
                          default=str).encode("utf-8") + b"\n"
        return cls(status=status, body=body, headers=headers or {})

    @classmethod
    def error(cls, status: int, message: str,
              headers: dict[str, str] | None = None) -> "Response":
        return cls.json({"error": message, "status": status},
                        status=status, headers=headers)

    def encode(self, keep_alive: bool = True) -> bytes:
        reason = _REASONS.get(self.status, "Unknown")
        lines = [f"HTTP/1.1 {self.status} {reason}",
                 f"Content-Type: {self.content_type}",
                 f"Content-Length: {len(self.body)}",
                 f"Connection: {'keep-alive' if keep_alive else 'close'}"]
        lines += [f"{name}: {value}" for name, value in self.headers.items()]
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        return head + self.body


class SseStream:
    """Server-sent events over one response (RFC-less but standard).

    Usage: ``await start()`` once, then ``await send(event, data)`` per
    event.  The connection is dedicated to the stream — SSE responses
    have no Content-Length, so the server closes the socket to end them.
    """

    def __init__(self, writer: asyncio.StreamWriter):
        self.writer = writer

    async def start(self, extra_headers: dict[str, str] | None = None
                    ) -> None:
        lines = ["HTTP/1.1 200 OK",
                 "Content-Type: text/event-stream",
                 "Cache-Control: no-store",
                 "Connection: close"]
        lines += [f"{k}: {v}" for k, v in (extra_headers or {}).items()]
        self.writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
        await self.writer.drain()

    async def send(self, event: str, data: Any, *,
                   event_id: int | None = None) -> None:
        chunk = ""
        if event_id is not None:
            chunk += f"id: {event_id}\n"
        chunk += f"event: {event}\n"
        payload = json.dumps(data, sort_keys=True, default=str)
        chunk += f"data: {payload}\n\n"
        self.writer.write(chunk.encode("utf-8"))
        await self.writer.drain()

    async def comment(self, text: str = "keep-alive") -> None:
        """A heartbeat line clients ignore (keeps proxies from timing out)."""
        self.writer.write(f": {text}\n\n".encode("utf-8"))
        await self.writer.drain()
