"""The bridge between the asyncio front door and the synchronous service.

:class:`AlignmentService` is deliberately synchronous — its queue,
worker pool and journal are plain blocking code — so the gateway drives
it from one background *pump thread* that repeatedly calls
``service.step()`` (dispatch + poll + settle).  Every touch of the
service goes through one lock; request handlers only ever hold it for
microsecond-scale operations (submit a spec, snapshot a record), so the
event loop never blocks on an alignment.

The pump also turns state into events: after each round it diffs job
states against the last round and publishes lifecycle events
(``queued``/``running``/``retrying``/``succeeded``/``cached``/
``failed``/``cancelled``/``quarantined``) to the
:class:`~repro.gateway.events.EventBroker`,
and drains the service's :class:`~repro.telemetry.QueueSink` —
``service.job`` span completions land on the owning job's stream, and a
throttled metrics snapshot lands on the service-wide stream.

Kill-and-restart safety comes for free from the service: every accepted
submission is journaled before the HTTP 201 goes out, so a gateway
started with ``resume=True`` replays the journal and finishes what an
earlier process accepted.
"""

from __future__ import annotations

import threading
import time
from typing import Any

from repro.errors import ConfigError
from repro.gateway.events import SERVICE_STREAM, EventBroker
from repro.service.job import JobRecord, JobSpec, JobState
from repro.service.service import AlignmentService
from repro.telemetry.sinks import QueueSink

#: Lifecycle event name per (previous state -> new state) edge; states
#: not listed fall back to the new state's name.
_FINAL_STATES = frozenset({JobState.SUCCEEDED, JobState.CACHED,
                           JobState.FAILED, JobState.CANCELLED,
                           JobState.QUARANTINED})

#: Result-summary keys worth carrying in terminal events (the full
#: payload stays behind GET /v1/jobs/{id}/result).
_EVENT_RESULT_KEYS = ("best_score", "alignment_length", "wall_seconds",
                      "resumed_from_row")


class ServiceDispatcher:
    """Owns an :class:`AlignmentService` and pumps it from a thread."""

    def __init__(self, root: str, *, workers: int = 1, resume: bool = False,
                 poll_seconds: float = 0.02, metrics_interval: float = 1.0,
                 sinks: tuple = (), cpu_count: int | None = None,
                 supervisor=None, batching=None):
        self.sink = QueueSink()
        self.service = AlignmentService(
            root, workers=workers, resume=resume,
            sinks=(self.sink,) + tuple(sinks), cpu_count=cpu_count,
            supervisor=supervisor, batching=batching)
        self.broker = EventBroker()
        self.poll_seconds = poll_seconds
        self.metrics_interval = metrics_interval
        self._lock = threading.RLock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._states: dict[str, str] = {}
        self._tenants: dict[str, str] = {}
        self._paused = False
        self._last_metrics = 0.0
        self._pump_error: str | None = None
        self._pump_restarts = 0
        # Jobs recovered from the journal predate this process: seed the
        # state map (emitting their current state as the first event
        # keeps late SSE subscribers coherent).
        for record in self.service.queue.records():
            self._states[record.job_id] = record.state
            self.broker.publish(record.job_id, self._event_name(record),
                                self._event_data(record),
                                final=record.state in _FINAL_STATES)

    # ----------------------------------------------------------- lifecycle
    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(target=self._pump,
                                        name="repro-gateway-pump",
                                        daemon=True)
        self._thread.start()

    def ensure_pump(self) -> str:
        """Supervise the pump thread itself.

        Returns the pump component state: ``"ok"`` (alive, never
        crashed), ``"degraded"`` (crashed once and was restarted — the
        one-shot restart happens right here), or ``"dead"`` (crashed
        again past the restart budget; the gateway reports unhealthy and
        a human gets to look at :attr:`pump_error`).
        """
        if self._thread is None or self._stop.is_set():
            return "ok"     # nothing running to supervise
        if self._thread.is_alive():
            return "degraded" if self._pump_restarts else "ok"
        if self._pump_restarts < 1:
            self._pump_restarts += 1
            with self._lock:
                self.service.telemetry.metrics.counter(
                    "supervision.pump_restarts").add(1)
            self._thread = None
            self.start()
            return "degraded"
        return "dead"

    @property
    def pump_error(self) -> str | None:
        """The exception that killed the pump thread, if any."""
        return self._pump_error

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def close(self) -> None:
        self.stop()
        with self._lock:
            self.service.write_manifest()
            self.service.close()

    def pause(self) -> None:
        """Suspend dispatching (tests use this to pin jobs in PENDING;
        submissions and cancellations still work)."""
        self._paused = True

    def resume(self) -> None:
        self._paused = False

    # ------------------------------------------------------------- actions
    def submit(self, spec: JobSpec, tenant: str) -> dict[str, Any]:
        """Thread-safe submission; journaled before this returns."""
        self.ensure_pump()   # a dead pump must not silently strand jobs
        with self._lock:
            record = self.service.submit(spec)
            self._tenants[record.job_id] = tenant
            self._states[record.job_id] = record.state
            snapshot = self._snapshot_locked(record)
        self.broker.publish(record.job_id, "queued",
                            {"tenant": tenant, "state": record.state,
                             "priority": spec.priority})
        return snapshot

    def cancel(self, job_id: str) -> bool:
        """Cancel via the service; ``False`` when already terminal."""
        with self._lock:
            cancelled = self.service.cancel(job_id)
            events = self._sync_locked() if cancelled else []
        self._publish(events)
        return cancelled

    # --------------------------------------------------------------- views
    def snapshot(self, job_id: str) -> dict[str, Any] | None:
        with self._lock:
            record = self.service.queue.find(job_id)
            if record is None:
                return None
            return self._snapshot_locked(record)

    def jobs(self, tenant: str | None = None) -> list[dict[str, Any]]:
        with self._lock:
            records = self.service.queue.records()
            return [self._snapshot_locked(r) for r in records
                    if tenant is None
                    or self._tenants.get(r.job_id) == tenant]

    def tenant_active(self, tenant: str) -> int:
        """Non-terminal jobs currently owned by ``tenant``."""
        with self._lock:
            return sum(1 for r in self.service.queue.records()
                       if not r.done
                       and self._tenants.get(r.job_id) == tenant)

    def tenant_of(self, job_id: str) -> str | None:
        with self._lock:
            return self._tenants.get(job_id)

    @property
    def queue_depth(self) -> int:
        with self._lock:
            return self.service.queue.depth

    def metrics(self) -> dict[str, Any]:
        with self._lock:
            return dict(self.service.telemetry.metrics.snapshot())

    def health(self) -> dict[str, Any]:
        """Component-level health: ``ok`` | ``degraded`` | ``unhealthy``.

        The pump component self-heals here (see :meth:`ensure_pump`);
        a tripped disk guard degrades the gateway without killing it;
        a pump dead past its restart budget is ``unhealthy``.
        """
        pump = self.ensure_pump()
        with self._lock:
            queue = self.service.queue
            disk_paused = self.service.disk_paused
            quarantined = sum(1 for r in queue.records()
                              if r.state == JobState.QUARANTINED)
            if pump == "dead":
                status = "unhealthy"
            elif pump == "degraded" or disk_paused:
                status = "degraded"
            else:
                status = "ok"
            return {
                "status": status,
                "components": {
                    "pump": pump,
                    "disk": "paused" if disk_paused else "ok",
                },
                "pump_error": self._pump_error,
                "jobs": len(queue),
                "queue_depth": queue.depth,
                "in_flight": self.service.pool.in_flight,
                "workers": self.service.pool.workers,
                "quarantined": quarantined,
                "paused": self._paused,
            }

    @property
    def disk_paused(self) -> bool:
        with self._lock:
            return self.service.disk_paused

    # ------------------------------------------------------------ internals
    def _snapshot_locked(self, record: JobRecord) -> dict[str, Any]:
        snapshot = record.to_json()
        snapshot["tenant"] = self._tenants.get(record.job_id)
        return snapshot

    @staticmethod
    def _event_name(record: JobRecord) -> str:
        if record.state == JobState.PENDING:
            return ("retrying" if record.failures or record.interruptions
                    else "queued")
        return record.state    # running/succeeded/.../quarantined

    @staticmethod
    def _event_data(record: JobRecord) -> dict[str, Any]:
        data: dict[str, Any] = {"state": record.state,
                                "attempts": record.attempts,
                                "failures": record.failures}
        if record.error:
            data["error"] = record.error
        if record.result:
            data["result"] = {k: record.result[k]
                              for k in _EVENT_RESULT_KEYS
                              if k in record.result}
        if record.cache_hit:
            data["cache_hit"] = True
        return data

    def _sync_locked(self) -> list[tuple[str, str, dict[str, Any], bool]]:
        """Diff job states against the last round (lock held); returns
        the events to publish after the lock is released."""
        events = []
        for record in self.service.queue.records():
            previous = self._states.get(record.job_id)
            if record.state == previous:
                continue
            self._states[record.job_id] = record.state
            events.append((record.job_id, self._event_name(record),
                           self._event_data(record),
                           record.state in _FINAL_STATES))
        return events

    def _publish(self, events) -> None:
        for job_id, name, data, final in events:
            self.broker.publish(job_id, name, data, final=final)
            if final:
                self.broker.publish(SERVICE_STREAM, "job_finished",
                                    {"job_id": job_id, "event": name})

    def _relay_telemetry(self, drained: list[dict[str, Any]]) -> None:
        """Spans with a job_id reach that job's stream; a throttled
        metrics snapshot reaches the service stream."""
        saw_metric = False
        for record in drained:
            if record.get("type") == "span":
                job_id = (record.get("attributes") or {}).get("job_id")
                if job_id:
                    self.broker.publish(str(job_id), "span", record)
            else:
                saw_metric = True
        now = time.monotonic()
        if saw_metric and now - self._last_metrics >= self.metrics_interval:
            self._last_metrics = now
            self.broker.publish(SERVICE_STREAM, "metrics", self.metrics())

    def _pump(self) -> None:
        try:
            while not self._stop.is_set():
                events = []
                with self._lock:
                    if not self._paused:
                        try:
                            self.service.step()
                        except ConfigError:  # pragma: no cover - defensive
                            pass
                        events = self._sync_locked()
                self._publish(events)
                self._relay_telemetry(self.sink.drain())
                self._stop.wait(self.poll_seconds)
        except Exception as exc:  # noqa: BLE001 - the thread must not die
            # silently: record why, so /healthz can surface it and
            # ensure_pump() can decide on the one-shot restart.
            self._pump_error = f"{type(exc).__name__}: {exc}"
