"""Tracing and metrics for the six-stage pipeline (dependency-free).

The observability substrate of the reproduction (the measurement layer
behind the paper's Tables IV-IX): nestable timed :class:`Span`\\ s, a
:class:`MetricsRegistry` of counters/gauges/histograms, pluggable sinks
(in-memory, JSON-lines trace file, live stderr rendering), the typed
:class:`PipelineObserver` API, and the run manifest.

Quick use::

    from repro.telemetry import InMemorySink, JsonLinesSink
    sink = JsonLinesSink("trace.jsonl")
    result = CUDAlign(config, sinks=[sink]).run(s0, s1)
    sink.close()
"""

from repro.telemetry.manifest import (
    MANIFEST_VERSION,
    build_manifest,
    json_safe,
    read_manifest,
    sequence_digest,
    write_manifest,
)
from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.telemetry.observer import (
    CallbackObserver,
    PipelineObserver,
    ProgressRenderer,
    as_observer,
)
from repro.telemetry.runtime import NULL_TELEMETRY, NullTelemetry, Telemetry
from repro.telemetry.sinks import (
    InMemorySink,
    JsonLinesSink,
    QueueSink,
    StderrSink,
    TelemetrySink,
)
from repro.telemetry.spans import Span, Tracer

__all__ = [
    "Span", "Tracer",
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "TelemetrySink", "InMemorySink", "JsonLinesSink", "QueueSink",
    "StderrSink",
    "PipelineObserver", "CallbackObserver", "ProgressRenderer", "as_observer",
    "Telemetry", "NullTelemetry", "NULL_TELEMETRY",
    "MANIFEST_VERSION", "build_manifest", "write_manifest", "read_manifest",
    "sequence_digest", "json_safe",
]
