"""The pipeline-facing observer API.

:class:`PipelineObserver` replaces the bare ``progress(stage, fraction)``
callable the pipeline used to take: observers get typed notifications
for stage starts, in-stage progress, stage completions (with the stage's
result object) and metric updates.  Subclass it and override what you
need — every hook is a no-op by default.

Backward compatibility: a plain callable passed where an observer is
expected is wrapped in :class:`CallbackObserver` (with a
``DeprecationWarning``), which forwards progress fractions and emits the
historical ``(stage, 1.0)`` tick at each stage end.
"""

from __future__ import annotations

import sys
import time
import warnings
from typing import Any, Callable, IO


class PipelineObserver:
    """Typed pipeline notifications; override any subset of the hooks.

    ``stage`` arguments are the span names ``"stage1"`` .. ``"stage6"``;
    ``result`` is the stage's :class:`~repro.core.result.StageResult`
    (or ``None`` for a stage that produced none).
    """

    def on_stage_start(self, stage: str) -> None:
        pass

    def on_stage_progress(self, stage: str, fraction: float) -> None:
        pass

    def on_stage_end(self, stage: str, result: Any | None) -> None:
        pass

    def on_metric(self, name: str, value: int | float) -> None:
        pass


class CallbackObserver(PipelineObserver):
    """Adapts a legacy ``progress(stage, fraction)`` callable."""

    def __init__(self, callback: Callable[[str, float], None]):
        if not callable(callback):
            raise TypeError("CallbackObserver needs a callable")
        self.callback = callback

    def on_stage_progress(self, stage: str, fraction: float) -> None:
        self.callback(stage, fraction)

    def on_stage_end(self, stage: str, result: Any | None) -> None:
        # The legacy contract: one (stage, 1.0) tick per completed stage.
        self.callback(stage, 1.0)


def as_observer(candidate: PipelineObserver | Callable[[str, float], None],
                *, warn: bool = True) -> PipelineObserver:
    """Coerce an observer-or-callable into a :class:`PipelineObserver`.

    Objects exposing the observer hooks pass through; bare callables are
    wrapped in :class:`CallbackObserver`, with a ``DeprecationWarning``
    unless ``warn`` is false.
    """
    if isinstance(candidate, PipelineObserver):
        return candidate
    if hasattr(candidate, "on_stage_progress") or hasattr(candidate,
                                                          "on_stage_end"):
        return candidate  # duck-typed observer
    if callable(candidate):
        if warn:
            warnings.warn(
                "passing a bare progress callable is deprecated; implement "
                "repro.telemetry.PipelineObserver instead",
                DeprecationWarning, stacklevel=3)
        return CallbackObserver(candidate)
    raise TypeError(f"{candidate!r} is neither an observer nor a callable")


class ProgressRenderer(PipelineObserver):
    """Human-readable live progress (the CLI's ``--progress`` view).

    Prints one line per stage start, decile progress updates for the
    long sweep of Stage 1, and a completion line with the stage's wall
    seconds and cell throughput when available.
    """

    def __init__(self, stream: IO[str] | None = None):
        self.stream = stream if stream is not None else sys.stderr
        self._started: dict[str, float] = {}
        self._decile: dict[str, int] = {}

    def _print(self, text: str) -> None:
        print(text, file=self.stream, flush=True)

    def on_stage_start(self, stage: str) -> None:
        self._started[stage] = time.perf_counter()
        self._decile[stage] = -1
        self._print(f"[{stage}] started")

    def on_stage_progress(self, stage: str, fraction: float) -> None:
        decile = int(fraction * 10)
        if decile > self._decile.get(stage, -1):
            self._decile[stage] = decile
            self._print(f"[{stage}] {fraction:6.1%}")

    def on_stage_end(self, stage: str, result: Any | None) -> None:
        elapsed = time.perf_counter() - self._started.get(
            stage, time.perf_counter())
        extra = ""
        cells = getattr(result, "cells", 0)
        if cells:
            extra = f"  ({cells / max(elapsed, 1e-12) / 1e6:,.1f} MCUPS)"
        self._print(f"[{stage}] done in {elapsed:.3f}s{extra}")
