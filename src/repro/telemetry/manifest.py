"""The run manifest: one JSON file that makes a run reconstructable.

``manifest.json`` is written into the pipeline's ``workdir`` at the end
of every run and records what ran (config, sequence names/lengths and
content digests), how it went (per-stage stats and spans, the metrics
snapshot) and what came out (score, alignment coordinates).  Everything
in it is plain JSON, so ``json.load`` round-trips it exactly.

The per-stage ``wall_seconds`` in ``stages`` are taken verbatim from the
stage results, so they always match
``PipelineResult.stage_wall_seconds()``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from typing import Any

#: Format version stamped into every manifest.
MANIFEST_VERSION = 1


def sequence_digest(data: bytes | memoryview) -> str:
    """Stable content digest for a sequence's encoded bytes."""
    return hashlib.sha256(bytes(data)).hexdigest()


def json_safe(obj: Any) -> Any:
    """Recursively coerce a value into plain JSON types.

    Dataclasses become dicts, tuples become lists, numpy scalars unwrap
    via ``item()``, and anything else irreducible falls back to ``str``.
    """
    if isinstance(obj, bool) or obj is None or isinstance(obj, str):
        return obj
    if isinstance(obj, (int, float)):
        return obj
    if isinstance(obj, dict):
        return {str(key): json_safe(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        return [json_safe(value) for value in obj]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {field.name: json_safe(getattr(obj, field.name))
                for field in dataclasses.fields(obj)}
    item = getattr(obj, "item", None)  # numpy scalars
    if item is not None:
        try:
            return json_safe(item())
        except (TypeError, ValueError):
            pass
    return str(obj)


def build_manifest(*, sequences: dict[str, Any], config: dict[str, Any],
                   result: dict[str, Any], stages: dict[str, Any],
                   stage_wall_seconds: dict[str, float],
                   metrics: dict[str, Any],
                   spans: list[dict[str, Any]],
                   extra: dict[str, Any] | None = None) -> dict[str, Any]:
    """Assemble the manifest dict (pure data in, pure JSON out).

    ``extra`` is an optional caller payload (the job service records job
    id and attempt number here); omitted entirely when ``None``.
    """
    manifest = {
        "version": MANIFEST_VERSION,
        "tool": "repro-cudalign",
        "created_unix": time.time(),
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "sequences": json_safe(sequences),
        "config": json_safe(config),
        "result": json_safe(result),
        "stages": json_safe(stages),
        "stage_wall_seconds": json_safe(stage_wall_seconds),
        "metrics": json_safe(metrics),
        "spans": json_safe(spans),
    }
    if extra is not None:
        manifest["extra"] = json_safe(extra)
    return manifest


def write_manifest(path: str | os.PathLike, manifest: dict[str, Any]) -> str:
    """Atomically write the manifest (write + rename); returns the path."""
    path = os.fspath(path)
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    return path


def read_manifest(path: str | os.PathLike) -> dict[str, Any]:
    """Load a manifest back (convenience wrapper over ``json.load``)."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)
