"""The per-run telemetry bundle the pipeline threads through the stages.

:class:`Telemetry` owns one :class:`~repro.telemetry.spans.Tracer`, one
:class:`~repro.telemetry.metrics.MetricsRegistry` and the run's
observers, and fans sink events out to all of them.  Stage functions
accept ``telemetry=None`` and fall back to the module-level
:data:`NULL_TELEMETRY`, whose every operation is a no-op — standalone
stage calls pay nothing for the instrumentation.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.observer import PipelineObserver
from repro.telemetry.sinks import TelemetrySink
from repro.telemetry.spans import Span, Tracer


class _ObserverMetricFanout(TelemetrySink):
    """Forwards registry updates to observer ``on_metric`` hooks."""

    def __init__(self, observers: tuple[PipelineObserver, ...]):
        self.observers = observers

    def on_metric(self, name: str, kind: str, value: int | float) -> None:
        for observer in self.observers:
            observer.on_metric(name, value)


class Telemetry:
    """Tracer + metrics + observers for one pipeline run."""

    def __init__(self, sinks: tuple = (),
                 observers: tuple[PipelineObserver, ...] = ()):
        self.observers = tuple(observers)
        all_sinks = tuple(sinks)
        if self.observers:
            all_sinks += (_ObserverMetricFanout(self.observers),)
        self.sinks = all_sinks
        self.tracer = Tracer(all_sinks)
        self.metrics = MetricsRegistry(all_sinks)

    # ----------------------------------------------------------- tracing
    def span(self, name: str, **attributes: Any):
        return self.tracer.span(name, **attributes)

    def attach(self, span: Span):
        return self.tracer.attach(span)

    # ---------------------------------------------------------- integrity
    def corruption(self, kind: str, path: str, *, action: str,
                   detail: str = "", count: int = 1) -> None:
        """Record detected artifact corruption and the recovery taken.

        One call per incident: bumps ``integrity.corruption_detected``,
        the per-kind ``integrity.corrupt.<kind>`` counter and — because
        every detection site has a degrade path — ``integrity.recovered``
        with the ``action`` (``recomputed``, ``widened``, ``evicted``,
        ``requeued``, ``quarantined``) attached to an
        ``integrity.corruption`` span event.
        """
        self.metrics.counter("integrity.corruption_detected").add(count)
        self.metrics.counter(f"integrity.corrupt.{kind}").add(count)
        self.metrics.counter("integrity.recovered").add(count)
        with self.span("integrity.corruption", kind=kind, path=str(path),
                       action=action, count=count) as span:
            if detail:
                span.set(detail=detail)

    # ---------------------------------------------------------- observers
    def stage_start(self, stage: str) -> None:
        for observer in self.observers:
            observer.on_stage_start(stage)

    def stage_progress(self, stage: str, fraction: float) -> None:
        for observer in self.observers:
            observer.on_stage_progress(stage, fraction)

    def stage_end(self, stage: str, result: Any | None) -> None:
        for observer in self.observers:
            observer.on_stage_end(stage, result)

    def close(self) -> None:
        """Flush/close every sink that supports it."""
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()


class _NullSpan:
    """Shared inert span: accepts attributes, times nothing."""

    __slots__ = ()
    name = "null"
    span_id = 0
    parent_id = None
    depth = 0
    start_wall = 0.0
    start = 0.0
    end = 0.0
    duration = 0.0
    attributes: dict[str, Any] = {}

    def set(self, **attributes: Any) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class _NullInstrument:
    """Counter/gauge/histogram lookalike that drops every update."""

    __slots__ = ()
    name = "null"
    value = 0
    count = 0
    total = 0.0
    min = None
    max = None
    mean = 0.0

    def add(self, amount: int | float = 1) -> None:
        pass

    def set(self, value: int | float) -> None:
        pass

    def observe(self, value: int | float) -> None:
        pass

    @contextmanager
    def time(self) -> Iterator[None]:
        yield

    def summary(self) -> dict[str, Any]:
        return {"count": 0, "total": 0.0, "min": None, "max": None,
                "mean": 0.0}


_NULL_INSTRUMENT = _NullInstrument()


class _NullMetrics:
    """Registry lookalike backing :data:`NULL_TELEMETRY`."""

    __slots__ = ()

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def snapshot(self) -> dict[str, Any]:
        return {}

    def __len__(self) -> int:
        return 0


class NullTelemetry:
    """Free-of-charge stand-in used when no telemetry was requested.

    ``tracer`` is ``None`` on purpose: kernel-level emitters
    (``RowSweeper``, the SRA store, checkpointing) take a tracer object
    and guard on it, so the untraced hot path stays branch-cheap.
    """

    __slots__ = ()
    tracer = None
    observers: tuple = ()
    sinks: tuple = ()
    metrics = _NullMetrics()

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[_NullSpan]:
        yield _NULL_SPAN

    @contextmanager
    def attach(self, span: Any) -> Iterator[None]:
        yield

    def corruption(self, kind: str, path: str, *, action: str,
                   detail: str = "", count: int = 1) -> None:
        pass

    def stage_start(self, stage: str) -> None:
        pass

    def stage_progress(self, stage: str, fraction: float) -> None:
        pass

    def stage_end(self, stage: str, result: Any | None) -> None:
        pass

    def close(self) -> None:
        pass


NULL_TELEMETRY = NullTelemetry()
