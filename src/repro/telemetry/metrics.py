"""Metrics: counters, gauges and histograms for the pipeline.

The registry is the single place run-level numbers accumulate — cells
swept, MCUPS, bytes flushed and read, crosspoints found, partitions
split, checkpoint writes — so reports, the manifest and benchmark
harnesses all read the same ledger instead of re-deriving the numbers
from six differently-shaped stage results.

Every update is forwarded to the registry's sinks as an
``on_metric(name, kind, value)`` event, which is how the JSON-lines
trace records metric updates and how :class:`~repro.telemetry.observer.
PipelineObserver.on_metric` notifications are produced.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Iterator


class Counter:
    """Monotonically increasing sum."""

    __slots__ = ("name", "value", "_registry")

    def __init__(self, name: str, registry: "MetricsRegistry"):
        self.name = name
        self.value = 0
        self._registry = registry

    def add(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount
        self._registry._emit(self.name, "counter", self.value)


class Gauge:
    """Last-written value."""

    __slots__ = ("name", "value", "_registry")

    def __init__(self, name: str, registry: "MetricsRegistry"):
        self.name = name
        self.value: int | float = 0
        self._registry = registry

    def set(self, value: int | float) -> None:
        self.value = value
        self._registry._emit(self.name, "gauge", value)


class Histogram:
    """Streaming summary (count / total / min / max / mean)."""

    __slots__ = ("name", "count", "total", "min", "max", "_registry")

    def __init__(self, name: str, registry: "MetricsRegistry"):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._registry = registry

    def observe(self, value: int | float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        self._registry._emit(self.name, "histogram", value)

    @contextmanager
    def time(self) -> Iterator[None]:
        """Observe the wall-clock duration of the ``with`` body, in seconds."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(time.perf_counter() - start)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict[str, float | int | None]:
        return {"count": self.count, "total": self.total,
                "min": self.min, "max": self.max, "mean": self.mean}


class MetricsRegistry:
    """Named, typed instruments with get-or-create semantics.

    A name is bound to one instrument kind for the registry's lifetime;
    asking for the same name with a different kind raises ``ValueError``
    (silent aliasing would corrupt the ledger).
    """

    _KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}

    def __init__(self, sinks: tuple = ()):
        self.sinks = tuple(sinks)
        self._lock = threading.Lock()
        self._instruments: dict[str, Any] = {}

    def _get(self, name: str, kind: str):
        cls = self._KINDS[kind]
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = self._instruments[name] = cls(name, self)
            elif not isinstance(instrument, cls):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(instrument).__name__.lower()}, not {kind}")
            return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, "counter")

    def gauge(self, name: str) -> Gauge:
        return self._get(name, "gauge")

    def histogram(self, name: str) -> Histogram:
        return self._get(name, "histogram")

    def _emit(self, name: str, kind: str, value: int | float) -> None:
        for sink in self.sinks:
            sink.on_metric(name, kind, value)

    def snapshot(self) -> dict[str, Any]:
        """JSON-safe view: name -> value (histograms -> summary dict)."""
        with self._lock:
            items = sorted(self._instruments.items())
        out: dict[str, Any] = {}
        for name, instrument in items:
            if isinstance(instrument, Histogram):
                out[name] = instrument.summary()
            else:
                out[name] = instrument.value
        return out

    def __len__(self) -> int:
        return len(self._instruments)
