"""Spans: nestable, timed trace sections.

A :class:`Span` covers one section of work — a pipeline stage, one
``RowSweeper.advance`` strip, a Myers-Miller split, an SRA flush — and
records two clocks: the wall-clock epoch at entry (``start_wall``,
``time.time``) and a monotonic interval (``start``/``end``,
``time.perf_counter``) shared by every span of the same :class:`Tracer`,
so durations are exact and span timestamps are mutually comparable.

Nesting is tracked per thread: the innermost open span of the current
thread becomes the parent of the next one.  Work fanned out to a thread
pool keeps its parentage by wrapping the worker body in
:meth:`Tracer.attach`, which pins an explicit parent onto the worker
thread's stack (the stages with partition parallelism do this).

Sinks (:mod:`repro.telemetry.sinks`) observe spans as they open and
close; the tracer itself stores nothing, so tracing an unbounded run
costs O(open spans) memory.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager
from typing import Any, Iterator


class Span:
    """One timed, attribute-carrying section of a trace.

    Attributes:
        name: dotted section name (``"stage1"``, ``"sweep.advance"``).
        span_id: unique (per tracer) integer id.
        parent_id: id of the enclosing span, or ``None`` for a root span.
        depth: nesting depth (0 for a root span).
        start_wall: wall-clock epoch seconds at entry.
        start / end: ``perf_counter`` seconds on the tracer's shared
            clock; ``end`` is ``None`` while the span is open.
        attributes: free-form key/value payload; extend with :meth:`set`.
    """

    __slots__ = ("name", "span_id", "parent_id", "depth", "start_wall",
                 "start", "end", "attributes")

    def __init__(self, name: str, span_id: int, parent_id: int | None,
                 depth: int, attributes: dict[str, Any]):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.depth = depth
        self.attributes = attributes
        self.start_wall = time.time()
        self.start = time.perf_counter()
        self.end: float | None = None

    @property
    def duration(self) -> float:
        """Elapsed seconds (up to now while the span is still open)."""
        return (self.end if self.end is not None
                else time.perf_counter()) - self.start

    def set(self, **attributes: Any) -> "Span":
        """Attach (or overwrite) attributes; returns self for chaining."""
        self.attributes.update(attributes)
        return self

    def to_record(self) -> dict[str, Any]:
        """JSON-safe dict form (the trace-file and manifest format)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "start_wall": self.start_wall,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "attributes": dict(self.attributes),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"{self.duration:.6f}s" if self.end is not None else "open"
        return f"Span({self.name!r}, id={self.span_id}, {state})"


class Tracer:
    """Produces nested spans and forwards them to sinks.

    Thread-safe: ids come from an atomic counter and each thread keeps
    its own open-span stack.
    """

    def __init__(self, sinks: tuple = ()):
        self.sinks = tuple(sinks)
        self._ids = itertools.count(1)
        self._local = threading.local()

    # ------------------------------------------------------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current(self) -> Span | None:
        """The innermost open span of the calling thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        """Open a child span of the calling thread's current span."""
        stack = self._stack()
        parent = stack[-1] if stack else None
        span = Span(name, next(self._ids),
                    parent.span_id if parent is not None else None,
                    parent.depth + 1 if parent is not None else 0,
                    attributes)
        stack.append(span)
        for sink in self.sinks:
            sink.on_span_start(span)
        try:
            yield span
        finally:
            span.end = time.perf_counter()
            stack.pop()
            for sink in self.sinks:
                sink.on_span_end(span)

    @contextmanager
    def attach(self, span: Span) -> Iterator[None]:
        """Adopt ``span`` as the calling thread's current parent.

        Thread-pool workers wrap their body in this so the spans they
        open nest under the stage span that submitted the work.
        """
        stack = self._stack()
        stack.append(span)
        try:
            yield
        finally:
            stack.pop()
