"""Telemetry sinks: where spans and metric updates go.

Four implementations cover the pipeline's needs:

* :class:`InMemorySink` — keeps finished spans and metric events in
  lists; feeds ``PipelineResult.spans`` and the run manifest, and is
  what tests assert against.
* :class:`JsonLinesSink` — appends one JSON object per event to a file
  (the ``--trace FILE`` format); every line round-trips through
  ``json.loads``.
* :class:`StderrSink` — a minimal human-readable live renderer for span
  completions (depth-indented, duration-stamped); the observer-based
  :class:`~repro.telemetry.observer.ProgressRenderer` is the richer
  stage-progress view.
* :class:`QueueSink` — pushes each event onto a bounded thread-safe
  queue for an asynchronous consumer; the bridge the gateway drains
  into its server-sent-event streams.

All sinks implement the same three hooks and ignore what they do not
need, so any object with these methods can be passed to the pipeline.
"""

from __future__ import annotations

import json
import os
import queue
import sys
import threading
import time
from typing import Any, IO

from repro.telemetry.spans import Span


class TelemetrySink:
    """No-op base defining the sink interface."""

    def on_span_start(self, span: Span) -> None:
        pass

    def on_span_end(self, span: Span) -> None:
        pass

    def on_metric(self, name: str, kind: str, value: int | float) -> None:
        pass

    def close(self) -> None:
        pass


class InMemorySink(TelemetrySink):
    """Collects finished spans and metric events in memory."""

    def __init__(self) -> None:
        self.spans: list[Span] = []          # completed, in end order
        self.metric_events: list[tuple[str, str, int | float]] = []
        self._lock = threading.Lock()

    def on_span_end(self, span: Span) -> None:
        with self._lock:
            self.spans.append(span)

    def on_metric(self, name: str, kind: str, value: int | float) -> None:
        with self._lock:
            self.metric_events.append((name, kind, value))

    # ------------------------------------------------------------- helpers
    def find(self, name: str) -> list[Span]:
        """All finished spans with the given name, in end order."""
        return [s for s in self.spans if s.name == name]

    def children_of(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def roots(self) -> list[Span]:
        """Finished spans with no parent."""
        return [s for s in self.spans if s.parent_id is None]


class JsonLinesSink(TelemetrySink):
    """Streams events to a JSON-lines trace file.

    Record types: ``trace_start`` (one header line), ``span`` (one per
    completed span, in completion order) and ``metric`` (one per metric
    update).  The file handle is owned by the sink; call :meth:`close`
    (or use the sink as a context manager) when the run is over.
    """

    def __init__(self, path: str | os.PathLike | IO[str]):
        if hasattr(path, "write"):
            self._file: IO[str] = path  # type: ignore[assignment]
            self._owns = False
            self.path = getattr(path, "name", "<stream>")
        else:
            self.path = os.fspath(path)
            parent = os.path.dirname(self.path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            self._file = open(self.path, "w", encoding="utf-8")
            self._owns = True
        self._lock = threading.Lock()
        self._write({"type": "trace_start", "clock": "perf_counter",
                     "wall_time": time.time()})

    @staticmethod
    def _default(value: Any) -> Any:
        item = getattr(value, "item", None)  # numpy scalars
        if item is not None:
            try:
                return item()
            except (TypeError, ValueError):
                pass
        return str(value)

    def _write(self, record: dict[str, Any]) -> None:
        line = json.dumps(record, separators=(",", ":"), sort_keys=True,
                          default=self._default)
        with self._lock:
            self._file.write(line + "\n")

    def on_span_end(self, span: Span) -> None:
        self._write({"type": "span", **span.to_record()})

    def on_metric(self, name: str, kind: str, value: int | float) -> None:
        self._write({"type": "metric", "name": name, "kind": kind,
                     "value": value})

    def close(self) -> None:
        with self._lock:
            self._file.flush()
            if self._owns and not self._file.closed:
                self._file.close()

    def __enter__(self) -> "JsonLinesSink":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class QueueSink(TelemetrySink):
    """Bounded thread-safe queue of telemetry events for async consumers.

    Each span completion becomes ``{"type": "span", ...span record...}``
    and each metric update ``{"type": "metric", "name", "kind",
    "value"}`` — the same record shapes :class:`JsonLinesSink` writes,
    but queued instead of persisted.  The queue is bounded and *lossy on
    the old side*: when a slow consumer lets it fill, the oldest event
    is dropped to make room (counted in :attr:`dropped`), so emitting
    never blocks the pipeline.
    """

    def __init__(self, maxsize: int = 4096):
        self.queue: queue.Queue[dict[str, Any]] = queue.Queue(maxsize)
        self.dropped = 0
        self._lock = threading.Lock()

    def _put(self, record: dict[str, Any]) -> None:
        with self._lock:
            while True:
                try:
                    self.queue.put_nowait(record)
                    return
                except queue.Full:
                    try:
                        self.queue.get_nowait()
                        self.dropped += 1
                    except queue.Empty:  # racing consumer freed space
                        pass

    def on_span_end(self, span: Span) -> None:
        self._put({"type": "span", **span.to_record()})

    def on_metric(self, name: str, kind: str, value: int | float) -> None:
        self._put({"type": "metric", "name": name, "kind": kind,
                   "value": value})

    def drain(self) -> list[dict[str, Any]]:
        """Every queued event, oldest first (non-blocking)."""
        events: list[dict[str, Any]] = []
        while True:
            try:
                events.append(self.queue.get_nowait())
            except queue.Empty:
                return events


class StderrSink(TelemetrySink):
    """Prints finished spans, depth-indented, as they complete.

    ``max_depth`` bounds the noise: kernel-level spans (sweep strips,
    SRA flushes) sit at depth >= 2 and are skipped by default.
    """

    def __init__(self, stream: IO[str] | None = None, *, max_depth: int = 1):
        self.stream = stream if stream is not None else sys.stderr
        self.max_depth = max_depth

    def on_span_end(self, span: Span) -> None:
        if span.depth > self.max_depth:
            return
        indent = "  " * span.depth
        print(f"{indent}{span.name}: {span.duration:.3f}s",
              file=self.stream)
