"""Disk substrate: the Special Rows Area and the binary alignment codec."""

from repro.storage.sra import (
    SavedLine,
    SpecialLineStore,
    flush_interval_blocks,
    special_row_positions,
)
from repro.storage.binary_alignment import (
    BinaryAlignment,
    read_binary_alignment,
    write_binary_alignment,
)

__all__ = [
    "SavedLine", "SpecialLineStore",
    "flush_interval_blocks", "special_row_positions",
    "BinaryAlignment", "read_binary_alignment", "write_binary_alignment",
]
