"""Stage 5's compact binary alignment representation (Section IV-F).

The full alignment is stored without sequence characters: start and end
positions, the best score, and the two gap-run lists ``GAP_1`` / ``GAP_2``
(open position + run length each).  Stage 6 reconstructs the textual
alignment by walking the gaps in path order and filling diagonal runs in
between — the paper reports the binary file is ~279x smaller than the
text rendering for the chromosome comparison.

Wire format (little-endian):

    magic  'CDA2' | version u32 | i0 i1 j0 j1 score  i64 x5
    count1 u64 | count2 u64 | count1 x (i, j, len) i64 | count2 x (...)
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.constants import TYPE_GAP_S0, TYPE_GAP_S1
from repro.errors import StorageError
from repro.align.alignment import Alignment, GapRun
from repro.integrity import codec

_MAGIC = b"CDA2"
_VERSION = 1
_HEADER = struct.Struct("<4sI5q2Q")


@dataclass(frozen=True)
class BinaryAlignment:
    """Decoded form of the Stage-5 binary output."""

    i0: int
    j0: int
    i1: int
    j1: int
    score: int
    gap1: tuple[GapRun, ...]
    gap2: tuple[GapRun, ...]

    @classmethod
    def from_alignment(cls, alignment: Alignment, score: int) -> "BinaryAlignment":
        g1, g2 = alignment.gap_runs()
        i1, j1 = alignment.end
        return cls(alignment.i0, alignment.j0, i1, j1, score,
                   tuple(g1), tuple(g2))

    # ------------------------------------------------------------------
    def encode(self) -> bytes:
        """Serialize to the compact wire format."""
        head = _HEADER.pack(_MAGIC, _VERSION, self.i0, self.i1, self.j0,
                            self.j1, self.score, len(self.gap1), len(self.gap2))
        body = bytearray()
        for run in (*self.gap1, *self.gap2):
            body += struct.pack("<3q", run.i, run.j, run.length)
        return head + bytes(body)

    @classmethod
    def decode(cls, blob: bytes) -> "BinaryAlignment":
        if len(blob) < _HEADER.size:
            raise StorageError("binary alignment truncated")
        magic, version, i0, i1, j0, j1, score, c1, c2 = _HEADER.unpack_from(blob)
        if magic != _MAGIC:
            raise StorageError("bad magic: not a binary alignment file")
        if version != _VERSION:
            raise StorageError(f"unsupported binary alignment version {version}")
        need = _HEADER.size + 24 * (c1 + c2)
        if len(blob) != need:
            raise StorageError(f"binary alignment has {len(blob)} bytes, expected {need}")
        runs = [struct.unpack_from("<3q", blob, _HEADER.size + 24 * k)
                for k in range(c1 + c2)]
        gap1 = tuple(GapRun(i, j, ln, TYPE_GAP_S0) for i, j, ln in runs[:c1])
        gap2 = tuple(GapRun(i, j, ln, TYPE_GAP_S1) for i, j, ln in runs[c1:])
        return cls(i0, j0, i1, j1, score, gap1, gap2)

    # ------------------------------------------------------------------
    def reconstruct(self) -> Alignment:
        """Rebuild the edit path (Stage 6, Section IV-G).

        Starting at ``(i0, j0)``, the nearest gap run is taken from GAP_1
        or GAP_2 and the stretch before it is diagonal; iterate until the
        end position is reached.
        """
        events = sorted((*self.gap1, *self.gap2), key=lambda g: (g.i, g.j))
        pieces: list[np.ndarray] = []
        i, j = self.i0, self.j0
        for run in events:
            di, dj = run.i - i, run.j - j
            if di != dj or di < 0:
                raise StorageError(
                    f"gap at ({run.i}, {run.j}) unreachable from ({i}, {j})")
            if di:
                pieces.append(np.zeros(di, dtype=np.uint8))
            pieces.append(np.full(run.length, run.kind, dtype=np.uint8))
            if run.kind == TYPE_GAP_S0:
                i, j = run.i, run.j + run.length
            else:
                i, j = run.i + run.length, run.j
        di, dj = self.i1 - i, self.j1 - j
        if di != dj or di < 0:
            raise StorageError("end position unreachable from the last gap")
        if di:
            pieces.append(np.zeros(di, dtype=np.uint8))
        ops = np.concatenate(pieces) if pieces else np.empty(0, dtype=np.uint8)
        path = Alignment(self.i0, self.j0, ops)
        if path.end != (self.i1, self.j1):  # pragma: no cover - guarded above
            raise StorageError("reconstructed path does not reach the end position")
        return path

    @property
    def nbytes(self) -> int:
        """Size of the encoded representation."""
        return _HEADER.size + 24 * (len(self.gap1) + len(self.gap2))


def write_binary_alignment(path, binary: BinaryAlignment) -> None:
    """Atomically write the alignment inside a checksummed frame.

    This is the canonical on-disk form (what ``repro align --binary-out``
    produces and ``repro fsck`` verifies); :meth:`BinaryAlignment.encode`
    stays the bare wire format for in-memory use and size accounting.
    """
    codec.write_artifact(path, binary.encode(), codec.KIND_BINARY_ALIGNMENT)


def read_binary_alignment(path) -> BinaryAlignment:
    """Read and checksum-verify a framed binary alignment file."""
    return BinaryAlignment.decode(
        codec.read_artifact(path, codec.KIND_BINARY_ALIGNMENT))
