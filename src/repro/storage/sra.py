"""Special Rows Area (SRA): the disk area of Section IV-B.

Stage 1 flushes *special rows* (H and F values, 8 bytes per cell) here;
Stage 2 flushes *special columns* (H and E values).  The store enforces a
byte budget exactly like the paper's ``|SRA|`` constant, exposes the
flush-interval law, and accounts every byte written (the performance model
charges ~13 s/GB of flush traffic, Section V-B).

Lines can be held in memory (the default for scaled-down runs) or written
to disk as little-endian int32 pairs inside a checksummed artifact frame
(:mod:`repro.integrity.codec`), preserving the paper's storage format and
its I/O behaviour while making corruption detectable at read time.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field

import numpy as np

from repro.constants import SCORE_DTYPE, SPECIAL_CELL_BYTES
from repro.errors import IntegrityError, StorageError
from repro.integrity import codec

#: Per-store metadata journal of the disk-backed layout (one JSON line per
#: saved special line) — what makes a store recoverable by a new process.
INDEX_NAME = "index.jsonl"


def flush_interval_blocks(m: int, n: int, block_rows: int, sra_bytes: int) -> int:
    """Blocks between consecutive special rows (Section IV-B).

    The paper requires the interval to be at least
    ``ceil(8mn / (alpha*T*|SRA|))`` so the saved rows fit in the SRA;
    candidates are multiples of the block height ``alpha*T``
    (``block_rows``).
    """
    if m <= 0 or n <= 0 or block_rows <= 0:
        raise StorageError("matrix and block dimensions must be positive")
    if sra_bytes <= 0:
        return 0  # flushing disabled: no row fits
    row_bytes = SPECIAL_CELL_BYTES * (n + 1)
    if sra_bytes < row_bytes:
        return 0  # the SRA cannot hold even one special row
    return max(1, math.ceil(SPECIAL_CELL_BYTES * m * n / (block_rows * sra_bytes)))


def special_row_positions(m: int, n: int, block_rows: int, sra_bytes: int) -> list[int]:
    """Row indices Stage 1 will flush: multiples of the block height at the
    flush interval, strictly inside the matrix."""
    interval = flush_interval_blocks(m, n, block_rows, sra_bytes)
    if interval == 0:
        return []
    step = block_rows * interval
    rows = list(range(step, m + 1, step))
    # Never exceed the byte budget even when rounding was generous.
    row_bytes = SPECIAL_CELL_BYTES * (n + 1)
    max_rows = sra_bytes // row_bytes
    return rows[:max_rows]


@dataclass(frozen=True)
class SavedLine:
    """One special row or column.

    ``H`` and ``G`` are the similarity matrix and the *orthogonal* gap
    matrix along the line (F for rows, E for columns), both covering
    ``lo..hi`` inclusive in the orthogonal coordinate.
    """

    axis: str           # "row" or "col"
    position: int       # the row index (axis="row") or column index
    lo: int             # first orthogonal coordinate covered
    H: np.ndarray = field(repr=False)
    G: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        if self.axis not in ("row", "col"):
            raise StorageError(f"invalid line axis {self.axis!r}")
        if self.H.shape != self.G.shape or self.H.ndim != 1:
            raise StorageError("H and G must be 1-D arrays of equal length")

    @property
    def hi(self) -> int:
        return self.lo + self.H.size - 1

    @property
    def nbytes(self) -> int:
        return SPECIAL_CELL_BYTES * self.H.size

    def value_at(self, coord: int) -> tuple[int, int]:
        """(H, G) at an orthogonal coordinate."""
        if not self.lo <= coord <= self.hi:
            raise StorageError(
                f"coordinate {coord} outside saved line [{self.lo}, {self.hi}]")
        k = coord - self.lo
        return int(self.H[k]), int(self.G[k])


class SpecialLineStore:
    """Byte-budgeted store of special rows/columns.

    Namespaces keep each producer's lines separate (e.g. Stage 1's rows vs
    the per-band columns of Stage 2).  With ``directory`` set, every line
    is round-tripped through a raw binary file — the real disk behaviour
    the paper measures; otherwise lines stay in memory.

    A disk-backed store also appends one metadata line per save to
    ``directory/index.jsonl``; passing ``recover=True`` replays that
    journal so a *new process* resuming a crashed run (Stage-1 checkpoint
    restart) sees every line flushed before the crash.
    """

    def __init__(self, capacity_bytes: int, directory: str | os.PathLike | None = None,
                 *, tracer=None, recover: bool = False):
        if capacity_bytes < 0:
            raise StorageError("capacity must be non-negative")
        self.capacity_bytes = int(capacity_bytes)
        self.directory = os.fspath(directory) if directory is not None else None
        if self.directory is not None:
            os.makedirs(self.directory, exist_ok=True)
        self.bytes_used = 0
        self.bytes_written = 0  # lifetime flush traffic (perf model input)
        self.bytes_read = 0     # lifetime load traffic
        #: Number of lines re-registered from the on-disk index journal.
        self.recovered_lines = 0
        #: Corrupt artifacts detected (and quarantined) during recovery.
        self.corrupt_lines = 0
        #: Optional :class:`repro.telemetry.Tracer`; when set, every flush
        #: and load is wrapped in an ``sra.flush`` / ``sra.load`` span.
        self.tracer = tracer
        self._lines: dict[tuple[str, int], SavedLine] = {}
        if recover and self.directory is not None:
            self._recover()

    def save(self, namespace: str, line: SavedLine) -> None:
        """Store a line, enforcing the byte budget."""
        if self.tracer is not None:
            with self.tracer.span("sra.flush", namespace=namespace,
                                  position=line.position,
                                  nbytes=line.nbytes):
                self._save(namespace, line)
            return
        self._save(namespace, line)

    def _save(self, namespace: str, line: SavedLine) -> None:
        key = (namespace, line.position)
        if key in self._lines:
            raise StorageError(f"line {key} already saved")
        if self.bytes_used + line.nbytes > self.capacity_bytes:
            raise StorageError(
                f"SRA budget exceeded: {self.bytes_used + line.nbytes} > "
                f"{self.capacity_bytes} bytes")
        if self.directory is not None:
            payload = np.empty(2 * line.H.size, dtype=SCORE_DTYPE)
            payload[0::2] = line.H
            payload[1::2] = line.G
            path = self._path(namespace, line.position)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            codec.write_artifact(path, payload.tobytes(),
                                 codec.KIND_SPECIAL_LINE)
            self._append_index(namespace, line)
        self._lines[key] = line
        self.bytes_used += line.nbytes
        self.bytes_written += line.nbytes

    def load(self, namespace: str, position: int) -> SavedLine:
        key = (namespace, position)
        try:
            meta = self._lines[key]
        except KeyError:
            raise StorageError(f"no special line saved at {key}") from None
        self.bytes_read += meta.nbytes
        if self.tracer is not None:
            with self.tracer.span("sra.load", namespace=namespace,
                                  position=position, nbytes=meta.nbytes):
                return self._load(meta, namespace, position)
        return self._load(meta, namespace, position)

    def _load(self, meta: SavedLine, namespace: str, position: int) -> SavedLine:
        if self.directory is None:
            return meta
        path = self._path(namespace, position)
        try:
            raw = codec.read_artifact(path, codec.KIND_SPECIAL_LINE)
        except FileNotFoundError as exc:
            raise IntegrityError(
                "special line payload file is missing",
                kind=codec.KIND_SPECIAL_LINE, path=path) from exc
        payload = np.frombuffer(raw, dtype=SCORE_DTYPE)
        if payload.size != 2 * meta.H.size:
            raise IntegrityError(
                f"special line holds {payload.size} values, index declares "
                f"{2 * meta.H.size}", kind=codec.KIND_SPECIAL_LINE, path=path)
        return SavedLine(axis=meta.axis, position=meta.position, lo=meta.lo,
                         H=payload[0::2].copy(), G=payload[1::2].copy())

    def positions(self, namespace: str) -> list[int]:
        """Sorted line positions stored under a namespace."""
        return sorted(pos for ns, pos in self._lines if ns == namespace)

    def has(self, namespace: str, position: int) -> bool:
        """O(1) membership probe.

        Stage 1 asks this per special row when resuming from a
        checkpoint, so rows the dead run already flushed are not
        re-written (the budget would reject the duplicate anyway).
        """
        return (namespace, position) in self._lines

    def release(self, namespace: str) -> int:
        """Drop every line of a namespace, freeing budget; returns bytes freed.

        The pipeline releases each band's special columns once Stage 3 has
        consumed them, which is what keeps total disk usage O(m + n).
        """
        freed = 0
        released = [k for k in self._lines if k[0] == namespace]
        for key in released:
            line = self._lines.pop(key)
            freed += line.nbytes
            if self.directory is not None:
                path = self._path(*key)
                if os.path.exists(path):
                    os.remove(path)
        if released and self.directory is not None:
            # Tombstone the namespace so the index journal replays (and
            # fsck cross-references) to the files actually on disk.
            codec.append_journal_record(
                self._index_path(), {"ns": namespace, "released": True})
        self.bytes_used -= freed
        return freed

    def quarantine(self, namespace: str, position: int) -> str | None:
        """Drop a corrupt line: deregister it and preserve the damaged file.

        The degrade-don't-die primitive: after a load raises
        :class:`IntegrityError`, the consumer quarantines the line and
        recomputes across the gap (Stage 2 widens its band, Stage 3 falls
        back to the next surviving special column).  Returns where the
        damaged file was moved, or ``None`` for in-memory stores.
        """
        key = (namespace, position)
        line = self._lines.pop(key, None)
        if line is not None:
            self.bytes_used -= line.nbytes
        self.corrupt_lines += 1
        if self.directory is None:
            return None
        dest = codec.quarantine_file(
            self._path(namespace, position), root=self.directory,
            label=f"{namespace.replace('/', '_')}_{position}.bin")
        # Tombstone the line: its index record no longer promises a
        # payload, so a later fsck sees a consistent tree.
        codec.append_journal_record(
            self._index_path(),
            {"ns": namespace, "pos": position, "dropped": True})
        return dest

    def _path(self, namespace: str, position: int) -> str:
        assert self.directory is not None
        safe = namespace.replace("/", "_")
        return os.path.join(self.directory, safe, f"{position}.bin")

    # ------------------------------------------------------------ recovery
    def _index_path(self) -> str:
        assert self.directory is not None
        return os.path.join(self.directory, INDEX_NAME)

    def _append_index(self, namespace: str, line: SavedLine) -> None:
        record = {"ns": namespace, "pos": line.position, "axis": line.axis,
                  "lo": line.lo, "count": int(line.H.size)}
        codec.append_journal_record(self._index_path(), record)

    def _recover(self) -> None:
        """Re-register lines a previous process flushed to this directory.

        Entries whose payload file has since been released are skipped, as
        are duplicates (a re-run appends a fresh index entry over the same
        payload path).  A corrupt index record or payload artifact is
        quarantined and counted, never fatal: a lost special line only
        costs recomputation.  Budget accounting resumes where the dead
        process left off; ``bytes_written`` stays 0 — recovery is not
        flush traffic.
        """
        index = self._index_path()
        if not os.path.exists(index):
            return
        for lineno, raw in enumerate(
                codec.read_text(index).splitlines(), start=1):
            raw = raw.strip()
            if not raw:
                continue
            try:
                rec = codec.verify_record(raw, path=index, lineno=lineno)
            except IntegrityError:
                # The torn/corrupt record's payload (if any) is orphaned;
                # fsck reports it, recovery just loses that one line.
                self.corrupt_lines += 1
                continue
            if rec.get("released"):
                # Namespace tombstone: everything saved so far is gone.
                for key in [k for k in self._lines if k[0] == rec["ns"]]:
                    dead = self._lines.pop(key)
                    self.bytes_used -= dead.nbytes
                    self.recovered_lines -= 1
                continue
            key = (rec["ns"], rec["pos"])
            if rec.get("dropped"):
                dead = self._lines.pop(key, None)
                if dead is not None:
                    self.bytes_used -= dead.nbytes
                    self.recovered_lines -= 1
                continue
            path = self._path(*key)
            if key in self._lines or not os.path.exists(path):
                continue
            try:
                payload = np.frombuffer(
                    codec.read_artifact(path, codec.KIND_SPECIAL_LINE),
                    dtype=SCORE_DTYPE)
                if payload.size != 2 * rec["count"]:
                    raise IntegrityError(
                        f"special line holds {payload.size} values, index "
                        f"declares {2 * rec['count']}",
                        kind=codec.KIND_SPECIAL_LINE, path=path)
            except IntegrityError:
                self.corrupt_lines += 1
                codec.quarantine_file(path, root=self.directory)
                continue
            line = SavedLine(axis=rec["axis"], position=rec["pos"],
                             lo=rec["lo"], H=payload[0::2].copy(),
                             G=payload[1::2].copy())
            self._lines[key] = line
            self.bytes_used += line.nbytes
            self.recovered_lines += 1
