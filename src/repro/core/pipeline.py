"""The CUDAlign 2.0 pipeline orchestrator (Section IV).

Runs the six stages in order, skipping the ones an input does not need
(a zero best score ends after Stage 1; Stage 3 is skipped when Stage 2
saved no special columns; Stage 4 when every partition already fits), and
enforces the pipeline's global invariants:

* the crosspoint chain is monotone and brackets the best score;
* every partition rescores exactly to its crosspoint bracket;
* the final alignment rescores to the Stage-1 best score.

Observability: every run is traced through :mod:`repro.telemetry` — one
``pipeline`` root span with one child span per executed stage, a metrics
registry (cells swept, bytes flushed, crosspoint counts, ...), and typed
:class:`~repro.telemetry.PipelineObserver` notifications.  The collected
span records and the metrics snapshot ride on the returned
:class:`PipelineResult`; with a ``workdir`` set, a ``manifest.json``
recording the whole run is written there too.
"""

from __future__ import annotations

import dataclasses
import os
import time
from dataclasses import dataclass
from typing import Any

from repro.errors import ConfigError, IntegrityError
from repro.integrity.codec import KIND_SPECIAL_LINE
from repro.align.alignment import Alignment, Composition
from repro.core.checkpoint import checkpoint_row
from repro.core.config import PipelineConfig
from repro.core.crosspoints import CrosspointChain
from repro.core.result import StageResult
from repro.core.stage1 import Stage1Result, run_stage1
from repro.core.stage2 import Stage2Result, run_stage2
from repro.core.stage3 import Stage3Result, run_stage3
from repro.core.stage4 import Stage4Result, run_stage4
from repro.core.stage5 import Stage5Result, run_stage5
from repro.core.stage6 import Stage6Result, run_stage6
from repro.sequences.sequence import Sequence
from repro.storage.binary_alignment import BinaryAlignment
from repro.storage.sra import SpecialLineStore
from repro.telemetry.manifest import (build_manifest, sequence_digest,
                                      write_manifest)
from repro.telemetry.observer import as_observer
from repro.telemetry.runtime import Telemetry
from repro.telemetry.sinks import InMemorySink


@dataclass(frozen=True)
class PipelineResult:
    """Everything the six stages produced, plus aggregate statistics."""

    s0_name: str
    s1_name: str
    m: int
    n: int
    best_score: int
    alignment: Alignment | None
    binary: BinaryAlignment | None
    composition: Composition | None
    stage1: Stage1Result
    stage2: Stage2Result | None
    stage3: Stage3Result | None
    stage4: Stage4Result | None
    stage5: Stage5Result | None
    stage6: Stage6Result | None
    wall_seconds: float
    #: Metrics snapshot of the run (``MetricsRegistry.snapshot()``).
    metrics: dict[str, Any] | None = None
    #: JSON-safe span records collected by the run's in-memory sink.
    spans: tuple[dict[str, Any], ...] = ()

    @property
    def matrix_cells(self) -> int:
        """DP matrix size m*n (the x-axis of Figure 11)."""
        return self.m * self.n

    @property
    def crosspoint_counts(self) -> dict[str, int]:
        """|L_k| after each stage (Table VIII)."""
        counts = {"L1": 1}
        if self.stage2 is not None:
            counts["L2"] = len(self.stage2.crosspoints)
        if self.stage3 is not None:
            counts["L3"] = len(self.stage3.crosspoints)
        if self.stage4 is not None:
            counts["L4"] = len(self.stage4.crosspoints)
        return counts

    def stages(self) -> dict[str, StageResult]:
        """The executed stages, keyed "1" .. "6" (skipped stages absent)."""
        out: dict[str, StageResult] = {}
        for stage in (self.stage1, self.stage2, self.stage3,
                      self.stage4, self.stage5, self.stage6):
            if stage is not None:
                out[type(stage).stage] = stage
        return out

    def stage_wall_seconds(self) -> dict[str, float]:
        """Measured wall seconds per stage (0.0 for skipped stages)."""
        executed = self.stages()
        return {key: executed[key].wall_seconds if key in executed else 0.0
                for key in ("1", "2", "3", "4", "5", "6")}

    def stage_modeled_seconds(self) -> dict[str, float]:
        """Modeled GTX-285/host seconds per stage (Tables V and VII)."""
        executed = self.stages()
        return {key: executed[key].modeled_seconds if key in executed else 0.0
                for key in ("1", "2", "3", "4", "5", "6")}

    def stage_stats(self) -> dict[str, dict[str, Any]]:
        """Per-stage ``StageResult.stats()`` dicts, keyed by stage."""
        return {key: stage.stats() for key, stage in self.stages().items()}

    @property
    def modeled_total_seconds(self) -> float:
        return sum(self.stage_modeled_seconds().values())

    @property
    def alignment_length(self) -> int:
        return len(self.alignment) if self.alignment is not None else 0

    @property
    def gap_columns(self) -> int:
        if self.composition is None:
            return 0
        return self.composition.gap_opens + self.composition.gap_extensions


class CUDAlign:
    """The public face of the reproduction.

    >>> result = CUDAlign().run(s0, s1)
    >>> result.best_score, result.alignment.start, result.alignment.end

    Args:
        config: pipeline configuration (paper defaults if omitted).
        workdir: directory for the disk-backed SRA and the run manifest;
            ``None`` keeps special lines in memory (identical semantics,
            byte budgets included) and writes no manifest.
        progress: deprecated ``progress(stage, fraction)`` callable;
            wrapped in a :class:`~repro.telemetry.CallbackObserver` (with
            a ``DeprecationWarning``) — pass ``observer`` instead.
        observer: a :class:`~repro.telemetry.PipelineObserver` receiving
            typed stage/metric notifications.
        sinks: extra :class:`~repro.telemetry.TelemetrySink` instances
            (e.g. a :class:`~repro.telemetry.JsonLinesSink` trace file)
            that receive every span and metric event of the run.  The
            pipeline does not close them — the caller owns their
            lifecycle.
        manifest_extra: JSON-safe payload recorded under the manifest's
            ``extra`` key (the job service stamps job id/attempt here).
        stage1_sweeper: pre-built Stage-1 sweeper injected into
            :func:`~repro.core.stage1.run_stage1` (the worker pool's
            micro-batcher presweeps many jobs' lanes in one fused batch
            and hands each pipeline its finished lane); ``None`` builds
            one normally.  Single use: consumed by the next ``run()``.
    """

    def __init__(self, config: PipelineConfig | None = None,
                 workdir: str | os.PathLike | None = None,
                 progress=None, *, observer=None, sinks: tuple = (),
                 manifest_extra: dict | None = None, stage1_sweeper=None):
        self.config = config or PipelineConfig()
        self.workdir = workdir
        self.progress = progress
        self.manifest_extra = manifest_extra
        self.stage1_sweeper = stage1_sweeper
        self.sinks = tuple(sinks)
        observers = []
        if observer is not None:
            observers.append(as_observer(observer))
        if progress is not None:
            observers.append(as_observer(progress))
        self.observers = tuple(observers)

    def run(self, s0: Sequence, s1: Sequence, *, visualize: bool = True
            ) -> PipelineResult:
        """Align ``s0`` x ``s1`` end to end."""
        if not isinstance(s0, Sequence) or not isinstance(s1, Sequence):
            raise ConfigError("run() expects Sequence inputs")
        workdir = os.fspath(self.workdir) if self.workdir is not None else None
        if workdir is not None:
            _validate_workdir(workdir)

        memory = InMemorySink()
        tel = Telemetry(sinks=(memory,) + self.sinks,
                        observers=self.observers)
        with tel.span("pipeline", s0=s0.name, s1=s1.name,
                      m=len(s0), n=len(s1)) as root:
            result = self._run_stages(s0, s1, tel, workdir,
                                      visualize=visualize)
            root.set(best_score=result.best_score,
                     wall_seconds=result.wall_seconds)
        result = dataclasses.replace(
            result,
            metrics=tel.metrics.snapshot(),
            spans=tuple(span.to_record() for span in memory.spans))
        if workdir is not None:
            self._write_manifest(workdir, s0, s1, result)
        return result

    def _run_stages(self, s0: Sequence, s1: Sequence, tel: Telemetry,
                    workdir: str | None, *, visualize: bool
                    ) -> PipelineResult:
        config = self.config
        executor = None
        if config.executor == "wavefront":
            from repro.parallel import WavefrontExecutor
            executor = WavefrontExecutor(config.workers,
                                         metrics=tel.metrics)
        try:
            return self._run_stages_inner(s0, s1, tel, workdir, executor,
                                          visualize=visualize)
        finally:
            if executor is not None:
                executor.close()

    def _run_stages_inner(self, s0: Sequence, s1: Sequence, tel: Telemetry,
                          workdir: str | None, executor, *, visualize: bool
                          ) -> PipelineResult:
        config = self.config
        tick = time.perf_counter()
        sra_dir = os.path.join(workdir, "sra") if workdir is not None else None
        sca_dir = os.path.join(workdir, "sca") if workdir is not None else None

        checkpoint = None
        if workdir is not None and config.checkpoint_every_rows:
            checkpoint = os.path.join(workdir, "stage1.ckpt")
        # A valid Stage-1 checkpoint means this run resumes a crashed one:
        # re-register the special rows the dead process already flushed, so
        # Stage 2 finds them without Stage 1 re-sweeping the prefix.
        try:
            resuming = (checkpoint is not None and
                        checkpoint_row(checkpoint, len(s0), len(s1))
                        is not None)
        except IntegrityError:
            # Corrupt checkpoint: Stage 1 quarantines it and sweeps fresh;
            # don't trust the dead run's SRA registration either.
            resuming = False
        sra = SpecialLineStore(config.sra_bytes, directory=sra_dir,
                               tracer=tel.tracer, recover=resuming)
        if sra.corrupt_lines:
            # Lines the recovery replay had to drop: Stage 1 recomputes
            # and re-flushes them as the sweep passes.
            tel.corruption(KIND_SPECIAL_LINE, sra_dir or "<sra>",
                           action="recomputed", count=sra.corrupt_lines)
        sca = SpecialLineStore(config.sca_bytes, directory=sca_dir,
                               tracer=tel.tracer)

        def account_io() -> None:
            tel.metrics.counter("sra.bytes_flushed").add(
                sra.bytes_written + sca.bytes_written)
            tel.metrics.counter("sra.bytes_read").add(
                sra.bytes_read + sca.bytes_read)

        tel.stage_start("stage1")
        sweeper, self.stage1_sweeper = self.stage1_sweeper, None
        stage1 = run_stage1(s0, s1, config, sra,
                            checkpoint_path=checkpoint,
                            checkpoint_every_rows=config.checkpoint_every_rows,
                            telemetry=tel, executor=executor,
                            sweeper=sweeper)
        tel.stage_end("stage1", stage1)
        if stage1.best_score <= 0:
            # Nothing aligns: the empty alignment is optimal (score 0).
            account_io()
            return PipelineResult(
                s0_name=s0.name, s1_name=s1.name, m=len(s0), n=len(s1),
                best_score=0, alignment=None, binary=None, composition=None,
                stage1=stage1, stage2=None, stage3=None, stage4=None,
                stage5=None, stage6=None,
                wall_seconds=time.perf_counter() - tick)

        tel.stage_start("stage2")
        stage2 = run_stage2(s0, s1, config, sra, sca, stage1, telemetry=tel,
                            executor=executor)
        tel.stage_end("stage2", stage2)
        chain = CrosspointChain(stage2.crosspoints)

        stage3 = None
        if any(band.column_positions for band in stage2.bands):
            tel.stage_start("stage3")
            stage3 = run_stage3(s0, s1, config, sca, stage2, telemetry=tel,
                                executor=executor)
            chain = CrosspointChain(stage3.crosspoints)
            tel.stage_end("stage3", stage3)

        stage4 = None
        limit = config.max_partition_size
        if any(not p.degenerate and p.max_dim > limit
               for p in chain.partitions()):
            tel.stage_start("stage4")
            stage4 = run_stage4(s0, s1, config, chain, telemetry=tel,
                                executor=executor)
            chain = CrosspointChain(stage4.crosspoints)
            tel.stage_end("stage4", stage4)

        tel.stage_start("stage5")
        stage5 = run_stage5(s0, s1, config, chain, telemetry=tel,
                            executor=executor)
        tel.stage_end("stage5", stage5)

        stage6 = None
        if visualize:
            tel.stage_start("stage6")
            stage6 = run_stage6(s0, s1, config, stage5.binary, telemetry=tel)
            tel.stage_end("stage6", stage6)

        account_io()
        alignment = stage5.alignment
        composition = alignment.composition(s0, s1, config.scheme)
        return PipelineResult(
            s0_name=s0.name, s1_name=s1.name, m=len(s0), n=len(s1),
            best_score=stage1.best_score, alignment=alignment,
            binary=stage5.binary, composition=composition,
            stage1=stage1, stage2=stage2, stage3=stage3, stage4=stage4,
            stage5=stage5, stage6=stage6,
            wall_seconds=time.perf_counter() - tick)

    def _write_manifest(self, workdir: str, s0: Sequence, s1: Sequence,
                        result: PipelineResult) -> str:
        manifest = build_manifest(
            sequences={
                "s0": {"name": s0.name, "length": result.m,
                       "sha256": sequence_digest(s0.codes.tobytes())},
                "s1": {"name": s1.name, "length": result.n,
                       "sha256": sequence_digest(s1.codes.tobytes())},
            },
            config=dataclasses.asdict(self.config),
            result={
                "best_score": result.best_score,
                "alignment_length": result.alignment_length,
                "crosspoint_counts": result.crosspoint_counts,
                "wall_seconds": result.wall_seconds,
                "modeled_total_seconds": result.modeled_total_seconds,
            },
            stages=result.stage_stats(),
            stage_wall_seconds=result.stage_wall_seconds(),
            metrics=result.metrics or {},
            spans=list(result.spans),
            extra=self.manifest_extra,
        )
        return write_manifest(os.path.join(workdir, "manifest.json"),
                              manifest)


def _validate_workdir(workdir: str) -> None:
    """Fail fast (before Stage 1) when the workdir cannot take writes."""
    try:
        os.makedirs(workdir, exist_ok=True)
        probe = os.path.join(workdir, ".write-probe")
        with open(probe, "w", encoding="utf-8") as handle:
            handle.write("ok\n")
        os.remove(probe)
    except OSError as exc:
        raise ConfigError(
            f"workdir {workdir!r} is not writable: {exc}") from exc
