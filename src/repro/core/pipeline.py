"""The CUDAlign 2.0 pipeline orchestrator (Section IV).

Runs the six stages in order, skipping the ones an input does not need
(a zero best score ends after Stage 1; Stage 3 is skipped when Stage 2
saved no special columns; Stage 4 when every partition already fits), and
enforces the pipeline's global invariants:

* the crosspoint chain is monotone and brackets the best score;
* every partition rescores exactly to its crosspoint bracket;
* the final alignment rescores to the Stage-1 best score.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.align.alignment import Alignment, Composition
from repro.core.config import PipelineConfig
from repro.core.crosspoints import CrosspointChain
from repro.core.stage1 import Stage1Result, run_stage1
from repro.core.stage2 import Stage2Result, run_stage2
from repro.core.stage3 import Stage3Result, run_stage3
from repro.core.stage4 import Stage4Result, run_stage4
from repro.core.stage5 import Stage5Result, run_stage5
from repro.core.stage6 import Stage6Result, run_stage6
from repro.sequences.sequence import Sequence
from repro.storage.binary_alignment import BinaryAlignment
from repro.storage.sra import SpecialLineStore


@dataclass(frozen=True)
class PipelineResult:
    """Everything the six stages produced, plus aggregate statistics."""

    s0_name: str
    s1_name: str
    m: int
    n: int
    best_score: int
    alignment: Alignment | None
    binary: BinaryAlignment | None
    composition: Composition | None
    stage1: Stage1Result
    stage2: Stage2Result | None
    stage3: Stage3Result | None
    stage4: Stage4Result | None
    stage5: Stage5Result | None
    stage6: Stage6Result | None
    wall_seconds: float

    @property
    def matrix_cells(self) -> int:
        """DP matrix size m*n (the x-axis of Figure 11)."""
        return self.m * self.n

    @property
    def crosspoint_counts(self) -> dict[str, int]:
        """|L_k| after each stage (Table VIII)."""
        counts = {"L1": 1}
        if self.stage2 is not None:
            counts["L2"] = len(self.stage2.crosspoints)
        if self.stage3 is not None:
            counts["L3"] = len(self.stage3.crosspoints)
        if self.stage4 is not None:
            counts["L4"] = len(self.stage4.crosspoints)
        return counts

    @property
    def stage_wall_seconds(self) -> dict[str, float]:
        out = {"1": self.stage1.wall_seconds}
        for key, stage in (("2", self.stage2), ("3", self.stage3),
                           ("4", self.stage4), ("5", self.stage5),
                           ("6", self.stage6)):
            out[key] = stage.wall_seconds if stage is not None else 0.0
        return out

    @property
    def stage_modeled_seconds(self) -> dict[str, float]:
        """Modeled GTX-285/host seconds per stage (Tables V and VII)."""
        out = {"1": self.stage1.modeled_seconds}
        for key, stage in (("2", self.stage2), ("3", self.stage3),
                           ("4", self.stage4), ("5", self.stage5)):
            out[key] = stage.modeled_seconds if stage is not None else 0.0
        out["6"] = self.stage6.wall_seconds if self.stage6 is not None else 0.0
        return out

    @property
    def modeled_total_seconds(self) -> float:
        return sum(self.stage_modeled_seconds.values())

    @property
    def alignment_length(self) -> int:
        return len(self.alignment) if self.alignment is not None else 0

    @property
    def gap_columns(self) -> int:
        if self.composition is None:
            return 0
        return self.composition.gap_opens + self.composition.gap_extensions


class CUDAlign:
    """The public face of the reproduction.

    >>> result = CUDAlign().run(s0, s1)
    >>> result.best_score, result.alignment.start, result.alignment.end

    Args:
        config: pipeline configuration (paper defaults if omitted).
        workdir: directory for the disk-backed SRA; ``None`` keeps special
            lines in memory (identical semantics, byte budgets included).
    """

    def __init__(self, config: PipelineConfig | None = None,
                 workdir: str | os.PathLike | None = None,
                 progress=None):
        self.config = config or PipelineConfig()
        self.workdir = workdir
        #: Optional ``progress(stage: str, fraction: float)`` callback —
        #: stage transitions plus per-band Stage-1 updates, so multi-hour
        #: runs are observable.
        self.progress = progress

    def run(self, s0: Sequence, s1: Sequence, *, visualize: bool = True
            ) -> PipelineResult:
        """Align ``s0`` x ``s1`` end to end."""
        if not isinstance(s0, Sequence) or not isinstance(s1, Sequence):
            raise ConfigError("run() expects Sequence inputs")
        config = self.config
        tick = time.perf_counter()
        sra_dir = os.path.join(os.fspath(self.workdir), "sra") \
            if self.workdir is not None else None
        sca_dir = os.path.join(os.fspath(self.workdir), "sca") \
            if self.workdir is not None else None
        sra = SpecialLineStore(config.sra_bytes, directory=sra_dir)
        sca = SpecialLineStore(config.sca_bytes, directory=sca_dir)

        checkpoint = None
        if self.workdir is not None and config.checkpoint_every_rows:
            checkpoint = os.path.join(os.fspath(self.workdir), "stage1.ckpt")

        def tick_progress(stage: str, fraction: float) -> None:
            if self.progress is not None:
                self.progress(stage, fraction)

        stage1 = run_stage1(s0, s1, config, sra,
                            checkpoint_path=checkpoint,
                            checkpoint_every_rows=config.checkpoint_every_rows,
                            progress=self.progress)
        tick_progress("stage1", 1.0)
        if stage1.best_score <= 0:
            # Nothing aligns: the empty alignment is optimal (score 0).
            return PipelineResult(
                s0_name=s0.name, s1_name=s1.name, m=len(s0), n=len(s1),
                best_score=0, alignment=None, binary=None, composition=None,
                stage1=stage1, stage2=None, stage3=None, stage4=None,
                stage5=None, stage6=None,
                wall_seconds=time.perf_counter() - tick)

        stage2 = run_stage2(s0, s1, config, sra, sca, stage1)
        tick_progress("stage2", 1.0)
        chain = CrosspointChain(stage2.crosspoints)

        stage3 = None
        if any(band.column_positions for band in stage2.bands):
            stage3 = run_stage3(s0, s1, config, sca, stage2)
            chain = CrosspointChain(stage3.crosspoints)
            tick_progress("stage3", 1.0)

        stage4 = None
        limit = config.max_partition_size
        if any(not p.degenerate and p.max_dim > limit
               for p in chain.partitions()):
            stage4 = run_stage4(s0, s1, config, chain)
            chain = CrosspointChain(stage4.crosspoints)
            tick_progress("stage4", 1.0)

        stage5 = run_stage5(s0, s1, config, chain)
        tick_progress("stage5", 1.0)
        stage6 = run_stage6(s0, s1, config, stage5.binary) if visualize else None
        if visualize:
            tick_progress("stage6", 1.0)
        alignment = stage5.alignment
        composition = alignment.composition(s0, s1, config.scheme)
        return PipelineResult(
            s0_name=s0.name, s1_name=s1.name, m=len(s0), n=len(s1),
            best_score=stage1.best_score, alignment=alignment,
            binary=stage5.binary, composition=composition,
            stage1=stage1, stage2=stage2, stage3=stage3, stage4=stage4,
            stage5=stage5, stage6=stage6,
            wall_seconds=time.perf_counter() - tick)
