"""The common stage-result API.

All six ``StageNResult`` dataclasses derive from :class:`StageResult`,
which fixes the uniform surface the pipeline, the reports and the
telemetry layer consume: ``wall_seconds``, ``modeled_seconds``,
``cells`` and a JSON-safe :meth:`StageResult.stats` dict.  Consumers
iterate ``PipelineResult.stages()`` generically instead of hard-coding
six attribute sets.

The base deliberately carries no dataclass fields (each stage declares
its own, in its own order); it contributes the class-level contract,
derived properties and the generic ``stats()`` implementation.
"""

from __future__ import annotations

import dataclasses
from typing import Any, ClassVar


class StageResult:
    """Base/protocol for the six per-stage result dataclasses.

    Contract (implemented as dataclass fields or properties by every
    subclass):

    * ``wall_seconds`` — measured wall time of the stage;
    * ``modeled_seconds`` — modeled device/host time (0 when the stage
      has no model);
    * ``cells`` — DP cells the stage processed (0 for non-sweep stages);
    * ``stats()`` — flat JSON-safe dict of the above plus every scalar
      field and the lengths of sequence-valued fields.
    """

    #: Stage number as a string key ("1" .. "6"), the key used by
    #: ``PipelineResult.stages()`` and the reports.
    stage: ClassVar[str] = "?"

    @property
    def mcups_wall(self) -> float:
        """Measured MCUPS of this stage's (CPU-simulated) work."""
        return self.cells / max(self.wall_seconds, 1e-12) / 1e6

    def stats(self) -> dict[str, Any]:
        """Flat, JSON-safe statistics for reports, traces, manifests.

        Scalars (bool/int/float/str fields) are included verbatim;
        tuple/list fields contribute ``<name>_count`` entries; complex
        objects (alignments, crosspoints, arrays) are omitted.
        """
        out: dict[str, Any] = {
            "stage": type(self).stage,
            "wall_seconds": float(self.wall_seconds),
            "modeled_seconds": float(self.modeled_seconds),
            "cells": int(self.cells),
        }
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if field.name in out:
                continue
            if isinstance(value, (bool, int, float, str)):
                out[field.name] = value
            elif isinstance(value, (tuple, list)):
                out[f"{field.name}_count"] = len(value)
        return out

    # Defaults so that duck-typed access works even on a subclass that
    # defines neither a field nor a property for these (dataclass fields
    # shadow them via instance attributes; properties override them on
    # the subclass).
    wall_seconds: float
    modeled_seconds: float
    cells: int


def is_stage_result(obj: Any) -> bool:
    """True when ``obj`` satisfies the stage-result contract."""
    return (isinstance(obj, StageResult)
            or all(hasattr(obj, name) for name in
                   ("wall_seconds", "modeled_seconds", "cells", "stats")))
