"""Stage 6 — visualization (Section IV-G).

Optional reconstruction of the alignment from Stage 5's binary
representation: the textual rendering (three-row blocks, like the paper's
142 MB text file) and the dotplot of the alignment path (Figure 12).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import ClassVar

from repro.align.alignment import Alignment
from repro.core.config import PipelineConfig
from repro.core.result import StageResult
from repro.sequences.sequence import Sequence
from repro.storage.binary_alignment import BinaryAlignment
from repro.telemetry.runtime import NULL_TELEMETRY
from repro.viz.text_render import render_alignment_text
from repro.viz.dotplot import ascii_dotplot


@dataclass(frozen=True)
class Stage6Result(StageResult):
    stage: ClassVar[str] = "6"

    alignment: Alignment
    text: str
    dotplot: str
    text_bytes: int
    binary_bytes: int
    wall_seconds: float

    # Rendering is host-side work outside the performance model, and it
    # sweeps no DP cells — the properties below keep the StageResult
    # contract uniform without storing redundant fields.
    @property
    def modeled_seconds(self) -> float:
        return self.wall_seconds

    @property
    def cells(self) -> int:
        return 0

    @property
    def compression_ratio(self) -> float:
        """Text size over binary size (the paper reports 279x)."""
        return self.text_bytes / max(1, self.binary_bytes)


def run_stage6(s0: Sequence, s1: Sequence, config: PipelineConfig,
               binary: BinaryAlignment, *, width: int = 60,
               plot_size: int = 48, telemetry=None) -> Stage6Result:
    """Reconstruct and render the alignment from its binary form."""
    tel = telemetry if telemetry is not None else NULL_TELEMETRY
    with tel.span("stage6", binary_bytes=binary.nbytes) as stage_span:
        tick = time.perf_counter()
        alignment = binary.reconstruct()
        text = render_alignment_text(alignment, s0, s1, width=width)
        plot = ascii_dotplot(alignment, len(s0), len(s1), size=plot_size)
        wall = time.perf_counter() - tick
        result = Stage6Result(
            alignment=alignment,
            text=text,
            dotplot=plot,
            text_bytes=len(text.encode()),
            binary_bytes=binary.nbytes,
            wall_seconds=wall,
        )
        stage_span.set(text_bytes=result.text_bytes,
                       wall_seconds=result.wall_seconds)
        return result
