"""Stage 3 — splitting partitions (Section IV-D).

Each partition produced by Stage 2 is swept *forward* from its start
crosspoint, in row strips (the orthogonal direction of Stage 2), matching
the forward (H, E) values against the special columns Stage 2 saved.
Every special column the optimal path crosses yields a new crosspoint;
once the last special column of a partition is intercepted, the partition
needs no further computation.

Matching algebra: the forward sweep is seeded with the anchor's gap state
(the continuing run pays extensions only), so its relative values satisfy
``anchor.score + fwd == crosspoint-convention forward score``.  The saved
column holds de-biased tails ``hi.score - forward``; hence the goal for a
sub-partition is simply ``hi.score - anchor.score`` with the usual
``+ G_open`` re-credit on the E-join (a horizontal run crossing the
column pays its opening on both sides).

Partitions are independent, so they can be processed in parallel
(``config.workers`` threads).  Each band's special columns are consumed
here and released from the store, keeping disk usage linear.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import ClassVar

import numpy as np

from repro.constants import TYPE_GAP_S0, TYPE_MATCH
from repro.errors import IntegrityError, MatchingError
from repro.integrity.codec import KIND_SPECIAL_LINE
from repro.core.config import PipelineConfig
from repro.parallel.sweeper import make_sweeper
from repro.core.crosspoints import Crosspoint
from repro.core.result import StageResult
from repro.core.stage2 import BandRecord, Stage2Result
from repro.gpusim.perf import stage3_vram_bytes, sweep_cost
from repro.sequences.sequence import Sequence
from repro.storage.sra import SpecialLineStore
from repro.telemetry.runtime import NULL_TELEMETRY


@dataclass(frozen=True)
class Stage3Result(StageResult):
    """The refined crosspoint chain and execution statistics."""

    stage: ClassVar[str] = "3"

    crosspoints: tuple[Crosspoint, ...]
    cells: int
    effective_blocks: int      # the B3 actually used (Table VIII)
    vram_bytes: int
    wall_seconds: float
    modeled_seconds: float


def _match_on_row(anchor: Crosspoint, jc: int, line, scheme, goal: int
                  ) -> Crosspoint:
    """Zero-height sub-partition: the path runs along one row, so it
    crosses the special column inside a horizontal run (E-join only)."""
    w = jc - anchor.j
    fwd_e = -(w * scheme.gap_ext if anchor.type == TYPE_GAP_S0
              else scheme.gap_cost(w))
    _, tail_e = line.value_at(anchor.i)
    if fwd_e + tail_e + scheme.gap_open != goal:
        raise MatchingError(
            f"single-row partition failed to match column {jc} (goal {goal})")
    return Crosspoint(anchor.i, jc, anchor.score + fwd_e, TYPE_GAP_S0)


def _split_band(s0: Sequence, s1: Sequence, config: PipelineConfig,
                sca: SpecialLineStore, band: BandRecord, tel=NULL_TELEMETRY,
                executor=None) -> tuple[list[Crosspoint], int, float]:
    """Find the crosspoints of one partition; returns (points, cells, t_model)."""
    scheme = config.scheme
    gopen = scheme.gap_open
    tracer = tel.tracer
    anchor = band.lo
    end = band.hi
    points: list[Crosspoint] = []
    cells = 0
    modeled = 0.0

    for jc in band.column_positions:
        if jc <= anchor.j or jc >= end.j:
            continue
        try:
            line = sca.load(band.namespace, jc)
        except IntegrityError as exc:
            # A special column only refines the chain; skipping a corrupt
            # one merges its sub-partition into the next (wider Myers-
            # Miller recursion downstream, identical alignment).
            sca.quarantine(band.namespace, jc)
            tel.corruption(KIND_SPECIAL_LINE, exc.path or "<sca>",
                           action="widened", detail=str(exc))
            continue
        goal = end.score - anchor.score
        h = end.i - anchor.i
        w = jc - anchor.j
        if h == 0:
            anchor = _match_on_row(anchor, jc, line, scheme, goal)
            points.append(anchor)
            continue
        col_H = line.H.astype(np.int64)
        col_E = line.G.astype(np.int64)

        sweep = make_sweeper(s0.codes[anchor.i:end.i], s1.codes[anchor.j:jc],
                             scheme, kernel=config.kernel,
                             executor=executor, metrics=tel.metrics,
                             start_gap=anchor.type,
                             tap_columns=np.array([w]), tracer=tracer)
        found: Crosspoint | None = None
        next_i = 0
        while found is None:
            rows = np.arange(next_i, sweep.i + 1)
            next_i = sweep.i + 1
            if rows.size:
                abs_rows = anchor.i + rows
                tails_h = col_H[abs_rows - line.lo]
                tails_e = col_E[abs_rows - line.lo]
                fwd_h = sweep.tap_H[rows, 0].astype(np.int64)
                fwd_e = sweep.tap_E[rows, 0].astype(np.int64)
                h_hits = np.flatnonzero(fwd_h + tails_h == goal)
                e_hits = np.flatnonzero(fwd_e + tails_e + gopen == goal)
                if h_hits.size or e_hits.size:
                    if h_hits.size:
                        i = int(abs_rows[h_hits[0]])
                        found = Crosspoint(i, jc,
                                           anchor.score + int(fwd_h[h_hits[0]]),
                                           TYPE_MATCH)
                    else:
                        i = int(abs_rows[e_hits[0]])
                        found = Crosspoint(i, jc,
                                           anchor.score + int(fwd_e[e_hits[0]]),
                                           TYPE_GAP_S0)
                    break
            if sweep.done:
                raise MatchingError(
                    f"stage 3 could not match column {jc} of band "
                    f"{band.namespace} (goal {goal})")
            sweep.advance(config.stage3_strip)
        cells += sweep.cells
        getattr(sweep, "close", lambda: None)()
        sub_h = max(1, sweep.cells // max(1, w))
        grid = config.grid3.shrink_to(max(w, 1), config.device)
        modeled += sweep_cost(sub_h, w, grid, config.device).seconds
        points.append(found)
        anchor = found
    return points, cells, modeled


def run_stage3(s0: Sequence, s1: Sequence, config: PipelineConfig,
               sca: SpecialLineStore, stage2: Stage2Result, *,
               telemetry=None, executor=None) -> Stage3Result:
    """Refine every Stage-2 partition against its saved special columns.

    With a wavefront executor the bands run serially here and each band's
    sweep parallelises internally on the pool (dispatching tile diagonals
    from concurrent threads would interleave on the worker pipes).
    """
    tel = telemetry if telemetry is not None else NULL_TELEMETRY
    start = time.perf_counter()
    total_cells = 0
    modeled = 0.0

    with tel.span("stage3", bands=len(stage2.bands)) as stage_span:

        def work(band: BandRecord):
            # Re-anchor worker-thread spans under the stage span.
            with tel.attach(stage_span):
                return _split_band(s0, s1, config, sca, band, tel, executor)

        if config.workers > 1 and executor is None:
            with ThreadPoolExecutor(max_workers=config.workers) as pool:
                results = list(pool.map(work, stage2.bands))
        else:
            results = [work(band) for band in stage2.bands]

        chain: list[Crosspoint] = [stage2.crosspoints[0]]
        widths: list[int] = []
        for band, (points, cells, t_model) in zip(stage2.bands, results):
            total_cells += cells
            modeled += t_model
            chain.extend(points)
            chain.append(band.hi)
            prev = band.lo
            for point in (*points, band.hi):
                widths.append(max(1, point.j - prev.j))
                prev = point
            sca.release(band.namespace)

        min_width = min(widths) if widths else len(s1)
        b3 = config.grid3.shrink_to(min_width, config.device).blocks
        wall = time.perf_counter() - start
        result = Stage3Result(
            crosspoints=tuple(chain),
            cells=total_cells,
            effective_blocks=b3,
            vram_bytes=stage3_vram_bytes(len(s0), len(s1), config.grid3),
            wall_seconds=wall,
            modeled_seconds=modeled,
        )
        stage_span.set(cells=result.cells,
                       crosspoints=len(result.crosspoints),
                       wall_seconds=result.wall_seconds)
        tel.metrics.counter("cells.swept").add(result.cells)
        tel.metrics.gauge("crosspoints.L3").set(len(result.crosspoints))
        return result
