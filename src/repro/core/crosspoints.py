"""Crosspoints and partitions (Section IV-A).

A *crosspoint* is a coordinate where the optimal alignment crosses a
special row or column: ``(i, j, score, type)``.  ``score`` is the forward
value of the optimal path at that cell in the matrix named by ``type``
(H for type 0, E for a gap in S0, F for a gap in S1) — so the score of
the sub-alignment between two crosspoints is simply the difference of
their scores, and a gap run split across a crosspoint pays its opening
exactly once (in the upstream partition).

Two consecutive crosspoints bound a :class:`Partition`; the chain from the
start point (score 0) to the end point (score = best) is what Stages 2-4
refine until every partition fits ``max_partition_size``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.constants import TYPE_GAP_S0, TYPE_GAP_S1, TYPE_MATCH
from repro.errors import PartitionError


@dataclass(frozen=True, order=True)
class Crosspoint:
    """One coordinate of the optimal alignment: ``(i, j, score, type)``."""

    i: int
    j: int
    score: int
    type: int = TYPE_MATCH

    def __post_init__(self) -> None:
        if self.i < 0 or self.j < 0:
            raise PartitionError("crosspoint coordinates must be non-negative")
        if self.type not in (TYPE_MATCH, TYPE_GAP_S0, TYPE_GAP_S1):
            raise PartitionError(f"invalid crosspoint type {self.type!r}")


@dataclass(frozen=True)
class Partition:
    """The sub-problem between two crosspoints (Section IV-A).

    Covers subsequences ``S0[start.i .. end.i]`` and ``S1[start.j ..
    end.j]`` (Python slice semantics), aligned globally with the boundary
    gap states given by the crosspoint types.
    """

    start: Crosspoint
    end: Crosspoint

    def __post_init__(self) -> None:
        if self.end.i < self.start.i or self.end.j < self.start.j:
            raise PartitionError(
                f"partition end {self.end} precedes start {self.start}")
        if (self.end.i, self.end.j) == (self.start.i, self.start.j):
            raise PartitionError("empty partition (identical crosspoints)")

    @property
    def height(self) -> int:
        return self.end.i - self.start.i

    @property
    def width(self) -> int:
        return self.end.j - self.start.j

    @property
    def max_dim(self) -> int:
        """The paper's partition size measure (balanced splitting halves it)."""
        return max(self.height, self.width)

    @property
    def area(self) -> int:
        return self.height * self.width

    @property
    def score(self) -> int:
        """The sub-alignment's score contribution: ``S(C_s, C_e)``."""
        return self.end.score - self.start.score

    @property
    def degenerate(self) -> bool:
        """A pure gap run (one side empty) — alignable in O(length)."""
        return self.height == 0 or self.width == 0


class CrosspointChain:
    """The ordered list ``L_k`` of crosspoints after stage ``k``.

    Validates the geometric invariants (coordinates monotone, endpoints
    typed H) and yields the partitions between consecutive crosspoints.
    """

    def __init__(self, points: Iterable[Crosspoint]):
        pts = list(points)
        if len(pts) < 2:
            raise PartitionError("a chain needs at least start and end points")
        for a, b in zip(pts, pts[1:]):
            if b.i < a.i or b.j < a.j:
                raise PartitionError(f"chain not monotone: {a} -> {b}")
            if (a.i, a.j) == (b.i, b.j):
                raise PartitionError(f"duplicate crosspoint at ({a.i}, {a.j})")
        if pts[0].type != TYPE_MATCH or pts[-1].type != TYPE_MATCH:
            raise PartitionError("start and end points must be type 0")
        if pts[0].score != 0:
            raise PartitionError("the start point must have score 0")
        self._points = tuple(pts)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> Iterator[Crosspoint]:
        return iter(self._points)

    def __getitem__(self, k: int) -> Crosspoint:
        return self._points[k]

    @property
    def points(self) -> tuple[Crosspoint, ...]:
        return self._points

    @property
    def start(self) -> Crosspoint:
        return self._points[0]

    @property
    def end(self) -> Crosspoint:
        return self._points[-1]

    @property
    def best_score(self) -> int:
        return self.end.score

    def partitions(self) -> list[Partition]:
        """Partitions between consecutive crosspoints."""
        return [Partition(a, b) for a, b in zip(self._points, self._points[1:])]

    def max_partition_dim(self) -> int:
        """Largest partition dimension (Table IX's H_max/W_max measure)."""
        return max(p.max_dim for p in self.partitions())

    def refine(self, partition_index: int,
               new_points: Iterable[Crosspoint]) -> "CrosspointChain":
        """Insert crosspoints inside one partition, returning a new chain."""
        parts = self.partitions()
        if not 0 <= partition_index < len(parts):
            raise PartitionError(f"no partition {partition_index}")
        pts = list(self._points)
        pts[partition_index + 1:partition_index + 1] = list(new_points)
        return CrosspointChain(pts)

    @staticmethod
    def merged(chains: Iterable[Iterable[Crosspoint]]) -> "CrosspointChain":
        """Concatenate per-partition point runs into one chain."""
        pts: list[Crosspoint] = []
        for chain in chains:
            for point in chain:
                if pts and (pts[-1].i, pts[-1].j) == (point.i, point.j):
                    continue
                pts.append(point)
        return CrosspointChain(pts)
