"""Stage 5 — obtaining the full alignment (Section IV-F).

Every partition is now at most ``max_partition_size`` in each dimension,
so each is aligned exactly with the full-matrix aligner in O(1) memory
(degenerate partitions are emitted directly as gap runs).  The
sub-alignments are concatenated into the complete optimal alignment, and
the compact binary representation (start/end, score, GAP_1/GAP_2 lists)
is produced for Stage 6.

Every partition's score is verified against its crosspoint bracket, and
the concatenated alignment is rescored against the Stage-1 best score —
the pipeline's end-to-end invariant.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import ClassVar

from repro.errors import PartitionError
from repro.align.alignment import Alignment
from repro.align.full_matrix import global_align
from repro.align.myers_miller import degenerate_alignment
from repro.core.config import PipelineConfig
from repro.core.crosspoints import CrosspointChain, Partition
from repro.core.result import StageResult
from repro.gpusim.perf import host_seconds
from repro.sequences.sequence import Sequence
from repro.storage.binary_alignment import BinaryAlignment
from repro.telemetry.runtime import NULL_TELEMETRY


@dataclass(frozen=True)
class Stage5Result(StageResult):
    stage: ClassVar[str] = "5"

    alignment: Alignment
    binary: BinaryAlignment
    partitions_aligned: int
    cells: int
    wall_seconds: float
    modeled_seconds: float


def align_partition(s0: Sequence, s1: Sequence, partition: Partition,
                    config: PipelineConfig) -> tuple[Alignment, int]:
    """Exact alignment of one partition; returns (global path, cells).

    Partitions here are at most ``max_partition_size`` per side, so the
    O(1)-memory full-matrix aligner handles them directly; the
    ``config.kernel`` backend selection applies to the sweep stages
    (1-4), not to these constant-size base cases.
    """
    start, end = partition.start, partition.end
    if partition.degenerate:
        path = degenerate_alignment(partition.height, partition.width)
        return path.offset(start.i, start.j), 0
    path, score = global_align(
        s0.codes[start.i:end.i], s1.codes[start.j:end.j], config.scheme,
        start_gap=start.type, end_gap=end.type)
    if score != partition.score:
        raise PartitionError(
            f"partition {start} -> {end} aligned to {score}, "
            f"expected {partition.score}")
    return path.offset(start.i, start.j), partition.area


def run_stage5(s0: Sequence, s1: Sequence, config: PipelineConfig,
               chain: CrosspointChain, *, telemetry=None,
               executor=None) -> Stage5Result:
    """Align all partitions, concatenate, emit the binary representation.

    With a wavefront executor the base cases fan across its process pool,
    largest area first; degenerate partitions go through the same path
    (the worker emits their gap run inline at O(length) cost).
    """
    tel = telemetry if telemetry is not None else NULL_TELEMETRY
    tick = time.perf_counter()
    partitions = chain.partitions()
    for p in partitions:
        if not p.degenerate and p.max_dim > config.max_partition_size:
            raise PartitionError(
                f"stage 5 received an oversized partition ({p.max_dim} > "
                f"{config.max_partition_size}); stage 4 must run first")

    with tel.span("stage5", partitions=len(partitions)) as stage_span:

        def work(p: Partition):
            return align_partition(s0, s1, p, config)

        if executor is not None:
            shared = [executor.share(s0.codes), executor.share(s1.codes)]
            refs = {"codes0": shared[0].ref, "codes1": shared[1].ref}
            payloads = [{"partition": p, "scheme": config.scheme}
                        for p in partitions]
            results = executor.map_calls("align", payloads, refs,
                                         sizes=[p.area for p in partitions])
            # On the exception path executor.close() unlinks these.
            executor.release(shared)
        elif config.workers > 1:
            with ThreadPoolExecutor(max_workers=config.workers) as pool:
                results = list(pool.map(work, partitions))
        else:
            results = [work(p) for p in partitions]

        pieces = [path for path, _ in results]
        cells = sum(c for _, c in results)
        alignment = Alignment.concat_all(pieces)
        best = chain.best_score
        rescored = alignment.score(s0, s1, config.scheme)
        if rescored != best:
            raise PartitionError(
                f"concatenated alignment rescored to {rescored}, expected {best}")
        binary = BinaryAlignment.from_alignment(alignment, best)
        wall = time.perf_counter() - tick
        result = Stage5Result(
            alignment=alignment,
            binary=binary,
            partitions_aligned=len(partitions),
            cells=cells,
            wall_seconds=wall,
            modeled_seconds=host_seconds(cells, config.host,
                                         threads=config.workers),
        )
        stage_span.set(cells=result.cells,
                       partitions=result.partitions_aligned,
                       score=best, wall_seconds=result.wall_seconds)
        tel.metrics.counter("cells.swept").add(result.cells)
        return result
