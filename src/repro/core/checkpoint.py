"""Stage-1 checkpointing.

At paper scale Stage 1 runs for ~18 hours (97% of the pipeline), so crash
recovery matters.  A checkpoint is the sweep's O(n) linear-space state
(current H/E/F rows, best cell, row counter) serialized as an ``.npz``
inside a checksummed artifact frame and written atomically; special rows
flushed before the checkpoint already live in the durable SRA, so
resuming re-processes at most ``checkpoint_every_rows`` rows.

A corrupt or torn checkpoint raises :class:`~repro.errors.IntegrityError`
(a :class:`~repro.errors.StorageError`), never a raw ``zipfile`` or
``OSError`` traceback — Stage 1 catches it and falls back to a fresh
sweep, so a bad block costs wall-clock, not the run.

Checkpoints are *executor-agnostic*: the parallel wavefront sweeper
(:class:`~repro.parallel.ParallelRowSweeper`) shares the serial kernel's
``state_dict``/``load_state`` contract and produces bit-identical state,
so a run checkpointed under ``--executor wavefront`` resumes under
``serial`` and vice versa — the file records matrix state, not schedule.
"""

from __future__ import annotations

import io
import os
import zipfile

import numpy as np

from repro.errors import IntegrityError, StorageError
from repro.integrity import codec
from repro.align.rowscan import RowSweeper

#: Format version stamped into every checkpoint.
CHECKPOINT_VERSION = 1


def save_checkpoint(path: str | os.PathLike, sweeper: RowSweeper,
                    m: int, n: int, *, tracer=None) -> None:
    """Atomically persist the sweep state (write + rename)."""
    if tracer is not None:
        with tracer.span("checkpoint.save", row=sweeper.i, m=m, n=n):
            _save_checkpoint(path, sweeper, m, n)
        return
    _save_checkpoint(path, sweeper, m, n)


def _save_checkpoint(path: str | os.PathLike, sweeper: RowSweeper,
                     m: int, n: int) -> None:
    state = sweeper.state_dict()
    buffer = io.BytesIO()
    np.savez(buffer, version=CHECKPOINT_VERSION, m=m, n=n, **state)
    codec.write_artifact(os.fspath(path), buffer.getvalue(),
                         codec.KIND_CHECKPOINT)


def load_checkpoint(path: str | os.PathLike, m: int, n: int) -> dict | None:
    """Load a checkpoint if present and consistent with the comparison.

    Returns ``None`` when no checkpoint exists; raises
    :class:`IntegrityError` when the file is corrupt (bad frame, torn
    npz, missing arrays) and plain :class:`StorageError` when it is
    intact but belongs to a different comparison or format.
    """
    path = os.fspath(path)
    if not os.path.exists(path):
        return None
    try:
        payload = codec.read_artifact(path, codec.KIND_CHECKPOINT)
    except FileNotFoundError:
        # Vanished between the existence probe and the read (e.g. a
        # concurrent clear_checkpoint): same as never having existed.
        return None
    try:
        with np.load(io.BytesIO(payload)) as data:
            if int(data["version"]) != CHECKPOINT_VERSION:
                raise StorageError(
                    f"checkpoint {path} has unsupported version "
                    f"{int(data['version'])}")
            if int(data["m"]) != m or int(data["n"]) != n:
                raise StorageError(
                    f"checkpoint {path} belongs to a {int(data['m'])} x "
                    f"{int(data['n'])} comparison, not {m} x {n}")
            state = {key: data[key] for key in
                     ("i", "cells", "H", "E", "F", "best", "best_i", "best_j")}
            for key in ("H", "E", "F"):
                if state[key].shape != (n + 1,):
                    raise IntegrityError(
                        f"checkpoint row {key} has shape {state[key].shape}, "
                        f"expected ({n + 1},)",
                        kind=codec.KIND_CHECKPOINT, path=path)
            return state
    except IntegrityError:
        raise
    except StorageError:
        raise
    except (zipfile.BadZipFile, OSError, ValueError, KeyError, EOFError) as exc:
        # The frame verified but the npz inside did not decode: damage
        # predating the framed write (or a hand-built artifact).
        raise IntegrityError(
            f"checkpoint payload is not a readable npz: {exc}",
            kind=codec.KIND_CHECKPOINT, path=path) from exc


def checkpoint_row(path: str | os.PathLike, m: int, n: int) -> int | None:
    """Peek at the row a checkpoint would resume from, without arrays.

    Returns ``None`` when no checkpoint exists; raises
    :class:`StorageError` for a checkpoint of a different comparison and
    :class:`IntegrityError` for a corrupt one.  The job service uses this
    to report "resuming from row N" before it re-dispatches a failed
    attempt.
    """
    state = load_checkpoint(path, m, n)
    return None if state is None else int(state["i"])


def quarantine_checkpoint(path: str | os.PathLike) -> str | None:
    """Preserve a corrupt checkpoint for post-mortem and clear the slot."""
    return codec.quarantine_file(path)


def clear_checkpoint(path: str | os.PathLike) -> None:
    """Remove a checkpoint after the stage completes."""
    if os.path.exists(path):
        os.remove(path)
