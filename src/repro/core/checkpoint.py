"""Stage-1 checkpointing.

At paper scale Stage 1 runs for ~18 hours (97% of the pipeline), so crash
recovery matters.  A checkpoint is the sweep's O(n) linear-space state
(current H/E/F rows, best cell, row counter) written atomically as an
``.npz``; special rows flushed before the checkpoint already live in the
durable SRA, so resuming re-processes at most ``checkpoint_every_rows``
rows.
"""

from __future__ import annotations

import os

import numpy as np

from repro.errors import StorageError
from repro.align.rowscan import RowSweeper

#: Format version stamped into every checkpoint.
CHECKPOINT_VERSION = 1


def save_checkpoint(path: str | os.PathLike, sweeper: RowSweeper,
                    m: int, n: int, *, tracer=None) -> None:
    """Atomically persist the sweep state (write + rename)."""
    if tracer is not None:
        with tracer.span("checkpoint.save", row=sweeper.i, m=m, n=n):
            _save_checkpoint(path, sweeper, m, n)
        return
    _save_checkpoint(path, sweeper, m, n)


def _save_checkpoint(path: str | os.PathLike, sweeper: RowSweeper,
                     m: int, n: int) -> None:
    state = sweeper.state_dict()
    tmp = f"{os.fspath(path)}.tmp"
    np.savez(tmp, version=CHECKPOINT_VERSION, m=m, n=n, **state)
    # numpy appends .npz to the temp name.
    os.replace(tmp + ".npz", os.fspath(path))


def load_checkpoint(path: str | os.PathLike, m: int, n: int) -> dict | None:
    """Load a checkpoint if present and consistent with the comparison.

    Returns ``None`` when no checkpoint exists; raises
    :class:`StorageError` when one exists but belongs to a different
    comparison or format.
    """
    if not os.path.exists(path):
        return None
    with np.load(path) as data:
        if int(data["version"]) != CHECKPOINT_VERSION:
            raise StorageError(
                f"checkpoint {path} has unsupported version {int(data['version'])}")
        if int(data["m"]) != m or int(data["n"]) != n:
            raise StorageError(
                f"checkpoint {path} belongs to a {int(data['m'])} x "
                f"{int(data['n'])} comparison, not {m} x {n}")
        return {key: data[key] for key in
                ("i", "cells", "H", "E", "F", "best", "best_i", "best_j")}


def checkpoint_row(path: str | os.PathLike, m: int, n: int) -> int | None:
    """Peek at the row a checkpoint would resume from, without arrays.

    Returns ``None`` when no checkpoint exists; raises
    :class:`StorageError` for a checkpoint of a different comparison.
    The job service uses this to report "resuming from row N" before it
    re-dispatches a failed attempt.
    """
    state = load_checkpoint(path, m, n)
    return None if state is None else int(state["i"])


def clear_checkpoint(path: str | os.PathLike) -> None:
    """Remove a checkpoint after the stage completes."""
    if os.path.exists(path):
        os.remove(path)
