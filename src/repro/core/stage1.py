"""Stage 1 — obtain the best score (Section IV-B).

A full forward Smith-Waterman sweep of the DP matrix (the CUDAlign 1.0
kernel) that additionally flushes *special rows* to the SRA.  Only rows at
multiples of the block height ``alpha * T`` are candidates (they are what
the horizontal bus holds), and the flush interval obeys the
``ceil(8mn / (alpha*T*|SRA|))`` law.

Special rows are flushed *as the sweep passes them* (the paper's
behaviour: the horizontal bus drains to disk at the flush interval), which
together with the optional checkpointing makes the multi-hour stage
restartable: on resume, rows flushed before the crash are already in the
durable SRA and at most ``checkpoint_every_rows`` rows are re-processed.

Outputs: the best score, its end position, and the saved special rows —
the list ``L_1 = {*, C_1}`` with the start point still unknown.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, ClassVar

from repro.constants import TYPE_MATCH
from repro.errors import ConfigError, IntegrityError
from repro.integrity.codec import KIND_CHECKPOINT
from repro.core.checkpoint import (clear_checkpoint, load_checkpoint,
                                   quarantine_checkpoint, save_checkpoint)
from repro.parallel.sweeper import make_sweeper
from repro.core.config import PipelineConfig
from repro.core.crosspoints import Crosspoint
from repro.core.result import StageResult
from repro.gpusim.grid import SweepGeometry
from repro.gpusim.perf import stage1_vram_bytes, sweep_cost
from repro.sequences.sequence import Sequence
from repro.storage.sra import SavedLine, SpecialLineStore, special_row_positions
from repro.telemetry.runtime import NULL_TELEMETRY

#: SRA namespace of Stage 1's special rows.
ROWS_NS = "stage1/rows"


@dataclass(frozen=True)
class Stage1Result(StageResult):
    """Best score, end point, and execution statistics of Stage 1."""

    stage: ClassVar[str] = "1"

    best_score: int
    end_point: Crosspoint
    special_rows: tuple[int, ...]
    flush_interval_rows: int
    cells: int
    flushed_bytes: int
    external_diagonals: int
    vram_bytes: int
    wall_seconds: float
    modeled_seconds: float
    modeled_seconds_no_flush: float
    resumed_from_row: int = 0

    @property
    def mcups_modeled(self) -> float:
        """Modeled device MCUPS (the Table IV column)."""
        return self.cells / self.modeled_seconds / 1e6


def stage1_sweep_plan(m: int, n: int, config: PipelineConfig,
                      capacity_bytes: int | None = None
                      ) -> tuple[Any, tuple[int, ...]]:
    """The ``(grid, special_rows)`` Stage 1 will use for this input.

    Callers building a Stage-1 sweeper *outside* :func:`run_stage1` (the
    worker pool's fused group presweep) need the exact save-row set the
    stage would request, or the pre-swept lanes would miss SRA flushes.
    ``capacity_bytes`` defaults to ``config.sra_bytes`` — the capacity
    the pipeline gives its :class:`SpecialLineStore`.
    """
    grid = config.grid1.shrink_to(n, config.device)
    if capacity_bytes is None:
        capacity_bytes = config.sra_bytes
    rows = special_row_positions(m, n, grid.block_rows, capacity_bytes)
    return grid, tuple(rows)


def run_stage1(s0: Sequence, s1: Sequence, config: PipelineConfig,
               sra: SpecialLineStore, *,
               checkpoint_path: str | None = None,
               checkpoint_every_rows: int | None = None,
               progress=None, telemetry=None, executor=None,
               sweeper=None) -> Stage1Result:
    """Sweep the full matrix, track the best cell, flush special rows.

    With a :class:`~repro.parallel.WavefrontExecutor` attached the sweep
    runs as a tile grid on the worker pool — bit-identical, including
    the flush and checkpoint cadence, because the band loop below drives
    either kernel through the same ``advance`` windows.

    ``sweeper`` injects a pre-built (possibly already advanced, even
    completed) sweeper instead of constructing one — the worker pool's
    micro-batcher presweeps many small jobs' Stage 1 lanes in one fused
    batch and hands each job its finished lane.  The injected sweeper
    must cover this exact input and have been built with the save rows
    from :func:`stage1_sweep_plan`; its saved rows are flushed to the
    SRA here exactly as a fresh sweep's would be.
    """
    tel = telemetry if telemetry is not None else NULL_TELEMETRY
    m, n = len(s0), len(s1)
    grid = config.grid1.shrink_to(n, config.device)
    rows = special_row_positions(m, n, grid.block_rows, sra.capacity_bytes)
    interval = rows[0] if rows else 0

    start = time.perf_counter()
    with tel.span("stage1", m=m, n=n, special_rows=len(rows)) as span:
        if sweeper is not None:
            if (sweeper.m, sweeper.n) != (m, n):
                raise ConfigError(
                    f"injected stage1 sweeper covers "
                    f"{sweeper.m}x{sweeper.n}, input is {m}x{n}")
            sweep = sweeper
        else:
            sweep = make_sweeper(s0.codes, s1.codes, config.scheme,
                                 kernel=config.kernel,
                                 executor=executor, metrics=tel.metrics,
                                 local=True, track_best=True, save_rows=rows,
                                 tracer=tel.tracer)
        resumed_from = 0
        if checkpoint_path is not None and sweeper is None:
            try:
                state = load_checkpoint(checkpoint_path, m, n)
            except IntegrityError as exc:
                # A corrupt checkpoint only costs the rows it would have
                # skipped: quarantine it and run a fresh sweep.
                quarantine_checkpoint(checkpoint_path)
                tel.corruption(KIND_CHECKPOINT, checkpoint_path,
                               action="recomputed", detail=str(exc))
                state = None
            if state is not None:
                sweep.load_state(state)
                resumed_from = sweep.i

        flushed = len(sra.positions(ROWS_NS)) * 8 * (n + 1)
        rows_since_checkpoint = 0
        # Bands of one block row each: the numeric result is identical, but
        # the loop boundary is where the simulated horizontal bus hands rows
        # down — and where flushes and checkpoints happen.  Entered even
        # when an injected sweeper arrives already done: its saved rows
        # still have to drain to the SRA.
        while True:
            done = sweep.advance(grid.block_rows) if not sweep.done else 0
            for r in sorted(sweep.saved):
                if sra.has(ROWS_NS, r):
                    sweep.saved.pop(r)
                    continue
                h, f = sweep.saved.pop(r)
                line = SavedLine(axis="row", position=r, lo=0, H=h, G=f)
                sra.save(ROWS_NS, line)
                flushed += line.nbytes
            if checkpoint_path is not None and checkpoint_every_rows:
                rows_since_checkpoint += done
                if rows_since_checkpoint >= checkpoint_every_rows and not sweep.done:
                    save_checkpoint(checkpoint_path, sweep, m, n,
                                    tracer=tel.tracer)
                    tel.metrics.counter("checkpoint.writes").add(1)
                    rows_since_checkpoint = 0
            fraction = sweep.i / m
            tel.stage_progress("stage1", fraction)
            if progress is not None:
                progress("stage1", fraction)
            if sweep.done:
                break
        if checkpoint_path is not None:
            clear_checkpoint(checkpoint_path)
        wall = time.perf_counter() - start

        geometry = SweepGeometry(m, n, grid)
        modeled = sweep_cost(m, n, grid, config.device, flushed_bytes=flushed)
        modeled_plain = sweep_cost(m, n, grid, config.device)

        end_point = Crosspoint(sweep.best_pos[0], sweep.best_pos[1],
                               sweep.best, TYPE_MATCH)
        result = Stage1Result(
            best_score=sweep.best,
            end_point=end_point,
            special_rows=tuple(sra.positions(ROWS_NS)),
            flush_interval_rows=interval,
            cells=sweep.cells,
            flushed_bytes=flushed,
            external_diagonals=geometry.external_diagonals,
            vram_bytes=stage1_vram_bytes(m, n, grid),
            wall_seconds=wall,
            modeled_seconds=modeled.seconds,
            modeled_seconds_no_flush=modeled_plain.seconds,
            resumed_from_row=resumed_from,
        )
        span.set(best_score=result.best_score, cells=result.cells,
                 flushed_bytes=result.flushed_bytes,
                 wall_seconds=result.wall_seconds,
                 resumed_from_row=result.resumed_from_row)
        tel.metrics.counter("cells.swept").add(result.cells)
        tel.metrics.counter("stage1.flushed_bytes").add(result.flushed_bytes)
        tel.metrics.gauge("stage1.mcups").set(result.mcups_wall)
        return result
