"""Stage 2 — partial traceback (Section IV-C).

From the end point found in Stage 1, a *reverse* sweep walks back toward
the start of the optimal alignment, band by band (one band per special
row).  Each band applies the paper's two optimizations:

* **Goal-based matching** — the score the optimal path must reach at the
  next special row is known (the *goal*), so matching stops at the first
  column where ``H_f + H_r == goal`` (H-join) or ``F_f + F_r + G_open ==
  goal`` (a vertical gap run crossing the row);
* **Orthogonal execution** — the band is processed in *column strips from
  the anchor leftward* (a row sweep of the transposed problem), matching
  after every strip.  Columns left of the matched crosspoint are never
  computed, which is what makes Stage 2's processed area ~flush-interval
  x n instead of m x n.

While sweeping, every band saves *special columns* (H and E values of the
reverse DP) for Stage 3, and watches for the alignment's start point: a
cell whose reverse value equals the whole remaining goal (its forward
score is necessarily 0 there).

Boundary algebra: a gap-typed anchor forces+seeds the band's sweep, whose
finite values are then uniformly ``true + G_open``; the *adjusted goal*
``g = score + G_open`` keeps every comparison exact (see
:mod:`repro.align.myers_miller` for the derivation).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import ClassVar

import numpy as np

from repro.constants import TYPE_GAP_S1, TYPE_MATCH, swap_gap_type
from repro.errors import IntegrityError, MatchingError
from repro.integrity.codec import KIND_SPECIAL_LINE
from repro.core.config import PipelineConfig
from repro.parallel.sweeper import make_sweeper
from repro.core.crosspoints import Crosspoint
from repro.core.result import StageResult
from repro.core.stage1 import ROWS_NS, Stage1Result
from repro.gpusim.perf import stage2_vram_bytes, sweep_cost
from repro.sequences.sequence import Sequence
from repro.storage.sra import SavedLine, SpecialLineStore
from repro.telemetry.runtime import NULL_TELEMETRY


@dataclass(frozen=True)
class BandRecord:
    """One band of Stage 2 = one partition of the chain it produced.

    ``namespace`` holds the special columns saved while sweeping this band
    (values already de-biased to "true tail score to ``hi``"), covering
    original rows ``[lo.i, hi.i]``.
    """

    index: int
    lo: Crosspoint  # upstream crosspoint (or the start point)
    hi: Crosspoint  # the band's anchor
    namespace: str
    column_positions: tuple[int, ...]
    cells: int


@dataclass(frozen=True)
class Stage2Result(StageResult):
    """Crosspoints over special rows, plus per-band saved columns."""

    stage: ClassVar[str] = "2"

    crosspoints: tuple[Crosspoint, ...]  # start ... end (ascending)
    bands: tuple[BandRecord, ...]        # ascending by lo.i
    cells: int
    flushed_bytes: int
    vram_bytes: int
    wall_seconds: float
    modeled_seconds: float


def run_stage2(s0: Sequence, s1: Sequence, config: PipelineConfig,
               sra: SpecialLineStore, sca: SpecialLineStore,
               stage1: Stage1Result, *, telemetry=None,
               executor=None) -> Stage2Result:
    """Walk the optimal path backwards from the Stage-1 end point."""
    tel = telemetry if telemetry is not None else NULL_TELEMETRY
    with tel.span("stage2", m=len(s0), n=len(s1)) as stage_span:
        result = _run_stage2(s0, s1, config, sra, sca, stage1, tel, executor)
        stage_span.set(cells=result.cells, bands=len(result.bands),
                       crosspoints=len(result.crosspoints),
                       wall_seconds=result.wall_seconds)
        tel.metrics.counter("cells.swept").add(result.cells)
        tel.metrics.gauge("crosspoints.L2").set(len(result.crosspoints))
        tel.metrics.counter("stage2.flushed_bytes").add(result.flushed_bytes)
        return result


def _run_stage2(s0: Sequence, s1: Sequence, config: PipelineConfig,
                sra: SpecialLineStore, sca: SpecialLineStore,
                stage1: Stage1Result, tel, executor=None) -> Stage2Result:
    scheme = config.scheme
    gopen = scheme.gap_open
    special_rows = sra.positions(ROWS_NS)
    start = time.perf_counter()

    anchor = stage1.end_point
    points: list[Crosspoint] = [anchor]
    bands: list[BandRecord] = []
    total_cells = 0
    flushed = 0
    modeled = 0.0
    # Budget each band evenly across the worst-case band count.
    band_budget = sca.capacity_bytes // max(1, len(special_rows) + 1)

    band_idx = 0
    while anchor.score > 0:
        below = [r for r in special_rows if r < anchor.i]
        r_row = below[-1] if below else 0
        h = anchor.i - r_row
        w = anchor.j
        if h == 0 or w == 0:
            raise MatchingError(
                f"positive goal {anchor.score} left at the matrix edge {anchor}")
        bias = gopen if anchor.type != TYPE_MATCH else 0
        goal = anchor.score + bias

        row_H = row_F = None
        if r_row > 0:
            try:
                line = sra.load(ROWS_NS, r_row)
            except IntegrityError as exc:
                # Degrade, don't die: a special row is an optimization.
                # Quarantine the damaged line and redo this band against
                # the next surviving row below — a wider band, more
                # recomputation, the identical crosspoint chain.
                sra.quarantine(ROWS_NS, r_row)
                special_rows.remove(r_row)
                tel.corruption(KIND_SPECIAL_LINE, exc.path or "<sra>",
                               action="widened", detail=str(exc))
                continue
            row_H = line.H.astype(np.int64)
            row_F = line.G.astype(np.int64)

        # Special-column positions for this band (flush-interval law on the
        # column axis, granularity = the Stage-2 block height).
        col_step = config.grid2.block_rows
        col_bytes = 8 * (h + 1)
        candidates = [j for j in range(col_step, w, col_step)]
        if candidates and band_budget >= col_bytes:
            keep_every = max(1, math.ceil(len(candidates) * col_bytes / band_budget))
            col_positions = candidates[::keep_every][:band_budget // col_bytes]
        else:
            col_positions = []
        # Transposed rows at which those columns appear.
        save_rows = [w - j for j in col_positions]

        sweep = make_sweeper(
            s1.codes[:w][::-1], s0.codes[r_row:anchor.i][::-1], scheme,
            kernel=config.kernel, executor=executor, metrics=tel.metrics,
            start_gap=swap_gap_type(anchor.type), forced=anchor.type != TYPE_MATCH,
            tap_columns=np.array([h]), save_rows=save_rows or None,
            watch_value=goal, tracer=tel.tracer)

        found: Crosspoint | None = None
        next_p = 0
        while found is None:
            rows = np.arange(next_p, sweep.i + 1)
            next_p = sweep.i + 1
            if sweep.watch_hit is not None:
                p_hit, q_hit = sweep.watch_hit
                found = Crosspoint(anchor.i - q_hit, anchor.j - p_hit, 0,
                                   TYPE_MATCH)
                break
            if rows.size and row_H is not None:
                cols = anchor.j - rows
                # Raw reverse values: the H-join carries the anchor-run
                # seeding discount (already inside the adjusted goal); on
                # the F-join that discount cancels against the trailing
                # run's reverse-side opening, and the classic + G_open
                # re-credit restores the balance — including the case of
                # one vertical run crossing both the row and the anchor.
                h_r = sweep.tap_H[rows, 0].astype(np.int64)
                f_r = sweep.tap_E[rows, 0].astype(np.int64)
                h_hits = np.flatnonzero(row_H[cols] + h_r == goal)
                f_hits = np.flatnonzero(row_F[cols] + f_r + gopen == goal)
                if h_hits.size or f_hits.size:
                    if h_hits.size:
                        j = int(cols[h_hits[0]])
                        found = Crosspoint(r_row, j, int(row_H[j]), TYPE_MATCH)
                    else:
                        j = int(cols[f_hits[0]])
                        found = Crosspoint(r_row, j, int(row_F[j]), TYPE_GAP_S1)
                    break
            if sweep.done:
                raise MatchingError(
                    f"stage 2 band [{r_row}, {anchor.i}] found neither the "
                    f"goal {goal} nor the alignment start")
            sweep.advance(config.stage2_strip)

        # Persist the special columns inside the new partition, de-biased.
        namespace = f"stage2/band{band_idx}"
        kept: list[int] = []
        for p in sorted(sweep.saved):
            j = anchor.j - p
            if j <= found.j:
                continue  # left of the crosspoint: outside the partition
            h_col, e_col = sweep.saved[p]
            sca.save(namespace, SavedLine(
                axis="col", position=j, lo=r_row,
                H=(h_col.astype(np.int64) - bias).astype(h_col.dtype)[::-1].copy(),
                G=(e_col.astype(np.int64) - bias).astype(e_col.dtype)[::-1].copy()))
            kept.append(j)
            flushed += col_bytes
        bands.append(BandRecord(index=band_idx, lo=found, hi=anchor,
                                namespace=namespace,
                                column_positions=tuple(kept),
                                cells=sweep.cells))
        total_cells += sweep.cells
        getattr(sweep, "close", lambda: None)()
        # Model: a (processed-columns x band-height) sweep on the Stage-2
        # grid, shrunk by the minimum size requirement to the band height
        # ("the size considered ... is the distance between each special
        # row", Section IV-C).
        processed_cols = max(1, sweep.cells // max(1, h))
        modeled += sweep_cost(processed_cols, h,
                              config.grid2.shrink_to(max(h, 1), config.device),
                              config.device,
                              flushed_bytes=len(kept) * col_bytes).seconds
        points.append(found)
        anchor = found
        band_idx += 1
        # Walked distance back toward the alignment start, as a fraction
        # of the end point's row (the best proxy for remaining work).
        tel.stage_progress("stage2", 1.0 - anchor.i / max(1, stage1.end_point.i))

    wall = time.perf_counter() - start
    points.reverse()
    bands.reverse()
    bands = tuple(BandRecord(index=k, lo=b.lo, hi=b.hi, namespace=b.namespace,
                             column_positions=b.column_positions, cells=b.cells)
                  for k, b in enumerate(bands))
    return Stage2Result(
        crosspoints=tuple(points),
        bands=bands,
        cells=total_cells,
        flushed_bytes=flushed,
        vram_bytes=stage2_vram_bytes(len(s0), len(s1), config.grid2),
        wall_seconds=wall,
        modeled_seconds=modeled,
    )
