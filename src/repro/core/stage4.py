"""Stage 4 — Myers-Miller with balanced splitting and orthogonal execution
(Section IV-E).

The crosspoint chain from Stage 3 still bounds partitions that may be far
larger than the *maximum partition size*.  Stage 4 iterates: every
oversized partition is split once per iteration (its crosspoint count can
double each round) until every partition's largest dimension fits.

* **Balanced splitting** halves the largest dimension — a wide partition
  is split at its middle *column* (implemented by transposing the
  sub-problem) — so narrow partitions cannot keep their disproportionate
  dimension across many iterations (Figure 10).
* **Orthogonal execution** uses the partition's known score as the
  matching goal: the reverse half stops at the first goal hit, processing
  ~50% of its area on average (~25% of the partition, Table IX's
  Time_1 vs Time_2).

Degenerate partitions (one side empty — a pure gap run) are exempt: Stage
5 aligns them in O(length) regardless of size.

The per-iteration records (H_max, W_max, crosspoint count, time) are the
rows of Table IX.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import ClassVar

from repro.constants import TYPE_MATCH, swap_gap_type
from repro.errors import PartitionError
from repro.align.myers_miller import MMConfig, MMStats, find_midpoint
from repro.core.config import PipelineConfig
from repro.core.crosspoints import Crosspoint, CrosspointChain, Partition
from repro.core.result import StageResult
from repro.gpusim.perf import host_seconds
from repro.sequences.sequence import Sequence
from repro.telemetry.runtime import NULL_TELEMETRY


@dataclass(frozen=True)
class Stage4Iteration:
    """One refinement round — a row of Table IX."""

    index: int
    h_max: int
    w_max: int
    crosspoints: int
    cells: int
    wall_seconds: float
    modeled_seconds: float


@dataclass(frozen=True)
class Stage4Result(StageResult):
    stage: ClassVar[str] = "4"

    crosspoints: tuple[Crosspoint, ...]
    iterations: tuple[Stage4Iteration, ...]
    cells: int
    wall_seconds: float
    modeled_seconds: float


def split_partition(s0: Sequence, s1: Sequence, partition: Partition,
                    config: PipelineConfig, mm_config: MMConfig,
                    stats: MMStats, *, tracer=None) -> Crosspoint:
    """One balanced, goal-guided Myers-Miller split of a partition."""
    start, end = partition.start, partition.end
    h, w = partition.height, partition.width
    if partition.degenerate:
        raise PartitionError("degenerate partitions are not split")
    codes0 = s0.codes[start.i:end.i]
    codes1 = s1.codes[start.j:end.j]
    goal = partition.score
    transpose = (mm_config.balanced and w > h) or h < 2
    if transpose:
        r, j, join, top_value = find_midpoint(
            codes1, codes0, config.scheme,
            start_gap=swap_gap_type(start.type), end_gap=swap_gap_type(end.type),
            goal=goal, config=mm_config, stats=stats, tracer=tracer)
        return Crosspoint(start.i + j, start.j + r,
                          start.score + top_value, swap_gap_type(join))
    r, j, join, top_value = find_midpoint(
        codes0, codes1, config.scheme, start_gap=start.type,
        end_gap=end.type, goal=goal, config=mm_config, stats=stats,
        tracer=tracer)
    return Crosspoint(start.i + r, start.j + j, start.score + top_value, join)


def _oversized(partition: Partition, limit: int) -> bool:
    return not partition.degenerate and partition.max_dim > limit


def run_stage4(s0: Sequence, s1: Sequence, config: PipelineConfig,
               chain: CrosspointChain, *, telemetry=None,
               executor=None) -> Stage4Result:
    """Refine the chain until every partition fits max_partition_size.

    With a wavefront executor the per-iteration splits fan across its
    process pool (largest partition first — the split cost is ~area, so
    size-aware order bounds the makespan); the sequence codes are shared
    once per stage, not pickled per split.
    """
    tel = telemetry if telemetry is not None else NULL_TELEMETRY
    mm_config = MMConfig(orthogonal=config.stage4_orthogonal,
                         balanced=config.stage4_balanced,
                         strip=max(1, config.max_partition_size),
                         kernel=config.kernel)
    limit = config.max_partition_size
    iterations: list[Stage4Iteration] = []
    total_cells = 0
    total_wall = 0.0
    total_modeled = 0.0
    total_splits = 0
    shared = []
    refs = {}
    if executor is not None:
        shared = [executor.share(s0.codes), executor.share(s1.codes)]
        refs = {"codes0": shared[0].ref, "codes1": shared[1].ref}

    with tel.span("stage4", max_partition_size=limit) as stage_span:
        it = 0
        while True:
            partitions = chain.partitions()
            todo = [(k, p) for k, p in enumerate(partitions)
                    if _oversized(p, limit)]
            if not todo:
                break
            it += 1
            tick = time.perf_counter()
            stats = MMStats()

            def split(item):
                _, p = item
                local = MMStats()
                # Re-anchor worker-thread spans under the stage span.
                with tel.attach(stage_span):
                    point = split_partition(s0, s1, p, config, mm_config,
                                            local, tracer=tel.tracer)
                return point, local

            if executor is not None:
                payloads = [{"partition": p, "scheme": config.scheme,
                             "mm_config": mm_config} for _, p in todo]
                results = executor.map_calls(
                    "split", payloads, refs,
                    sizes=[p.area for _, p in todo])
            elif config.workers > 1:
                with ThreadPoolExecutor(max_workers=config.workers) as pool:
                    results = list(pool.map(split, todo))
            else:
                results = [split(item) for item in todo]

            points: list[Crosspoint] = list(chain.points)
            # Insert new crosspoints after their partition's start point;
            # walk in reverse so earlier indices stay valid.
            for (k, _), (point, local) in sorted(zip(todo, results),
                                                 key=lambda t: -t[0][0]):
                points.insert(k + 1, point)
                stats.cells_forward += local.cells_forward
                stats.cells_reverse += local.cells_reverse
            new_chain = CrosspointChain(points)
            wall = time.perf_counter() - tick
            cells = stats.cells_forward + stats.cells_reverse
            modeled = host_seconds(cells, config.host, threads=config.workers)
            parts_before = partitions
            iterations.append(Stage4Iteration(
                index=it,
                h_max=max(p.height for p in parts_before),
                w_max=max(p.width for p in parts_before),
                crosspoints=len(chain),
                cells=cells,
                wall_seconds=wall,
                modeled_seconds=modeled,
            ))
            total_cells += cells
            total_wall += wall
            total_modeled += modeled
            total_splits += len(todo)
            chain = new_chain

        result = Stage4Result(
            crosspoints=chain.points,
            iterations=tuple(iterations),
            cells=total_cells,
            wall_seconds=total_wall,
            modeled_seconds=total_modeled,
        )
        stage_span.set(iterations=it, splits=total_splits,
                       cells=result.cells,
                       crosspoints=len(result.crosspoints),
                       wall_seconds=result.wall_seconds)
        tel.metrics.counter("cells.swept").add(result.cells)
        tel.metrics.counter("stage4.partitions_split").add(total_splits)
        tel.metrics.gauge("crosspoints.L4").set(len(result.crosspoints))
        if executor is not None:
            # On the exception path executor.close() unlinks these.
            executor.release(shared)
        return result
