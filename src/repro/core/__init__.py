"""The paper's contribution: the six-stage CUDAlign 2.0 pipeline."""

from repro.core.config import PipelineConfig, small_config, sra_bytes_for_rows
from repro.core.crosspoints import Crosspoint, CrosspointChain, Partition
from repro.core.pipeline import CUDAlign, PipelineResult
from repro.core.result import StageResult, is_stage_result
from repro.core.stage1 import Stage1Result, run_stage1
from repro.core.stage2 import Stage2Result, run_stage2
from repro.core.stage3 import Stage3Result, run_stage3
from repro.core.stage4 import Stage4Iteration, Stage4Result, run_stage4
from repro.core.stage5 import Stage5Result, run_stage5
from repro.core.stage6 import Stage6Result, run_stage6

__all__ = [
    "PipelineConfig", "small_config", "sra_bytes_for_rows",
    "Crosspoint", "CrosspointChain", "Partition",
    "CUDAlign", "PipelineResult",
    "StageResult", "is_stage_result",
    "Stage1Result", "run_stage1",
    "Stage2Result", "run_stage2",
    "Stage3Result", "run_stage3",
    "Stage4Iteration", "Stage4Result", "run_stage4",
    "Stage5Result", "run_stage5",
    "Stage6Result", "run_stage6",
]
