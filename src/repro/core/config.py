"""Pipeline configuration (the paper's execution constants, Section V).

The defaults mirror the GTX 285 configuration: ``alpha = 4``, ``B1 = 240``,
``T1 = 2**6``, ``B2 = B3 = 60``, ``T2 = T3 = 2**7``, SW parameters
+1/-3/-5/-2.  For scaled-down runs the grid is shrunk automatically by the
minimum size requirement; tests and examples typically pass much smaller
grids so special rows exist at their scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigError
from repro.align.scoring import PAPER_SCHEME, ScoringScheme
from repro.gpusim.device import GTX_285, PENTIUM_DUALCORE, DeviceSpec, HostSpec
from repro.gpusim.grid import KernelGrid


@dataclass(frozen=True)
class PipelineConfig:
    """Knobs of the six-stage pipeline.

    Attributes:
        scheme: affine scoring parameters.
        device: simulated GPU for the modeled timings (Stages 1-3).
        host: simulated CPU for the modeled timings (Stages 4-6).
        grid1 / grid2 / grid3: kernel grids of the GPU stages (B_k, T_k,
            alpha); shrunk at runtime by the minimum size requirement.
        sra_bytes: Special Rows Area budget, |SRA| (Section IV-B).
        sca_bytes: budget for Stage 2's special columns.
        max_partition_size: Stage 4 refines until every partition's largest
            dimension is at most this (paper uses 16 for Table IX).
        stage2_strip / stage3_strip: orthogonal strip widths (columns/rows
            per matching round).
        stage4_orthogonal: goal-based reverse halves in Stage 4.
        stage4_balanced: balanced splitting (halve the largest dimension).
        executor: sweep execution model — ``"serial"`` runs every sweep
            on the monolithic kernel; ``"wavefront"`` runs stages 1-3 as
            tile grids on a process pool of ``workers`` sweep workers and
            fans Stage-4/5 partitions across the same pool.  Both are
            bit-identical; the choice is purely a performance knob.
        kernel: the in-process sweep kernel, by registry name
            (:func:`repro.align.kernels.serial_kernel_names`) —
            ``"rowscan"`` is the per-row reference, ``"diagonal"`` the
            anti-diagonal vectorization.  Composes with ``executor``:
            sweeps the wavefront grid does not take (small matrices,
            interior taps) fall back to this kernel.  All backends are
            bit-identical; the choice is purely a performance knob.
        workers: CPU parallelism — sweep processes under the
            ``"wavefront"`` executor, threads for the partition-parallel
            stages under ``"serial"``.
        checkpoint_every_rows: Stage-1 checkpoint interval in matrix rows
            (requires a workdir); None disables checkpointing.
    """

    scheme: ScoringScheme = PAPER_SCHEME
    device: DeviceSpec = GTX_285
    host: HostSpec = PENTIUM_DUALCORE
    grid1: KernelGrid = field(default_factory=lambda: KernelGrid(240, 64, 4))
    grid2: KernelGrid = field(default_factory=lambda: KernelGrid(60, 128, 4))
    grid3: KernelGrid = field(default_factory=lambda: KernelGrid(60, 128, 4))
    sra_bytes: int = 50 * 10**9
    sca_bytes: int = 10 * 10**9
    max_partition_size: int = 16
    stage2_strip: int = 128
    stage3_strip: int = 128
    stage4_orthogonal: bool = True
    stage4_balanced: bool = True
    executor: str = "serial"
    kernel: str = "rowscan"
    workers: int = 1
    checkpoint_every_rows: int | None = None

    #: Valid ``executor`` values.
    EXECUTORS = ("serial", "wavefront")

    def __post_init__(self) -> None:
        if self.executor not in self.EXECUTORS:
            raise ConfigError(
                f"executor must be one of {self.EXECUTORS}, "
                f"got {self.executor!r}")
        from repro.align.kernels import serial_kernel_names
        if self.kernel not in serial_kernel_names():
            raise ConfigError(
                f"kernel must be one of {list(serial_kernel_names())}, "
                f"got {self.kernel!r}")
        if self.checkpoint_every_rows is not None and self.checkpoint_every_rows < 1:
            raise ConfigError("checkpoint interval must be positive")
        if self.sra_bytes < 0 or self.sca_bytes < 0:
            raise ConfigError("storage budgets must be non-negative")
        if self.max_partition_size < 1:
            raise ConfigError("max_partition_size must be positive")
        if self.stage2_strip < 1 or self.stage3_strip < 1:
            raise ConfigError("strip widths must be positive")
        if self.workers < 1:
            raise ConfigError("workers must be positive")

    def with_sra(self, sra_bytes: int) -> "PipelineConfig":
        """Convenience for SRA sweeps (Tables VII/VIII)."""
        return replace(self, sra_bytes=sra_bytes)


def sra_bytes_for_rows(n: int, rows: int) -> int:
    """Budget that holds exactly ``rows`` special rows of an ``n``-column
    matrix (each cell stores H and F, 8 bytes — Section IV-B)."""
    if n <= 0 or rows < 0:
        raise ConfigError("n must be positive and rows non-negative")
    return rows * 8 * (n + 1)


def small_config(block_rows: int = 64, *, n: int = 4096, sra_rows: int = 8,
                 max_partition_size: int = 32, **overrides) -> PipelineConfig:
    """A configuration sized for scaled-down sequences (tests, examples).

    ``block_rows`` is the special-row granularity (``alpha * T``);
    ``sra_rows`` sizes the SRA budget to hold that many special rows of an
    ``n``-column comparison.
    """
    if block_rows < 4 or block_rows % 4:
        raise ConfigError("block_rows must be a positive multiple of 4")
    grid = KernelGrid(blocks=4, threads=block_rows // 4, alpha=4)
    defaults = dict(
        grid1=grid, grid2=grid, grid3=grid,
        sra_bytes=sra_bytes_for_rows(n, sra_rows),
        sca_bytes=sra_bytes_for_rows(n, sra_rows),
        max_partition_size=max_partition_size,
        stage2_strip=32, stage3_strip=32,
    )
    defaults.update(overrides)
    return PipelineConfig(**defaults)
