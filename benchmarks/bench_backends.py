"""MCUPS per kernel backend per workload — the tracked perf trajectory.

The paper's whole claim is kernel throughput in linear space, so the
repo keeps an honest ledger of it: this script sweeps every registered
kernel backend (:mod:`repro.align.kernels`) over Stage-1-shaped local
sweeps and writes ``BENCH_backends.json``.  Workloads come in two
shapes: ``MxN`` is one pair (per-backend MCUPS), ``KxMxN`` is K
independent small pairs (pairs/sec + aggregate MCUPS — the workload the
``batched`` backend's fused dispatch exists for).

Two destinations, one schema:

* ``benchmarks/out/BENCH_backends.json`` — scratch, gitignored, written
  on every run.
* ``benchmarks/trajectory/BENCH_backends.json`` — the **tracked**
  ledger, written only with ``--promote``; committing it is what makes
  the MCUPS trajectory visible across PRs (`git log -p` on the file).

Honesty rules, enforced:

* backend names come from the registry — asking for a name the registry
  does not know is an error, and :func:`validate_ledger` rejects any
  ledger mentioning one (CI runs it against the committed trajectory
  file, so schema or registry drift fails the build);
* every backend's sweep is checked bit-identical to ``rowscan`` (best
  score and final row) before its timing is reported;
* timings are min-of-``--repeats`` wall clock on this host, whatever
  they turn out to be — the ledger records losses too (on a host NumPy
  build, the anti-diagonal schedule's per-diagonal dispatch usually
  *loses* to rowscan's per-row scan; it exists because it is the GPU
  schedule, and the ledger proves the observables match).

Usage::

    PYTHONPATH=src python benchmarks/bench_backends.py            # scratch
    PYTHONPATH=src python benchmarks/bench_backends.py --promote  # + tracked
    PYTHONPATH=src python benchmarks/bench_backends.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import importlib
import json
import os
import platform
import sys
import time
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
if __package__ in (None, ""):
    sys.path.insert(0, str(BENCH_DIR.parent / "src"))

import numpy as np

from repro.align.kernels import backend_names, get_backend
from repro.errors import ConfigError
from repro.parallel import WavefrontExecutor
from repro.sequences.synth import random_dna

SCHEMA_VERSION = 2
OUT_PATH = BENCH_DIR / "out" / "BENCH_backends.json"
TRAJECTORY_PATH = BENCH_DIR / "trajectory" / "BENCH_backends.json"

DEFAULT_WORKLOADS = ("512x512", "1024x1024", "2048x2048", "64x256x256")
QUICK_WORKLOADS = ("256x256", "8x64x64")


def _parse_workload(spec: str) -> tuple[int, ...]:
    """``MxN`` -> ``(m, n)`` (one pair); ``KxMxN`` -> ``(k, m, n)``
    (K independent pairs — the many-small-alignments workload)."""
    try:
        dims = tuple(int(part) for part in spec.lower().split("x"))
    except ValueError:
        dims = ()
    if len(dims) not in (2, 3) or any(d < 1 for d in dims):
        raise ConfigError(
            f"workload must look like 2048x2048 or 64x256x256, got {spec!r}")
    return dims


def _sweep_once(backend, codes0, codes1, scheme, executor=None):
    sweep = backend.make(codes0, codes1, scheme, executor=executor,
                         local=True, track_best=True)
    start = time.perf_counter()
    sweep.run()
    seconds = time.perf_counter() - start
    result = (int(sweep.best), sweep.best_pos, sweep.H.copy())
    close = getattr(sweep, "close", None)
    if close is not None:
        close()
    return seconds, result


def _pairs(k: int, m: int, n: int, seed: int) -> list[tuple]:
    rng = np.random.default_rng(seed)
    return [(random_dna(m, rng, f"A{i}").codes,
             random_dna(n, rng, f"B{i}").codes) for i in range(k)]


def _lane_result(sweep) -> tuple:
    return int(sweep.best), sweep.best_pos, sweep.H.copy()


def measure_pairs_workload(spec: str, backends: list[str], scheme, *,
                           repeats: int, seed: int = 0) -> dict:
    """Time every *serial* backend on K independent small pairs.

    This is the workload batching exists for: construction cost and
    per-dispatch overhead dominate small matrices, so the timer wraps
    the whole loop — build sweepers, run them — not just the sweep.
    Plain serial backends run the K pairs one after another;
    batch-capable backends (``KernelBackend.batch``) build K lanes and
    hand them to their module's ``sweep_batched`` in one fused dispatch.
    Before any timing is reported, every backend's per-pair
    ``best``/``best_pos``/final ``H`` row is checked bit-identical to an
    untimed rowscan pass.  Non-serial backends are skipped (a process
    pool per 256x256 pair would measure the pool, not the kernel).
    """
    k, m, n = _parse_workload(spec)
    pairs = _pairs(k, m, n, seed)
    reference = []
    rowscan = get_backend("rowscan")
    for codes0, codes1 in pairs:
        sweep = rowscan.make(codes0, codes1, scheme,
                             local=True, track_best=True)
        sweep.run()
        reference.append(_lane_result(sweep))
    entry: dict = {
        "kind": "pairs",
        "pairs": k,
        "cells": k * m * n,
        "best_score": sum(r[0] for r in reference),
        "backends": {},
    }
    for name in backends:
        backend = get_backend(name)
        if not backend.serial:
            continue
        if backend.batch:
            sweep_batched = importlib.import_module(
                backend.factory.__module__).sweep_batched
        best = None
        for repeat in range(max(1, repeats)):
            start = time.perf_counter()
            lanes = [backend.make(codes0, codes1, scheme,
                                  local=True, track_best=True)
                     for codes0, codes1 in pairs]
            if backend.batch:
                sweep_batched(lanes)
            else:
                for lane in lanes:
                    lane.run()
            seconds = time.perf_counter() - start
            best = seconds if best is None else min(best, seconds)
            if repeat == 0:
                for i, lane in enumerate(lanes):
                    got = _lane_result(lane)
                    assert got[0] == reference[i][0], (name, spec, i, "score")
                    assert got[1] == reference[i][1], (name, spec, i, "pos")
                    np.testing.assert_array_equal(
                        got[2], reference[i][2],
                        err_msg=f"{name} {spec} pair {i} H row")
        entry["backends"][name] = {
            "seconds": best,
            "pairs_per_sec": k / best,
            "mcups": (k * m * n) / best / 1e6,
        }
    base = entry["backends"].get("rowscan")
    for stats in entry["backends"].values():
        stats["speedup_vs_rowscan"] = (
            base["seconds"] / stats["seconds"] if base else None)
    return entry


def measure_workload(spec: str, backends: list[str], scheme, *,
                     workers: int, repeats: int, seed: int = 0) -> dict:
    """Time every backend on one workload; returns its ledger entry."""
    dims = _parse_workload(spec)
    if len(dims) == 3:
        return measure_pairs_workload(spec, backends, scheme,
                                      repeats=repeats, seed=seed)
    m, n = dims
    rng = np.random.default_rng(seed)
    codes0 = random_dna(m, rng, "A").codes
    codes1 = random_dna(n, rng, "B").codes
    entry: dict = {"kind": "single", "cells": m * n, "backends": {}}
    reference = None
    executor = None
    try:
        for name in backends:
            backend = get_backend(name)
            if not backend.serial and executor is None:
                executor = WavefrontExecutor(workers)
            best = None
            for _ in range(max(1, repeats)):
                seconds, result = _sweep_once(
                    backend, codes0, codes1, scheme,
                    executor=None if backend.serial else executor)
                best = seconds if best is None else min(best, seconds)
            if reference is None:
                reference = result
                entry["best_score"] = result[0]
            else:
                assert result[0] == reference[0], (name, spec, "best score")
                assert result[1] == reference[1], (name, spec, "best pos")
                np.testing.assert_array_equal(result[2], reference[2],
                                              err_msg=f"{name} {spec} H row")
            entry["backends"][name] = {
                "seconds": best,
                "mcups": (m * n) / best / 1e6,
            }
    finally:
        if executor is not None:
            executor.close()
    base = entry["backends"].get("rowscan")
    for stats in entry["backends"].values():
        stats["speedup_vs_rowscan"] = (
            base["seconds"] / stats["seconds"] if base else None)
    return entry


def build_ledger(workloads, backends, *, workers: int, repeats: int) -> dict:
    from repro.align.scoring import PAPER_SCHEME
    known = backend_names()
    unknown = [b for b in backends if b not in known]
    if unknown:
        raise ConfigError(
            f"unknown backends {unknown}; the registry knows {list(known)} — "
            f"the ledger refuses to report names the code cannot back")
    ledger: dict = {
        "schema": SCHEMA_VERSION,
        "kind": "BENCH_backends",
        "registry": list(known),
        "cpu_count": os.cpu_count(),
        "wavefront_workers": workers,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "workloads": {},
        "wins": {name: [] for name in backends},
    }
    for spec in workloads:
        entry = measure_workload(spec, list(backends), PAPER_SCHEME,
                                 workers=workers, repeats=repeats)
        ledger["workloads"][spec] = entry
        fastest = min(entry["backends"],
                      key=lambda b: entry["backends"][b]["seconds"])
        ledger["wins"][fastest].append(spec)
    return ledger


def validate_ledger(ledger: dict) -> None:
    """Reject a ledger whose schema or backend names drifted from the
    code.  Raises ``ValueError`` with the first problem found."""
    if ledger.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"ledger schema {ledger.get('schema')!r} != {SCHEMA_VERSION}")
    if ledger.get("kind") != "BENCH_backends":
        raise ValueError(f"ledger kind {ledger.get('kind')!r}")
    known = set(backend_names())
    recorded = ledger.get("registry")
    if not isinstance(recorded, list) or set(recorded) - known:
        raise ValueError(
            f"ledger registry {recorded!r} names backends the code does not "
            f"register ({sorted(known)})")
    workloads = ledger.get("workloads")
    if not isinstance(workloads, dict) or not workloads:
        raise ValueError("ledger has no workloads")
    for spec, entry in workloads.items():
        dims = _parse_workload(spec)
        pairs_kind = len(dims) == 3
        required = ("cells", "best_score", "backends")
        if pairs_kind:
            required += ("pairs",)
        for key in required:
            if key not in entry:
                raise ValueError(f"workload {spec}: missing {key!r}")
        expected_kind = "pairs" if pairs_kind else "single"
        if entry.get("kind") != expected_kind:
            raise ValueError(
                f"workload {spec}: kind {entry.get('kind')!r}, "
                f"expected {expected_kind!r}")
        if not entry["backends"]:
            raise ValueError(f"workload {spec}: no backends")
        stat_keys = ("seconds", "mcups", "speedup_vs_rowscan")
        if pairs_kind:
            stat_keys += ("pairs_per_sec",)
        for name, stats in entry["backends"].items():
            if name not in known:
                raise ValueError(
                    f"workload {spec} reports unregistered backend {name!r}")
            for key in stat_keys:
                if not isinstance(stats.get(key), (int, float)):
                    raise ValueError(f"{spec}/{name}: bad {key!r}")
            if stats["seconds"] <= 0 or stats["mcups"] <= 0:
                raise ValueError(f"{spec}/{name}: non-positive timing")
    for name in ledger.get("wins", {}):
        if name not in known:
            raise ValueError(f"wins reports unregistered backend {name!r}")


def render(ledger: dict) -> str:
    lines = [f"kernel backend MCUPS (cpu_count={ledger['cpu_count']}, "
             f"wavefront workers={ledger['wavefront_workers']})"]
    for spec, entry in ledger["workloads"].items():
        if entry.get("kind") == "pairs":
            lines.append(f"  {spec} ({entry['pairs']} pairs, "
                         f"score sum {entry['best_score']}):")
            for name, stats in sorted(entry["backends"].items()):
                lines.append(
                    f"    {name:<10} {stats['pairs_per_sec']:9.1f} pairs/s  "
                    f"{stats['mcups']:8.1f} MCUPS  "
                    f"({stats['speedup_vs_rowscan']:.2f}x rowscan)")
            continue
        lines.append(f"  {spec} (score {entry['best_score']}):")
        for name, stats in sorted(entry["backends"].items()):
            lines.append(f"    {name:<10} {stats['mcups']:9.1f} MCUPS  "
                         f"({stats['speedup_vs_rowscan']:.2f}x rowscan)")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--backends", nargs="+", default=None,
                        help="backend names to measure (default: every "
                             "registered backend)")
    parser.add_argument("--workloads", nargs="+", default=None,
                        metavar="MxN", help="matrix sizes: 2048x2048 (one "
                             "pair) or 64x256x256 (K small pairs)")
    parser.add_argument("--workers", type=int, default=2,
                        help="wavefront pool size")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats (min wall clock wins)")
    parser.add_argument("--quick", action="store_true",
                        help="one small workload, one repeat (CI smoke)")
    parser.add_argument("--out", default=None,
                        help=f"scratch output path (default {OUT_PATH})")
    parser.add_argument("--promote", action="store_true",
                        help="also write the tracked trajectory ledger "
                             f"({TRAJECTORY_PATH})")
    args = parser.parse_args(argv)

    backends = args.backends or list(backend_names())
    if args.quick:
        workloads = args.workloads or list(QUICK_WORKLOADS)
        repeats = 1
    else:
        workloads = args.workloads or list(DEFAULT_WORKLOADS)
        repeats = args.repeats
    ledger = build_ledger(workloads, backends,
                          workers=args.workers, repeats=repeats)
    validate_ledger(ledger)

    out_path = Path(args.out) if args.out else OUT_PATH
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(ledger, indent=2, sort_keys=True) + "\n")
    print(render(ledger))
    print(f"wrote {out_path}")
    if args.promote:
        TRAJECTORY_PATH.parent.mkdir(parents=True, exist_ok=True)
        TRAJECTORY_PATH.write_text(
            json.dumps(ledger, indent=2, sort_keys=True) + "\n")
        print(f"promoted {TRAJECTORY_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
