"""Table IX — Stage-4 iterations with and without orthogonal execution.

Runs Stage 4 twice on the same Stage-3 chain (classic MM reverse halves
vs goal-based orthogonal halves) and reports, per iteration, H_max /
W_max / crosspoints / cells — the paper's Time_1 vs Time_2 columns.  The
paper measures a 25% gain; the expected value of the saving is 25% of
*all* partition area (half of every reverse half), so we assert the
measured cell ratio lands in a [0.60, 0.95] band.
"""

from __future__ import annotations

import dataclasses

from repro.core import (
    CrosspointChain,
    CUDAlign,
    run_stage4,
)
from repro.sequences import get_entry

from benchmarks.conftest import emit, pipeline_config


def test_table9_stage4_iterations(benchmark, scale):
    entry = get_entry("32799Kx46944K")
    s0, s1 = entry.build(scale=scale, seed=0)
    config = pipeline_config(len(s1), sra_rows=8, max_partition_size=16)
    base = CUDAlign(config).run(s0, s1, visualize=False)
    chain = CrosspointChain((base.stage3 or base.stage2).crosspoints)

    def run_both():
        orth = run_stage4(s0, s1, config, chain)
        plain = run_stage4(
            s0, s1, dataclasses.replace(config, stage4_orthogonal=False),
            chain)
        return orth, plain

    orth, plain = benchmark.pedantic(run_both, rounds=1, iterations=1)
    lines = [
        f"Table IX analogue — Stage 4 iterations ({entry.key}, "
        f"scale 1/{scale}, max partition size 16)",
        "",
        f"{'it':>3} {'H_max':>7} {'W_max':>7} {'crosspoints':>12} "
        f"{'cells MM':>10} {'cells orth':>11}",
    ]
    for a, b in zip(plain.iterations, orth.iterations):
        lines.append(f"{a.index:>3} {a.h_max:>7} {a.w_max:>7} "
                     f"{a.crosspoints:>12,} {a.cells:>10,} {b.cells:>11,}")
    ratio = orth.cells / plain.cells
    lines += [
        "",
        f"total cells: MM {plain.cells:,}  orthogonal {orth.cells:,}  "
        f"ratio {ratio:.2f}",
        "paper: orthogonal execution saved 25% (Time_2 = 0.75 x Time_1)",
    ]
    # Same refinement result either way (tie-equivalent splits may shift
    # individual crosspoints, so counts agree only approximately).
    assert CrosspointChain(orth.crosspoints).end.score == \
        CrosspointChain(plain.crosspoints).end.score
    assert abs(len(orth.crosspoints) - len(plain.crosspoints)) <= \
        max(2, len(plain.crosspoints) // 50)
    # The paper's expected saving: reverse halves stop early.
    assert 0.60 < ratio < 0.95
    # Dimensions shrink monotonically; the *split* dimension halves each
    # round (the paper's H_max column), while the other may lag one round
    # (its W_max decays slowly at first: 2624, 2539, 2455, 1904, ...).
    dims = [max(i.h_max, i.w_max) for i in orth.iterations]
    assert all(b <= a for a, b in zip(dims, dims[1:]))
    assert all(b <= 0.75 * a for a, b in zip(dims[::2], dims[2::2]))
    counts = [i.crosspoints for i in orth.iterations]
    assert all(b <= 2 * a for a, b in zip(counts, counts[1:]))
    emit("table9_stage4", lines)
