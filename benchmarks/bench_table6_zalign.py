"""Table VI — CUDAlign speedups over the Z-align cluster.

Two parts:

* a real small-scale cross-check: the strip-parallel Z-align computation
  must produce exactly the pipeline's best score (benchmarked);
* the calibrated models at the paper's sizes: speedups of ~520-700x over
  one core and ~12-20x over 64 cores, the shape of Table VI.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import ZAlignCluster
from repro.core import CUDAlign
from repro.gpusim import GTX_285, KernelGrid, sweep_cost
from repro.sequences.synth import homologous_pair

from benchmarks.conftest import emit, pipeline_config

#: (label, m, n, paper Z-1core s, paper Z-64core s, paper CUDAlign s)
PAPER_TABLE6 = [
    ("150K", 162_114, 171_823, 1_118, 22.6, 1.8),
    ("500K", 542_868, 536_165, 9_761, 176, 13.9),
    ("1M", 1_044_459, 1_072_950, 32_094, 1_044, 61.6),
    ("3M", 3_147_090, 3_282_708, 294_000, 8_765, 449),
    ("5M", 5_227_293, 5_228_663, None, 23_235, 1_321),
    ("23M", 23_011_544, 24_543_557, None, 400_863, 23_755),
]


def test_table6_real_crosscheck(benchmark):
    rng = np.random.default_rng(5)
    s0, s1 = homologous_pair(1600, rng)
    config = pipeline_config(len(s1), sra_rows=4)
    pipeline = CUDAlign(config).run(s0, s1, visualize=False)
    cluster = ZAlignCluster(cores=8, band_rows=200)
    score, stats = benchmark.pedantic(
        cluster.align_score, args=(s0, s1, config.scheme),
        rounds=2, iterations=1)
    assert score == pipeline.best_score
    assert stats.wavefront_steps > 1
    emit("table6_crosscheck", [
        "Z-align strip-parallel cross-check (real execution)",
        f"sizes: {len(s0)} x {len(s1)}",
        f"pipeline score: {pipeline.best_score}  z-align score: {score}",
        f"tiles: {stats.tiles}  wavefront steps: {stats.wavefront_steps}  "
        f"bus bytes: {stats.horizontal_bus_bytes + stats.vertical_bus_bytes:,}",
    ])


def test_table6_modeled_speedups(benchmark):
    grid = KernelGrid(240, 64, 4)
    one = ZAlignCluster(cores=1)
    many = ZAlignCluster(cores=64)

    def evaluate():
        rows = []
        for label, m, n, p1, p64, pc in PAPER_TABLE6:
            t1 = one.modeled_seconds(m, n)
            t64 = many.modeled_seconds(m, n)
            tc = sweep_cost(m, n, grid, GTX_285).seconds
            rows.append((label, t1, t64, tc, p1, p64, pc))
        return rows

    rows = benchmark.pedantic(evaluate, rounds=3, iterations=1)
    lines = [
        "Table VI (modeled) — speedups vs Z-align",
        "",
        f"{'size':>6} {'model 1c':>11} {'model 64c':>11} {'model GPU':>10} "
        f"{'speedup 1c':>11} {'speedup 64c':>12} {'paper 1c':>9} {'paper 64c':>10}",
    ]
    for label, t1, t64, tc, p1, p64, pc in rows:
        s1x = t1 / tc
        s64x = t64 / tc
        paper_s1 = f"{p1 / pc:.0f}" if p1 else "-"
        paper_s64 = f"{p64 / pc:.1f}" if p64 else "-"
        lines.append(
            f"{label:>6} {t1:>11,.0f} {t64:>11,.0f} {tc:>10,.0f} "
            f"{s1x:>11.0f} {s64x:>12.1f} {paper_s1:>9} {paper_s64:>10}")
        # Shape assertions: the paper's bands.
        assert 400 < s1x < 900, label
        assert 8 < s64x < 30, label
    lines += ["", "paper: maximum speedups 702.22 (1 core) and 19.52 (64 cores)"]
    emit("table6_modeled", lines)
