"""Table X — numerical details of the chromosome alignment.

The composition census of the flagship comparison's optimal alignment:
matches / mismatches / gap openings / gap extensions, each with its share
of columns and score contribution.  The synthetic pair is tuned to the
paper's statistics (94.4% / 1.5% / 0.2% / 3.9%), so the shares must land
within a few points, and the census must sum exactly to the score.
"""

from __future__ import annotations

from repro.sequences import get_entry

from benchmarks.conftest import emit, run_entry

#: (share %, of total columns) from the paper's Table X.
PAPER_SHARES = {"matches": 94.4, "mismatches": 1.5, "gap_opens": 0.2,
                "gap_extensions": 3.9}


def test_table10_composition(benchmark, scale):
    entry = get_entry("32799Kx46944K")
    s0, s1, config, result = benchmark.pedantic(
        run_entry, args=(entry, scale), rounds=1, iterations=1)
    comp = result.composition
    total = comp.length
    shares = {
        "matches": 100 * comp.matches / total,
        "mismatches": 100 * comp.mismatches / total,
        "gap_opens": 100 * comp.gap_opens / total,
        "gap_extensions": 100 * comp.gap_extensions / total,
    }
    scores = {
        "matches": comp.matches * config.scheme.match,
        "mismatches": comp.mismatches * config.scheme.mismatch,
        "gap_opens": -comp.gap_opens * config.scheme.gap_first,
        "gap_extensions": -comp.gap_extensions * config.scheme.gap_ext,
    }
    lines = [
        f"Table X analogue — composition of the {entry.key} alignment "
        f"(scale 1/{scale})",
        "",
        f"{'':>16} {'occurrences':>12} {'%':>7} {'paper %':>8} {'score':>10}",
    ]
    counts = {"matches": comp.matches, "mismatches": comp.mismatches,
              "gap_opens": comp.gap_opens,
              "gap_extensions": comp.gap_extensions}
    for key in PAPER_SHARES:
        lines.append(f"{key:>16} {counts[key]:>12,} {shares[key]:>6.1f}% "
                     f"{PAPER_SHARES[key]:>7.1f}% {scores[key]:>10,}")
    lines.append(f"{'total':>16} {total:>12,} {'100.0%':>7} {'100.0%':>8} "
                 f"{comp.score:>10,}")
    # Census identity: contributions sum exactly to the optimal score.
    assert sum(scores.values()) == comp.score == result.best_score
    # Shape: shares near the paper's (synthetic tuning tolerance).
    assert abs(shares["matches"] - PAPER_SHARES["matches"]) < 4
    assert abs(shares["mismatches"] - PAPER_SHARES["mismatches"]) < 2
    assert shares["gap_opens"] < 1.5
    assert abs(shares["gap_extensions"] - PAPER_SHARES["gap_extensions"]) < 4
    lines += ["", "paper: 94.4% / 1.5% / 0.2% / 3.9%, score 27,206,434"]
    emit("table10_composition", lines)
