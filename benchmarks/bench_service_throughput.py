"""Job-service throughput — jobs/sec versus worker count, cache speedup.

Runs one fixed batch of catalog jobs through :class:`AlignmentService`
at 1, 2 and 4 workers (fresh root each time, so every job really runs),
then replays the same batch against a warm result cache.  The table
reports jobs/sec per worker count, the scaling ratio versus one worker,
and the cache-hit speedup — the service-level counterpart of the
kernel-MCUPS suite.
"""

from __future__ import annotations

import time

from repro.service import AlignmentService, JobSpec

from benchmarks.conftest import bench_scale, emit

WORKER_COUNTS = (1, 2, 4)
#: (catalog key, seed) per job: two entry shapes, distinct seeds so no
#: two jobs collide in the cache within one cold run.
JOBS = [("162Kx172K", seed) for seed in range(4)] + \
       [("543Kx536K", seed) for seed in range(2)]


def _specs(scale: int) -> list[JobSpec]:
    return [JobSpec(catalog=key, scale=scale, seed=seed, block_rows=32)
            for key, seed in JOBS]


def _run_batch(root, workers: int, scale: int,
               resume: bool = False) -> dict:
    service = AlignmentService(root, workers=workers, resume=resume)
    try:
        if not resume:
            service.submit_many(_specs(scale))
        tick = time.monotonic()
        summary = service.run()
        summary["measured_seconds"] = time.monotonic() - tick
    finally:
        service.close()
    assert summary["failed"] == 0
    return summary


def test_service_throughput(tmp_path):
    scale = bench_scale()
    lines = [
        f"Job service throughput — {len(JOBS)} catalog jobs, "
        f"scale 1/{scale}",
        "",
        f"{'workers':>8} {'seconds':>9} {'jobs/s':>8} {'vs 1 worker':>12}",
    ]
    base_rate = None
    cold_seconds = None
    for workers in WORKER_COUNTS:
        summary = _run_batch(tmp_path / f"w{workers}", workers, scale)
        elapsed = summary["measured_seconds"]
        rate = len(JOBS) / elapsed
        if base_rate is None:
            base_rate = rate
            cold_seconds = elapsed
        lines.append(f"{workers:>8} {elapsed:>9.2f} {rate:>8.2f} "
                     f"{rate / base_rate:>11.2f}x")

    # Same batch against the warm cache of the 1-worker root: every job
    # is a duplicate, so this measures pure service+cache overhead.
    warm_root = tmp_path / "w1"
    (warm_root / "journal.jsonl").unlink()
    warm = _run_batch(warm_root, 1, scale)
    assert warm["cached"] == len(JOBS)
    warm_seconds = warm["measured_seconds"]
    speedup = cold_seconds / warm_seconds if warm_seconds > 0 else float("inf")
    lines += [
        "",
        f"warm-cache replay (1 worker): {warm_seconds:.3f} s for "
        f"{len(JOBS)} jobs — {speedup:.0f}x faster than the cold run "
        f"({warm['cache']['hits']} hits, "
        f"{warm['cache']['hit_rate']:.0%} hit rate)",
    ]
    emit("service_throughput", lines)
