"""Figure 11 — runtime vs matrix size (log-log), ~constant GCUPS.

Two series:

* **measured** — real wall time of the scaled runs across the catalog;
  the implied MCUPS must plateau (rate roughly constant once sweeps are
  large enough to amortize per-row overhead), i.e. runtime grows linearly
  in cells — the figure's straight line;
* **modeled** — the GTX 285 model at the paper's sizes, which must show
  the paper's ~23 GCUPS plateau above 3 MBP.
"""

from __future__ import annotations

import math

from repro.gpusim import GTX_285, KernelGrid, sweep_cost
from repro.sequences import CATALOG

from benchmarks.conftest import emit, run_entry


def test_fig11_scaling(benchmark, scale):
    results = {}

    def run_all():
        for entry in CATALOG:
            results[entry.key] = run_entry(entry, scale)
        return len(results)

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    grid = KernelGrid(240, 64, 4)
    lines = [
        f"Figure 11 analogue — runtime x matrix size (scale 1/{scale})",
        "",
        f"{'comparison':<16} {'cells':>10} {'wall s':>9} {'MCUPS':>8} "
        f"{'model s':>10} {'model GCUPS':>12}",
    ]
    measured = []
    for entry in CATALOG:
        _, _, _, result = results[entry.key]
        cells = result.matrix_cells
        # Stage 1 is the figure's dominant term; stages 2-6 depend on the
        # alignment's length, not the matrix size.
        wall = result.stage1.wall_seconds
        mcups = cells / wall / 1e6
        model = sweep_cost(entry.paper_size0, entry.paper_size1, grid,
                           GTX_285)
        measured.append((cells, wall, mcups))
        lines.append(f"{entry.key:<16} {cells:>10.2e} {wall:>9.3f} "
                     f"{mcups:>8.1f} {model.seconds:>10,.0f} "
                     f"{model.gcups:>12.1f}")
        # The paper's plateau: >= 23 GCUPS for every comparison >= 3 MBP.
        if entry.paper_size0 >= 3_000_000:
            assert model.gcups > 23.0
    # Measured scalability: runtime ~ cells (log-log slope near 1) across
    # the large entries.
    big = [(c, t) for c, t, _ in measured if c > 10 * measured[0][0]]
    if len(big) >= 2:
        (c1, t1), (c2, t2) = big[0], big[-1]
        slope = (math.log(t2) - math.log(t1)) / (math.log(c2) - math.log(c1))
        lines += ["", f"log-log slope (measured, large entries): {slope:.2f} "
                  "(1.0 = perfectly linear in cells)"]
        assert 0.6 < slope < 1.4
    emit("fig11_scaling", lines)
