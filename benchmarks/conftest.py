"""Shared infrastructure for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
(Section V).  Measured numbers come from real pipeline runs on the scaled
synthetic catalog; paper-scale columns come from the calibrated device
model.  Each benchmark writes its rendered table to
``benchmarks/out/<name>.txt`` (and prints it, visible with ``pytest -s``).

Environment:
    REPRO_BENCH_SCALE — catalog scale divisor (default 8192; smaller means
        bigger sequences and longer runs, e.g. 2048 for a deeper pass).
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.core import CUDAlign, PipelineConfig, small_config

OUT_DIR = pathlib.Path(__file__).parent / "out"


def bench_scale() -> int:
    return int(os.environ.get("REPRO_BENCH_SCALE", "8192"))


@pytest.fixture(scope="session")
def scale() -> int:
    return bench_scale()


def pipeline_config(n: int, *, sra_rows: int = 8, block_rows: int = 64,
                    max_partition_size: int = 32, **kw) -> PipelineConfig:
    """The standard scaled-run configuration used across benchmarks."""
    return small_config(block_rows=block_rows, n=n, sra_rows=sra_rows,
                        max_partition_size=max_partition_size, **kw)


def run_entry(entry, scale: int, **config_kw):
    """Build a catalog pair and run the full pipeline on it."""
    s0, s1 = entry.build(scale=scale, seed=0)
    config = pipeline_config(len(s1), **config_kw)
    result = CUDAlign(config).run(s0, s1, visualize=False)
    return s0, s1, config, result


def emit(name: str, lines: list[str]) -> str:
    """Render, persist and print one benchmark's table."""
    text = "\n".join(lines)
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)
    return text
