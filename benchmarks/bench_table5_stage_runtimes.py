"""Table V — runtimes of each stage across the catalog.

Measured per-stage wall times of real runs on the scaled catalog, plus
the modeled per-stage GTX 285 seconds.  The paper's headline shape must
hold: Stage 1 dominates (>90% of total for every pair) and the Stage
2-6 total is negligible whenever the optimal alignment is short.
"""

from __future__ import annotations

from repro.sequences import CATALOG

from benchmarks.conftest import emit, run_entry

#: Per-stage paper seconds for the largest comparison (Table V, last row).
PAPER_LAST_ROW = {"1": 65_153, "2": 805, "3": 236, "4": 376, "5+6": 9}


def test_table5_stage_runtimes(benchmark, scale):
    results = {}

    def run_all():
        for entry in CATALOG:
            results[entry.key] = run_entry(entry, scale)
        return len(results)

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    lines = [
        f"Table V — per-stage wall seconds (measured, scale 1/{scale})",
        "",
        f"{'comparison':<16} {'1':>8} {'2':>8} {'3':>8} {'4':>8} "
        f"{'5+6':>8} {'total':>9} {'stage1 %':>9}",
    ]
    for entry in CATALOG:
        s0, s1, config, result = results[entry.key]
        w = result.stage_wall_seconds()
        total = sum(w.values())
        s56 = w["5"] + w["6"]
        share = 100 * w["1"] / total
        lines.append(
            f"{entry.key:<16} {w['1']:>8.3f} {w['2']:>8.3f} {w['3']:>8.3f} "
            f"{w['4']:>8.3f} {s56:>8.3f} {total:>9.3f} {share:>8.1f}%")
        if result.alignment is not None and result.alignment_length < 100:
            # Short alignments: stages 2-6 negligible (paper: "<0.1 s").
            assert total - w["1"] < 0.5 * w["1"] + 0.2, entry.key
    lines += [
        "",
        "paper (last row, GTX 285 seconds): " + "  ".join(
            f"{k}:{v:,}" for k, v in PAPER_LAST_ROW.items()),
        "paper shape: stage 1 dominates; stages 2-6 negligible for short "
        "alignments — reproduced above.",
    ]
    emit("table5_stage_runtimes", lines)
